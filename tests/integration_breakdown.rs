//! Cross-crate integration test of the Figure 1 claims: scale-out
//! workloads are stall-dominated and memory-bound; cpu-intensive desktop
//! benchmarks are not; TPC-C is the worst case.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::{Benchmark, Category};
use cs_trace::WorkloadProfile;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg() -> RunConfig {
    RunConfig { warmup_instr: 1_000_000, measure_instr: 2_000_000, ..RunConfig::default() }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_workloads_are_stall_and_memory_dominated() {
    for bench in Benchmark::scale_out_suite() {
        let r = run(&bench, &cfg());
        let b = r.breakdown();
        let stalled = b.stalled_app + b.stalled_os;
        assert!(stalled > 0.5, "{}: stalled {stalled:.2} must exceed 0.5", r.name);
        assert!(b.memory > 0.45, "{}: memory fraction {:.2} too low", r.name, b.memory);
        // The breakdown partitions total time.
        let total = stalled + b.committing_app + b.committing_os;
        assert!((total - 1.0).abs() < 1e-6, "{}: breakdown sums to {total}", r.name);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn cpu_intensive_benchmarks_commit_most_cycles() {
    let spec =
        Benchmark::from_profile(Category::Traditional, WorkloadProfile::specint_cpu());
    let r = run(&spec, &cfg());
    let b = r.breakdown();
    // The paper's cpu-intensive groups stall well under half their cycles;
    // our model lands slightly above at short windows, so the bound is a
    // little looser while preserving the scale-out contrast.
    assert!(
        b.stalled_app + b.stalled_os < 0.62,
        "SPECint (cpu) must commit most cycles, got stall {:.2}",
        b.stalled_app + b.stalled_os
    );
    assert!(b.memory < 0.7, "SPECint (cpu) memory fraction {:.2} too high", b.memory);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn tpcc_stalls_more_than_every_scale_out_workload() {
    let tpcc = Benchmark::from_profile(Category::Traditional, WorkloadProfile::tpcc());
    let tpcc_stall = {
        let b = run(&tpcc, &cfg()).breakdown();
        b.stalled_app + b.stalled_os
    };
    assert!(tpcc_stall > 0.8, "TPC-C must stall over 80% of cycles, got {tpcc_stall:.2}");
    for bench in Benchmark::scale_out_suite() {
        let b = run(&bench, &cfg()).breakdown();
        assert!(
            b.stalled_app + b.stalled_os <= tpcc_stall + 0.03,
            "{} stalls more than TPC-C",
            bench.name()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_ipc_sits_between_tpcc_and_desktop_cpu() {
    let tpcc = Benchmark::from_profile(Category::Traditional, WorkloadProfile::tpcc());
    let spec = Benchmark::from_profile(Category::Traditional, WorkloadProfile::specint_cpu());
    let tpcc_ipc = run(&tpcc, &cfg()).app_ipc();
    let spec_ipc = run(&spec, &cfg()).app_ipc();
    for bench in Benchmark::scale_out_suite() {
        let ipc = run(&bench, &cfg()).app_ipc();
        assert!(ipc > tpcc_ipc, "{} IPC {ipc:.2} should beat TPC-C {tpcc_ipc:.2}", bench.name());
        assert!(ipc < spec_ipc, "{} IPC {ipc:.2} should trail SPEC-cpu {spec_ipc:.2}", bench.name());
    }
}
