//! Cross-crate integration test of the Figure 2 claims: multi-megabyte
//! scale-out instruction working sets defeat the L1-I (and the L2 barely
//! helps), while desktop/parallel code is L1-resident.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::{Benchmark, Category};
use cs_trace::WorkloadProfile;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg() -> RunConfig {
    RunConfig { warmup_instr: 1_000_000, measure_instr: 2_000_000, ..RunConfig::default() }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_instruction_misses_are_an_order_of_magnitude_beyond_desktop() {
    let spec = Benchmark::from_profile(Category::Traditional, WorkloadProfile::specint_cpu());
    let (spec_l1i, _) = run(&spec, &cfg()).l1i_mpki();
    for bench in Benchmark::scale_out_suite() {
        let r = run(&bench, &cfg());
        let (l1i_app, l1i_os) = r.l1i_mpki();
        assert!(
            l1i_app + l1i_os > 10.0,
            "{}: L1-I MPKI {:.1} too low for a scale-out workload",
            r.name,
            l1i_app + l1i_os
        );
        assert!(
            l1i_app + l1i_os > 10.0 * (spec_l1i + 0.05),
            "{}: must be an order of magnitude beyond SPEC-cpu ({spec_l1i:.2})",
            r.name
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn l2_catches_only_part_of_the_instruction_working_set() {
    for bench in Benchmark::scale_out_suite() {
        let r = run(&bench, &cfg());
        let (l1i_app, l1i_os) = r.l1i_mpki();
        let (l2i_app, l2i_os) = r.l2i_mpki();
        let l1 = l1i_app + l1i_os;
        let l2 = l2i_app + l2i_os;
        assert!(l2 <= l1 + 0.5, "{}: L2 instr misses cannot exceed L1-I misses", r.name);
        assert!(
            l2 > 0.5 * l1,
            "{}: the paper finds the L2 cannot mitigate the L1-I shortfall (L1 {l1:.1}, L2 {l2:.1})",
            r.name
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_os_instruction_footprint_is_smaller_than_oltp() {
    let tpcc = Benchmark::from_profile(Category::Traditional, WorkloadProfile::tpcc());
    let (_, tpcc_os) = run(&tpcc, &cfg()).l1i_mpki();
    let (_, media_os) = run(&Benchmark::media_streaming(), &cfg()).l1i_mpki();
    assert!(
        media_os < tpcc_os,
        "scale-out OS instruction misses ({media_os:.1}) must trail OLTP ({tpcc_os:.1})"
    );
}
