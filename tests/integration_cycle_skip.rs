//! Event-driven cycle skipping must be invisible in every figure input:
//! a run with `cycle_skip` on must produce bit-identical counters to the
//! naive cycle-by-cycle loop, across all six CloudSuite workloads and the
//! stall-heaviest configurations the paper's methodology uses (the
//! Figure 4 cache polluters and the Figure 5 no-prefetch leg), with and
//! without deterministic fault injection.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::{Benchmark, FaultPlan};
use cs_memsys::PrefetchConfig;
use cs_perf::CounterSet;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg() -> RunConfig {
    RunConfig {
        warmup_instr: 60_000,
        measure_instr: 120_000,
        seed: 42,
        ..RunConfig::default()
    }
}

/// Everything a figure can read from a run, flattened to exact integers.
fn fingerprint(r: &RunResult) -> CounterSet {
    let mut c = CounterSet::new();
    c.set("cycles", r.cycles);
    c.set("requests", r.requests.unwrap_or(u64::MAX));
    for (i, core) in r.cores.iter().enumerate() {
        c.merge(&core.to_counters(&format!("core{i}")));
    }
    for (i, mem) in r.mem.iter().enumerate() {
        c.set(format!("mem{i}.l1i_acc"), mem.l1i.total_accesses());
        c.set(format!("mem{i}.l1i_hit"), mem.l1i.total_hits());
        c.set(format!("mem{i}.l1d_acc"), mem.l1d.total_accesses());
        c.set(format!("mem{i}.l1d_hit"), mem.l1d.total_hits());
        c.set(format!("mem{i}.l2_acc"), mem.l2.total_accesses());
        c.set(format!("mem{i}.l2_hit"), mem.l2.total_hits());
        c.set(format!("mem{i}.llc_acc"), mem.llc.total_accesses());
        c.set(format!("mem{i}.llc_hit"), mem.llc.total_hits());
        c.set(format!("mem{i}.rw_user"), mem.rw_shared[0]);
        c.set(format!("mem{i}.rw_kernel"), mem.rw_shared[1]);
        c.set(format!("mem{i}.dram_bytes"), mem.dram_bytes_total());
    }
    for (i, mem) in r.polluter_mem.iter().enumerate() {
        c.set(format!("pol{i}.llc_acc"), mem.llc.total_accesses());
        c.set(format!("pol{i}.llc_hit"), mem.llc.total_hits());
    }
    c.set("dram.reads", r.dram.reads);
    c.set("dram.writes", r.dram.writes);
    c.set("dram.bytes", r.dram.bytes);
    c.set("dram.busy", r.dram.busy_cycles);
    c
}

/// Runs `cfg` with skipping on and off and asserts bit-identical
/// counters; returns the skipped fraction of the fast run.
fn assert_equivalent(bench: &Benchmark, cfg: &RunConfig) -> f64 {
    let fast = run(bench, &RunConfig { cycle_skip: true, ..cfg.clone() });
    let slow = run(bench, &RunConfig { cycle_skip: false, ..cfg.clone() });
    assert_eq!(
        fingerprint(&fast),
        fingerprint(&slow),
        "{}: skip-on and skip-off counters diverged",
        bench.name()
    );
    assert_eq!(fast.cycles_total, slow.cycles_total, "{}", bench.name());
    assert_eq!(slow.cycles_skipped, 0, "skip-off must never jump");
    fast.skipped_fraction()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn cycle_skip_is_identical_on_all_scale_out_workloads() {
    for bench in Benchmark::scale_out_suite() {
        let skipped = assert_equivalent(&bench, &cfg());
        assert!(
            (0.0..1.0).contains(&skipped),
            "{}: skipped fraction {skipped} out of range",
            bench.name()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn cycle_skip_is_identical_with_fig4_polluters() {
    // The Figure 4 methodology: dedicated cache-polluter cores plus a
    // shrunken effective LLC — the stall-dominated, skip-friendliest case.
    let cfg = RunConfig { polluter_bytes: Some(8 << 20), ..cfg() };
    let skipped = assert_equivalent(&Benchmark::web_search(), &cfg);
    assert!(skipped > 0.0, "a polluted run must have skippable stalls");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn cycle_skip_is_identical_with_fig5_no_prefetch() {
    // The Figure 5 all-prefetchers-off leg: every demand miss pays full
    // latency, maximizing dead stall spans.
    let cfg = RunConfig { prefetch: Some(PrefetchConfig::none()), ..cfg() };
    let skipped = assert_equivalent(&Benchmark::data_serving(), &cfg);
    assert!(skipped > 0.0, "a no-prefetch run must have skippable stalls");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn cycle_skip_is_identical_under_fault_injection() {
    // DRAM latency jitter plus prefetch drops, seeded: the perturbation
    // stream is event-indexed, so the same accesses must draw the same
    // rolls whether dead cycles are stepped or jumped.
    let cfg = RunConfig {
        fault: Some(FaultPlan {
            dram_extra_latency: 120,
            dram_perturb_rate: 0.25,
            prefetch_drop_rate: 0.1,
            seed: 0xC10D,
        }),
        ..cfg()
    };
    assert_equivalent(&Benchmark::media_streaming(), &cfg);
}

#[test]
fn skip_telemetry_is_recorded() {
    // Even a quick run must report an inspectable skipped fraction.
    let r = run(&Benchmark::mcf(), &cfg());
    assert!(r.cycles_total >= r.cycles);
    assert!(r.cycles_skipped <= r.cycles_total);
    assert_eq!(
        r.skipped_fraction(),
        r.cycles_skipped as f64 / r.cycles_total as f64
    );
    let off = run(&Benchmark::mcf(), &RunConfig { cycle_skip: false, ..cfg() });
    assert_eq!(off.cycles_skipped, 0);
    assert_eq!(off.skipped_fraction(), 0.0);
}
