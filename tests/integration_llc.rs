//! Cross-crate integration test of the Figure 4 methodology and claims:
//! polluter threads verifiably steal LLC capacity, scale-out workloads are
//! insensitive above 4–6 MB, and an mcf-like working set is not.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::Benchmark;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg() -> RunConfig {
    RunConfig { warmup_instr: 1_000_000, measure_instr: 1_600_000, ..RunConfig::default() }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn polluters_achieve_high_llc_hit_ratios() {
    // §3.1: "We use performance counters to confirm that the polluter
    // threads achieve nearly 100% hit ratio in the LLC."
    let r = run(
        &Benchmark::web_frontend(),
        &RunConfig { polluter_bytes: Some(6 << 20), ..cfg() },
    );
    assert!(
        r.polluter_llc_hit_ratio() > 0.8,
        "polluter LLC hit ratio {:.2} too low for the methodology to hold",
        r.polluter_llc_hit_ratio()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_tolerates_half_the_llc_better_than_mcf() {
    // Group semantics, as in the figure: average a slice of the scale-out
    // suite against mcf at 4 MB effective capacity.
    let base = RunConfig { warmup_instr: 3_000_000, ..cfg() };
    let polluted = RunConfig { polluter_bytes: Some(8 << 20), ..base.clone() };
    let group = [Benchmark::web_frontend(), Benchmark::web_search()];
    let rel = |b: &Benchmark| run(b, &polluted).app_ipc() / run(b, &base).app_ipc();
    let so_rel = group.iter().map(&rel).sum::<f64>() / group.len() as f64;
    let mcf_rel = rel(&Benchmark::mcf());
    assert!(
        so_rel > 0.7,
        "scale-out should retain most performance at 4 MB, kept {so_rel:.2}"
    );
    assert!(
        mcf_rel < so_rel - 0.04,
        "mcf ({mcf_rel:.2}) must be hurt more than scale-out ({so_rel:.2})"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn direct_llc_resizing_agrees_with_the_polluter_method() {
    // The harness supports both methods; they must agree on the direction
    // and rough magnitude for the sensitive workload.
    let bench = Benchmark::mcf();
    let base = run(&bench, &cfg()).app_ipc();
    let resized =
        run(&bench, &RunConfig { llc_bytes: Some(4 << 20), ..cfg() }).app_ipc();
    let polluted =
        run(&bench, &RunConfig { polluter_bytes: Some(8 << 20), ..cfg() }).app_ipc();
    assert!(resized < base, "mcf must slow down with a 4 MB LLC");
    assert!(polluted < base, "mcf must slow down with 8 MB polluted");
    let a = resized / base;
    let b = polluted / base;
    assert!(
        (a - b).abs() < 0.35,
        "the two methods should roughly agree: resize {a:.2} vs polluters {b:.2}"
    );
}
