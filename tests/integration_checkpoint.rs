//! Crash-safe checkpoint/restore: killing a run at arbitrary points and
//! resuming from the saved snapshot must reproduce the uninterrupted run
//! byte-for-byte — for every scale-out workload, with interrupts landing
//! in both the warmup and the measure window, and with the cycle-skipping
//! fast path on or off.

use cloudsuite::checkpoint::{unit_file, unit_key, with_checkpointing, CheckpointCtl};
use cloudsuite::harness::{run, RunConfig, RunResult};
use cloudsuite::{Benchmark, HarnessError};
use std::path::{Path, PathBuf};

fn cfg(cycle_skip: bool) -> RunConfig {
    RunConfig {
        warmup_instr: 60_000,
        measure_instr: 120_000,
        max_cycles: 8_000_000,
        cycle_skip,
        ..RunConfig::default()
    }
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs-itest-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The phase tag of the snapshot on disk: the envelope header is 36 bytes
/// (magic, version, config hash, payload length, checksum), and the
/// payload opens with the phase discriminant (0 = pre-warm, 1 = warmup,
/// 2 = measure).
fn snapshot_phase(dir: &Path, scope: &str, bench: &Benchmark, cfg: &RunConfig) -> Option<u8> {
    let key = unit_key(scope, bench.name(), cfg);
    let bytes = std::fs::read(dir.join(unit_file(key))).ok()?;
    bytes.get(36).copied()
}

/// Kills the run each time its chip reaches the next interrupt cycle,
/// resumes from the snapshot, and keeps going until it completes.
/// Returns the final result, how many interrupts fired, and the set of
/// phase tags the on-disk snapshots were taken in.
fn run_resumable(
    bench: &Benchmark,
    cfg: &RunConfig,
    dir: &Path,
    first_k: u64,
    step: u64,
) -> (RunResult, u32, Vec<u8>) {
    let mut interrupts = 0u32;
    let mut phases = Vec::new();
    let mut k = first_k;
    let result = loop {
        let mut ctl = CheckpointCtl::new(dir.to_path_buf(), "itest");
        ctl.cadence_cycles = 40_000;
        ctl.interrupt_after = Some(k);
        match with_checkpointing(ctl, || run(bench, cfg)) {
            Err(HarnessError::Interrupted) => {
                interrupts += 1;
                if let Some(tag) = snapshot_phase(dir, "itest", bench, cfg) {
                    phases.push(tag);
                }
                k += step;
            }
            Ok(r) => break r,
            Err(other) => panic!("{}: unexpected error: {other:?}", bench.name()),
        }
        assert!(interrupts < 256, "{}: run never completed", bench.name());
    };
    (result, interrupts, phases)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn kill_and_resume_matches_uninterrupted_for_every_workload() {
    let cfg = cfg(true);
    for bench in Benchmark::scale_out_suite() {
        let baseline = run(&bench, &cfg).expect("uninterrupted run");
        let dir = ckpt_dir("suite");
        let (resumed, interrupts, phases) = run_resumable(&bench, &cfg, &dir, 30_000, 50_000);
        assert!(interrupts >= 2, "{}: want >=2 interrupts, got {interrupts}", bench.name());
        assert!(
            phases.contains(&1),
            "{}: no interrupt landed mid-warmup (phases: {phases:?})",
            bench.name()
        );
        assert!(
            phases.contains(&2),
            "{}: no interrupt landed mid-measure (phases: {phases:?})",
            bench.name()
        );
        assert_eq!(
            format!("{baseline:?}"),
            format!("{resumed:?}"),
            "{}: kill-and-resume must reproduce the uninterrupted run",
            bench.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn kill_and_resume_is_identical_with_cycle_skipping_off() {
    // The skip-on result is the reference; a skip-off run — interrupted or
    // not — must land on the same counters, so a checkpoint taken under
    // one setting never bakes the fast path into the results.
    let bench = Benchmark::web_search();
    let reference = run(&bench, &cfg(true)).expect("skip-on baseline");
    let baseline_off = run(&bench, &cfg(false)).expect("skip-off baseline");
    let dir = ckpt_dir("noskip");
    let (resumed, interrupts, _) = run_resumable(&bench, &cfg(false), &dir, 30_000, 50_000);
    assert!(interrupts >= 2, "want >=2 interrupts, got {interrupts}");
    assert_eq!(format!("{baseline_off:?}"), format!("{resumed:?}"));
    // Cross-check against the skip-on reference on the counters the two
    // modes share exactly (skipped-cycle bookkeeping differs by design).
    assert_eq!(reference.cycles, resumed.cycles);
    assert_eq!(
        format!("{:?}", reference.cores),
        format!("{:?}", resumed.cores),
        "per-core counters must not depend on the fast path"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn corrupt_snapshot_is_quarantined_and_the_run_stays_byte_identical() {
    // Interrupt once to produce a snapshot, flip a payload byte on disk,
    // then resume: the corrupt file must be moved aside as `.corrupt`
    // (not overwritten, not trusted) and the fresh run must reproduce the
    // uninterrupted result byte-for-byte.
    let bench = Benchmark::web_search();
    let cfg = cfg(true);
    let baseline = run(&bench, &cfg).expect("uninterrupted run");
    let dir = ckpt_dir("quarantine");

    let mut ctl = CheckpointCtl::new(dir.clone(), "itest");
    ctl.cadence_cycles = 40_000;
    ctl.interrupt_after = Some(60_000);
    match with_checkpointing(ctl, || run(&bench, &cfg)) {
        Err(HarnessError::Interrupted) => {}
        other => panic!("expected an interrupt, got {other:?}"),
    }

    let key = unit_key("itest", bench.name(), &cfg);
    let snap = dir.join(unit_file(key));
    let mut bytes = std::fs::read(&snap).expect("snapshot exists after interrupt");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&snap, &bytes).expect("corrupt the snapshot");

    let ctl = CheckpointCtl::new(dir.clone(), "itest");
    let resumed = with_checkpointing(ctl, || run(&bench, &cfg)).expect("fresh run completes");
    let quarantined = PathBuf::from(format!("{}.corrupt", snap.display()));
    assert!(
        quarantined.exists(),
        "corrupt snapshot must be preserved as {}",
        quarantined.display()
    );
    assert_eq!(
        format!("{baseline:?}"),
        format!("{resumed:?}"),
        "a quarantined checkpoint must degrade to a byte-identical fresh run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn checkpoints_survive_polluted_multicore_configs() {
    // Polluter cores force the pre-warm phase (workers not yet attached),
    // and a second measured core exercises multi-core snapshot state.
    let bench = Benchmark::data_serving();
    let cfg = RunConfig { workers: 2, polluter_bytes: Some(2 << 20), ..cfg(true) };
    let baseline = run(&bench, &cfg).expect("uninterrupted run");
    let dir = ckpt_dir("polluted");
    let (resumed, interrupts, phases) = run_resumable(&bench, &cfg, &dir, 100_000, 400_000);
    assert!(interrupts >= 2, "want >=2 interrupts, got {interrupts}");
    assert!(
        phases.contains(&0),
        "no interrupt landed in the pre-warm phase (phases: {phases:?})"
    );
    assert_eq!(format!("{baseline:?}"), format!("{resumed:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}
