//! Cross-crate integration test of the Figure 3 claims: low baseline IPC
//! and MLP for scale-out workloads, with substantial SMT recovery thanks
//! to request independence.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::{Benchmark, Category};
use cs_trace::WorkloadProfile;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg() -> RunConfig {
    RunConfig { warmup_instr: 1_000_000, measure_instr: 2_000_000, ..RunConfig::default() }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_ipc_uses_a_fraction_of_the_four_wide_core() {
    for bench in Benchmark::scale_out_suite() {
        let ipc = run(&bench, &cfg()).app_ipc();
        assert!(
            (0.2..1.3).contains(&ipc),
            "{}: app IPC {ipc:.2} outside the scale-out band",
            bench.name()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_mlp_is_low_but_above_oltp() {
    let tpcc = Benchmark::from_profile(Category::Traditional, WorkloadProfile::tpcc());
    let tpcc_mlp = run(&tpcc, &cfg()).mlp();
    let mut sum = 0.0;
    for bench in Benchmark::scale_out_suite() {
        let mlp = run(&bench, &cfg()).mlp();
        assert!((1.0..3.2).contains(&mlp), "{}: MLP {mlp:.2} out of band", bench.name());
        sum += mlp;
    }
    let mean = sum / 6.0;
    assert!(
        mean > tpcc_mlp * 0.9,
        "scale-out MLP ({mean:.2}) should not trail TPC-C ({tpcc_mlp:.2}) materially"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn smt_recovers_substantial_throughput_on_scale_out() {
    for bench in [Benchmark::data_serving(), Benchmark::web_search()] {
        let base = run(&bench, &cfg());
        let smt = run(&bench, &RunConfig { smt: true, ..cfg() });
        let uplift = smt.app_ipc() / base.app_ipc() - 1.0;
        assert!(
            uplift > 0.2,
            "{}: SMT uplift {:.0}% below the paper's band",
            bench.name(),
            uplift * 100.0
        );
        assert!(
            smt.mlp() > base.mlp() * 1.3,
            "{}: SMT must nearly double MLP ({:.2} -> {:.2})",
            bench.name(),
            base.mlp(),
            smt.mlp()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn desktop_cpu_benchmarks_exceed_scale_out_ipc_range() {
    let spec = Benchmark::from_profile(Category::Traditional, WorkloadProfile::specint_cpu());
    let ipc = run(&spec, &cfg()).app_ipc();
    assert!(ipc > 1.5, "SPECint (cpu) IPC {ipc:.2} should approach the wide core's capability");
}
