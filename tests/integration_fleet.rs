//! The `fleet_slo` experiment end to end: harness-measured service times
//! driving the cs-fleet cluster simulator. The sweep must be byte-identical
//! across `jobs` values and reruns, the seeded fault levels must actually
//! bite (crashes, retries, shedding all non-zero), and with `CS_PARANOID`
//! set every point passes the fleet conservation audit — which this test
//! double-checks by re-deriving `arrived = completed + shed + failed` from
//! the published rows.

use cloudsuite::experiments::fleet_slo::{
    collect_subset, report, FaultLevel, REQUESTS_PER_POINT,
};
use cloudsuite::harness::RunConfig;
use cloudsuite::Benchmark;

fn cfg(jobs: usize) -> RunConfig {
    RunConfig {
        warmup_instr: 60_000,
        measure_instr: 120_000,
        max_cycles: 8_000_000,
        jobs,
        ..RunConfig::default()
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn fleet_slo_is_byte_identical_across_jobs_and_reruns() {
    let benches = [Benchmark::web_search()];
    let serial = collect_subset(&cfg(1), &benches).expect("jobs=1 sweep");
    let threaded = collect_subset(&cfg(2), &benches).expect("jobs=2 sweep");
    let rerun = collect_subset(&cfg(1), &benches).expect("rerun sweep");
    assert_eq!(serial, threaded, "jobs=2 must not change a single value");
    assert_eq!(serial, rerun, "a rerun must reproduce the sweep exactly");
    assert_eq!(
        report(&serial).to_json(),
        report(&threaded).to_json(),
        "the emitted report must be byte-identical across jobs values"
    );
    // One sweep = |machine counts| x |fault levels| points per workload.
    assert_eq!(serial.profiles.len(), benches.len());
    assert_eq!(serial.rows.len(), benches.len() * 3 * 3);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn fleet_slo_faults_bite_and_requests_are_conserved_under_paranoid() {
    // paranoid_enabled() reads the environment on every call, so setting
    // it here covers exactly this sweep; the audit runs inside run_point
    // and any conservation imbalance fails collect_subset with a typed
    // fleet audit error.
    std::env::set_var("CS_PARANOID", "1");
    let data = collect_subset(&cfg(2), &[Benchmark::data_serving()]).expect("audited sweep");

    for row in &data.rows {
        assert_eq!(
            row.arrived, REQUESTS_PER_POINT,
            "open loop: every configured request arrives"
        );
        assert_eq!(
            row.arrived,
            row.completed + row.shed + row.failed,
            "{} m={} {}: request conservation must hold in the published row",
            row.workload,
            row.machines,
            row.faults.label()
        );
        if row.faults == FaultLevel::None {
            assert_eq!(row.machine_failures, 0, "fault-free rows must not crash");
            assert_eq!(row.straggler_episodes, 0, "fault-free rows must not straggle");
        }
    }

    let heavy_crashes: u64 = data
        .rows
        .iter()
        .filter(|r| r.faults == FaultLevel::Heavy)
        .map(|r| r.machine_failures)
        .sum();
    let retries: u64 = data.rows.iter().map(|r| r.retries).sum();
    let shed: u64 = data.rows.iter().map(|r| r.shed).sum();
    assert!(heavy_crashes > 0, "heavy fault level must inject machine crashes");
    assert!(retries > 0, "injected faults must provoke retries");
    assert!(shed > 0, "burst overload must shed load somewhere in the sweep");
}
