//! The `fleet_slo` and `fleet_resilience` experiments end to end:
//! harness-measured service times driving the cs-fleet cluster simulator.
//! The sweeps must be byte-identical across `jobs` values and reruns, the
//! seeded fault levels must actually bite (crashes, retries, shedding all
//! non-zero), and with `CS_PARANOID` set every point passes the fleet
//! conservation audit — which these tests double-check by re-deriving
//! `arrived = completed + shed + failed` from the published rows, and by
//! pinning the mitigation claims (the breaker strictly cuts wasted work
//! on a gray fleet; the full stack recovers the metastable scenario).

use cloudsuite::experiments::fleet_resilience::{self, Mitigation, Scenario};
use cloudsuite::experiments::fleet_slo::{
    collect_subset, report, FaultLevel, REQUESTS_PER_POINT,
};
use cloudsuite::harness::RunConfig;
use cloudsuite::Benchmark;
use cs_fleet::ServiceProfile;

fn cfg(jobs: usize) -> RunConfig {
    RunConfig {
        warmup_instr: 60_000,
        measure_instr: 120_000,
        max_cycles: 8_000_000,
        jobs,
        ..RunConfig::default()
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn fleet_slo_is_byte_identical_across_jobs_and_reruns() {
    let benches = [Benchmark::web_search()];
    let serial = collect_subset(&cfg(1), &benches).expect("jobs=1 sweep");
    let threaded = collect_subset(&cfg(2), &benches).expect("jobs=2 sweep");
    let rerun = collect_subset(&cfg(1), &benches).expect("rerun sweep");
    assert_eq!(serial, threaded, "jobs=2 must not change a single value");
    assert_eq!(serial, rerun, "a rerun must reproduce the sweep exactly");
    assert_eq!(
        report(&serial).to_json(),
        report(&threaded).to_json(),
        "the emitted report must be byte-identical across jobs values"
    );
    // One sweep = |machine counts| x |fault levels| points per workload.
    assert_eq!(serial.profiles.len(), benches.len());
    assert_eq!(serial.rows.len(), benches.len() * 3 * 3);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn fleet_slo_faults_bite_and_requests_are_conserved_under_paranoid() {
    // paranoid_enabled() reads the environment on every call, so setting
    // it here covers exactly this sweep; the audit runs inside run_point
    // and any conservation imbalance fails collect_subset with a typed
    // fleet audit error.
    std::env::set_var("CS_PARANOID", "1");
    let data = collect_subset(&cfg(2), &[Benchmark::data_serving()]).expect("audited sweep");

    for row in &data.rows {
        assert_eq!(
            row.arrived, REQUESTS_PER_POINT,
            "open loop: every configured request arrives"
        );
        assert_eq!(
            row.arrived,
            row.completed + row.shed + row.failed,
            "{} m={} {}: request conservation must hold in the published row",
            row.workload,
            row.machines,
            row.faults.label()
        );
        if row.faults == FaultLevel::None {
            assert_eq!(row.machine_failures, 0, "fault-free rows must not crash");
            assert_eq!(row.straggler_episodes, 0, "fault-free rows must not straggle");
        }
    }

    let heavy_crashes: u64 = data
        .rows
        .iter()
        .filter(|r| r.faults == FaultLevel::Heavy)
        .map(|r| r.machine_failures)
        .sum();
    let retries: u64 = data.rows.iter().map(|r| r.retries).sum();
    let shed: u64 = data.rows.iter().map(|r| r.shed).sum();
    assert!(heavy_crashes > 0, "heavy fault level must inject machine crashes");
    assert!(retries > 0, "injected faults must provoke retries");
    assert!(shed > 0, "burst overload must shed load somewhere in the sweep");
}

fn gray_profile(mean_service_ns: u64) -> ServiceProfile {
    ServiceProfile {
        workload: "integration".into(),
        mean_service_ns,
        smt_inflation: 1.4,
        colocation_inflation: 1.15,
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn fleet_resilience_is_byte_identical_across_jobs_and_reruns() {
    std::env::set_var("CS_PARANOID", "1");
    let benches = [Benchmark::web_search()];
    let serial = fleet_resilience::collect_subset(&cfg(1), &benches).expect("jobs=1 sweep");
    let threaded = fleet_resilience::collect_subset(&cfg(2), &benches).expect("jobs=2 sweep");
    let rerun = fleet_resilience::collect_subset(&cfg(1), &benches).expect("rerun sweep");
    assert_eq!(serial, threaded, "jobs=2 must not change a single value");
    assert_eq!(serial, rerun, "a rerun must reproduce the sweep exactly");
    assert_eq!(
        fleet_resilience::report(&serial).to_json(),
        fleet_resilience::report(&threaded).to_json(),
        "the emitted report must be byte-identical across jobs values"
    );
    // One sweep = |scenarios| x |mitigations| points per workload, and the
    // feedback-driven loads (retries, breaker trips, AIMD moves) must not
    // cost the gray scenario its defining property: zero ejections.
    assert_eq!(serial.rows.len(), benches.len() * 4 * 4);
    for row in serial.rows.iter().filter(|r| r.scenario == Scenario::GrayFleet) {
        assert_eq!(
            row.ejections, 0,
            "gray failures must never trip the health ejector ({})",
            row.mitigation.label()
        );
    }
}

/// The breaker's core claim, pinned as an integration property: on a gray
/// fleet — machines that pass every probe while serving slowly and
/// dropping requests — per-machine circuit breakers strictly reduce
/// wasted server work, at every probed service time and seed.
#[test]
fn breaker_strictly_reduces_wasted_work_on_a_gray_fleet() {
    let mut opens_total = 0;
    for mean in [20_000u64, 200_000] {
        let profile = gray_profile(mean);
        for seed in [1u64, 42, 1234, 77_777] {
            let none = fleet_resilience::run_point(
                &profile,
                Scenario::GrayFleet,
                Mitigation::Unmitigated,
                seed,
            )
            .expect("unmitigated point");
            let breaker = fleet_resilience::run_point(
                &profile,
                Scenario::GrayFleet,
                Mitigation::Breaker,
                seed,
            )
            .expect("breaker point");
            assert!(none.gray_episodes > 0, "the gray plan must actually bite");
            assert_eq!(none.ejections, 0, "gray machines evade the ejector");
            assert_eq!(none.breaker_opens, 0, "unmitigated rows carry no breaker");
            assert!(
                breaker.wasted_completions < none.wasted_completions,
                "mean={mean} seed={seed}: breaker must strictly cut wasted work, \
                 got {} vs {}",
                breaker.wasted_completions,
                none.wasted_completions
            );
            opens_total += breaker.breaker_opens;
        }
    }
    assert!(opens_total > 0, "the reduction must come from real breaker trips");
}

/// The metastable claim end to end: after the one-shot trigger, the
/// unmitigated fleet stays degraded (the retry storm outlives its cause)
/// while the full mitigation stack restores post-trigger SLO attainment.
#[test]
fn metastable_storm_outlives_trigger_unless_mitigated() {
    let profile = gray_profile(50_000);
    for seed in [21u64, 99, 1234] {
        let none =
            fleet_resilience::run_point(&profile, Scenario::Metastable, Mitigation::Unmitigated, seed)
                .expect("unmitigated point");
        let full =
            fleet_resilience::run_point(&profile, Scenario::Metastable, Mitigation::Full, seed)
                .expect("full-stack point");
        assert!(
            none.late_slo_attainment < 0.8,
            "seed {seed}: unmitigated recovery-era SLO should stay degraded, got {}",
            none.late_slo_attainment
        );
        assert!(
            full.late_slo_attainment > none.late_slo_attainment + 0.1,
            "seed {seed}: the full stack must clearly improve recovery, {} vs {}",
            full.late_slo_attainment,
            none.late_slo_attainment
        );
        assert!(
            full.retries < none.retries / 4,
            "seed {seed}: the budget must collapse the retry storm, {} vs {}",
            full.retries,
            none.retries
        );
    }
}
