//! Determinism: the simulator must be a pure function of (workload, seed,
//! configuration). Same seed ⇒ bit-identical counters; different seed ⇒
//! different execution.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::Benchmark;
use cs_perf::CounterSet;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup_instr: 120_000,
        measure_instr: 240_000,
        seed,
        ..RunConfig::default()
    }
}

fn fingerprint(r: &RunResult) -> CounterSet {
    let mut c = CounterSet::new();
    c.set("cycles", r.cycles);
    for (i, core) in r.cores.iter().enumerate() {
        c.merge(&core.to_counters(&format!("core{i}")));
    }
    for (i, mem) in r.mem.iter().enumerate() {
        c.set(format!("mem{i}.l1d_acc"), mem.l1d.total_accesses());
        c.set(format!("mem{i}.l1d_hit"), mem.l1d.total_hits());
        c.set(format!("mem{i}.llc_acc"), mem.llc.total_accesses());
        c.set(format!("mem{i}.rw_user"), mem.rw_shared[0]);
        c.set(format!("mem{i}.dram_bytes"), mem.dram_bytes_total());
    }
    c.set("dram.bytes", r.dram.bytes);
    c
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn same_seed_gives_bit_identical_counters() {
    for bench in [Benchmark::data_serving(), Benchmark::sat_solver(), Benchmark::mcf()] {
        let a = fingerprint(&run(&bench, &cfg(42)));
        let b = fingerprint(&run(&bench, &cfg(42)));
        assert_eq!(a, b, "{} is not deterministic", bench.name());
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn different_seeds_give_different_executions() {
    let bench = Benchmark::web_search();
    let a = fingerprint(&run(&bench, &cfg(1)));
    let b = fingerprint(&run(&bench, &cfg(2)));
    assert_ne!(a, b, "seed must influence the execution");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn configuration_changes_change_the_execution() {
    let bench = Benchmark::web_search();
    let base = fingerprint(&run(&bench, &cfg(7)));
    let smt = fingerprint(&run(&bench, &RunConfig { smt: true, ..cfg(7) }));
    assert_ne!(base, smt);
}
