//! The interference-matrix contract: the N×N co-location matrix is a pure
//! function of its configuration — byte-identical across `jobs` values and
//! across a kill+resume cycle — and the way-partition mitigation actually
//! buys back measurable IPC loss on the CI smoke sub-matrix.

use cloudsuite::checkpoint::{with_checkpointing, CheckpointCtl};
use cloudsuite::experiments::interference_matrix::collect;
use cloudsuite::harness::RunConfig;
use cloudsuite::HarnessError;

/// The reduced two-workload matrix the byte-identity legs run: small LLC
/// so the snapshots carry eviction-heavy masked fill state, not just
/// quiescent caches.
fn reduced() -> RunConfig {
    RunConfig {
        warmup_instr: 40_000,
        measure_instr: 80_000,
        workers: 2,
        llc_bytes: Some(1 << 20),
        matrix_workloads: Some(vec!["web_search".into(), "polluter".into()]),
        ..RunConfig::default()
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn matrix_is_byte_identical_across_jobs_and_resume() {
    let cfg = reduced();
    let baseline = collect(&cfg).expect("jobs=1 matrix");
    let fanned = collect(&RunConfig { jobs: 2, ..cfg.clone() }).expect("jobs=2 matrix");
    assert_eq!(baseline, fanned, "matrix must not depend on the jobs value");

    let dir = std::env::temp_dir().join(format!("cs-matrix-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut interrupts = 0;
    let mut k = 60_000u64;
    let resumed = loop {
        let mut ctl = CheckpointCtl::new(dir.clone(), "integration-test");
        ctl.cadence_cycles = 50_000;
        ctl.interrupt_after = Some(k);
        let attempt = with_checkpointing(ctl, || collect(&RunConfig { jobs: 2, ..cfg.clone() }));
        match attempt {
            Err(HarnessError::Interrupted) => {
                interrupts += 1;
                k += 300_000;
            }
            Ok(r) => break r,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
        assert!(interrupts < 64, "matrix never completed");
    };
    assert!(interrupts >= 1, "test must interrupt at least once");
    assert_eq!(
        baseline, resumed,
        "a killed-and-resumed matrix must reproduce the uninterrupted rows exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The Rust twin of CI's `interference-smoke` python assertion, on the
/// same 3×3 sub-matrix and shrunken LLC: at least one pairing must lose
/// measurable IPC unmanaged, and the full 8/8 way partition must reduce
/// that loss.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn way_partition_buys_back_loss_on_the_smoke_matrix() {
    let cfg = RunConfig {
        warmup_instr: 40_000,
        measure_instr: 80_000,
        llc_bytes: Some(1 << 20),
        jobs: 2,
        matrix_workloads: Some(vec![
            "web_search".into(),
            "polluter".into(),
            "cpu_bound".into(),
        ]),
        ..RunConfig::default()
    };
    let rows = collect(&cfg).expect("3x3 smoke matrix");
    // 6 unordered pairings (incl. self-pairs) x 3 mitigations x 2 tenants.
    assert_eq!(rows.len(), 36);
    let helped: Vec<_> = rows
        .iter()
        .filter(|b| b.mitigation == "none" && b.ipc_loss_pct > 1.0)
        .filter(|b| {
            rows.iter().any(|p| {
                p.mitigation == "way_partition"
                    && p.pair == b.pair
                    && p.tenant == b.tenant
                    && p.ipc_loss_pct < b.ipc_loss_pct
            })
        })
        .collect();
    assert!(
        !helped.is_empty(),
        "no pairing showed measurable IPC loss that the way partition reduced"
    );
}
