//! Cross-crate integration test of the Figure 6 and Figure 7 claims:
//! scale-out read-write sharing is rare and OS-dominated, OLTP sharing is
//! not; off-chip bandwidth is over-provisioned for every scale-out
//! workload, with Media Streaming the heaviest consumer.

use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::{Benchmark, Category};
use cs_trace::WorkloadProfile;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("test config is valid")
}

fn cfg() -> RunConfig {
    RunConfig {
        split_sockets: true,
        warmup_instr: 800_000,
        measure_instr: 1_600_000,
        ..RunConfig::default()
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn scale_out_sharing_is_rare() {
    for bench in Benchmark::scale_out_suite() {
        let (app, os) = run(&bench, &cfg()).rw_shared_pct();
        assert!(
            app + os < 6.0,
            "{}: sharing {:.2}% exceeds the scale-out band",
            bench.name(),
            app + os
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn oltp_sharing_is_application_dominated_and_high() {
    for profile in [WorkloadProfile::tpcc(), WorkloadProfile::tpce(), WorkloadProfile::web_backend()]
    {
        let bench = Benchmark::from_profile(Category::Traditional, profile);
        let (app, os) = run(&bench, &cfg()).rw_shared_pct();
        assert!(
            app + os > 3.0,
            "{}: OLTP sharing {:.2}% too low",
            bench.name(),
            app + os
        );
        assert!(app > os, "{}: OLTP sharing must be application-level", bench.name());
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn sat_solver_shares_essentially_nothing() {
    let (app, os) = run(&Benchmark::sat_solver(), &cfg()).rw_shared_pct();
    assert!(app + os < 0.5, "SAT sharing {:.2}% should be negligible", app + os);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn bandwidth_is_overprovisioned_for_scale_out() {
    let plain = RunConfig { split_sockets: false, ..cfg() };
    let mut media_total = 0.0;
    let mut max_other: (String, f64) = (String::new(), 0.0);
    for bench in Benchmark::scale_out_suite() {
        let (app, os) = run(&bench, &plain).bandwidth_pct();
        let total = app + os;
        assert!(
            total < 35.0,
            "{}: bandwidth {:.1}% exceeds the over-provisioning claim",
            bench.name(),
            total
        );
        if bench.name() == "Media Streaming" {
            media_total = total;
        } else if total > max_other.1 {
            max_other = (bench.name().to_owned(), total);
        }
    }
    assert!(
        media_total > max_other.1 * 0.9,
        "Media Streaming ({media_total:.1}%) should be among the heaviest consumers (max other: {} {:.1}%)",
        max_other.0,
        max_other.1
    );
}
