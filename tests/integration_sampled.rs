//! SMARTS-style sampled simulation, end to end: sampled results must be
//! byte-identical at any `jobs` value, with cycle-skipping on or off, and
//! across a mid-window kill + resume — the fast functional path and the
//! sampling schedule may change wall-clock only, never a counter.

use cloudsuite::checkpoint::{unit_file, unit_key, with_checkpointing, CheckpointCtl};
use cloudsuite::experiments::sampled;
use cloudsuite::harness::{run, RunConfig, RunResult};
use cloudsuite::{Benchmark, HarnessError};
use std::path::{Path, PathBuf};

/// Small sampled schedule: four 30k-instruction windows separated by
/// 120k-instruction functional fast-forwards, 20k detailed re-warm each.
fn sampled_cfg() -> RunConfig {
    RunConfig {
        warmup_instr: 60_000,
        measure_instr: 120_000,
        sample_windows: 4,
        sample_period: 120_000,
        sample_warmup_instr: 20_000,
        max_cycles: 8_000_000,
        ..RunConfig::default()
    }
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs-itest-sampled-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The phase discriminant of the on-disk snapshot (3 = the sampling
/// phase; the envelope header is 36 bytes).
fn snapshot_phase(dir: &Path, scope: &str, bench: &Benchmark, cfg: &RunConfig) -> Option<u8> {
    let key = unit_key(scope, bench.name(), cfg);
    let bytes = std::fs::read(dir.join(unit_file(key))).ok()?;
    bytes.get(36).copied()
}

/// Kills the run each time its chip reaches the next interrupt cycle,
/// resumes from the snapshot, and keeps going until it completes.
fn run_resumable(
    bench: &Benchmark,
    cfg: &RunConfig,
    dir: &Path,
    first_k: u64,
    step: u64,
) -> (RunResult, u32, Vec<u8>) {
    let mut interrupts = 0u32;
    let mut phases = Vec::new();
    let mut k = first_k;
    let result = loop {
        let mut ctl = CheckpointCtl::new(dir.to_path_buf(), "itest");
        ctl.cadence_cycles = 40_000;
        ctl.interrupt_after = Some(k);
        match with_checkpointing(ctl, || run(bench, cfg)) {
            Err(HarnessError::Interrupted) => {
                interrupts += 1;
                if let Some(tag) = snapshot_phase(dir, "itest", bench, cfg) {
                    phases.push(tag);
                }
                k += step;
            }
            Ok(r) => break r,
            Err(other) => panic!("{}: unexpected error: {other:?}", bench.name()),
        }
        assert!(interrupts < 256, "{}: run never completed", bench.name());
    };
    (result, interrupts, phases)
}

fn rows_as_json(rows: &[sampled::SampledRow]) -> String {
    serde_json::to_string(rows).expect("rows serialize")
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn sampled_rows_are_byte_identical_across_jobs_and_skip() {
    let base = sampled_cfg();
    let reference = sampled::collect(&base).expect("jobs=1 collect");
    assert_eq!(reference.len(), Benchmark::all().len());
    for r in &reference {
        assert_eq!(r.windows, 4, "{}: all four windows must be measured", r.workload);
    }

    let jobs2 = sampled::collect(&RunConfig { jobs: 2, ..base.clone() }).expect("jobs=2 collect");
    assert_eq!(
        rows_as_json(&reference),
        rows_as_json(&jobs2),
        "sampled rows must not depend on the jobs value"
    );

    let noskip =
        sampled::collect(&RunConfig { cycle_skip: false, ..base }).expect("no-skip collect");
    assert_eq!(
        rows_as_json(&reference),
        rows_as_json(&noskip),
        "sampled rows must not depend on the cycle-skipping fast path"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn window_par_rows_are_byte_identical_across_jobs() {
    let base = RunConfig { window_par: true, ..sampled_cfg() };
    let reference = sampled::collect(&base).expect("window-par jobs=1 collect");
    assert_eq!(reference.len(), Benchmark::all().len());
    for r in &reference {
        assert_eq!(r.windows, 4, "{}: all four windows must be measured", r.workload);
    }
    for jobs in [2usize, 4] {
        let rows = sampled::collect(&RunConfig { jobs, ..base.clone() })
            .unwrap_or_else(|e| panic!("window-par jobs={jobs} collect: {e:?}"));
        assert_eq!(
            rows_as_json(&reference),
            rows_as_json(&rows),
            "window-parallel sampled rows must not depend on jobs (jobs={jobs})"
        );
    }
}

/// `(next_k, forward_active)` of an on-disk window-parallel snapshot
/// (phase tag 4). The phase codec is fixed-offset up front: tag at byte
/// 36, `next_k` as a little-endian u64 at 37..45, the forward-span flag
/// at 45.
fn window_par_probe(dir: &Path, bench: &Benchmark, cfg: &RunConfig) -> Option<(u64, bool)> {
    let key = unit_key("itest", bench.name(), cfg);
    let bytes = std::fs::read(dir.join(unit_file(key))).ok()?;
    if bytes.get(36).copied() != Some(4) {
        return None;
    }
    let next_k = u64::from_le_bytes(bytes.get(37..45)?.try_into().ok()?);
    Some((next_k, bytes.get(45).copied() == Some(1)))
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn window_par_kill_and_resume_with_windows_in_flight() {
    let bench = Benchmark::data_serving();
    let cfg = RunConfig { window_par: true, jobs: 2, ..sampled_cfg() };
    let baseline = run(&bench, &cfg).expect("uninterrupted window-par run");
    assert_eq!(baseline.samples.len(), 4, "sampling must engage");

    // Interrupt the warming strand on a tight ladder and probe each
    // snapshot. At an in-flight budget of two, folds only happen when a
    // dispatch finds the budget full, so a snapshot whose strand is
    // mid-fast-forward past boundary 0 (`next_k >= 1` with the forward
    // span live) necessarily carries >= 1 dispatched-but-unfolded window.
    let dir = ckpt_dir("windowpar");
    let mut probes = Vec::new();
    let mut interrupts = 0u32;
    let mut k = 50_000u64;
    let resumed = loop {
        let mut ctl = CheckpointCtl::new(dir.clone(), "itest");
        ctl.cadence_cycles = 30_000;
        ctl.interrupt_after = Some(k);
        match with_checkpointing(ctl, || run(&bench, &cfg)) {
            Err(HarnessError::Interrupted) => {
                interrupts += 1;
                if let Some(p) = window_par_probe(&dir, &bench, &cfg) {
                    probes.push(p);
                }
                k += 40_000;
            }
            Ok(r) => break r,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
        assert!(interrupts < 256, "window-par run never completed");
    };
    assert!(interrupts >= 2, "want >=2 interrupts, got {interrupts}");
    assert!(
        probes.iter().any(|&(next_k, fwd)| next_k >= 1 && fwd),
        "no interrupt landed with a window in flight (probes: {probes:?})"
    );
    assert_eq!(
        format!("{baseline:?}"),
        format!("{resumed:?}"),
        "a kill + resume with windows in flight must reproduce the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn sampled_kill_and_resume_matches_uninterrupted() {
    let cfg = sampled_cfg();
    for bench in [Benchmark::data_serving(), Benchmark::web_search()] {
        let baseline = run(&bench, &cfg).expect("uninterrupted sampled run");
        assert_eq!(baseline.samples.len(), 4, "{}: sampling must engage", bench.name());

        // A tight ladder: the functional fast-forwards shrink the run's
        // cycle count, so interrupts must land early and often to hit the
        // sampling phase more than once.
        let dir = ckpt_dir(bench.name());
        let (resumed, interrupts, phases) = run_resumable(&bench, &cfg, &dir, 6_000, 5_000);
        assert!(interrupts >= 2, "{}: want >=2 interrupts, got {interrupts}", bench.name());
        assert!(
            phases.contains(&3),
            "{}: no interrupt landed inside the sampling phase (phases: {phases:?})",
            bench.name()
        );
        assert_eq!(
            format!("{baseline:?}"),
            format!("{resumed:?}"),
            "{}: a mid-window kill + resume must reproduce the uninterrupted sampled run",
            bench.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
