//! A single serving machine: hardware contexts plus a bounded FIFO queue.
//!
//! A machine is deliberately dumb — all policy (routing, shedding,
//! ejection, retries) lives in the balancer and the simulator. The machine
//! only tracks which attempts occupy its contexts, which are queued, and
//! its health state (up, down for repair, or straggling).

/// Identifier of a dispatched attempt (index into the simulator's attempt
/// table).
pub type AttemptId = u32;

/// One serving machine.
#[derive(Debug)]
pub struct Machine {
    /// Number of hardware contexts that can serve concurrently.
    pub contexts: usize,
    /// Attempts currently in service (at most `contexts`).
    pub in_service: Vec<AttemptId>,
    /// Attempts waiting for a context, FIFO.
    pub queue: std::collections::VecDeque<AttemptId>,
    /// Whether the machine is up (false while crashed/repairing).
    pub up: bool,
    /// Whether a straggler episode is active (service times inflated).
    pub slow: bool,
    /// Whether a gray-failure episode is active: the machine stays `up`
    /// (probes pass, connects succeed) but serves slowly and may silently
    /// drop requests.
    pub gray: bool,
}

impl Machine {
    /// A fresh, healthy machine with the given context count.
    pub fn new(contexts: usize) -> Self {
        Self {
            contexts,
            in_service: Vec::with_capacity(contexts),
            queue: std::collections::VecDeque::new(),
            up: true,
            slow: false,
            gray: false,
        }
    }

    /// Total attempts on the machine (serving + queued); the balancer's
    /// load signal.
    pub fn load(&self) -> usize {
        self.in_service.len() + self.queue.len()
    }

    /// Whether a context is free right now.
    pub fn has_free_context(&self) -> bool {
        self.in_service.len() < self.contexts
    }

    /// Removes an attempt from the wait queue (timeout or hedge cancel).
    /// Returns whether it was present.
    pub fn unqueue(&mut self, a: AttemptId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&x| x != a);
        self.queue.len() != before
    }

    /// Removes an attempt from the in-service set (completion or crash).
    /// Returns whether it was present.
    pub fn release(&mut self, a: AttemptId) -> bool {
        match self.in_service.iter().position(|&x| x == a) {
            Some(i) => {
                self.in_service.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Takes every attempt off the machine (crash): returns the drained
    /// in-service and queued attempts.
    pub fn drain(&mut self) -> (Vec<AttemptId>, Vec<AttemptId>) {
        let serving = std::mem::take(&mut self.in_service);
        let queued: Vec<AttemptId> = self.queue.drain(..).collect();
        (serving, queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_counts_serving_and_queued() {
        let mut m = Machine::new(2);
        m.in_service.push(1);
        m.queue.push_back(2);
        m.queue.push_back(3);
        assert_eq!(m.load(), 3);
        assert!(m.has_free_context());
        m.in_service.push(4);
        assert!(!m.has_free_context());
    }

    #[test]
    fn unqueue_and_release_report_presence() {
        let mut m = Machine::new(1);
        m.in_service.push(7);
        m.queue.push_back(8);
        assert!(m.release(7));
        assert!(!m.release(7));
        assert!(m.unqueue(8));
        assert!(!m.unqueue(8));
        assert_eq!(m.load(), 0);
    }

    #[test]
    fn drain_empties_the_machine() {
        let mut m = Machine::new(2);
        m.in_service.extend([1, 2]);
        m.queue.extend([3, 4, 5]);
        let (serving, queued) = m.drain();
        assert_eq!(serving, vec![1, 2]);
        assert_eq!(queued, vec![3, 4, 5]);
        assert_eq!(m.load(), 0);
    }
}
