//! Open-loop request arrival processes.
//!
//! The paper's §2 observation — scale-out requests are independent — is
//! what licenses an open-loop model: arrivals do not wait for completions,
//! so overload shows up as queueing delay and shedding rather than as a
//! politely self-throttling client. The base process is Poisson; an
//! optional square-wave [`Burst`] modulation reshapes it into the
//! diurnal/bursty traffic that makes load shedding and hedging earn their
//! keep.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Square-wave modulation of the arrival rate.
///
/// Within each `period_ns` window, the first `on_fraction` of the period
/// multiplies the arrival rate by `amplitude` (>= 1); the remainder runs
/// at the base rate. Phase is anchored at simulated time zero, so the
/// burst pattern is a pure function of the clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Length of one modulation period.
    pub period_ns: u64,
    /// Fraction of the period spent in the high-rate phase, in `(0, 1)`.
    pub on_fraction: f64,
    /// Rate multiplier during the high-rate phase.
    pub amplitude: f64,
}

/// A seeded open-loop arrival process.
#[derive(Debug)]
pub struct ArrivalProcess {
    mean_interarrival_ns: f64,
    burst: Option<Burst>,
    rng: SmallRng,
}

impl ArrivalProcess {
    /// Builds a process with the given base mean inter-arrival gap.
    pub fn new(mean_interarrival_ns: u64, burst: Option<Burst>, rng: SmallRng) -> Self {
        Self { mean_interarrival_ns: mean_interarrival_ns.max(1) as f64, burst, rng }
    }

    /// The rate multiplier in effect at time `now`.
    fn rate_factor(&self, now: u64) -> f64 {
        match self.burst {
            Some(b) if b.period_ns > 0 && b.amplitude > 1.0 => {
                let phase = (now % b.period_ns) as f64 / b.period_ns as f64;
                if phase < b.on_fraction {
                    b.amplitude
                } else {
                    1.0
                }
            }
            _ => 1.0,
        }
    }

    /// Draws the gap from `now` to the next arrival (>= 1 ns).
    pub fn next_gap(&mut self, now: u64) -> u64 {
        let mean = self.mean_interarrival_ns / self.rate_factor(now);
        let u: f64 = self.rng.gen::<f64>().min(1.0 - f64::EPSILON);
        let gap = mean * -(1.0 - u).ln();
        (gap as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::rng::stream_rng;

    #[test]
    fn gaps_are_deterministic() {
        let mut a = ArrivalProcess::new(1_000, None, stream_rng(4, 1));
        let mut b = ArrivalProcess::new(1_000, None, stream_rng(4, 1));
        let xs: Vec<u64> = (0..128).map(|i| a.next_gap(i * 500)).collect();
        let ys: Vec<u64> = (0..128).map(|i| b.next_gap(i * 500)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn poisson_mean_is_roughly_respected() {
        let mut p = ArrivalProcess::new(2_000, None, stream_rng(9, 0));
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| p.next_gap(0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((1_800.0..2_200.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn burst_phase_shrinks_gaps() {
        let burst = Burst { period_ns: 1_000_000, on_fraction: 0.5, amplitude: 4.0 };
        let mut p = ArrivalProcess::new(10_000, Some(burst), stream_rng(2, 0));
        let n = 20_000u64;
        // Sample entirely inside the on-phase, then entirely in the off-phase.
        let on: u64 = (0..n).map(|_| p.next_gap(100)).sum();
        let off: u64 = (0..n).map(|_| p.next_gap(600_000)).sum();
        let ratio = off as f64 / on as f64;
        assert!((3.0..5.0).contains(&ratio), "amplitude 4 drew ratio {ratio}");
    }

    #[test]
    fn gap_is_at_least_one_ns() {
        let burst = Burst { period_ns: 100, on_fraction: 0.9, amplitude: 1e9 };
        let mut p = ArrivalProcess::new(1, Some(burst), stream_rng(8, 0));
        for _ in 0..1_000 {
            assert!(p.next_gap(0) >= 1);
        }
    }
}
