//! SLO statistics and the fleet conservation auditor.
//!
//! Every request ends in exactly one of three states — completed, shed, or
//! failed — and every dispatched attempt in exactly one of five — won,
//! timed out, connect-failed, crash-failed, or cancelled. [`FleetStats`]
//! counts all of them, plus the fault/policy events that caused them, and
//! [`FleetStats::audit`] re-derives the books. Under `CS_PARANOID` the
//! experiment layer runs the audit after every simulation and fails the
//! run loudly on any imbalance.

use crate::policy::HedgePolicy;
use serde::{Deserialize, Serialize};

/// Counters and latencies from one fleet simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Requests that arrived (open loop: fixed by configuration).
    pub arrived: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests dropped at admission (overload or empty rotation).
    pub shed: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,

    /// Attempts dispatched to machines (initial + retries + hedges).
    pub attempts: u64,
    /// Initial attempts dispatched.
    pub initial_attempts: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Hedge attempts dispatched.
    pub hedges: u64,

    /// Attempts that won their request.
    pub won_attempts: u64,
    /// Attempts abandoned by the client after the per-request timeout.
    pub timeouts: u64,
    /// Attempts that failed to connect (machine down, not yet ejected).
    pub connect_failures: u64,
    /// Attempts killed by a machine crash while queued or in service.
    pub crash_failures: u64,
    /// Sibling attempts cancelled when another attempt won.
    pub cancelled: u64,
    /// Server-side completions of attempts the client had already
    /// abandoned — wasted work, the cost of timeouts under overload.
    pub wasted_completions: u64,

    /// Machine crashes injected.
    pub machine_failures: u64,
    /// Machines repaired and brought back up.
    pub recoveries: u64,
    /// Straggler episodes started.
    pub straggler_episodes: u64,
    /// Machines ejected from rotation by the balancer.
    pub ejections: u64,
    /// Machines readmitted by health probes.
    pub readmissions: u64,
    /// Health probes performed.
    pub probes: u64,

    /// Simulated time of the last request resolution, in ns.
    pub span_ns: u64,
    /// Completion latencies (arrival to winning completion), sorted, ns.
    pub latencies_ns: Vec<u64>,
}

/// A conservation violation found by [`FleetStats::audit`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetAuditError {
    /// `arrived != completed + shed + failed`.
    RequestConservation {
        /// Requests that arrived.
        arrived: u64,
        /// Requests accounted for by the three terminal states.
        resolved: u64,
    },
    /// `attempts != initial + retries + hedges`.
    AttemptProvenance {
        /// Attempts dispatched.
        attempts: u64,
        /// Sum of the three dispatch classes.
        classified: u64,
    },
    /// `attempts != won + timeouts + connect_failures + crash_failures +
    /// cancelled` (an attempt is unaccounted for or double-counted).
    AttemptConservation {
        /// Attempts dispatched.
        attempts: u64,
        /// Attempts accounted for by the five terminal outcomes.
        resolved: u64,
    },
    /// More retries than observed attempt failures — a retry fired without
    /// a provoking timeout/connect/crash failure.
    RetryProvenance {
        /// Retries dispatched.
        retries: u64,
        /// Observed attempt failures that can provoke a retry.
        failures: u64,
    },
    /// Hedges exceed the policy cap of `max_hedges` per arrived request.
    HedgeCap {
        /// Hedges dispatched.
        hedges: u64,
        /// `arrived * max_hedges`.
        cap: u64,
    },
    /// Completion latencies disagree with the completed count.
    LatencyCount {
        /// Requests completed.
        completed: u64,
        /// Latency samples recorded.
        samples: u64,
    },
}

impl std::fmt::Display for FleetAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RequestConservation { arrived, resolved } => write!(
                f,
                "request conservation violated: arrived {arrived} != completed+shed+failed {resolved}"
            ),
            Self::AttemptProvenance { attempts, classified } => write!(
                f,
                "attempt provenance violated: dispatched {attempts} != initial+retries+hedges {classified}"
            ),
            Self::AttemptConservation { attempts, resolved } => write!(
                f,
                "attempt conservation violated: dispatched {attempts} != terminal outcomes {resolved}"
            ),
            Self::RetryProvenance { retries, failures } => write!(
                f,
                "retry provenance violated: {retries} retries but only {failures} observed attempt failures"
            ),
            Self::HedgeCap { hedges, cap } => {
                write!(f, "hedge cap violated: {hedges} hedges exceed policy cap {cap}")
            }
            Self::LatencyCount { completed, samples } => write!(
                f,
                "latency bookkeeping violated: {completed} completions but {samples} latency samples"
            ),
        }
    }
}

impl std::error::Error for FleetAuditError {}

impl FleetStats {
    /// Nearest-rank percentile of the completion latencies (`q` in
    /// `(0, 1]`), or 0 when nothing completed.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let n = self.latencies_ns.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ns[rank - 1]
    }

    /// Median completion latency, ns.
    pub fn p50_ns(&self) -> u64 {
        self.latency_percentile(0.50)
    }

    /// 99th-percentile completion latency, ns.
    pub fn p99_ns(&self) -> u64 {
        self.latency_percentile(0.99)
    }

    /// 99.9th-percentile completion latency, ns.
    pub fn p999_ns(&self) -> u64 {
        self.latency_percentile(0.999)
    }

    /// Completed requests per second of simulated time.
    pub fn goodput_rps(&self) -> f64 {
        self.completed as f64 / (self.span_ns.max(1) as f64 / 1e9)
    }

    /// Fraction of *arrived* requests that completed within `slo_ns` —
    /// shed and failed requests count against the SLO, which is the whole
    /// point of calling it goodput rather than throughput.
    pub fn slo_attainment(&self, slo_ns: u64) -> f64 {
        if self.arrived == 0 {
            return 0.0;
        }
        let within = self.latencies_ns.partition_point(|&l| l <= slo_ns);
        within as f64 / self.arrived as f64
    }

    /// Re-derives every conservation identity; `hedge` is the policy the
    /// simulation ran with (None = hedging disabled).
    pub fn audit(&self, hedge: Option<HedgePolicy>) -> Result<(), FleetAuditError> {
        let resolved = self.completed + self.shed + self.failed;
        if self.arrived != resolved {
            return Err(FleetAuditError::RequestConservation { arrived: self.arrived, resolved });
        }
        let classified = self.initial_attempts + self.retries + self.hedges;
        if self.attempts != classified {
            return Err(FleetAuditError::AttemptProvenance { attempts: self.attempts, classified });
        }
        let outcomes = self.won_attempts
            + self.timeouts
            + self.connect_failures
            + self.crash_failures
            + self.cancelled;
        if self.attempts != outcomes {
            return Err(FleetAuditError::AttemptConservation {
                attempts: self.attempts,
                resolved: outcomes,
            });
        }
        // Every retry must have been provoked by an observed attempt
        // failure. The converse does not hold: a failure whose request is
        // out of retry budget provokes nothing, so `<=`, not `==`.
        let failures = self.timeouts + self.connect_failures + self.crash_failures;
        if self.retries > failures {
            return Err(FleetAuditError::RetryProvenance { retries: self.retries, failures });
        }
        let cap = self.arrived.saturating_mul(u64::from(hedge.map_or(0, |h| h.max_hedges)));
        if self.hedges > cap {
            return Err(FleetAuditError::HedgeCap { hedges: self.hedges, cap });
        }
        if self.completed != self.latencies_ns.len() as u64 {
            return Err(FleetAuditError::LatencyCount {
                completed: self.completed,
                samples: self.latencies_ns.len() as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced() -> FleetStats {
        FleetStats {
            arrived: 10,
            completed: 7,
            shed: 2,
            failed: 1,
            attempts: 12,
            initial_attempts: 8,
            retries: 3,
            hedges: 1,
            won_attempts: 7,
            timeouts: 3,
            connect_failures: 1,
            crash_failures: 0,
            cancelled: 1,
            latencies_ns: vec![10, 20, 30, 40, 50, 60, 70],
            span_ns: 1_000_000_000,
            ..FleetStats::default()
        }
    }

    #[test]
    fn audit_accepts_balanced_books() {
        let hedge = Some(HedgePolicy { delay_ns: 100, max_hedges: 1 });
        balanced().audit(hedge).expect("balanced stats must pass");
    }

    #[test]
    fn audit_catches_each_imbalance() {
        let hedge = Some(HedgePolicy { delay_ns: 100, max_hedges: 1 });
        let mut s = balanced();
        s.shed = 0;
        assert!(matches!(
            s.audit(hedge),
            Err(FleetAuditError::RequestConservation { .. })
        ));
        let mut s = balanced();
        s.retries = 2;
        assert!(matches!(s.audit(hedge), Err(FleetAuditError::AttemptProvenance { .. })));
        let mut s = balanced();
        s.cancelled = 0;
        assert!(matches!(s.audit(hedge), Err(FleetAuditError::AttemptConservation { .. })));
        let mut s = balanced();
        s.retries = 6;
        s.initial_attempts = 5;
        assert!(matches!(s.audit(hedge), Err(FleetAuditError::RetryProvenance { .. })));
        let s = balanced();
        assert!(matches!(s.audit(None), Err(FleetAuditError::HedgeCap { .. })));
        let mut s = balanced();
        s.latencies_ns.pop();
        assert!(matches!(s.audit(hedge), Err(FleetAuditError::LatencyCount { .. })));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = FleetStats { latencies_ns: (1..=100).collect(), ..FleetStats::default() };
        assert_eq!(s.p50_ns(), 50);
        assert_eq!(s.p99_ns(), 99);
        assert_eq!(s.p999_ns(), 100);
        assert_eq!(s.latency_percentile(1.0), 100);
        assert!(s.p50_ns() <= s.p99_ns() && s.p99_ns() <= s.p999_ns());
    }

    #[test]
    fn empty_latencies_report_zero() {
        let s = FleetStats::default();
        assert_eq!(s.p999_ns(), 0);
        assert_eq!(s.slo_attainment(100), 0.0);
    }

    #[test]
    fn slo_attainment_counts_against_all_arrivals() {
        let s = balanced();
        // 4 of 7 completions are <= 40 ns, over 10 arrivals.
        assert!((s.slo_attainment(40) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn goodput_is_completions_over_span() {
        let s = balanced();
        assert!((s.goodput_rps() - 7.0).abs() < 1e-9);
    }
}
