//! SLO statistics and the fleet conservation auditor.
//!
//! Every request ends in exactly one of three states — completed, shed, or
//! failed — and every dispatched attempt in exactly one of five — won,
//! timed out, connect-failed, crash-failed, or cancelled. [`FleetStats`]
//! counts all of them, plus the fault/policy events that caused them, and
//! [`FleetStats::audit`] re-derives the books against the policy set the
//! simulation ran with ([`AuditPolicies`]): the hedge cap, the retry-budget
//! token conservation (`spent == (retries + hedges) * 1000` exactly, and
//! never more than was granted), the breaker transition ledger (every
//! half-open follows an open, every close a half-open, every open an
//! observed failure), and the recovery-era (`late_*`) books. Under
//! `CS_PARANOID` the experiment layer runs the audit after every simulation
//! and fails the run loudly on any imbalance.

use crate::breaker::BreakerPolicy;
use crate::policy::{HedgePolicy, RetryBudget};
use serde::{Deserialize, Serialize};

/// Counters and latencies from one fleet simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Requests that arrived (open loop: fixed by configuration).
    pub arrived: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests dropped at admission (overload or empty rotation).
    pub shed: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,

    /// Attempts dispatched to machines (initial + retries + hedges).
    pub attempts: u64,
    /// Initial attempts dispatched.
    pub initial_attempts: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Hedge attempts dispatched.
    pub hedges: u64,

    /// Attempts that won their request.
    pub won_attempts: u64,
    /// Attempts abandoned by the client after the per-request timeout.
    pub timeouts: u64,
    /// Attempts that failed to connect (machine down, not yet ejected).
    pub connect_failures: u64,
    /// Attempts killed by a machine crash while queued or in service.
    pub crash_failures: u64,
    /// Sibling attempts cancelled when another attempt won.
    pub cancelled: u64,
    /// Server-side completions of attempts the client had already
    /// abandoned — wasted work, the cost of timeouts under overload.
    pub wasted_completions: u64,

    /// Machine crashes injected (independent or via domain outage).
    pub machine_failures: u64,
    /// Machines repaired and brought back up.
    pub recoveries: u64,
    /// Straggler episodes started.
    pub straggler_episodes: u64,
    /// Gray-failure episodes started (per machine, from per-machine draws
    /// or domain-wide events).
    #[serde(default)]
    pub gray_episodes: u64,
    /// Attempts silently dropped by a gray machine (discovered only by
    /// client timeout or sibling cancellation).
    #[serde(default)]
    pub gray_dropped: u64,
    /// Correlated domain outages injected.
    #[serde(default)]
    pub domain_outages: u64,
    /// Domain-wide gray episodes injected.
    #[serde(default)]
    pub domain_gray_episodes: u64,
    /// Machines ejected from rotation by the balancer.
    pub ejections: u64,
    /// Machines readmitted by health probes.
    pub readmissions: u64,
    /// Health probes performed.
    pub probes: u64,

    /// Retry-budget milli-tokens granted (initial burst + per-arrival
    /// fills, capped at the bucket).
    #[serde(default)]
    pub budget_granted_milli: u64,
    /// Retry-budget milli-tokens spent (1000 per dispatched retry/hedge).
    #[serde(default)]
    pub budget_spent_milli: u64,
    /// Retry/hedge dispatches denied because the budget could not pay.
    #[serde(default)]
    pub budget_denied: u64,
    /// Closed/half-open -> open breaker transitions.
    #[serde(default)]
    pub breaker_opens: u64,
    /// Open -> half-open breaker transitions (probe timer fired).
    #[serde(default)]
    pub breaker_half_opens: u64,
    /// Half-open -> closed breaker transitions (trial succeeded).
    #[serde(default)]
    pub breaker_closes: u64,
    /// Dispatches denied by the AIMD concurrency limit.
    #[serde(default)]
    pub aimd_throttled: u64,

    /// Requests that arrived at or after `trigger_end_ns` (recovery era).
    #[serde(default)]
    pub late_arrived: u64,
    /// Recovery-era requests that completed.
    #[serde(default)]
    pub late_completed: u64,
    /// Recovery-era completion latencies, sorted, ns.
    #[serde(default)]
    pub late_latencies_ns: Vec<u64>,

    /// Simulated time of the last request resolution, in ns.
    pub span_ns: u64,
    /// Completion latencies (arrival to winning completion), sorted, ns.
    pub latencies_ns: Vec<u64>,
}

/// The policy set a simulation ran with, for the audit's policy-dependent
/// books. Built by [`FleetConfig::audit_policies`](crate::FleetConfig::audit_policies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditPolicies {
    /// Hedge policy (None = hedging disabled).
    pub hedge: Option<HedgePolicy>,
    /// Retry budget (None = unbounded retries/hedges).
    pub retry_budget: Option<RetryBudget>,
    /// Circuit breakers (None = disabled).
    pub breaker: Option<BreakerPolicy>,
}

/// A conservation violation found by [`FleetStats::audit`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetAuditError {
    /// `arrived != completed + shed + failed`.
    RequestConservation {
        /// Requests that arrived.
        arrived: u64,
        /// Requests accounted for by the three terminal states.
        resolved: u64,
    },
    /// `attempts != initial + retries + hedges`.
    AttemptProvenance {
        /// Attempts dispatched.
        attempts: u64,
        /// Sum of the three dispatch classes.
        classified: u64,
    },
    /// `attempts != won + timeouts + connect_failures + crash_failures +
    /// cancelled` (an attempt is unaccounted for or double-counted).
    AttemptConservation {
        /// Attempts dispatched.
        attempts: u64,
        /// Attempts accounted for by the five terminal outcomes.
        resolved: u64,
    },
    /// More retries than observed attempt failures — a retry fired without
    /// a provoking timeout/connect/crash failure.
    RetryProvenance {
        /// Retries dispatched.
        retries: u64,
        /// Observed attempt failures that can provoke a retry.
        failures: u64,
    },
    /// Hedges exceed the policy cap of `max_hedges` per arrived request.
    HedgeCap {
        /// Hedges dispatched.
        hedges: u64,
        /// `arrived * max_hedges`.
        cap: u64,
    },
    /// Completion latencies disagree with the completed count.
    LatencyCount {
        /// Requests completed.
        completed: u64,
        /// Latency samples recorded.
        samples: u64,
    },
    /// The retry-budget token books do not balance: tokens spent must
    /// equal `(retries + hedges) * 1000` exactly, never exceed tokens
    /// granted, and the grant can never exceed the burst plus per-arrival
    /// fills. With no budget configured, all budget counters must be zero.
    RetryBudgetBooks {
        /// Milli-tokens granted.
        granted_milli: u64,
        /// Milli-tokens spent.
        spent_milli: u64,
        /// `(retries + hedges) * 1000`.
        extra_attempt_milli: u64,
    },
    /// The breaker transition ledger does not balance: half-opens exceed
    /// opens, closes exceed half-opens, or opens exceed observed failures.
    /// With no breaker configured, all transition counters must be zero.
    BreakerBooks {
        /// Closed/half-open -> open transitions.
        opens: u64,
        /// Open -> half-open transitions.
        half_opens: u64,
        /// Half-open -> closed transitions.
        closes: u64,
    },
    /// The recovery-era books do not balance: late arrivals exceed
    /// arrivals, late completions exceed completions or late arrivals, or
    /// the late latency samples disagree with the late completion count.
    LateBooks {
        /// Recovery-era arrivals.
        late_arrived: u64,
        /// Recovery-era completions.
        late_completed: u64,
        /// Recovery-era latency samples.
        samples: u64,
    },
}

impl std::fmt::Display for FleetAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RequestConservation { arrived, resolved } => write!(
                f,
                "request conservation violated: arrived {arrived} != completed+shed+failed {resolved}"
            ),
            Self::AttemptProvenance { attempts, classified } => write!(
                f,
                "attempt provenance violated: dispatched {attempts} != initial+retries+hedges {classified}"
            ),
            Self::AttemptConservation { attempts, resolved } => write!(
                f,
                "attempt conservation violated: dispatched {attempts} != terminal outcomes {resolved}"
            ),
            Self::RetryProvenance { retries, failures } => write!(
                f,
                "retry provenance violated: {retries} retries but only {failures} observed attempt failures"
            ),
            Self::HedgeCap { hedges, cap } => {
                write!(f, "hedge cap violated: {hedges} hedges exceed policy cap {cap}")
            }
            Self::LatencyCount { completed, samples } => write!(
                f,
                "latency bookkeeping violated: {completed} completions but {samples} latency samples"
            ),
            Self::RetryBudgetBooks { granted_milli, spent_milli, extra_attempt_milli } => write!(
                f,
                "retry-budget books violated: granted {granted_milli}m, spent {spent_milli}m, extra attempts {extra_attempt_milli}m"
            ),
            Self::BreakerBooks { opens, half_opens, closes } => write!(
                f,
                "breaker books violated: opens {opens}, half-opens {half_opens}, closes {closes}"
            ),
            Self::LateBooks { late_arrived, late_completed, samples } => write!(
                f,
                "recovery-era books violated: late arrived {late_arrived}, late completed {late_completed}, samples {samples}"
            ),
        }
    }
}

impl std::error::Error for FleetAuditError {}

impl FleetStats {
    /// Nearest-rank percentile of the completion latencies (`q` in
    /// `(0, 1]`), or 0 when nothing completed.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let n = self.latencies_ns.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ns[rank - 1]
    }

    /// Median completion latency, ns.
    pub fn p50_ns(&self) -> u64 {
        self.latency_percentile(0.50)
    }

    /// 99th-percentile completion latency, ns.
    pub fn p99_ns(&self) -> u64 {
        self.latency_percentile(0.99)
    }

    /// 99.9th-percentile completion latency, ns.
    pub fn p999_ns(&self) -> u64 {
        self.latency_percentile(0.999)
    }

    /// Completed requests per second of simulated time.
    pub fn goodput_rps(&self) -> f64 {
        self.completed as f64 / (self.span_ns.max(1) as f64 / 1e9)
    }

    /// Fraction of *arrived* requests that completed within `slo_ns` —
    /// shed and failed requests count against the SLO, which is the whole
    /// point of calling it goodput rather than throughput.
    pub fn slo_attainment(&self, slo_ns: u64) -> f64 {
        if self.arrived == 0 {
            return 0.0;
        }
        let within = self.latencies_ns.partition_point(|&l| l <= slo_ns);
        within as f64 / self.arrived as f64
    }

    /// [`Self::slo_attainment`] restricted to requests that arrived after
    /// the overload trigger ended — the recovery-era attainment a
    /// metastable fleet fails and a mitigated one restores.
    pub fn late_slo_attainment(&self, slo_ns: u64) -> f64 {
        if self.late_arrived == 0 {
            return 0.0;
        }
        let within = self.late_latencies_ns.partition_point(|&l| l <= slo_ns);
        within as f64 / self.late_arrived as f64
    }

    /// Wasted work fraction: server completions the client had abandoned,
    /// over all attempts dispatched.
    pub fn wasted_fraction(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.wasted_completions as f64 / self.attempts as f64
    }

    /// Re-derives every conservation identity against the policy set the
    /// simulation ran with.
    pub fn audit(&self, policies: &AuditPolicies) -> Result<(), FleetAuditError> {
        let resolved = self.completed + self.shed + self.failed;
        if self.arrived != resolved {
            return Err(FleetAuditError::RequestConservation { arrived: self.arrived, resolved });
        }
        let classified = self.initial_attempts + self.retries + self.hedges;
        if self.attempts != classified {
            return Err(FleetAuditError::AttemptProvenance { attempts: self.attempts, classified });
        }
        let outcomes = self.won_attempts
            + self.timeouts
            + self.connect_failures
            + self.crash_failures
            + self.cancelled;
        if self.attempts != outcomes {
            return Err(FleetAuditError::AttemptConservation {
                attempts: self.attempts,
                resolved: outcomes,
            });
        }
        // Every retry must have been provoked by an observed attempt
        // failure. The converse does not hold: a failure whose request is
        // out of retry budget provokes nothing, so `<=`, not `==`.
        let failures = self.timeouts + self.connect_failures + self.crash_failures;
        if self.retries > failures {
            return Err(FleetAuditError::RetryProvenance { retries: self.retries, failures });
        }
        let cap =
            self.arrived.saturating_mul(u64::from(policies.hedge.map_or(0, |h| h.max_hedges)));
        if self.hedges > cap {
            return Err(FleetAuditError::HedgeCap { hedges: self.hedges, cap });
        }
        if self.completed != self.latencies_ns.len() as u64 {
            return Err(FleetAuditError::LatencyCount {
                completed: self.completed,
                samples: self.latencies_ns.len() as u64,
            });
        }
        let extra_attempt_milli = (self.retries + self.hedges).saturating_mul(1000);
        let budget_err = FleetAuditError::RetryBudgetBooks {
            granted_milli: self.budget_granted_milli,
            spent_milli: self.budget_spent_milli,
            extra_attempt_milli,
        };
        match policies.retry_budget {
            Some(b) => {
                let grant_cap =
                    b.burst_milli.saturating_add(self.arrived.saturating_mul(b.fill_milli));
                if self.budget_spent_milli != extra_attempt_milli
                    || self.budget_spent_milli > self.budget_granted_milli
                    || self.budget_granted_milli > grant_cap
                {
                    return Err(budget_err);
                }
            }
            None => {
                if self.budget_granted_milli != 0
                    || self.budget_spent_milli != 0
                    || self.budget_denied != 0
                {
                    return Err(budget_err);
                }
            }
        }
        let breaker_err = FleetAuditError::BreakerBooks {
            opens: self.breaker_opens,
            half_opens: self.breaker_half_opens,
            closes: self.breaker_closes,
        };
        if policies.breaker.is_some() {
            // Every half-open was armed by an open; every close resolved a
            // half-open; every open was provoked by an observed failure.
            if self.breaker_half_opens > self.breaker_opens
                || self.breaker_closes > self.breaker_half_opens
                || self.breaker_opens > failures
            {
                return Err(breaker_err);
            }
        } else if self.breaker_opens != 0
            || self.breaker_half_opens != 0
            || self.breaker_closes != 0
        {
            return Err(breaker_err);
        }
        if self.late_arrived > self.arrived
            || self.late_completed > self.completed
            || self.late_completed > self.late_arrived
            || self.late_completed != self.late_latencies_ns.len() as u64
        {
            return Err(FleetAuditError::LateBooks {
                late_arrived: self.late_arrived,
                late_completed: self.late_completed,
                samples: self.late_latencies_ns.len() as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hedged() -> AuditPolicies {
        AuditPolicies {
            hedge: Some(HedgePolicy { delay_ns: 100, max_hedges: 1 }),
            ..AuditPolicies::default()
        }
    }

    fn balanced() -> FleetStats {
        FleetStats {
            arrived: 10,
            completed: 7,
            shed: 2,
            failed: 1,
            attempts: 12,
            initial_attempts: 8,
            retries: 3,
            hedges: 1,
            won_attempts: 7,
            timeouts: 3,
            connect_failures: 1,
            crash_failures: 0,
            cancelled: 1,
            latencies_ns: vec![10, 20, 30, 40, 50, 60, 70],
            span_ns: 1_000_000_000,
            ..FleetStats::default()
        }
    }

    #[test]
    fn audit_accepts_balanced_books() {
        balanced().audit(&hedged()).expect("balanced stats must pass");
    }

    #[test]
    fn audit_catches_each_imbalance() {
        let p = hedged();
        let mut s = balanced();
        s.shed = 0;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::RequestConservation { .. })));
        let mut s = balanced();
        s.retries = 2;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::AttemptProvenance { .. })));
        let mut s = balanced();
        s.cancelled = 0;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::AttemptConservation { .. })));
        let mut s = balanced();
        s.retries = 6;
        s.initial_attempts = 5;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::RetryProvenance { .. })));
        let s = balanced();
        assert!(matches!(s.audit(&AuditPolicies::default()), Err(FleetAuditError::HedgeCap { .. })));
        let mut s = balanced();
        s.latencies_ns.pop();
        assert!(matches!(s.audit(&p), Err(FleetAuditError::LatencyCount { .. })));
    }

    #[test]
    fn audit_checks_the_budget_token_books() {
        let budget = RetryBudget { fill_milli: 500, burst_milli: 2_000 };
        let p = AuditPolicies { retry_budget: Some(budget), ..hedged() };
        // Exact books: 3 retries + 1 hedge = 4000 milli spent.
        let mut s = balanced();
        s.budget_granted_milli = 6_000;
        s.budget_spent_milli = 4_000;
        s.audit(&p).expect("exact budget books must pass");
        // Spent must match the attempt counters exactly.
        s.budget_spent_milli = 3_000;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::RetryBudgetBooks { .. })));
        // Spent may never exceed granted.
        let mut s = balanced();
        s.budget_granted_milli = 3_000;
        s.budget_spent_milli = 4_000;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::RetryBudgetBooks { .. })));
        // Granted may never exceed burst + arrivals * fill.
        let mut s = balanced();
        s.budget_granted_milli = 8_000;
        s.budget_spent_milli = 4_000;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::RetryBudgetBooks { .. })));
        // Without a budget, the counters must be silent.
        let mut s = balanced();
        s.budget_denied = 1;
        assert!(matches!(s.audit(&hedged()), Err(FleetAuditError::RetryBudgetBooks { .. })));
    }

    #[test]
    fn audit_checks_the_breaker_transition_ledger() {
        let p = AuditPolicies {
            breaker: Some(BreakerPolicy { failure_threshold: 3, open_ns: 100 }),
            ..hedged()
        };
        let mut s = balanced();
        s.breaker_opens = 2;
        s.breaker_half_opens = 2;
        s.breaker_closes = 1;
        s.audit(&p).expect("coherent breaker ledger must pass");
        // A half-open without an open is impossible.
        s.breaker_half_opens = 3;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::BreakerBooks { .. })));
        // More opens than observed failures is impossible.
        let mut s = balanced();
        s.breaker_opens = 5;
        assert!(matches!(s.audit(&p), Err(FleetAuditError::BreakerBooks { .. })));
        // Without a breaker, the counters must be silent.
        let mut s = balanced();
        s.breaker_opens = 1;
        assert!(matches!(s.audit(&hedged()), Err(FleetAuditError::BreakerBooks { .. })));
    }

    #[test]
    fn audit_checks_the_recovery_era_books() {
        let p = hedged();
        let mut s = balanced();
        s.late_arrived = 4;
        s.late_completed = 2;
        s.late_latencies_ns = vec![10, 20];
        s.audit(&p).expect("coherent late books must pass");
        assert!((s.late_slo_attainment(10) - 0.25).abs() < 1e-12);
        s.late_latencies_ns.pop();
        assert!(matches!(s.audit(&p), Err(FleetAuditError::LateBooks { .. })));
        let mut s = balanced();
        s.late_arrived = 1;
        s.late_completed = 2;
        s.late_latencies_ns = vec![10, 20];
        assert!(matches!(s.audit(&p), Err(FleetAuditError::LateBooks { .. })));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = FleetStats { latencies_ns: (1..=100).collect(), ..FleetStats::default() };
        assert_eq!(s.p50_ns(), 50);
        assert_eq!(s.p99_ns(), 99);
        assert_eq!(s.p999_ns(), 100);
        assert_eq!(s.latency_percentile(1.0), 100);
        assert!(s.p50_ns() <= s.p99_ns() && s.p99_ns() <= s.p999_ns());
    }

    #[test]
    fn empty_latencies_report_zero() {
        let s = FleetStats::default();
        assert_eq!(s.p999_ns(), 0);
        assert_eq!(s.slo_attainment(100), 0.0);
        assert_eq!(s.late_slo_attainment(100), 0.0);
        assert_eq!(s.wasted_fraction(), 0.0);
    }

    #[test]
    fn slo_attainment_counts_against_all_arrivals() {
        let s = balanced();
        // 4 of 7 completions are <= 40 ns, over 10 arrivals.
        assert!((s.slo_attainment(40) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn goodput_is_completions_over_span() {
        let s = balanced();
        assert!((s.goodput_rps() - 7.0).abs() < 1e-9);
        let mut s = balanced();
        s.wasted_completions = 3;
        assert!((s.wasted_fraction() - 0.25).abs() < 1e-12);
    }
}
