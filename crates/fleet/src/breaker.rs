//! Per-machine circuit breakers: closed / open / half-open.
//!
//! The health ejector (balancer) only reacts to *crisp* signals — connect
//! failures and observed crashes — which is exactly what a gray machine
//! never produces. The breaker closes that gap by watching the client-side
//! outcome of every attempt: `failure_threshold` consecutive failures
//! (timeouts included) trip the machine's breaker to *open*, taking it out
//! of rotation without any health-check involvement. After `open_ns` a
//! deterministic timer (an ordinary simulator event, so byte-identical
//! across `--jobs`) moves it to *half-open*, where exactly one trial
//! request is admitted: success re-closes the breaker, failure re-opens it
//! and re-arms the timer.
//!
//! All state transitions are driven by simulator events and counted, so
//! the `CS_PARANOID` audit can check the transition books: every half-open
//! follows an open, every close follows a half-open, and every open was
//! provoked by an observed failure.

use serde::{Deserialize, Serialize};

/// Circuit-breaker tuning shared by every machine's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive client-observed failures that trip the breaker (>= 1).
    pub failure_threshold: u32,
    /// How long an open breaker blocks the machine before the half-open
    /// trial is allowed (> 0).
    pub open_ns: u64,
}

/// One machine's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Normal operation; counts consecutive failures.
    Closed { consecutive_failures: u32 },
    /// Tripped: no dispatches until the half-open timer fires.
    Open,
    /// Probation: one trial attempt may be dispatched at a time.
    HalfOpen { trial_inflight: bool },
}

/// The fleet's breakers plus their transition counters.
#[derive(Debug)]
pub struct BreakerBank {
    policy: BreakerPolicy,
    states: Vec<State>,
    /// Closed/half-open -> open transitions.
    pub opens: u64,
    /// Open -> half-open transitions (timer fired).
    pub half_opens: u64,
    /// Half-open -> closed transitions (trial succeeded).
    pub closes: u64,
}

impl BreakerBank {
    /// A bank of closed breakers, one per machine.
    pub fn new(policy: BreakerPolicy, machines: usize) -> Self {
        Self {
            policy,
            states: vec![State::Closed { consecutive_failures: 0 }; machines],
            opens: 0,
            half_opens: 0,
            closes: 0,
        }
    }

    /// The policy this bank enforces.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Whether the balancer may route an attempt to machine `m`.
    pub fn allows(&self, m: usize) -> bool {
        match self.states[m] {
            State::Closed { .. } => true,
            State::Open => false,
            State::HalfOpen { trial_inflight } => !trial_inflight,
        }
    }

    /// Notes an attempt dispatched to `m`; a half-open breaker marks it as
    /// the (single) outstanding trial.
    pub fn on_dispatch(&mut self, m: usize) {
        if let State::HalfOpen { trial_inflight } = &mut self.states[m] {
            *trial_inflight = true;
        }
    }

    /// Notes a client-observed success on `m` (an attempt won).
    pub fn on_success(&mut self, m: usize) {
        match &mut self.states[m] {
            State::Closed { consecutive_failures } => *consecutive_failures = 0,
            State::HalfOpen { .. } => {
                self.states[m] = State::Closed { consecutive_failures: 0 };
                self.closes += 1;
            }
            // A straggling success from before the trip; the half-open
            // trial decides recovery, not stale traffic.
            State::Open => {}
        }
    }

    /// Notes a client-observed failure (timeout / connect failure / crash)
    /// on `m`. Returns `true` when this failure tripped the breaker open —
    /// the caller must then schedule the half-open timer `open_ns` from now.
    pub fn on_failure(&mut self, m: usize) -> bool {
        match &mut self.states[m] {
            State::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.policy.failure_threshold.max(1) {
                    self.states[m] = State::Open;
                    self.opens += 1;
                    return true;
                }
                false
            }
            State::HalfOpen { .. } => {
                self.states[m] = State::Open;
                self.opens += 1;
                true
            }
            State::Open => false,
        }
    }

    /// Notes a cancelled attempt on `m` (a sibling won elsewhere). A
    /// half-open trial that gets cancelled yields its slot so the next
    /// request can probe; cancellation says nothing about health.
    pub fn on_cancel(&mut self, m: usize) {
        if let State::HalfOpen { trial_inflight } = &mut self.states[m] {
            *trial_inflight = false;
        }
    }

    /// The half-open timer fired for `m`. Returns whether the breaker
    /// actually moved to half-open (it always should — each open epoch
    /// arms exactly one timer — but a stale timer is ignored, not obeyed).
    pub fn on_half_open_timer(&mut self, m: usize) -> bool {
        if self.states[m] == State::Open {
            self.states[m] = State::HalfOpen { trial_inflight: false };
            self.half_opens += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(threshold: u32) -> BreakerBank {
        BreakerBank::new(BreakerPolicy { failure_threshold: threshold, open_ns: 100 }, 2)
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = bank(3);
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(0));
        b.on_success(0); // resets the streak
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(0));
        assert!(b.on_failure(0));
        assert!(!b.allows(0));
        assert_eq!(b.opens, 1);
        // Machine 1's breaker is untouched.
        assert!(b.allows(1));
    }

    #[test]
    fn half_open_admits_one_trial_and_closes_on_success() {
        let mut b = bank(1);
        assert!(b.on_failure(0));
        assert!(!b.allows(0));
        assert!(b.on_half_open_timer(0));
        assert!(b.allows(0));
        b.on_dispatch(0);
        assert!(!b.allows(0), "only one trial may be outstanding");
        b.on_success(0);
        assert!(b.allows(0));
        assert_eq!((b.opens, b.half_opens, b.closes), (1, 1, 1));
    }

    #[test]
    fn failed_trial_reopens() {
        let mut b = bank(1);
        assert!(b.on_failure(0));
        assert!(b.on_half_open_timer(0));
        b.on_dispatch(0);
        assert!(b.on_failure(0), "trial failure re-opens and re-arms the timer");
        assert!(!b.allows(0));
        assert_eq!((b.opens, b.half_opens, b.closes), (2, 1, 0));
    }

    #[test]
    fn cancelled_trial_yields_the_slot() {
        let mut b = bank(1);
        assert!(b.on_failure(0));
        assert!(b.on_half_open_timer(0));
        b.on_dispatch(0);
        assert!(!b.allows(0));
        b.on_cancel(0);
        assert!(b.allows(0));
        assert_eq!(b.closes, 0);
    }

    #[test]
    fn failures_while_open_do_not_recount() {
        let mut b = bank(1);
        assert!(b.on_failure(0));
        assert!(!b.on_failure(0), "straggling failures while open are absorbed");
        assert_eq!(b.opens, 1);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut b = bank(1);
        assert!(!b.on_half_open_timer(0), "closed breaker ignores timers");
        assert_eq!(b.half_opens, 0);
    }

    #[test]
    fn zero_threshold_behaves_like_one() {
        let mut b = BreakerBank::new(BreakerPolicy { failure_threshold: 0, open_ns: 1 }, 1);
        assert!(b.on_failure(0));
    }
}
