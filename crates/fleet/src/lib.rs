//! # cs-fleet — fault-tolerant cluster serving layer
//!
//! The paper measures one machine; real deployments run thousands, and
//! the numbers operators actually provision against are cluster-level:
//! p99/p999 latency under an SLO, goodput under faults, how much capacity
//! headroom a workload needs before its tail collapses. `cs-fleet` turns
//! the per-workload service times measured by the CloudSuite-RS harness
//! into those numbers with a deterministic, seeded discrete-event
//! queueing simulator of a serving fleet.
//!
//! The crate is deliberately independent of the harness: it depends only
//! on `cs-trace` (for the seeded RNG discipline) and consumes a plain
//! [`ServiceProfile`] — mean service time plus SMT/co-location inflation
//! factors — that `cs-core` extracts from simulation results. Everything
//! here is a pure function of configuration and seed:
//!
//! - **Arrivals** ([`arrivals`]): open-loop Poisson, optionally modulated
//!   by a square-wave burst pattern.
//! - **Machines and routing** ([`machine`], [`balancer`]):
//!   least-outstanding routing over bounded queues, health ejection and
//!   probe-driven readmission, overload shedding at admission.
//! - **Faults** ([`faults`]): seeded machine crash/recovery, straggler
//!   episodes, *gray* degradation episodes (up and probe-passing but slow
//!   and lossy), and correlated fault-domain events (rack/power-feed
//!   outages and domain-wide gray), per-machine and per-domain streams in
//!   the `cs-memsys` `FaultPlan` discipline.
//! - **Client policies** ([`policy`]): per-request timeouts, capped
//!   exponential-backoff retries (the same [`RetryPolicy`] the campaign
//!   runner uses for transient experiment failures), hedged requests, a
//!   token-bucket [`RetryBudget`] that bounds retry-storm amplification,
//!   and an [`AimdPolicy`] adaptive concurrency limit.
//! - **Circuit breakers** ([`breaker`]): per-machine closed/open/half-open
//!   breakers on client-observed failures — the mitigation that catches
//!   gray machines the health ejector cannot see.
//! - **The event loop** ([`sim`]): a single `(time, sequence)`-ordered
//!   heap, which is the whole determinism argument — see the module docs.
//! - **SLO accounting** ([`report`]): percentiles, goodput, recovery-era
//!   (post-trigger) attainment, and a conservation auditor (`arrived =
//!   completed + shed + failed`, attempt-level books, retry-budget token
//!   conservation, the breaker transition ledger) that `CS_PARANOID` runs
//!   after every simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs, clippy::unwrap_used, clippy::perf)]

pub mod arrivals;
pub mod balancer;
pub mod breaker;
pub mod faults;
pub mod machine;
pub mod policy;
pub mod report;
pub mod service;
pub mod sim;

pub use arrivals::Burst;
pub use breaker::BreakerPolicy;
pub use faults::FleetFaultPlan;
pub use policy::{AimdPolicy, HedgePolicy, RetryBudget, RetryPolicy};
pub use report::{AuditPolicies, FleetAuditError, FleetStats};
pub use service::ServiceProfile;
pub use sim::{simulate, FleetConfig, FleetConfigError};
