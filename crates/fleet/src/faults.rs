//! Seeded machine-level fault injection: crashes and stragglers.
//!
//! Follows the `cs-memsys` `FaultPlan` discipline: a plan is plain data, a
//! pure function of its seed, and every fault it injects is counted so
//! tests can assert the chaos actually happened. Where the memory-system
//! plan perturbs individual DRAM events, the fleet plan schedules
//! machine-lifetime events — whole-machine crashes with a fixed repair
//! time, and straggler episodes that multiply service times for a while.
//! Each machine draws from its own SplitMix-derived stream, so adding a
//! machine never perturbs the fault history of the others.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A seeded machine-level fault plan.
///
/// Gap draws are exponential around the configured mean time between
/// faults; a mean of zero disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    /// Mean time between crashes per machine, in ns (0 = no crashes).
    pub crash_mtbf_ns: u64,
    /// Downtime after a crash before the machine serves again.
    pub repair_ns: u64,
    /// Mean time between straggler episodes per machine (0 = none).
    pub straggler_mtbf_ns: u64,
    /// Length of one straggler episode.
    pub straggler_duration_ns: u64,
    /// Service-time multiplier while straggling (> 1 to have any effect).
    pub straggler_factor: f64,
    /// Seed of the fault streams (independent of the service-time seed).
    pub seed: u64,
}

impl FleetFaultPlan {
    /// A plan that injects nothing (useful as an explicit baseline).
    pub fn quiet(seed: u64) -> Self {
        Self {
            crash_mtbf_ns: 0,
            repair_ns: 0,
            straggler_mtbf_ns: 0,
            straggler_duration_ns: 0,
            straggler_factor: 1.0,
            seed,
        }
    }

    /// Crashes only: machines fail every `mtbf_ns` on average and come
    /// back `repair_ns` later.
    pub fn crashes(mtbf_ns: u64, repair_ns: u64, seed: u64) -> Self {
        Self { crash_mtbf_ns: mtbf_ns, repair_ns, ..Self::quiet(seed) }
    }

    /// Stragglers only: episodes of `duration_ns` during which service
    /// times are multiplied by `factor`.
    pub fn stragglers(mtbf_ns: u64, duration_ns: u64, factor: f64, seed: u64) -> Self {
        Self {
            straggler_mtbf_ns: mtbf_ns,
            straggler_duration_ns: duration_ns,
            straggler_factor: factor,
            ..Self::quiet(seed)
        }
    }
}

/// Per-machine fault streams for one simulation.
///
/// Crash gaps and straggler gaps come from separate streams so enabling
/// one fault class never shifts the schedule of the other.
#[derive(Debug)]
pub struct FaultStreams {
    plan: FleetFaultPlan,
    crash: Vec<SmallRng>,
    straggle: Vec<SmallRng>,
}

/// Stream-id offset separating straggler streams from crash streams.
const STRAGGLE_STREAM_BASE: u64 = 1 << 32;

impl FaultStreams {
    /// Builds streams for `machines` machines from the plan's seed.
    pub fn new(plan: FleetFaultPlan, machines: usize) -> Self {
        let crash = (0..machines)
            .map(|m| cs_trace::rng::stream_rng(plan.seed, m as u64))
            .collect();
        let straggle = (0..machines)
            .map(|m| cs_trace::rng::stream_rng(plan.seed, STRAGGLE_STREAM_BASE + m as u64))
            .collect();
        Self { plan, crash, straggle }
    }

    /// The plan these streams realize.
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }

    fn exp_gap(rng: &mut SmallRng, mean_ns: u64) -> u64 {
        let u: f64 = rng.gen::<f64>().min(1.0 - f64::EPSILON);
        ((mean_ns as f64) * -(1.0 - u).ln()) as u64 + 1
    }

    /// Gap to machine `m`'s next crash, or `None` if crashes are disabled.
    pub fn next_crash_gap(&mut self, m: usize) -> Option<u64> {
        if self.plan.crash_mtbf_ns == 0 {
            return None;
        }
        Some(Self::exp_gap(&mut self.crash[m], self.plan.crash_mtbf_ns))
    }

    /// Gap to machine `m`'s next straggler episode, or `None` if disabled.
    pub fn next_straggle_gap(&mut self, m: usize) -> Option<u64> {
        if self.plan.straggler_mtbf_ns == 0 || self.plan.straggler_factor <= 1.0 {
            return None;
        }
        Some(Self::exp_gap(&mut self.straggle[m], self.plan.straggler_mtbf_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FleetFaultPlan::crashes(1_000_000, 50_000, 13);
        let mut a = FaultStreams::new(plan, 4);
        let mut b = FaultStreams::new(plan, 4);
        for m in 0..4 {
            let xs: Vec<_> = (0..32).map(|_| a.next_crash_gap(m)).collect();
            let ys: Vec<_> = (0..32).map(|_| b.next_crash_gap(m)).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn machines_have_independent_streams() {
        let plan = FleetFaultPlan::crashes(1_000_000, 50_000, 13);
        let mut s = FaultStreams::new(plan, 2);
        let xs: Vec<_> = (0..32).map(|_| s.next_crash_gap(0)).collect();
        let ys: Vec<_> = (0..32).map(|_| s.next_crash_gap(1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn adding_a_machine_preserves_existing_streams() {
        let plan = FleetFaultPlan::stragglers(500_000, 10_000, 4.0, 5);
        let mut small = FaultStreams::new(plan, 2);
        let mut large = FaultStreams::new(plan, 8);
        for m in 0..2 {
            let xs: Vec<_> = (0..16).map(|_| small.next_straggle_gap(m)).collect();
            let ys: Vec<_> = (0..16).map(|_| large.next_straggle_gap(m)).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn quiet_plan_schedules_nothing() {
        let mut s = FaultStreams::new(FleetFaultPlan::quiet(1), 3);
        assert_eq!(s.next_crash_gap(0), None);
        assert_eq!(s.next_straggle_gap(2), None);
    }

    #[test]
    fn factor_at_or_below_one_disables_stragglers() {
        let mut s = FaultStreams::new(FleetFaultPlan::stragglers(1_000, 100, 1.0, 2), 1);
        assert_eq!(s.next_straggle_gap(0), None);
    }

    #[test]
    fn gaps_are_positive() {
        let plan = FleetFaultPlan::crashes(1, 1, 99);
        let mut s = FaultStreams::new(plan, 1);
        for _ in 0..1_000 {
            assert!(s.next_crash_gap(0).unwrap_or(1) >= 1);
        }
    }
}
