//! Seeded machine-level fault injection: crashes, stragglers, gray
//! failures, and correlated fault domains.
//!
//! Follows the `cs-memsys` `FaultPlan` discipline: a plan is plain data, a
//! pure function of its seed, and every fault it injects is counted so
//! tests can assert the chaos actually happened. Where the memory-system
//! plan perturbs individual DRAM events, the fleet plan schedules
//! machine-lifetime events — whole-machine crashes with a fixed repair
//! time, straggler episodes that multiply service times for a while, and
//! *gray* episodes during which a machine stays `up` (probes pass, connects
//! succeed) yet serves slowly and silently drops a seeded fraction of
//! requests. Machines can additionally be grouped into fault *domains*
//! (racks / power feeds): domain-level draws take a whole domain down — or
//! gray — at once, so failures correlate instead of being i.i.d.
//!
//! Each machine draws from its own SplitMix-derived stream, and each
//! domain from its own, so adding a machine (or domain) never perturbs the
//! fault history of the others.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

fn default_one() -> f64 {
    1.0
}

/// A seeded machine-level fault plan.
///
/// Gap draws are exponential around the configured mean time between
/// faults; a mean of zero disables that fault class entirely. All fields
/// added after the original crash/straggler plan carry serde defaults so
/// previously serialized plans (and checkpointed configs) still load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    /// Mean time between crashes per machine, in ns (0 = no crashes).
    pub crash_mtbf_ns: u64,
    /// Downtime after a crash before the machine serves again.
    pub repair_ns: u64,
    /// Mean time between straggler episodes per machine (0 = none).
    pub straggler_mtbf_ns: u64,
    /// Length of one straggler episode.
    pub straggler_duration_ns: u64,
    /// Service-time multiplier while straggling (> 1 to have any effect).
    pub straggler_factor: f64,
    /// Mean time between gray episodes per machine, in ns (0 = none).
    #[serde(default)]
    pub gray_mtbf_ns: u64,
    /// Length of one gray episode.
    #[serde(default)]
    pub gray_duration_ns: u64,
    /// Service-time multiplier while gray (>= 1).
    #[serde(default = "default_one")]
    pub gray_latency_factor: f64,
    /// Probability in `[0, 1)` that an attempt starting service on a gray
    /// machine is silently dropped (the client only learns via timeout).
    #[serde(default)]
    pub gray_drop_rate: f64,
    /// Extra service inflation while gray modeling memory pressure; fed
    /// from the harness-measured `interference_matrix` pairing inflation
    /// (the fig4 co-location factor) by the experiment layer.
    #[serde(default = "default_one")]
    pub gray_memory_inflation: f64,
    /// Mean time between whole-domain outages per fault domain (0 = none).
    /// Repair reuses `repair_ns`.
    #[serde(default)]
    pub domain_outage_mtbf_ns: u64,
    /// Mean time between domain-wide gray episodes per fault domain
    /// (0 = none). Episode shape reuses the `gray_*` fields.
    #[serde(default)]
    pub domain_gray_mtbf_ns: u64,
    /// Seed of the fault streams (independent of the service-time seed).
    pub seed: u64,
}

impl FleetFaultPlan {
    /// A plan that injects nothing (useful as an explicit baseline).
    pub fn quiet(seed: u64) -> Self {
        Self {
            crash_mtbf_ns: 0,
            repair_ns: 0,
            straggler_mtbf_ns: 0,
            straggler_duration_ns: 0,
            straggler_factor: 1.0,
            gray_mtbf_ns: 0,
            gray_duration_ns: 0,
            gray_latency_factor: 1.0,
            gray_drop_rate: 0.0,
            gray_memory_inflation: 1.0,
            domain_outage_mtbf_ns: 0,
            domain_gray_mtbf_ns: 0,
            seed,
        }
    }

    /// Crashes only: machines fail every `mtbf_ns` on average and come
    /// back `repair_ns` later.
    pub fn crashes(mtbf_ns: u64, repair_ns: u64, seed: u64) -> Self {
        Self { crash_mtbf_ns: mtbf_ns, repair_ns, ..Self::quiet(seed) }
    }

    /// Stragglers only: episodes of `duration_ns` during which service
    /// times are multiplied by `factor`.
    pub fn stragglers(mtbf_ns: u64, duration_ns: u64, factor: f64, seed: u64) -> Self {
        Self {
            straggler_mtbf_ns: mtbf_ns,
            straggler_duration_ns: duration_ns,
            straggler_factor: factor,
            ..Self::quiet(seed)
        }
    }

    /// Gray failures only: episodes of `duration_ns` during which service
    /// is `latency_factor` slower and a `drop_rate` fraction of attempts
    /// vanish, while the machine keeps passing health probes.
    pub fn gray(
        mtbf_ns: u64,
        duration_ns: u64,
        latency_factor: f64,
        drop_rate: f64,
        seed: u64,
    ) -> Self {
        Self {
            gray_mtbf_ns: mtbf_ns,
            gray_duration_ns: duration_ns,
            gray_latency_factor: latency_factor,
            gray_drop_rate: drop_rate,
            ..Self::quiet(seed)
        }
    }

    /// Correlated outages only: whole fault domains crash together every
    /// `mtbf_ns` on average (per domain) and repair `repair_ns` later.
    pub fn domain_outages(mtbf_ns: u64, repair_ns: u64, seed: u64) -> Self {
        Self { domain_outage_mtbf_ns: mtbf_ns, repair_ns, ..Self::quiet(seed) }
    }

    /// Returns the plan with the gray memory-pressure inflation set (the
    /// measured co-location factor from the interference matrix).
    pub fn with_gray_memory_inflation(mut self, inflation: f64) -> Self {
        self.gray_memory_inflation = inflation;
        self
    }

    /// Whether gray episodes would have any observable effect.
    pub fn gray_bites(&self) -> bool {
        self.gray_duration_ns > 0
            && (self.gray_latency_factor > 1.0
                || self.gray_drop_rate > 0.0
                || self.gray_memory_inflation > 1.0)
    }

    /// The total service-time multiplier applied while a machine is gray.
    pub fn gray_service_factor(&self) -> f64 {
        self.gray_latency_factor.max(1.0) * self.gray_memory_inflation.max(1.0)
    }

    /// Whether any domain-level fault class is enabled.
    pub fn wants_domains(&self) -> bool {
        self.domain_outage_mtbf_ns > 0 || (self.domain_gray_mtbf_ns > 0 && self.gray_bites())
    }
}

/// Per-machine (and per-domain) fault streams for one simulation.
///
/// Crash gaps, straggler gaps, gray gaps, gray drop draws, and the two
/// domain-level gap kinds each come from separate stream families, so
/// enabling one fault class never shifts the schedule of another.
#[derive(Debug)]
pub struct FaultStreams {
    plan: FleetFaultPlan,
    crash: Vec<SmallRng>,
    straggle: Vec<SmallRng>,
    gray: Vec<SmallRng>,
    gray_drop: Vec<SmallRng>,
    domain_outage: Vec<SmallRng>,
    domain_gray: Vec<SmallRng>,
}

/// Stream-id offset separating straggler streams from crash streams.
const STRAGGLE_STREAM_BASE: u64 = 1 << 32;
/// Stream-id offset of the per-machine gray-episode streams.
const GRAY_STREAM_BASE: u64 = 2 << 32;
/// Stream-id offset of the per-machine gray drop-draw streams.
const GRAY_DROP_STREAM_BASE: u64 = 3 << 32;
/// Stream-id offset of the per-domain outage streams.
const DOMAIN_OUTAGE_STREAM_BASE: u64 = 4 << 32;
/// Stream-id offset of the per-domain gray streams.
const DOMAIN_GRAY_STREAM_BASE: u64 = 5 << 32;

impl FaultStreams {
    /// Builds streams for `machines` machines in `domains` fault domains
    /// from the plan's seed.
    pub fn new(plan: FleetFaultPlan, machines: usize, domains: usize) -> Self {
        let per_machine = |base: u64| -> Vec<SmallRng> {
            (0..machines).map(|m| cs_trace::rng::stream_rng(plan.seed, base + m as u64)).collect()
        };
        let per_domain = |base: u64| -> Vec<SmallRng> {
            (0..domains).map(|d| cs_trace::rng::stream_rng(plan.seed, base + d as u64)).collect()
        };
        Self {
            plan,
            crash: per_machine(0),
            straggle: per_machine(STRAGGLE_STREAM_BASE),
            gray: per_machine(GRAY_STREAM_BASE),
            gray_drop: per_machine(GRAY_DROP_STREAM_BASE),
            domain_outage: per_domain(DOMAIN_OUTAGE_STREAM_BASE),
            domain_gray: per_domain(DOMAIN_GRAY_STREAM_BASE),
        }
    }

    /// The plan these streams realize.
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }

    fn exp_gap(rng: &mut SmallRng, mean_ns: u64) -> u64 {
        let u: f64 = rng.gen::<f64>().min(1.0 - f64::EPSILON);
        ((mean_ns as f64) * -(1.0 - u).ln()) as u64 + 1
    }

    /// Gap to machine `m`'s next crash, or `None` if crashes are disabled.
    pub fn next_crash_gap(&mut self, m: usize) -> Option<u64> {
        if self.plan.crash_mtbf_ns == 0 {
            return None;
        }
        Some(Self::exp_gap(&mut self.crash[m], self.plan.crash_mtbf_ns))
    }

    /// Gap to machine `m`'s next straggler episode, or `None` if disabled.
    pub fn next_straggle_gap(&mut self, m: usize) -> Option<u64> {
        if self.plan.straggler_mtbf_ns == 0 || self.plan.straggler_factor <= 1.0 {
            return None;
        }
        Some(Self::exp_gap(&mut self.straggle[m], self.plan.straggler_mtbf_ns))
    }

    /// Gap to machine `m`'s next gray episode, or `None` if disabled.
    pub fn next_gray_gap(&mut self, m: usize) -> Option<u64> {
        if self.plan.gray_mtbf_ns == 0 || !self.plan.gray_bites() {
            return None;
        }
        Some(Self::exp_gap(&mut self.gray[m], self.plan.gray_mtbf_ns))
    }

    /// Gap to domain `d`'s next correlated outage, or `None` if disabled.
    pub fn next_domain_outage_gap(&mut self, d: usize) -> Option<u64> {
        if self.plan.domain_outage_mtbf_ns == 0 {
            return None;
        }
        Some(Self::exp_gap(&mut self.domain_outage[d], self.plan.domain_outage_mtbf_ns))
    }

    /// Gap to domain `d`'s next gray episode, or `None` if disabled.
    pub fn next_domain_gray_gap(&mut self, d: usize) -> Option<u64> {
        if self.plan.domain_gray_mtbf_ns == 0 || !self.plan.gray_bites() {
            return None;
        }
        Some(Self::exp_gap(&mut self.domain_gray[d], self.plan.domain_gray_mtbf_ns))
    }

    /// Draws whether an attempt starting service on (gray) machine `m` is
    /// silently dropped. Consumes a draw only when the drop rate is live,
    /// so a zero-rate plan replays byte-identically with the stream family
    /// untouched.
    pub fn draw_gray_drop(&mut self, m: usize) -> bool {
        if self.plan.gray_drop_rate <= 0.0 {
            return false;
        }
        self.gray_drop[m].gen::<f64>() < self.plan.gray_drop_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FleetFaultPlan::crashes(1_000_000, 50_000, 13);
        let mut a = FaultStreams::new(plan, 4, 1);
        let mut b = FaultStreams::new(plan, 4, 1);
        for m in 0..4 {
            let xs: Vec<_> = (0..32).map(|_| a.next_crash_gap(m)).collect();
            let ys: Vec<_> = (0..32).map(|_| b.next_crash_gap(m)).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn machines_have_independent_streams() {
        let plan = FleetFaultPlan::crashes(1_000_000, 50_000, 13);
        let mut s = FaultStreams::new(plan, 2, 1);
        let xs: Vec<_> = (0..32).map(|_| s.next_crash_gap(0)).collect();
        let ys: Vec<_> = (0..32).map(|_| s.next_crash_gap(1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn adding_a_machine_preserves_existing_streams() {
        let plan = FleetFaultPlan::stragglers(500_000, 10_000, 4.0, 5);
        let mut small = FaultStreams::new(plan, 2, 1);
        let mut large = FaultStreams::new(plan, 8, 1);
        for m in 0..2 {
            let xs: Vec<_> = (0..16).map(|_| small.next_straggle_gap(m)).collect();
            let ys: Vec<_> = (0..16).map(|_| large.next_straggle_gap(m)).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn adding_a_domain_preserves_existing_domain_streams() {
        let plan = FleetFaultPlan::domain_outages(300_000, 20_000, 6);
        let mut small = FaultStreams::new(plan, 4, 2);
        let mut large = FaultStreams::new(plan, 4, 4);
        for d in 0..2 {
            let xs: Vec<_> = (0..16).map(|_| small.next_domain_outage_gap(d)).collect();
            let ys: Vec<_> = (0..16).map(|_| large.next_domain_outage_gap(d)).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn quiet_plan_schedules_nothing() {
        let mut s = FaultStreams::new(FleetFaultPlan::quiet(1), 3, 2);
        assert_eq!(s.next_crash_gap(0), None);
        assert_eq!(s.next_straggle_gap(2), None);
        assert_eq!(s.next_gray_gap(1), None);
        assert_eq!(s.next_domain_outage_gap(0), None);
        assert_eq!(s.next_domain_gray_gap(1), None);
        assert!(!s.draw_gray_drop(0));
    }

    #[test]
    fn factor_at_or_below_one_disables_stragglers() {
        let mut s = FaultStreams::new(FleetFaultPlan::stragglers(1_000, 100, 1.0, 2), 1, 1);
        assert_eq!(s.next_straggle_gap(0), None);
    }

    #[test]
    fn toothless_gray_plans_are_disabled() {
        // A gray plan whose episodes would change nothing schedules none.
        let mut latency_only = FleetFaultPlan::gray(1_000, 100, 1.0, 0.0, 2);
        latency_only.gray_memory_inflation = 1.0;
        let mut s = FaultStreams::new(latency_only, 1, 1);
        assert_eq!(s.next_gray_gap(0), None);
        // Any of the three knobs > neutral re-arms it.
        let armed = FleetFaultPlan::gray(1_000, 100, 1.0, 0.5, 2);
        let mut s = FaultStreams::new(armed, 1, 1);
        assert!(s.next_gray_gap(0).is_some());
    }

    #[test]
    fn gray_drop_draws_match_the_rate_roughly() {
        let plan = FleetFaultPlan::gray(1_000, 100, 2.0, 0.25, 7);
        let mut s = FaultStreams::new(plan, 1, 1);
        let dropped = (0..10_000).filter(|_| s.draw_gray_drop(0)).count();
        assert!((2_000..3_000).contains(&dropped), "dropped {dropped}/10000 at rate 0.25");
    }

    #[test]
    fn gray_service_factor_stacks_latency_and_memory_pressure() {
        let plan =
            FleetFaultPlan::gray(1_000, 100, 3.0, 0.0, 1).with_gray_memory_inflation(1.5);
        assert!((plan.gray_service_factor() - 4.5).abs() < 1e-12);
        assert!(plan.gray_bites());
    }

    #[test]
    fn gaps_are_positive() {
        let plan = FleetFaultPlan::crashes(1, 1, 99);
        let mut s = FaultStreams::new(plan, 1, 1);
        for _ in 0..1_000 {
            assert!(s.next_crash_gap(0).unwrap_or(1) >= 1);
        }
    }

    #[test]
    fn legacy_plans_deserialize_with_neutral_gray_and_domain_fields() {
        let legacy = r#"{
            "crash_mtbf_ns": 10, "repair_ns": 5,
            "straggler_mtbf_ns": 0, "straggler_duration_ns": 0,
            "straggler_factor": 1.0, "seed": 3
        }"#;
        // Shim-serde environments cannot deserialize; the property only
        // binds where a real serde backs the parse.
        let Ok(plan) = serde_json::from_str::<FleetFaultPlan>(legacy) else { return };
        assert_eq!(plan.gray_mtbf_ns, 0);
        assert_eq!(plan.gray_latency_factor, 1.0);
        assert_eq!(plan.gray_memory_inflation, 1.0);
        assert!(!plan.wants_domains());
        assert_eq!(plan, FleetFaultPlan::crashes(10, 5, 3));
    }
}
