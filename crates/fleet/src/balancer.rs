//! Load balancer: least-outstanding routing, health ejection, shedding.
//!
//! Routing is deterministic: among machines that are not ejected (and not
//! explicitly excluded, for hedges), pick the one with the least
//! outstanding load, breaking ties by lowest machine id. Ejection happens
//! when the balancer *observes* a failure — a connect failure or a crash
//! that killed in-flight attempts — or when a periodic health probe finds
//! the machine down; readmission happens only via a probe that finds it
//! up again. Shedding is the admission decision: a request (initial or
//! retry) whose best available machine is already at `contexts +
//! queue_capacity` outstanding, or that finds every machine ejected, is
//! dropped at the door rather than queued into certain timeout.

use crate::machine::Machine;

/// Balancer state: the ejection set plus its decision counters.
#[derive(Debug, Default)]
pub struct Balancer {
    ejected: Vec<bool>,
    /// Ejections performed (first observation only; already-ejected
    /// machines do not re-count).
    pub ejections: u64,
    /// Readmissions performed by health probes.
    pub readmissions: u64,
}

/// Outcome of a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Dispatch to this machine.
    To(usize),
    /// Admission denied: the best machine is saturated or none is in
    /// rotation.
    Shed,
}

impl Balancer {
    /// A balancer over `machines` machines, all in rotation.
    pub fn new(machines: usize) -> Self {
        Self { ejected: vec![false; machines], ejections: 0, readmissions: 0 }
    }

    /// Whether machine `m` is currently out of rotation.
    pub fn is_ejected(&self, m: usize) -> bool {
        self.ejected[m]
    }

    /// Takes `m` out of rotation (observed failure or failed probe).
    pub fn eject(&mut self, m: usize) {
        if !self.ejected[m] {
            self.ejected[m] = true;
            self.ejections += 1;
        }
    }

    /// Puts `m` back in rotation (probe found it up).
    pub fn readmit(&mut self, m: usize) {
        if self.ejected[m] {
            self.ejected[m] = false;
            self.readmissions += 1;
        }
    }

    /// Picks a machine for an attempt, or sheds.
    ///
    /// `exclude` lists machines carrying live sibling attempts of the same
    /// request (hedges should land elsewhere); exclusion is best-effort —
    /// if every in-rotation machine is excluded, the exclusion is lifted
    /// rather than failing the dispatch.
    /// `barred` is a hard per-machine veto (an open or trial-busy circuit
    /// breaker): unlike `exclude` it is never lifted — if every machine is
    /// barred, the attempt sheds.
    /// `queue_capacity` bounds the per-machine wait queue.
    pub fn route(
        &self,
        machines: &[Machine],
        exclude: &[usize],
        queue_capacity: usize,
        barred: impl Fn(usize) -> bool,
    ) -> Route {
        let pick = |respect_exclude: bool| -> Option<usize> {
            let mut best: Option<(usize, usize)> = None;
            for (m, machine) in machines.iter().enumerate() {
                if self.ejected[m] || barred(m) || (respect_exclude && exclude.contains(&m)) {
                    continue;
                }
                let load = machine.load();
                if best.is_none_or(|(_, bl)| load < bl) {
                    best = Some((m, load));
                }
            }
            best.map(|(m, _)| m)
        };
        let chosen = pick(true).or_else(|| pick(false));
        match chosen {
            Some(m) if machines[m].load() < machines[m].contexts + queue_capacity => Route::To(m),
            _ => Route::Shed,
        }
    }
}

/// Runtime state of the AIMD adaptive concurrency limit.
///
/// The limit lives in milli-attempts so additive increase can be gentler
/// than one whole attempt per success while staying in exact integer
/// arithmetic; admission compares client-side outstanding attempts against
/// `limit()` (the whole-attempt floor of the milli limit).
#[derive(Debug)]
pub struct AimdLimiter {
    policy: crate::policy::AimdPolicy,
    limit_milli: u64,
    /// Additive increases applied (observed successes).
    pub increases: u64,
    /// Multiplicative decreases applied (observed failures).
    pub decreases: u64,
}

impl AimdLimiter {
    /// A limiter starting wide open at `max_inflight`.
    pub fn new(policy: crate::policy::AimdPolicy) -> Self {
        Self { policy, limit_milli: policy.max_inflight.saturating_mul(1000), increases: 0, decreases: 0 }
    }

    fn floor_milli(&self) -> u64 {
        self.policy.min_inflight.max(1).saturating_mul(1000)
    }

    /// The current limit in whole attempts.
    pub fn limit(&self) -> u64 {
        (self.limit_milli / 1000).max(1)
    }

    /// Whether a new attempt may be admitted with `outstanding` attempts
    /// already in flight.
    pub fn admits(&self, outstanding: u64) -> bool {
        outstanding < self.limit()
    }

    /// Additive increase on an observed success.
    pub fn on_success(&mut self) {
        let ceil = self.policy.max_inflight.saturating_mul(1000).max(self.floor_milli());
        self.limit_milli = self.limit_milli.saturating_add(self.policy.increase_milli).min(ceil);
        self.increases += 1;
    }

    /// Multiplicative decrease on an observed failure.
    pub fn on_failure(&mut self) {
        let keep = u64::from(100 - self.policy.decrease_pct.clamp(1, 99));
        self.limit_milli = (self.limit_milli / 100).saturating_mul(keep).max(self.floor_milli());
        self.decreases += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(loads: &[usize]) -> Vec<Machine> {
        loads
            .iter()
            .map(|&l| {
                let mut m = Machine::new(4);
                for i in 0..l {
                    m.queue.push_back(i as u32);
                }
                m
            })
            .collect()
    }

    fn open(_m: usize) -> bool {
        false
    }

    #[test]
    fn routes_to_least_loaded_lowest_id() {
        let machines = fleet(&[3, 1, 1, 2]);
        let b = Balancer::new(4);
        assert_eq!(b.route(&machines, &[], 8, open), Route::To(1));
    }

    #[test]
    fn ejected_machines_are_skipped_and_readmitted() {
        let machines = fleet(&[0, 5]);
        let mut b = Balancer::new(2);
        b.eject(0);
        b.eject(0);
        assert_eq!(b.ejections, 1);
        assert_eq!(b.route(&machines, &[], 8, open), Route::To(1));
        b.readmit(0);
        assert_eq!(b.readmissions, 1);
        assert_eq!(b.route(&machines, &[], 8, open), Route::To(0));
    }

    #[test]
    fn exclusion_is_best_effort() {
        let machines = fleet(&[1, 2]);
        let mut b = Balancer::new(2);
        assert_eq!(b.route(&machines, &[0], 8, open), Route::To(1));
        // With machine 1 ejected, the exclusion of 0 must be lifted.
        b.eject(1);
        assert_eq!(b.route(&machines, &[0], 8, open), Route::To(0));
    }

    #[test]
    fn saturation_and_empty_rotation_shed() {
        let machines = fleet(&[12, 12]);
        let mut b = Balancer::new(2);
        assert_eq!(b.route(&machines, &[], 8, open), Route::Shed);
        let light = fleet(&[0]);
        let mut solo = Balancer::new(1);
        solo.eject(0);
        assert_eq!(solo.route(&light, &[], 8, open), Route::Shed);
        b.eject(0);
        b.eject(1);
        assert_eq!(b.route(&machines, &[], 8, open), Route::Shed);
    }

    #[test]
    fn barred_machines_are_vetoed_not_best_effort() {
        let machines = fleet(&[0, 5]);
        let b = Balancer::new(2);
        // The breaker veto diverts to the worse machine...
        assert_eq!(b.route(&machines, &[], 8, |m| m == 0), Route::To(1));
        // ...and unlike `exclude`, is never lifted: all barred => shed.
        assert_eq!(b.route(&machines, &[], 8, |_| true), Route::Shed);
        // `exclude` of the only unbarred machine IS lifted.
        assert_eq!(b.route(&machines, &[1], 8, |m| m == 0), Route::To(1));
    }

    #[test]
    fn aimd_limit_rises_additively_and_falls_multiplicatively() {
        let policy = crate::policy::AimdPolicy {
            min_inflight: 2,
            max_inflight: 10,
            increase_milli: 500,
            decrease_pct: 50,
        };
        let mut l = AimdLimiter::new(policy);
        assert_eq!(l.limit(), 10);
        assert!(l.admits(9));
        assert!(!l.admits(10));
        l.on_failure();
        assert_eq!(l.limit(), 5);
        l.on_failure();
        l.on_failure();
        assert_eq!(l.limit(), 2, "clamped at min_inflight");
        l.on_success();
        l.on_success();
        assert_eq!(l.limit(), 3, "two half-attempt increases");
        for _ in 0..100 {
            l.on_success();
        }
        assert_eq!(l.limit(), 10, "clamped at max_inflight");
        assert_eq!((l.increases, l.decreases), (102, 3));
    }
}
