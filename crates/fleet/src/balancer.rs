//! Load balancer: least-outstanding routing, health ejection, shedding.
//!
//! Routing is deterministic: among machines that are not ejected (and not
//! explicitly excluded, for hedges), pick the one with the least
//! outstanding load, breaking ties by lowest machine id. Ejection happens
//! when the balancer *observes* a failure — a connect failure or a crash
//! that killed in-flight attempts — or when a periodic health probe finds
//! the machine down; readmission happens only via a probe that finds it
//! up again. Shedding is the admission decision: a request (initial or
//! retry) whose best available machine is already at `contexts +
//! queue_capacity` outstanding, or that finds every machine ejected, is
//! dropped at the door rather than queued into certain timeout.

use crate::machine::Machine;

/// Balancer state: the ejection set plus its decision counters.
#[derive(Debug, Default)]
pub struct Balancer {
    ejected: Vec<bool>,
    /// Ejections performed (first observation only; already-ejected
    /// machines do not re-count).
    pub ejections: u64,
    /// Readmissions performed by health probes.
    pub readmissions: u64,
}

/// Outcome of a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Dispatch to this machine.
    To(usize),
    /// Admission denied: the best machine is saturated or none is in
    /// rotation.
    Shed,
}

impl Balancer {
    /// A balancer over `machines` machines, all in rotation.
    pub fn new(machines: usize) -> Self {
        Self { ejected: vec![false; machines], ejections: 0, readmissions: 0 }
    }

    /// Whether machine `m` is currently out of rotation.
    pub fn is_ejected(&self, m: usize) -> bool {
        self.ejected[m]
    }

    /// Takes `m` out of rotation (observed failure or failed probe).
    pub fn eject(&mut self, m: usize) {
        if !self.ejected[m] {
            self.ejected[m] = true;
            self.ejections += 1;
        }
    }

    /// Puts `m` back in rotation (probe found it up).
    pub fn readmit(&mut self, m: usize) {
        if self.ejected[m] {
            self.ejected[m] = false;
            self.readmissions += 1;
        }
    }

    /// Picks a machine for an attempt, or sheds.
    ///
    /// `exclude` lists machines carrying live sibling attempts of the same
    /// request (hedges should land elsewhere); exclusion is best-effort —
    /// if every in-rotation machine is excluded, the exclusion is lifted
    /// rather than failing the dispatch.
    /// `queue_capacity` bounds the per-machine wait queue.
    pub fn route(&self, machines: &[Machine], exclude: &[usize], queue_capacity: usize) -> Route {
        let pick = |respect_exclude: bool| -> Option<usize> {
            let mut best: Option<(usize, usize)> = None;
            for (m, machine) in machines.iter().enumerate() {
                if self.ejected[m] || (respect_exclude && exclude.contains(&m)) {
                    continue;
                }
                let load = machine.load();
                if best.is_none_or(|(_, bl)| load < bl) {
                    best = Some((m, load));
                }
            }
            best.map(|(m, _)| m)
        };
        let chosen = pick(true).or_else(|| pick(false));
        match chosen {
            Some(m) if machines[m].load() < machines[m].contexts + queue_capacity => Route::To(m),
            _ => Route::Shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(loads: &[usize]) -> Vec<Machine> {
        loads
            .iter()
            .map(|&l| {
                let mut m = Machine::new(4);
                for i in 0..l {
                    m.queue.push_back(i as u32);
                }
                m
            })
            .collect()
    }

    #[test]
    fn routes_to_least_loaded_lowest_id() {
        let machines = fleet(&[3, 1, 1, 2]);
        let b = Balancer::new(4);
        assert_eq!(b.route(&machines, &[], 8), Route::To(1));
    }

    #[test]
    fn ejected_machines_are_skipped_and_readmitted() {
        let machines = fleet(&[0, 5]);
        let mut b = Balancer::new(2);
        b.eject(0);
        b.eject(0);
        assert_eq!(b.ejections, 1);
        assert_eq!(b.route(&machines, &[], 8), Route::To(1));
        b.readmit(0);
        assert_eq!(b.readmissions, 1);
        assert_eq!(b.route(&machines, &[], 8), Route::To(0));
    }

    #[test]
    fn exclusion_is_best_effort() {
        let machines = fleet(&[1, 2]);
        let mut b = Balancer::new(2);
        assert_eq!(b.route(&machines, &[0], 8), Route::To(1));
        // With machine 1 ejected, the exclusion of 0 must be lifted.
        b.eject(1);
        assert_eq!(b.route(&machines, &[0], 8), Route::To(0));
    }

    #[test]
    fn saturation_and_empty_rotation_shed() {
        let machines = fleet(&[12, 12]);
        let mut b = Balancer::new(2);
        assert_eq!(b.route(&machines, &[], 8), Route::Shed);
        let light = fleet(&[0]);
        let mut solo = Balancer::new(1);
        solo.eject(0);
        assert_eq!(solo.route(&light, &[], 8), Route::Shed);
        b.eject(0);
        b.eject(1);
        assert_eq!(b.route(&machines, &[], 8), Route::Shed);
    }
}
