//! The deterministic discrete-event fleet simulator.
//!
//! One simulation is a pure function of ([`FleetConfig`],
//! [`ServiceProfile`]): every random draw flows through seeded streams
//! (arrivals, service times, per-machine and per-domain fault schedules),
//! and every effect — including retries, hedges, crashes, gray episodes,
//! and probes — is an event in a single binary heap ordered by
//! `(time, sequence)`. The sequence number is assigned at scheduling time,
//! so simultaneous events replay in the order they were scheduled; nothing
//! observes allocation order, thread interleaving, or wall-clock time.
//! That is the entire determinism argument, and it is what lets the
//! `fleet_slo` and `fleet_resilience` experiments promise byte-identical
//! results across `--jobs` values and reruns.
//!
//! Feedback-driven load does not weaken the argument: retries, hedges,
//! breaker trips, and AIMD limit moves are all *computed from* prior
//! events and *expressed as* new heap entries, so the closed loop between
//! congestion and offered load is just more events in the same total
//! order. A metastable overload — where recovery-era retry load keeps the
//! fleet saturated long after the triggering burst ends — replays
//! byte-for-byte like any quiet run.
//!
//! ## Request lifecycle
//!
//! A request arrives (open loop), is routed by the balancer, and ends in
//! exactly one of three states:
//!
//! - **completed** — some attempt finished before the client gave up;
//! - **shed** — admission was denied (all machines saturated, barred, or
//!   out of rotation — or the AIMD concurrency limit was reached) with no
//!   live attempt outstanding;
//! - **failed** — the retry schedule or the retry *budget* was exhausted.
//!
//! Attempts are the unit of dispatch: the initial attempt, retries (after
//! an observed timeout/connect/crash failure, delayed by the capped
//! exponential backoff schedule), and hedges (duplicates fired while the
//! initial attempt is still outstanding). A timed-out attempt whose
//! server is still working becomes *abandoned*: the server finishes it
//! anyway and the completed work is counted as wasted — the classic
//! overload amplification that load shedding exists to prevent.
//!
//! ## Gray failures and the mitigation stack
//!
//! A machine in a gray episode stays `up`: probes pass, connects succeed,
//! and the consecutive-failure health ejector never fires. But its service
//! times are inflated (latency factor × the measured memory-pressure
//! inflation) and a seeded fraction of attempts is silently *dropped* —
//! accepted, never served, discovered only by the client's timeout. The
//! defenses are client-side and independently togglable: a token-bucket
//! [`RetryBudget`] bounds retry-storm amplification, a per-machine
//! circuit [`BreakerPolicy`](crate::breaker::BreakerPolicy) trips on
//! consecutive client-observed failures (catching what health checks
//! cannot), and an [`AimdPolicy`] concurrency limit sheds load at the
//! balancer before it can queue into certain timeout.

use crate::arrivals::{ArrivalProcess, Burst};
use crate::balancer::{AimdLimiter, Balancer, Route};
use crate::breaker::{BreakerBank, BreakerPolicy};
use crate::faults::{FaultStreams, FleetFaultPlan};
use crate::machine::Machine;
use crate::policy::{AimdPolicy, HedgePolicy, RetryBudget, RetryPolicy};
use crate::report::{AuditPolicies, FleetStats};
use crate::service::{ServiceProfile, ServiceSampler};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// RNG stream id for the arrival process.
const ARRIVAL_STREAM: u64 = 0xA1;
/// RNG stream id for service-time sampling.
const SERVICE_STREAM: u64 = 0x5E;

/// Full configuration of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of serving machines.
    pub machines: usize,
    /// Hardware contexts per machine (concurrent requests in service).
    pub contexts_per_machine: usize,
    /// Bounded per-machine wait queue; admission beyond
    /// `contexts + queue_capacity` outstanding is shed.
    pub queue_capacity: usize,
    /// Total requests to arrive (open loop).
    pub requests: u64,
    /// Base mean inter-arrival gap, ns.
    pub mean_interarrival_ns: u64,
    /// Optional square-wave burst modulation of the arrival rate.
    pub burst: Option<Burst>,
    /// Service-time multiplier for the scenario (SMT sharing, co-location).
    pub service_inflation: f64,
    /// Client-side per-attempt timeout, ns.
    pub timeout_ns: u64,
    /// Connect timeout for attempts routed to a down machine, ns (must be
    /// below `timeout_ns`).
    pub connect_timeout_ns: u64,
    /// Health-probe period per machine, ns.
    pub probe_interval_ns: u64,
    /// Retry schedule (backoffs in ns).
    pub retry: RetryPolicy,
    /// Optional hedged-request policy.
    pub hedge: Option<HedgePolicy>,
    /// Optional seeded fault plan.
    pub faults: Option<FleetFaultPlan>,
    /// Number of correlated fault domains (racks / power feeds) machines
    /// are assigned to round-robin (`machine % fault_domains`). Zero
    /// disables domain grouping; required >= 1 when the fault plan draws
    /// domain-level events.
    #[serde(default)]
    pub fault_domains: usize,
    /// Optional end of the overload *trigger* era, ns: requests arriving
    /// at or after this instant are additionally tracked in the
    /// recovery-era books (`late_*` stats), which is how a metastable
    /// collapse — or a mitigated recovery — is measured.
    #[serde(default)]
    pub trigger_end_ns: Option<u64>,
    /// Optional client-side retry/hedge token budget.
    #[serde(default)]
    pub retry_budget: Option<RetryBudget>,
    /// Optional per-machine circuit breakers.
    #[serde(default)]
    pub breaker: Option<BreakerPolicy>,
    /// Optional AIMD adaptive concurrency limit at the balancer.
    #[serde(default)]
    pub aimd: Option<AimdPolicy>,
    /// Seed of the arrival and service streams.
    pub seed: u64,
}

/// A rejected [`FleetConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetConfigError {
    /// `machines` is zero.
    NoMachines,
    /// `contexts_per_machine` is zero.
    NoContexts,
    /// `requests` is zero.
    NoRequests,
    /// `mean_interarrival_ns` is zero.
    ZeroInterarrival,
    /// `timeout_ns` is zero.
    ZeroTimeout,
    /// `connect_timeout_ns` is zero or not below `timeout_ns`.
    BadConnectTimeout,
    /// `probe_interval_ns` is zero (ejected machines could never return).
    ZeroProbeInterval,
    /// `service_inflation` is not finite and positive.
    BadInflation,
    /// The service profile's mean is zero.
    ZeroServiceTime,
    /// Burst parameters out of range.
    BadBurst,
    /// Gray-failure parameters out of range (latency factor or memory
    /// inflation below 1 / not finite, or drop rate outside `[0, 1)`).
    BadGray,
    /// The fault plan draws domain-level events but `fault_domains` is 0.
    NoFaultDomains,
    /// Breaker parameters out of range (zero threshold or zero open time).
    BadBreaker,
    /// AIMD parameters out of range (zero floor, floor above ceiling,
    /// zero increase, or decrease percent outside `[1, 99]`).
    BadAimd,
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Self::NoMachines => "fleet needs at least one machine",
            Self::NoContexts => "machines need at least one context",
            Self::NoRequests => "fleet needs at least one request",
            Self::ZeroInterarrival => "mean inter-arrival gap must be positive",
            Self::ZeroTimeout => "request timeout must be positive",
            Self::BadConnectTimeout => "connect timeout must be positive and below the request timeout",
            Self::ZeroProbeInterval => "probe interval must be positive",
            Self::BadInflation => "service inflation must be finite and positive",
            Self::ZeroServiceTime => "service profile mean must be positive",
            Self::BadBurst => "burst needs period > 0, on_fraction in (0,1), amplitude >= 1",
            Self::BadGray => {
                "gray failure needs latency factor and memory inflation finite and >= 1, drop rate in [0,1)"
            }
            Self::NoFaultDomains => {
                "fault plan draws domain-level events; fault_domains must be >= 1"
            }
            Self::BadBreaker => "breaker needs failure_threshold >= 1 and open_ns > 0",
            Self::BadAimd => {
                "aimd needs min_inflight in [1, max_inflight], increase_milli > 0, decrease_pct in [1,99]"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FleetConfigError {}

impl FleetConfig {
    /// Validates the configuration against `profile`.
    pub fn validate(&self, profile: &ServiceProfile) -> Result<(), FleetConfigError> {
        if self.machines == 0 {
            return Err(FleetConfigError::NoMachines);
        }
        if self.contexts_per_machine == 0 {
            return Err(FleetConfigError::NoContexts);
        }
        if self.requests == 0 {
            return Err(FleetConfigError::NoRequests);
        }
        if self.mean_interarrival_ns == 0 {
            return Err(FleetConfigError::ZeroInterarrival);
        }
        if self.timeout_ns == 0 {
            return Err(FleetConfigError::ZeroTimeout);
        }
        if self.connect_timeout_ns == 0 || self.connect_timeout_ns >= self.timeout_ns {
            return Err(FleetConfigError::BadConnectTimeout);
        }
        if self.probe_interval_ns == 0 {
            return Err(FleetConfigError::ZeroProbeInterval);
        }
        if !(self.service_inflation.is_finite() && self.service_inflation > 0.0) {
            return Err(FleetConfigError::BadInflation);
        }
        if profile.mean_service_ns == 0 {
            return Err(FleetConfigError::ZeroServiceTime);
        }
        if let Some(b) = self.burst {
            if b.period_ns == 0
                || !(b.on_fraction > 0.0 && b.on_fraction < 1.0)
                || !(b.amplitude.is_finite() && b.amplitude >= 1.0)
            {
                return Err(FleetConfigError::BadBurst);
            }
        }
        if let Some(p) = self.faults {
            let gray_shape_ok = p.gray_latency_factor.is_finite()
                && p.gray_latency_factor >= 1.0
                && p.gray_memory_inflation.is_finite()
                && p.gray_memory_inflation >= 1.0
                && (0.0..1.0).contains(&p.gray_drop_rate);
            if !gray_shape_ok {
                return Err(FleetConfigError::BadGray);
            }
            if p.wants_domains() && self.fault_domains == 0 {
                return Err(FleetConfigError::NoFaultDomains);
            }
        }
        if let Some(b) = self.breaker {
            if b.failure_threshold == 0 || b.open_ns == 0 {
                return Err(FleetConfigError::BadBreaker);
            }
        }
        if let Some(a) = self.aimd {
            if a.min_inflight == 0
                || a.max_inflight < a.min_inflight
                || a.increase_milli == 0
                || !(1..=99).contains(&a.decrease_pct)
            {
                return Err(FleetConfigError::BadAimd);
            }
        }
        Ok(())
    }

    /// The policy set the `CS_PARANOID` audit checks this config's stats
    /// against.
    pub fn audit_policies(&self) -> AuditPolicies {
        AuditPolicies {
            hedge: self.hedge,
            retry_budget: self.retry_budget,
            breaker: self.breaker,
        }
    }
}

/// What the simulator does when an event fires.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival,
    ServiceDone { attempt: u32 },
    Timeout { attempt: u32 },
    ConnectFail { attempt: u32 },
    HedgeFire { req: u32 },
    RetryFire { req: u32 },
    Crash { machine: usize },
    Recover { machine: usize },
    StragglerStart { machine: usize },
    StragglerEnd { machine: usize },
    GrayStart { machine: usize },
    GrayEnd { machine: usize },
    DomainOutage { domain: usize },
    DomainGray { domain: usize },
    BreakerHalfOpen { machine: usize },
    Probe { machine: usize },
}

/// Heap entry: min-ordered by `(at, seq)` via `Reverse`.
#[derive(Debug)]
struct Scheduled {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Client-visible state of one dispatched attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttState {
    /// Waiting in a machine's queue.
    Queued,
    /// Occupying a context.
    InService,
    /// Routed to a down machine; the connect will fail.
    ConnectPending,
    /// Accepted by a gray machine, then silently dropped: no context is
    /// burned and no completion will ever come — only the client's
    /// timeout (or a winning sibling) resolves it.
    Dropped,
    /// Client gave up (timeout) or a sibling won, but the server is still
    /// working on it; its completion will be wasted.
    Abandoned,
    /// Fully accounted for.
    Terminal,
}

#[derive(Debug)]
struct Att {
    req: u32,
    machine: usize,
    state: AttState,
}

#[derive(Debug)]
struct Req {
    arrived_at: u64,
    resolved: bool,
    retries_used: u32,
    hedges_used: u32,
    /// Arrived at or after `trigger_end_ns` (recovery-era books).
    late: bool,
    /// Live (non-terminal, non-abandoned) attempts of this request.
    live: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
enum DispatchKind {
    Initial,
    Retry,
    Hedge,
}

struct Sim<'a> {
    cfg: &'a FleetConfig,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: u64,
    machines: Vec<Machine>,
    balancer: Balancer,
    breaker: Option<BreakerBank>,
    aimd: Option<AimdLimiter>,
    /// Current retry-budget balance, milli-tokens.
    budget_milli: u64,
    /// Client-side live attempts (the AIMD admission signal).
    outstanding: u64,
    reqs: Vec<Req>,
    atts: Vec<Att>,
    arrivals: ArrivalProcess,
    service_rng: SmallRng,
    sampler: ServiceSampler,
    faults: Option<FaultStreams>,
    stats: FleetStats,
    arrivals_generated: u64,
    resolved: u64,
    last_resolution: u64,
}

/// Runs one simulation to completion.
pub fn simulate(cfg: &FleetConfig, profile: &ServiceProfile) -> Result<FleetStats, FleetConfigError> {
    cfg.validate(profile)?;
    let effective_mean =
        ((profile.mean_service_ns as f64 * cfg.service_inflation) as u64).max(1);
    let mut sim = Sim {
        cfg,
        heap: BinaryHeap::new(),
        seq: 0,
        now: 0,
        machines: (0..cfg.machines).map(|_| Machine::new(cfg.contexts_per_machine)).collect(),
        balancer: Balancer::new(cfg.machines),
        breaker: cfg.breaker.map(|p| BreakerBank::new(p, cfg.machines)),
        aimd: cfg.aimd.map(AimdLimiter::new),
        budget_milli: cfg.retry_budget.map_or(0, |b| b.burst_milli),
        outstanding: 0,
        reqs: Vec::with_capacity(cfg.requests as usize),
        atts: Vec::with_capacity(cfg.requests as usize),
        arrivals: ArrivalProcess::new(
            cfg.mean_interarrival_ns,
            cfg.burst,
            cs_trace::rng::stream_rng(cfg.seed, ARRIVAL_STREAM),
        ),
        service_rng: cs_trace::rng::stream_rng(cfg.seed, SERVICE_STREAM),
        sampler: ServiceSampler::new(effective_mean),
        faults: cfg.faults.map(|p| FaultStreams::new(p, cfg.machines, cfg.fault_domains)),
        stats: FleetStats::default(),
        arrivals_generated: 0,
        resolved: 0,
        last_resolution: 0,
    };
    // The initial bucket balance is granted budget.
    sim.stats.budget_granted_milli = sim.budget_milli;
    sim.run();
    let mut stats = sim.stats;
    stats.ejections = sim.balancer.ejections;
    stats.readmissions = sim.balancer.readmissions;
    if let Some(b) = &sim.breaker {
        stats.breaker_opens = b.opens;
        stats.breaker_half_opens = b.half_opens;
        stats.breaker_closes = b.closes;
    }
    stats.span_ns = sim.last_resolution;
    stats.latencies_ns.sort_unstable();
    stats.late_latencies_ns.sort_unstable();
    Ok(stats)
}

impl Sim<'_> {
    fn schedule(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq: self.seq, ev }));
    }

    /// The fault domain machine `m` belongs to (round-robin assignment).
    fn domain_of(&self, m: usize) -> usize {
        m % self.cfg.fault_domains.max(1)
    }

    fn run(&mut self) {
        let first_gap = self.arrivals.next_gap(0);
        self.schedule(first_gap, Ev::Arrival);
        for m in 0..self.cfg.machines {
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_crash_gap(m)) {
                self.schedule(gap, Ev::Crash { machine: m });
            }
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_straggle_gap(m)) {
                self.schedule(gap, Ev::StragglerStart { machine: m });
            }
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_gray_gap(m)) {
                self.schedule(gap, Ev::GrayStart { machine: m });
            }
            self.schedule(self.cfg.probe_interval_ns, Ev::Probe { machine: m });
        }
        for d in 0..self.cfg.fault_domains {
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_domain_outage_gap(d)) {
                self.schedule(gap, Ev::DomainOutage { domain: d });
            }
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_domain_gray_gap(d)) {
                self.schedule(gap, Ev::DomainGray { domain: d });
            }
        }
        while let Some(Reverse(s)) = self.heap.pop() {
            self.now = s.at;
            self.handle(s.ev);
            // Probes, crashes, and stragglers reschedule themselves forever;
            // the run is over once every request has resolved.
            if self.resolved == self.cfg.requests && self.arrivals_generated == self.cfg.requests
            {
                break;
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival => self.on_arrival(),
            Ev::ServiceDone { attempt } => self.on_service_done(attempt),
            Ev::Timeout { attempt } => self.on_timeout(attempt),
            Ev::ConnectFail { attempt } => self.on_connect_fail(attempt),
            Ev::HedgeFire { req } => self.on_hedge_fire(req),
            Ev::RetryFire { req } => self.on_retry_fire(req),
            Ev::Crash { machine } => self.on_crash(machine),
            Ev::Recover { machine } => self.on_recover(machine),
            Ev::StragglerStart { machine } => self.on_straggler_start(machine),
            Ev::StragglerEnd { machine } => self.on_straggler_end(machine),
            Ev::GrayStart { machine } => self.on_gray_start(machine),
            Ev::GrayEnd { machine } => self.on_gray_end(machine),
            Ev::DomainOutage { domain } => self.on_domain_outage(domain),
            Ev::DomainGray { domain } => self.on_domain_gray(domain),
            Ev::BreakerHalfOpen { machine } => self.on_breaker_half_open(machine),
            Ev::Probe { machine } => self.on_probe(machine),
        }
    }

    fn on_arrival(&mut self) {
        self.arrivals_generated += 1;
        self.stats.arrived += 1;
        if let Some(b) = self.cfg.retry_budget {
            let credit = b.fill_milli.min(b.burst_milli.saturating_sub(self.budget_milli));
            self.budget_milli += credit;
            self.stats.budget_granted_milli += credit;
        }
        let late = self.cfg.trigger_end_ns.is_some_and(|t| self.now >= t);
        if late {
            self.stats.late_arrived += 1;
        }
        let r = self.reqs.len() as u32;
        self.reqs.push(Req {
            arrived_at: self.now,
            resolved: false,
            retries_used: 0,
            hedges_used: 0,
            late,
            live: Vec::new(),
        });
        self.dispatch(r, DispatchKind::Initial);
        if self.arrivals_generated < self.cfg.requests {
            let gap = self.arrivals.next_gap(self.now);
            self.schedule(self.now + gap, Ev::Arrival);
        }
    }

    /// Withdraws the budget token an extra attempt costs. Initial attempts
    /// are free; retries and hedges pay 1000 milli-tokens at *dispatch*
    /// (not scheduling) so the spent book exactly matches the attempt
    /// counters. Returns whether the dispatch may proceed.
    fn pay_for_dispatch(&mut self, r: u32, kind: DispatchKind) -> bool {
        if matches!(kind, DispatchKind::Initial) || self.cfg.retry_budget.is_none() {
            return true;
        }
        if self.budget_milli >= 1000 {
            self.budget_milli -= 1000;
            self.stats.budget_spent_milli += 1000;
            return true;
        }
        self.stats.budget_denied += 1;
        // A denied retry fails the request (no sibling is racing); a
        // denied hedge is simply skipped (the original attempt races on).
        if matches!(kind, DispatchKind::Retry) {
            self.resolve_failed(r);
        }
        false
    }

    /// Routes one attempt of request `r`. Sheds the request on admission
    /// denial (hedges are skipped silently instead — the request still has
    /// a live attempt racing).
    fn dispatch(&mut self, r: u32, kind: DispatchKind) {
        if let Some(l) = &self.aimd {
            if !l.admits(self.outstanding) {
                self.stats.aimd_throttled += 1;
                if !matches!(kind, DispatchKind::Hedge) {
                    self.resolve_shed(r);
                }
                return;
            }
        }
        let exclude: Vec<usize> =
            self.reqs[r as usize].live.iter().map(|&a| self.atts[a as usize].machine).collect();
        let breaker = self.breaker.as_ref();
        let route = self.balancer.route(&self.machines, &exclude, self.cfg.queue_capacity, |m| {
            breaker.is_some_and(|b| !b.allows(m))
        });
        match route {
            Route::Shed => {
                if !matches!(kind, DispatchKind::Hedge) {
                    self.resolve_shed(r);
                }
            }
            Route::To(m) => {
                if !self.pay_for_dispatch(r, kind) {
                    return;
                }
                let a = self.atts.len() as u32;
                self.stats.attempts += 1;
                match kind {
                    DispatchKind::Initial => self.stats.initial_attempts += 1,
                    DispatchKind::Retry => self.stats.retries += 1,
                    DispatchKind::Hedge => self.stats.hedges += 1,
                }
                if let Some(b) = self.breaker.as_mut() {
                    b.on_dispatch(m);
                }
                let start_now = self.machines[m].up && self.machines[m].has_free_context();
                let state = if !self.machines[m].up {
                    self.schedule(self.now + self.cfg.connect_timeout_ns, Ev::ConnectFail {
                        attempt: a,
                    });
                    AttState::ConnectPending
                } else if start_now {
                    AttState::InService
                } else {
                    self.machines[m].queue.push_back(a);
                    AttState::Queued
                };
                self.atts.push(Att { req: r, machine: m, state });
                self.reqs[r as usize].live.push(a);
                self.outstanding += 1;
                self.schedule(self.now + self.cfg.timeout_ns, Ev::Timeout { attempt: a });
                if start_now {
                    self.begin_service(a);
                }
                // Hedging covers the initial attempt's window only.
                if matches!(kind, DispatchKind::Initial) {
                    if let Some(h) = self.cfg.hedge {
                        if h.max_hedges > 0 {
                            self.schedule(self.now + h.delay_ns, Ev::HedgeFire { req: r });
                        }
                    }
                }
            }
        }
    }

    /// Puts attempt `a` into service on its machine and schedules its
    /// completion (inflated while the machine is straggling or gray). On a
    /// gray machine a seeded draw may instead *drop* the attempt: the
    /// context stays free and nothing ever completes — the failure mode a
    /// health check cannot see.
    fn begin_service(&mut self, a: u32) {
        let m = self.atts[a as usize].machine;
        if self.machines[m].gray {
            if let Some(f) = self.faults.as_mut() {
                if f.draw_gray_drop(m) {
                    self.atts[a as usize].state = AttState::Dropped;
                    self.stats.gray_dropped += 1;
                    return;
                }
            }
        }
        self.atts[a as usize].state = AttState::InService;
        self.machines[m].in_service.push(a);
        let mut svc = self.sampler.sample(&mut self.service_rng);
        if self.machines[m].slow {
            let factor = self.faults.as_ref().map_or(1.0, |f| f.plan().straggler_factor);
            svc = (svc as f64 * factor) as u64;
        }
        if self.machines[m].gray {
            let factor = self.faults.as_ref().map_or(1.0, |f| f.plan().gray_service_factor());
            svc = (svc as f64 * factor) as u64;
        }
        self.schedule(self.now + svc.max(1), Ev::ServiceDone { attempt: a });
    }

    /// Starts queued attempts while contexts are free.
    fn pull_queue(&mut self, m: usize) {
        while self.machines[m].up
            && self.machines[m].has_free_context()
            && !self.machines[m].queue.is_empty()
        {
            if let Some(a) = self.machines[m].queue.pop_front() {
                self.begin_service(a);
            }
        }
    }

    /// Feeds a client-observed success on machine `m` to the mitigation
    /// stack.
    fn note_attempt_success(&mut self, m: usize) {
        if let Some(b) = self.breaker.as_mut() {
            b.on_success(m);
        }
        if let Some(l) = self.aimd.as_mut() {
            l.on_success();
        }
    }

    /// Feeds a client-observed failure on machine `m` (timeout, connect
    /// failure, crash) to the mitigation stack; a breaker trip schedules
    /// its deterministic half-open probe.
    fn note_attempt_failure(&mut self, m: usize) {
        let mut open_ns = None;
        if let Some(b) = self.breaker.as_mut() {
            if b.on_failure(m) {
                open_ns = Some(b.policy().open_ns.max(1));
            }
        }
        if let Some(open) = open_ns {
            self.schedule(self.now + open, Ev::BreakerHalfOpen { machine: m });
        }
        if let Some(l) = self.aimd.as_mut() {
            l.on_failure();
        }
    }

    fn on_service_done(&mut self, a: u32) {
        let m = self.atts[a as usize].machine;
        match self.atts[a as usize].state {
            AttState::InService => {
                self.machines[m].release(a);
                self.atts[a as usize].state = AttState::Terminal;
                self.stats.won_attempts += 1;
                self.note_attempt_success(m);
                self.resolve_completed(a);
                self.pull_queue(m);
            }
            AttState::Abandoned => {
                self.machines[m].release(a);
                self.atts[a as usize].state = AttState::Terminal;
                self.stats.wasted_completions += 1;
                self.pull_queue(m);
            }
            // A crash already drained it; the stale completion is void.
            _ => {}
        }
    }

    fn on_timeout(&mut self, a: u32) {
        let m = self.atts[a as usize].machine;
        match self.atts[a as usize].state {
            AttState::Queued => {
                self.machines[m].unqueue(a);
                self.atts[a as usize].state = AttState::Terminal;
                self.stats.timeouts += 1;
                self.note_attempt_failure(m);
                self.attempt_failed(a);
            }
            AttState::InService => {
                // The client gives up; the server keeps burning the context.
                self.atts[a as usize].state = AttState::Abandoned;
                self.stats.timeouts += 1;
                self.note_attempt_failure(m);
                self.attempt_failed(a);
            }
            AttState::Dropped => {
                // The gray machine swallowed it; the timeout is the only
                // signal the client ever gets.
                self.atts[a as usize].state = AttState::Terminal;
                self.stats.timeouts += 1;
                self.note_attempt_failure(m);
                self.attempt_failed(a);
            }
            AttState::ConnectPending => {
                // Defensive: unreachable while connect_timeout < timeout.
                self.atts[a as usize].state = AttState::Terminal;
                self.stats.timeouts += 1;
                self.note_attempt_failure(m);
                self.attempt_failed(a);
            }
            AttState::Abandoned | AttState::Terminal => {}
        }
    }

    fn on_connect_fail(&mut self, a: u32) {
        if self.atts[a as usize].state != AttState::ConnectPending {
            return;
        }
        self.atts[a as usize].state = AttState::Terminal;
        self.stats.connect_failures += 1;
        // A failed connect is an observed machine failure.
        let m = self.atts[a as usize].machine;
        self.balancer.eject(m);
        self.note_attempt_failure(m);
        self.attempt_failed(a);
    }

    /// Client-side bookkeeping after attempt `a` failed (timeout, connect
    /// failure, or crash): if no sibling is still racing, schedule a retry
    /// or give up.
    fn attempt_failed(&mut self, a: u32) {
        let r = self.atts[a as usize].req;
        let req = &mut self.reqs[r as usize];
        let before = req.live.len();
        req.live.retain(|&x| x != a);
        if req.live.len() != before {
            self.outstanding -= 1;
        }
        if req.resolved || !req.live.is_empty() {
            return;
        }
        if req.retries_used < self.cfg.retry.max_retries {
            let backoff = self.cfg.retry.backoff(req.retries_used);
            req.retries_used += 1;
            self.schedule(self.now + backoff, Ev::RetryFire { req: r });
        } else {
            self.resolve_failed(r);
        }
    }

    fn on_retry_fire(&mut self, r: u32) {
        if self.reqs[r as usize].resolved {
            return;
        }
        self.dispatch(r, DispatchKind::Retry);
    }

    fn on_hedge_fire(&mut self, r: u32) {
        let Some(h) = self.cfg.hedge else { return };
        let req = &mut self.reqs[r as usize];
        if req.resolved || req.live.is_empty() || req.hedges_used >= h.max_hedges {
            return;
        }
        // The hedge consumes its slot even if routing (or the retry
        // budget) then skips it — the fire/skip decision must not depend
        // on transient queue state in a way that could re-arm the timer
        // forever.
        req.hedges_used += 1;
        let rearm = req.hedges_used < h.max_hedges;
        self.dispatch(r, DispatchKind::Hedge);
        if rearm {
            self.schedule(self.now + h.delay_ns, Ev::HedgeFire { req: r });
        }
    }

    /// Takes machine `m` down right now: drains its work, fails the
    /// drained attempts, and schedules recovery. Shared by independent
    /// crashes and correlated domain outages; the caller guarantees the
    /// machine is up.
    fn crash_machine(&mut self, m: usize) {
        self.stats.machine_failures += 1;
        self.machines[m].up = false;
        self.machines[m].slow = false;
        let (serving, queued) = self.machines[m].drain();
        let mut observed = false;
        let mut failed: Vec<u32> = Vec::new();
        for a in serving.into_iter().chain(queued) {
            match self.atts[a as usize].state {
                AttState::InService | AttState::Queued => {
                    self.atts[a as usize].state = AttState::Terminal;
                    self.stats.crash_failures += 1;
                    observed = true;
                    failed.push(a);
                }
                // Abandoned work dies with the machine; it was already
                // accounted for when the client gave it up.
                AttState::Abandoned => self.atts[a as usize].state = AttState::Terminal,
                _ => {}
            }
        }
        if observed {
            self.balancer.eject(m);
        }
        for a in failed {
            self.note_attempt_failure(m);
            self.attempt_failed(a);
        }
        let repair = self.faults.as_ref().map_or(1, |f| f.plan().repair_ns.max(1));
        self.schedule(self.now + repair, Ev::Recover { machine: m });
    }

    fn on_crash(&mut self, m: usize) {
        // A machine already down (correlated domain outage) cannot crash
        // again; its pending Recover stands.
        if self.machines[m].up {
            self.crash_machine(m);
        }
        let repair = self.faults.as_ref().map_or(1, |f| f.plan().repair_ns.max(1));
        let up_at = self.now + repair;
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_crash_gap(m)) {
            self.schedule(up_at + gap, Ev::Crash { machine: m });
        }
    }

    fn on_recover(&mut self, m: usize) {
        self.machines[m].up = true;
        self.stats.recoveries += 1;
        // Rotation waits for a probe: readmission is a balancer decision,
        // not a machine event.
    }

    fn on_straggler_start(&mut self, m: usize) {
        let plan = self.faults.as_ref().map(|f| *f.plan());
        let Some(p) = plan else { return };
        if self.machines[m].up && !self.machines[m].slow {
            self.machines[m].slow = true;
            self.stats.straggler_episodes += 1;
            let end = self.now + p.straggler_duration_ns.max(1);
            self.schedule(end, Ev::StragglerEnd { machine: m });
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_straggle_gap(m)) {
                self.schedule(end + gap, Ev::StragglerStart { machine: m });
            }
        } else if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_straggle_gap(m)) {
            self.schedule(self.now + gap, Ev::StragglerStart { machine: m });
        }
    }

    fn on_straggler_end(&mut self, m: usize) {
        self.machines[m].slow = false;
    }

    /// Puts machine `m` into a gray episode (if it is up and not already
    /// gray) and schedules its end. Shared by per-machine draws and
    /// domain-wide events.
    fn start_gray(&mut self, m: usize, duration_ns: u64) -> bool {
        if !self.machines[m].up || self.machines[m].gray {
            return false;
        }
        self.machines[m].gray = true;
        self.stats.gray_episodes += 1;
        self.schedule(self.now + duration_ns.max(1), Ev::GrayEnd { machine: m });
        true
    }

    fn on_gray_start(&mut self, m: usize) {
        let plan = self.faults.as_ref().map(|f| *f.plan());
        let Some(p) = plan else { return };
        if self.start_gray(m, p.gray_duration_ns) {
            let end = self.now + p.gray_duration_ns.max(1);
            if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_gray_gap(m)) {
                self.schedule(end + gap, Ev::GrayStart { machine: m });
            }
        } else if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_gray_gap(m)) {
            self.schedule(self.now + gap, Ev::GrayStart { machine: m });
        }
    }

    fn on_gray_end(&mut self, m: usize) {
        self.machines[m].gray = false;
    }

    /// A correlated outage takes every up machine in domain `d` down at
    /// the same instant — the failure shape i.i.d. crash draws can never
    /// produce.
    fn on_domain_outage(&mut self, d: usize) {
        self.stats.domain_outages += 1;
        for m in 0..self.cfg.machines {
            if self.domain_of(m) == d && self.machines[m].up {
                self.crash_machine(m);
            }
        }
        let repair = self.faults.as_ref().map_or(1, |f| f.plan().repair_ns.max(1));
        let up_at = self.now + repair;
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_domain_outage_gap(d)) {
            self.schedule(up_at + gap, Ev::DomainOutage { domain: d });
        }
    }

    /// A domain-wide gray episode: every up machine in `d` degrades
    /// together (shared ToR switch, shared power feed, noisy neighbor on
    /// shared storage).
    fn on_domain_gray(&mut self, d: usize) {
        let plan = self.faults.as_ref().map(|f| *f.plan());
        let Some(p) = plan else { return };
        self.stats.domain_gray_episodes += 1;
        for m in 0..self.cfg.machines {
            if self.domain_of(m) == d {
                self.start_gray(m, p.gray_duration_ns);
            }
        }
        let end = self.now + p.gray_duration_ns.max(1);
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.next_domain_gray_gap(d)) {
            self.schedule(end + gap, Ev::DomainGray { domain: d });
        }
    }

    fn on_breaker_half_open(&mut self, m: usize) {
        if let Some(b) = self.breaker.as_mut() {
            b.on_half_open_timer(m);
        }
    }

    fn on_probe(&mut self, m: usize) {
        self.stats.probes += 1;
        // Gray machines are `up`: the probe passes and the ejector stays
        // blind — only the breaker's failure counting can catch them.
        if self.machines[m].up {
            self.balancer.readmit(m);
        } else {
            self.balancer.eject(m);
        }
        self.schedule(self.now + self.cfg.probe_interval_ns, Ev::Probe { machine: m });
    }

    /// The winning attempt `a` completes its request: record the latency
    /// and cancel every sibling still racing.
    fn resolve_completed(&mut self, a: u32) {
        let r = self.atts[a as usize].req;
        let req = &mut self.reqs[r as usize];
        req.resolved = true;
        let late = req.late;
        let latency = self.now - req.arrived_at;
        let drained: Vec<u32> = req.live.drain(..).collect();
        self.outstanding -= drained.len() as u64;
        self.stats.completed += 1;
        self.stats.latencies_ns.push(latency);
        if late {
            self.stats.late_completed += 1;
            self.stats.late_latencies_ns.push(latency);
        }
        for s in drained.into_iter().filter(|&x| x != a) {
            let sm = self.atts[s as usize].machine;
            match self.atts[s as usize].state {
                AttState::Queued => {
                    self.machines[sm].unqueue(s);
                    self.atts[s as usize].state = AttState::Terminal;
                    self.stats.cancelled += 1;
                }
                AttState::InService => {
                    // Too late to pull it off the context; the server will
                    // finish and the completion is wasted.
                    self.atts[s as usize].state = AttState::Abandoned;
                    self.stats.cancelled += 1;
                }
                AttState::ConnectPending | AttState::Dropped => {
                    self.atts[s as usize].state = AttState::Terminal;
                    self.stats.cancelled += 1;
                }
                AttState::Abandoned | AttState::Terminal => continue,
            }
            // A cancelled half-open trial yields its slot; cancellation is
            // not a health signal.
            if let Some(b) = self.breaker.as_mut() {
                b.on_cancel(sm);
            }
        }
        self.note_resolution();
    }

    fn resolve_shed(&mut self, r: u32) {
        self.reqs[r as usize].resolved = true;
        self.stats.shed += 1;
        self.note_resolution();
    }

    fn resolve_failed(&mut self, r: u32) {
        self.reqs[r as usize].resolved = true;
        self.stats.failed += 1;
        self.note_resolution();
    }

    fn note_resolution(&mut self) {
        self.resolved += 1;
        self.last_resolution = self.now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ServiceProfile {
        ServiceProfile {
            workload: "Test".into(),
            mean_service_ns: 10_000,
            smt_inflation: 1.3,
            colocation_inflation: 1.2,
        }
    }

    fn base_cfg() -> FleetConfig {
        FleetConfig {
            machines: 4,
            contexts_per_machine: 4,
            queue_capacity: 16,
            requests: 5_000,
            mean_interarrival_ns: 1_000,
            burst: None,
            service_inflation: 1.0,
            timeout_ns: 100_000,
            connect_timeout_ns: 10_000,
            probe_interval_ns: 200_000,
            retry: RetryPolicy { max_retries: 3, base: 20_000, factor: 2, cap: 160_000 },
            hedge: Some(HedgePolicy { delay_ns: 60_000, max_hedges: 1 }),
            faults: None,
            fault_domains: 0,
            trigger_end_ns: None,
            retry_budget: None,
            breaker: None,
            aimd: None,
            seed: 42,
        }
    }

    fn gray_plan() -> FleetFaultPlan {
        FleetFaultPlan::gray(600_000, 400_000, 4.0, 0.3, 7).with_gray_memory_inflation(1.2)
    }

    #[test]
    fn healthy_fleet_completes_everything() {
        let stats = simulate(&base_cfg(), &profile()).expect("simulate");
        assert_eq!(stats.arrived, 5_000);
        assert_eq!(stats.completed + stats.shed + stats.failed, 5_000);
        assert_eq!(stats.machine_failures, 0);
        assert!(stats.completed > 4_900, "healthy fleet lost {} requests", stats.failed);
        assert!(stats.p50_ns() <= stats.p99_ns() && stats.p99_ns() <= stats.p999_ns());
        stats.audit(&base_cfg().audit_policies()).expect("audit");
    }

    #[test]
    fn identical_configs_replay_identically() {
        let a = simulate(&base_cfg(), &profile()).expect("simulate");
        let b = simulate(&base_cfg(), &profile()).expect("simulate");
        assert_eq!(a, b);
        let different = FleetConfig { seed: 43, ..base_cfg() };
        let c = simulate(&different, &profile()).expect("simulate");
        assert_ne!(a, c);
    }

    #[test]
    fn overload_sheds_and_books_stay_balanced() {
        let cfg = FleetConfig {
            machines: 1,
            contexts_per_machine: 1,
            queue_capacity: 2,
            requests: 2_000,
            mean_interarrival_ns: 2_000, // 5x oversubscribed vs 10us service
            hedge: None,
            ..base_cfg()
        };
        let stats = simulate(&cfg, &profile()).expect("simulate");
        assert!(stats.shed > 0, "5x overload with a 2-deep queue must shed");
        assert_eq!(stats.arrived, stats.completed + stats.shed + stats.failed);
        stats.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn crashes_provoke_retries_and_recoveries() {
        let cfg = FleetConfig {
            faults: Some(FleetFaultPlan::crashes(2_000_000, 300_000, 7)),
            ..base_cfg()
        };
        let stats = simulate(&cfg, &profile()).expect("simulate");
        assert!(stats.machine_failures > 0, "crash plan must crash machines");
        assert!(stats.crash_failures + stats.connect_failures > 0);
        assert!(stats.retries > 0, "failures must provoke retries");
        assert!(stats.ejections > 0 && stats.readmissions > 0);
        assert!(stats.recoveries > 0);
        stats.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn stragglers_stretch_the_tail() {
        let quiet = simulate(&base_cfg(), &profile()).expect("simulate");
        let cfg = FleetConfig {
            faults: Some(FleetFaultPlan::stragglers(1_000_000, 400_000, 16.0, 7)),
            ..base_cfg()
        };
        let slow = simulate(&cfg, &profile()).expect("simulate");
        assert!(slow.straggler_episodes > 0);
        assert!(
            slow.p999_ns() > quiet.p999_ns(),
            "16x stragglers must stretch p999: {} vs {}",
            slow.p999_ns(),
            quiet.p999_ns()
        );
        stats_audit_both(&quiet, &slow, &cfg.audit_policies());
    }

    fn stats_audit_both(a: &FleetStats, b: &FleetStats, policies: &AuditPolicies) {
        a.audit(policies).expect("audit quiet");
        b.audit(policies).expect("audit slow");
    }

    #[test]
    fn tiny_timeouts_exhaust_the_retry_budget() {
        let cfg = FleetConfig {
            timeout_ns: 3_000, // below most service times
            connect_timeout_ns: 1_000,
            retry: RetryPolicy { max_retries: 2, base: 1_000, factor: 2, cap: 4_000 },
            hedge: None,
            requests: 500,
            ..base_cfg()
        };
        let stats = simulate(&cfg, &profile()).expect("simulate");
        assert!(stats.timeouts > 0);
        assert!(stats.failed > 0, "2 retries under a 3us timeout must fail some requests");
        assert!(stats.wasted_completions > 0, "abandoned work must show up as waste");
        stats.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn gray_episodes_degrade_without_tripping_the_ejector() {
        let quiet = simulate(&base_cfg(), &profile()).expect("simulate");
        let cfg = FleetConfig { faults: Some(gray_plan()), ..base_cfg() };
        let gray = simulate(&cfg, &profile()).expect("simulate");
        assert!(gray.gray_episodes > 0, "gray plan must start episodes");
        assert!(gray.gray_dropped > 0, "a 30% drop rate must swallow attempts");
        assert!(gray.timeouts > quiet.timeouts, "drops surface as client timeouts");
        assert!(
            gray.p999_ns() > quiet.p999_ns(),
            "gray latency inflation must stretch the tail: {} vs {}",
            gray.p999_ns(),
            quiet.p999_ns()
        );
        // The defining property: the health ejector never fires, because
        // gray machines stay up (no connect failures, no crash kills).
        assert_eq!(gray.ejections, 0, "gray failures must evade the health ejector");
        assert_eq!(gray.machine_failures, 0);
        stats_audit_both(&quiet, &gray, &cfg.audit_policies());
    }

    #[test]
    fn breaker_catches_gray_machines_the_ejector_cannot() {
        let cfg = FleetConfig {
            faults: Some(gray_plan()),
            breaker: Some(BreakerPolicy { failure_threshold: 4, open_ns: 200_000 }),
            ..base_cfg()
        };
        let stats = simulate(&cfg, &profile()).expect("simulate");
        assert_eq!(stats.ejections, 0, "the ejector stays blind");
        assert!(stats.breaker_opens > 0, "the breaker must trip on timeout streaks");
        assert!(stats.breaker_half_opens > 0, "open breakers must probe again");
        assert!(stats.breaker_half_opens <= stats.breaker_opens);
        assert!(stats.breaker_closes <= stats.breaker_half_opens);
        stats.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn domain_outages_correlate_failures() {
        let cfg = FleetConfig {
            faults: Some(FleetFaultPlan::domain_outages(2_000_000, 300_000, 11)),
            fault_domains: 2,
            ..base_cfg()
        };
        let stats = simulate(&cfg, &profile()).expect("simulate");
        assert!(stats.domain_outages > 0, "domain plan must draw outages");
        // Every outage of a 4-machine / 2-domain fleet kills 2 machines at
        // the same instant: machine failures come in correlated pairs.
        assert_eq!(stats.machine_failures, 2 * stats.domain_outages);
        assert!(stats.recoveries > 0);
        stats.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn retry_budget_bounds_extra_attempts_and_denies_over_budget_retries() {
        let storm = FleetConfig {
            timeout_ns: 3_000,
            connect_timeout_ns: 1_000,
            retry: RetryPolicy { max_retries: 8, base: 1_000, factor: 2, cap: 4_000 },
            hedge: None,
            requests: 800,
            ..base_cfg()
        };
        let unbounded = simulate(&storm, &profile()).expect("simulate");
        let budget = RetryBudget { fill_milli: 200, burst_milli: 2_000 };
        let bounded_cfg = FleetConfig { retry_budget: Some(budget), ..storm.clone() };
        let bounded = simulate(&bounded_cfg, &profile()).expect("simulate");
        assert!(
            bounded.retries < unbounded.retries,
            "a 20% budget must cut the retry storm: {} vs {}",
            bounded.retries,
            unbounded.retries
        );
        assert!(bounded.budget_denied > 0, "the storm must hit the budget ceiling");
        let extra_milli = (bounded.retries + bounded.hedges) * 1000;
        assert_eq!(bounded.budget_spent_milli, extra_milli);
        assert!(
            extra_milli <= budget.burst_milli + bounded.arrived * budget.fill_milli,
            "spent {extra_milli} over grant cap"
        );
        unbounded.audit(&storm.audit_policies()).expect("audit unbounded");
        bounded.audit(&bounded_cfg.audit_policies()).expect("audit bounded");
    }

    #[test]
    fn aimd_limit_sheds_before_the_queues_do() {
        let overload = FleetConfig {
            machines: 2,
            contexts_per_machine: 2,
            queue_capacity: 8,
            requests: 2_000,
            mean_interarrival_ns: 1_500,
            hedge: None,
            ..base_cfg()
        };
        let cfg = FleetConfig {
            aimd: Some(AimdPolicy {
                min_inflight: 2,
                max_inflight: 8,
                increase_milli: 100,
                decrease_pct: 30,
            }),
            ..overload.clone()
        };
        let with = simulate(&cfg, &profile()).expect("simulate");
        assert!(with.aimd_throttled > 0, "overload must hit the concurrency limit");
        stats_audit_both(
            &simulate(&overload, &profile()).expect("simulate"),
            &with,
            &cfg.audit_policies(),
        );
    }

    #[test]
    fn trigger_era_books_split_arrivals() {
        let cfg = FleetConfig { trigger_end_ns: Some(2_000_000), ..base_cfg() };
        let stats = simulate(&cfg, &profile()).expect("simulate");
        assert!(stats.late_arrived > 0, "a 5ms run must have post-trigger arrivals");
        assert!(stats.late_arrived < stats.arrived);
        assert_eq!(stats.late_latencies_ns.len() as u64, stats.late_completed);
        assert!(stats.late_slo_attainment(u64::MAX) > 0.99);
        stats.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn mitigated_runs_replay_identically_too() {
        let cfg = FleetConfig {
            faults: Some(gray_plan()),
            fault_domains: 2,
            retry_budget: Some(RetryBudget { fill_milli: 500, burst_milli: 4_000 }),
            breaker: Some(BreakerPolicy { failure_threshold: 4, open_ns: 150_000 }),
            aimd: Some(AimdPolicy {
                min_inflight: 4,
                max_inflight: 64,
                increase_milli: 250,
                decrease_pct: 25,
            }),
            trigger_end_ns: Some(1_000_000),
            ..base_cfg()
        };
        let a = simulate(&cfg, &profile()).expect("simulate");
        let b = simulate(&cfg, &profile()).expect("simulate");
        assert_eq!(a, b, "the full mitigation stack must stay byte-deterministic");
        a.audit(&cfg.audit_policies()).expect("audit");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let p = profile();
        let ok = base_cfg();
        assert!(ok.validate(&p).is_ok());
        let bad_gray = FleetFaultPlan { gray_drop_rate: 1.5, ..gray_plan() };
        let domain_plan = FleetFaultPlan::domain_outages(1_000, 100, 1);
        let cases = [
            (FleetConfig { machines: 0, ..ok.clone() }, FleetConfigError::NoMachines),
            (FleetConfig { contexts_per_machine: 0, ..ok.clone() }, FleetConfigError::NoContexts),
            (FleetConfig { requests: 0, ..ok.clone() }, FleetConfigError::NoRequests),
            (
                FleetConfig { mean_interarrival_ns: 0, ..ok.clone() },
                FleetConfigError::ZeroInterarrival,
            ),
            (FleetConfig { timeout_ns: 0, ..ok.clone() }, FleetConfigError::ZeroTimeout),
            (
                FleetConfig { connect_timeout_ns: 200_000, ..ok.clone() },
                FleetConfigError::BadConnectTimeout,
            ),
            (
                FleetConfig { probe_interval_ns: 0, ..ok.clone() },
                FleetConfigError::ZeroProbeInterval,
            ),
            (FleetConfig { service_inflation: 0.0, ..ok.clone() }, FleetConfigError::BadInflation),
            (
                FleetConfig {
                    burst: Some(Burst { period_ns: 0, on_fraction: 0.5, amplitude: 2.0 }),
                    ..ok.clone()
                },
                FleetConfigError::BadBurst,
            ),
            (FleetConfig { faults: Some(bad_gray), ..ok.clone() }, FleetConfigError::BadGray),
            (
                FleetConfig { faults: Some(domain_plan), fault_domains: 0, ..ok.clone() },
                FleetConfigError::NoFaultDomains,
            ),
            (
                FleetConfig {
                    breaker: Some(BreakerPolicy { failure_threshold: 0, open_ns: 10 }),
                    ..ok.clone()
                },
                FleetConfigError::BadBreaker,
            ),
            (
                FleetConfig {
                    aimd: Some(AimdPolicy {
                        min_inflight: 4,
                        max_inflight: 2,
                        increase_milli: 100,
                        decrease_pct: 30,
                    }),
                    ..ok.clone()
                },
                FleetConfigError::BadAimd,
            ),
            (
                FleetConfig {
                    aimd: Some(AimdPolicy {
                        min_inflight: 1,
                        max_inflight: 2,
                        increase_milli: 100,
                        decrease_pct: 100,
                    }),
                    ..ok.clone()
                },
                FleetConfigError::BadAimd,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(&p).expect_err("must reject"), want);
        }
        let dead = ServiceProfile { mean_service_ns: 0, ..p };
        assert_eq!(ok.validate(&dead).expect_err("must reject"), FleetConfigError::ZeroServiceTime);
    }
}
