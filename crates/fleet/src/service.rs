//! Per-workload service-time models.
//!
//! The harness measures how many requests a workload completes in a
//! simulated window; `cs-core` turns that into a [`ServiceProfile`] — the
//! mean time one hardware context spends serving one request, plus the
//! inflation factors observed under SMT sharing (fig. 3 methodology) and
//! LLC co-location (fig. 4 methodology). The fleet simulator samples
//! per-request service times from an exponential body around that mean,
//! floored so a request is never free and capped so a single sample cannot
//! dominate a percentile on its own (stragglers are modeled explicitly by
//! the fault plan, not by the service distribution's tail).

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Measured service-time characteristics of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Workload name (matches the benchmark registry).
    pub workload: String,
    /// Mean service time of one request on one dedicated context, in ns.
    pub mean_service_ns: u64,
    /// Per-context service-time inflation when the sibling SMT thread is
    /// busy (>= 1 in practice; the model only requires > 0).
    pub smt_inflation: f64,
    /// Service-time inflation when co-located with a cache-hungry tenant.
    pub colocation_inflation: f64,
}

/// Smallest sample, as a fraction of the mean (1/8).
const FLOOR_SHIFT: u32 = 3;
/// Largest sample, as a multiple of the mean.
const CAP_FACTOR: u64 = 32;

/// Deterministic sampler for per-request service times.
///
/// Samples `mean * -ln(1 - u)` (an exponential body), clamped to
/// `[mean/8, 32*mean]`. All draws come from the seeded RNG handed in by
/// the simulator, so a (config, seed) pair always produces the same
/// service-time sequence.
#[derive(Debug)]
pub struct ServiceSampler {
    mean_ns: f64,
}

impl ServiceSampler {
    /// Builds a sampler around an effective mean (profile mean times any
    /// inflation the scenario applies).
    pub fn new(mean_ns: u64) -> Self {
        Self { mean_ns: mean_ns.max(1) as f64 }
    }

    /// Draws one service time in nanoseconds.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen::<f64>().min(1.0 - f64::EPSILON);
        let raw = self.mean_ns * -(1.0 - u).ln();
        let floor = (self.mean_ns as u64) >> FLOOR_SHIFT;
        let cap = (self.mean_ns as u64).saturating_mul(CAP_FACTOR);
        (raw as u64).clamp(floor.max(1), cap.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::rng::stream_rng;

    #[test]
    fn samples_are_deterministic() {
        let s = ServiceSampler::new(10_000);
        let mut a = stream_rng(1, 2);
        let mut b = stream_rng(1, 2);
        let xs: Vec<u64> = (0..64).map(|_| s.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..64).map(|_| s.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn samples_stay_within_floor_and_cap() {
        let s = ServiceSampler::new(8_000);
        let mut rng = stream_rng(3, 0);
        for _ in 0..10_000 {
            let x = s.sample(&mut rng);
            assert!((1_000..=256_000).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn mean_is_roughly_respected() {
        let s = ServiceSampler::new(10_000);
        let mut rng = stream_rng(5, 0);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| s.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((8_500.0..11_500.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zero_mean_degrades_to_one_ns() {
        let s = ServiceSampler::new(0);
        let mut rng = stream_rng(7, 0);
        assert!(s.sample(&mut rng) >= 1);
    }
}
