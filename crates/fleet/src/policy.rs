//! Client-side resilience policies: capped exponential backoff and hedging.
//!
//! Both the fleet simulator and the campaign runner in `cs-bench` share
//! [`RetryPolicy`]. The fleet interprets the schedule as nanosecond delays
//! before re-dispatching a failed request; the campaign interprets it as
//! budget multipliers (`max_cycles`, `watchdog_grace`) for re-running a
//! transient-failed experiment. In both cases the schedule is a pure
//! function of the policy — deterministic, monotone non-decreasing, and
//! bounded by the cap — which is what the property tests lock down.

use serde::{Deserialize, Serialize};

/// A capped exponential-backoff retry schedule.
///
/// Attempt `i` (zero-based retry index) backs off by
/// `min(base * factor^i, cap)`, computed in saturating integer arithmetic
/// so pathological policies cannot overflow. A backoff of zero is rounded
/// up to one so that a retry can never be scheduled at the same instant it
/// was provoked (which would make event ordering load-bearing in a way the
/// determinism argument does not cover).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff of the first retry (nanoseconds in the fleet; a unitless
    /// budget multiplier in the campaign runner).
    pub base: u64,
    /// Multiplicative growth per retry.
    pub factor: u32,
    /// Upper bound on any single backoff.
    pub cap: u64,
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self { max_retries: 0, base: 1, factor: 2, cap: 1 }
    }

    /// The backoff before retry `retry_index` (zero-based), i.e.
    /// `min(base * factor^retry_index, cap)`, saturating, and at least 1.
    pub fn backoff(&self, retry_index: u32) -> u64 {
        let factor = u64::from(self.factor.max(1));
        let mut b = self.base.max(1);
        for _ in 0..retry_index {
            b = b.saturating_mul(factor);
            if b >= self.cap {
                break;
            }
        }
        b.min(self.cap.max(1))
    }

    /// The full schedule as a vector, one entry per permitted retry.
    pub fn schedule(&self) -> Vec<u64> {
        (0..self.max_retries).map(|i| self.backoff(i)).collect()
    }
}

/// Hedged-request policy: after `delay_ns` without a response, dispatch a
/// duplicate attempt to a different machine; first completion wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// How long a request must be outstanding before it is hedged.
    pub delay_ns: u64,
    /// Maximum hedges per request.
    pub max_hedges: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_until_the_cap() {
        let p = RetryPolicy { max_retries: 6, base: 100, factor: 2, cap: 1_000 };
        assert_eq!(p.schedule(), vec![100, 200, 400, 800, 1_000, 1_000]);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy { max_retries: 4, base: u64::MAX / 2, factor: u32::MAX, cap: u64::MAX };
        for i in 0..64 {
            assert_eq!(p.backoff(i).max(1), p.backoff(i));
        }
        assert_eq!(p.backoff(63), u64::MAX);
    }

    #[test]
    fn backoff_is_never_zero() {
        let p = RetryPolicy { max_retries: 2, base: 0, factor: 0, cap: 0 };
        assert_eq!(p.backoff(0), 1);
        assert_eq!(p.backoff(9), 1);
    }

    #[test]
    fn none_never_retries() {
        assert!(RetryPolicy::none().schedule().is_empty());
    }
}
