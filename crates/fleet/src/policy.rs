//! Client-side resilience policies: capped exponential backoff and hedging.
//!
//! Both the fleet simulator and the campaign runner in `cs-bench` share
//! [`RetryPolicy`]. The fleet interprets the schedule as nanosecond delays
//! before re-dispatching a failed request; the campaign interprets it as
//! budget multipliers (`max_cycles`, `watchdog_grace`) for re-running a
//! transient-failed experiment. In both cases the schedule is a pure
//! function of the policy — deterministic, monotone non-decreasing, and
//! bounded by the cap — which is what the property tests lock down.

use serde::{Deserialize, Serialize};

/// A capped exponential-backoff retry schedule.
///
/// Attempt `i` (zero-based retry index) backs off by
/// `min(base * factor^i, cap)`, computed in saturating integer arithmetic
/// so pathological policies cannot overflow. A backoff of zero is rounded
/// up to one so that a retry can never be scheduled at the same instant it
/// was provoked (which would make event ordering load-bearing in a way the
/// determinism argument does not cover).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff of the first retry (nanoseconds in the fleet; a unitless
    /// budget multiplier in the campaign runner).
    pub base: u64,
    /// Multiplicative growth per retry.
    pub factor: u32,
    /// Upper bound on any single backoff.
    pub cap: u64,
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self { max_retries: 0, base: 1, factor: 2, cap: 1 }
    }

    /// The backoff before retry `retry_index` (zero-based), i.e.
    /// `min(base * factor^retry_index, cap)`, saturating, and at least 1.
    pub fn backoff(&self, retry_index: u32) -> u64 {
        let factor = u64::from(self.factor.max(1));
        let mut b = self.base.max(1);
        for _ in 0..retry_index {
            b = b.saturating_mul(factor);
            if b >= self.cap {
                break;
            }
        }
        b.min(self.cap.max(1))
    }

    /// The full schedule as a vector, one entry per permitted retry.
    pub fn schedule(&self) -> Vec<u64> {
        (0..self.max_retries).map(|i| self.backoff(i)).collect()
    }
}

/// Hedged-request policy: after `delay_ns` without a response, dispatch a
/// duplicate attempt to a different machine; first completion wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// How long a request must be outstanding before it is hedged.
    pub delay_ns: u64,
    /// Maximum hedges per request.
    pub max_hedges: u32,
}

/// A client-side retry budget: a token bucket that caps how much *extra*
/// load (retries and hedges) the client may add on top of its arrivals.
///
/// Tokens are integer milli-attempts so the books stay exact: each arrival
/// deposits `fill_milli` tokens (capped at `burst_milli`), and each retry
/// or hedge dispatch withdraws 1000. A dispatch that cannot pay is denied
/// — the retry fails the request, the hedge is skipped — which is what
/// breaks the retry-storm feedback loop: extra load is bounded by a fixed
/// fraction of offered load no matter how bad the fleet gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryBudget {
    /// Milli-tokens deposited per arriving request (1000 = one extra
    /// attempt per request; 200 = retries capped at 20% of arrivals).
    pub fill_milli: u64,
    /// Bucket capacity in milli-tokens (also the initial balance), i.e.
    /// the largest burst of extra attempts the client may front-load.
    pub burst_milli: u64,
}

impl RetryBudget {
    /// A budget allowing `percent`% extra attempts with a burst allowance
    /// of `burst` whole attempts.
    pub fn percent(percent: u64, burst: u64) -> Self {
        Self { fill_milli: percent.saturating_mul(10), burst_milli: burst.saturating_mul(1000) }
    }
}

/// AIMD adaptive concurrency limit for the balancer's admission decision.
///
/// The balancer tracks client-side outstanding attempts against a limit
/// expressed in milli-attempts: every success adds `increase_milli`
/// (additive increase), every observed failure multiplies the limit by
/// `(100 - decrease_pct) / 100` (multiplicative decrease), and the limit
/// is clamped to `[min_inflight, max_inflight]` whole attempts. Integer
/// arithmetic throughout keeps the trajectory byte-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AimdPolicy {
    /// Lower clamp on the concurrency limit, in whole attempts (>= 1).
    pub min_inflight: u64,
    /// Upper clamp on the concurrency limit, in whole attempts; also the
    /// starting limit.
    pub max_inflight: u64,
    /// Additive increase per observed success, in milli-attempts.
    pub increase_milli: u64,
    /// Multiplicative decrease per observed failure, in percent `(0, 100)`.
    pub decrease_pct: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_until_the_cap() {
        let p = RetryPolicy { max_retries: 6, base: 100, factor: 2, cap: 1_000 };
        assert_eq!(p.schedule(), vec![100, 200, 400, 800, 1_000, 1_000]);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy { max_retries: 4, base: u64::MAX / 2, factor: u32::MAX, cap: u64::MAX };
        for i in 0..64 {
            assert_eq!(p.backoff(i).max(1), p.backoff(i));
        }
        assert_eq!(p.backoff(63), u64::MAX);
    }

    #[test]
    fn backoff_is_never_zero() {
        let p = RetryPolicy { max_retries: 2, base: 0, factor: 0, cap: 0 };
        assert_eq!(p.backoff(0), 1);
        assert_eq!(p.backoff(9), 1);
    }

    #[test]
    fn none_never_retries() {
        assert!(RetryPolicy::none().schedule().is_empty());
    }

    #[test]
    fn percent_budget_converts_to_milli_tokens() {
        let b = RetryBudget::percent(20, 3);
        assert_eq!(b, RetryBudget { fill_milli: 200, burst_milli: 3_000 });
        let huge = RetryBudget::percent(u64::MAX, u64::MAX);
        assert_eq!(huge.fill_milli, u64::MAX);
        assert_eq!(huge.burst_milli, u64::MAX);
    }
}
