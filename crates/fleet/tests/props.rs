//! Property-based tests of the fleet policies and simulator invariants.
//!
//! The retry schedule is the contract shared with the campaign runner in
//! `cs-bench`, so its properties — deterministic, monotone non-decreasing,
//! bounded by the cap, never zero — are locked down over arbitrary
//! policies. The simulator properties re-run the same configuration twice
//! (determinism is the crate's headline promise), hand every result to
//! the conservation auditor, and bound retry-storm amplification under an
//! arbitrary token-bucket budget.

use cs_fleet::{
    simulate, AimdPolicy, BreakerPolicy, FleetConfig, FleetFaultPlan, HedgePolicy,
    RetryBudget, RetryPolicy, ServiceProfile,
};
use proptest::prelude::*;

/// An arbitrary retry policy, including degenerate corners (zero base,
/// zero factor, zero cap, huge values that would overflow a naive
/// `base * factor^i`).
fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (0u32..8, any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
        |(max_retries, base, factor, cap)| RetryPolicy { max_retries, base, factor, cap },
    )
}

/// The client-side mitigation stack of one generated config: each layer
/// independently present or absent, with small but arbitrary parameters.
fn arb_mitigations() -> impl Strategy<Value = (Option<RetryBudget>, Option<BreakerPolicy>, Option<AimdPolicy>)>
{
    (
        prop::option::of((0u64..2_000, 0u64..4_000)),
        prop::option::of((1u32..6, 1u64..50_000)),
        prop::option::of((1u64..4, 0u64..8, 1u64..2_000, 1u64..100)),
    )
        .prop_map(|(budget, breaker, aimd)| {
            (
                budget.map(|(fill_milli, burst_milli)| RetryBudget { fill_milli, burst_milli }),
                breaker.map(|(failure_threshold, open_ns)| BreakerPolicy {
                    failure_threshold,
                    open_ns,
                }),
                aimd.map(|(min, extra, increase_milli, decrease_pct)| AimdPolicy {
                    min_inflight: min,
                    max_inflight: min + extra,
                    increase_milli,
                    decrease_pct: decrease_pct.clamp(1, 99),
                }),
            )
        })
}

/// A small but fully valid (config, profile) pair: every field satisfies
/// `FleetConfig::validate`, and the request count is kept low enough that
/// a simulation finishes in microseconds. Fault plans mix independent
/// crashes/stragglers with gray episodes and correlated domain outages,
/// and the mitigation stack varies independently.
fn arb_fleet() -> impl Strategy<Value = (FleetConfig, ServiceProfile)> {
    (
        (
            1usize..4,            // machines
            1usize..3,            // contexts per machine
            0usize..3,            // queue capacity
            1u64..48,             // requests
            50u64..5_000,         // mean inter-arrival gap
            50u64..20_000,        // mean service time
            1u64..10_000,         // connect timeout
            1u64..100_000,        // timeout headroom above connect
            0u32..3,              // max retries
            prop::bool::ANY,      // hedge?
            0u8..4,               // fault shape: none / classic / gray / domains
            any::<u64>(),         // seed
        ),
        arb_mitigations(),
    )
        .prop_map(
            |(
                (machines, contexts, queue, requests, gap, service, connect, headroom, retries, hedge, fault_shape, seed),
                (retry_budget, breaker, aimd),
            )| {
                let timeout = connect + headroom;
                let span = gap.saturating_mul(requests);
                let faults = match fault_shape {
                    1 => Some(FleetFaultPlan {
                        crash_mtbf_ns: span / 2 + 1,
                        repair_ns: 8 * timeout,
                        straggler_mtbf_ns: span + 1,
                        straggler_duration_ns: 4 * timeout,
                        straggler_factor: 5.0,
                        ..FleetFaultPlan::quiet(seed ^ 0xF417)
                    }),
                    2 => Some(
                        FleetFaultPlan {
                            gray_mtbf_ns: span / 2 + 1,
                            gray_duration_ns: span / 4 + 1,
                            gray_latency_factor: 3.0,
                            gray_drop_rate: 0.25,
                            ..FleetFaultPlan::quiet(seed ^ 0xF417)
                        }
                        .with_gray_memory_inflation(1.5),
                    ),
                    3 => Some(FleetFaultPlan {
                        domain_outage_mtbf_ns: span + 1,
                        repair_ns: 4 * timeout,
                        domain_gray_mtbf_ns: span + 1,
                        gray_duration_ns: span / 4 + 1,
                        gray_latency_factor: 2.0,
                        gray_drop_rate: 0.1,
                        ..FleetFaultPlan::quiet(seed ^ 0xF417)
                    }),
                    _ => None,
                };
                let fault_domains =
                    if faults.as_ref().is_some_and(FleetFaultPlan::wants_domains) {
                        machines.min(2)
                    } else {
                        0
                    };
                let cfg = FleetConfig {
                    machines,
                    contexts_per_machine: contexts,
                    queue_capacity: queue,
                    requests,
                    mean_interarrival_ns: gap,
                    burst: None,
                    service_inflation: 1.0,
                    timeout_ns: timeout,
                    connect_timeout_ns: connect,
                    probe_interval_ns: 4 * timeout,
                    retry: RetryPolicy { max_retries: retries, base: timeout / 2 + 1, factor: 2, cap: 4 * timeout },
                    hedge: hedge.then_some(HedgePolicy { delay_ns: timeout / 2 + 1, max_hedges: 1 }),
                    faults,
                    fault_domains,
                    trigger_end_ns: (fault_shape == 0).then_some(span / 2 + 1),
                    retry_budget,
                    breaker,
                    aimd,
                    seed,
                };
                let profile = ServiceProfile {
                    workload: "prop".into(),
                    mean_service_ns: service,
                    smt_inflation: 1.0,
                    colocation_inflation: 1.0,
                };
                (cfg, profile)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The backoff schedule is a pure function of the policy: two
    /// evaluations agree exactly, whatever the fields hold.
    #[test]
    fn backoff_is_deterministic(p in arb_policy(), i in 0u32..64) {
        prop_assert_eq!(p.backoff(i), p.backoff(i));
        prop_assert_eq!(p.schedule(), p.schedule());
    }

    /// Backoffs never shrink as the retry index grows — a later retry
    /// always waits at least as long as an earlier one.
    #[test]
    fn backoff_is_monotone_nondecreasing(p in arb_policy()) {
        let mut prev = 0u64;
        for i in 0..16 {
            let b = p.backoff(i);
            prop_assert!(b >= prev, "backoff({i}) = {b} < backoff({}) = {prev}", i.wrapping_sub(1));
            prev = b;
        }
    }

    /// Every backoff lives in `[1, cap.max(1)]`: never zero (a retry is
    /// never scheduled at the instant it was provoked) and never above the
    /// cap, even for bases and factors that would overflow u64.
    #[test]
    fn backoff_is_bounded(p in arb_policy(), i in 0u32..64) {
        let b = p.backoff(i);
        prop_assert!(b >= 1, "backoff must never be zero");
        prop_assert!(b <= p.cap.max(1), "backoff {b} exceeds cap {}", p.cap);
    }

    /// The schedule has exactly one entry per permitted retry, and each
    /// entry matches the point query.
    #[test]
    fn schedule_matches_the_point_queries(p in arb_policy()) {
        let s = p.schedule();
        prop_assert_eq!(s.len(), p.max_retries as usize);
        for (i, &b) in s.iter().enumerate() {
            prop_assert_eq!(b, p.backoff(i as u32));
        }
    }

    /// A simulation is a pure function of (config, profile): running it
    /// twice yields identical stats — counters, span, and every latency
    /// sample — for arbitrary valid configurations, across every fault
    /// shape (crashes, gray episodes, domain outages) and mitigation
    /// stack (budget, breaker, AIMD).
    #[test]
    fn simulation_replays_identically((cfg, profile) in arb_fleet()) {
        let a = simulate(&cfg, &profile).expect("valid config must simulate");
        let b = simulate(&cfg, &profile).expect("valid config must simulate");
        prop_assert_eq!(a, b);
    }

    /// Every simulation result balances its books: request conservation,
    /// attempt provenance and conservation, retry provenance, the hedge
    /// cap, the retry-budget token books, the breaker transition ledger,
    /// and the recovery-era split all hold for arbitrary valid configs.
    #[test]
    fn simulation_passes_the_conservation_audit((cfg, profile) in arb_fleet()) {
        let stats = simulate(&cfg, &profile).expect("valid config must simulate");
        prop_assert_eq!(stats.arrived, cfg.requests);
        if let Err(e) = stats.audit(&cfg.audit_policies()) {
            return Err(TestCaseError::fail(format!("audit failed: {e}")));
        }
    }

    /// With a retry budget enabled, total attempts are hard-bounded by
    /// the token arithmetic: every request gets its initial attempt free,
    /// and every extra attempt (retry or hedge) costs 1000 milli-tokens
    /// out of `burst + arrivals * fill` — whatever the failure pattern.
    #[test]
    fn retry_budget_bounds_total_attempts((cfg, profile) in arb_fleet(), fill in 0u64..1_500, burst in 0u64..3_000) {
        let mut cfg = cfg;
        cfg.retry_budget = Some(RetryBudget { fill_milli: fill, burst_milli: burst });
        let stats = simulate(&cfg, &profile).expect("valid config must simulate");
        let extra = stats.attempts - stats.initial_attempts;
        prop_assert_eq!(stats.initial_attempts + stats.retries + stats.hedges, stats.attempts);
        prop_assert_eq!(stats.budget_spent_milli, extra * 1000, "every extra attempt pays exactly one token");
        let ceiling = burst + cfg.requests.saturating_mul(fill);
        prop_assert!(
            stats.budget_spent_milli <= ceiling,
            "spent {} milli-tokens, ceiling {}",
            stats.budget_spent_milli,
            ceiling
        );
        prop_assert!(
            stats.attempts.saturating_mul(1000) <= cfg.requests.saturating_mul(1000) + ceiling,
            "attempts {} exceed requests {} plus budget ceiling {}",
            stats.attempts,
            cfg.requests,
            ceiling
        );
        if let Err(e) = stats.audit(&cfg.audit_policies()) {
            return Err(TestCaseError::fail(format!("audit failed: {e}")));
        }
    }

    /// The seed matters: perturbing it changes the arrival/service draws,
    /// and the simulator still balances its books. (Equality of stats
    /// across different seeds is possible for tiny configs, so this only
    /// asserts the audit, not inequality.)
    #[test]
    fn reseeded_runs_still_balance((cfg, profile) in arb_fleet(), salt in any::<u64>()) {
        let mut reseeded = cfg.clone();
        reseeded.seed ^= salt;
        let stats = simulate(&reseeded, &profile).expect("valid config must simulate");
        if let Err(e) = stats.audit(&reseeded.audit_policies()) {
            return Err(TestCaseError::fail(format!("audit failed: {e}")));
        }
    }
}
