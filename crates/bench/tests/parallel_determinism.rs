//! Determinism under parallelism: a campaign must emit byte-identical
//! result files and manifest at any `--jobs` value.
//!
//! The fast test drives the campaign engine with synthetic experiments
//! whose staggered durations force out-of-order completion at `jobs = 4`;
//! the release-gated test repeats the check end-to-end with a real
//! figure experiment at tiny windows.

use cloudsuite::harness::RunConfig;
use cloudsuite::HarnessError;
use cs_bench::campaign::{self, Experiment};
use cs_perf::Report;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs-par-det-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte-compares `name` between the two directories.
fn assert_same_bytes(a: &Path, b: &Path, name: &str) {
    let left = std::fs::read(a.join(name)).unwrap_or_else(|e| panic!("{name} in {}: {e}", a.display()));
    let right = std::fs::read(b.join(name)).unwrap_or_else(|e| panic!("{name} in {}: {e}", b.display()));
    assert!(left == right, "{name} differs between jobs=1 and jobs=4");
}

fn slow_a(cfg: &RunConfig) -> Result<Report, HarnessError> {
    // The first-listed experiment finishes last under jobs=4, so manifest
    // writes happen in a different order than at jobs=1.
    std::thread::sleep(std::time::Duration::from_millis(60));
    let mut rep = Report::new("slow_a");
    rep.note(format!("w{}-m{}", cfg.warmup_instr, cfg.measure_instr));
    Ok(rep)
}

fn quick_b(cfg: &RunConfig) -> Result<Report, HarnessError> {
    let mut rep = Report::new("quick_b");
    rep.note(format!("seed {}", cfg.seed));
    Ok(rep)
}

fn quick_c(_cfg: &RunConfig) -> Result<Report, HarnessError> {
    Ok(Report::new("quick_c"))
}

fn failing_d(_cfg: &RunConfig) -> Result<Report, HarnessError> {
    Err(HarnessError::Stalled { core: 1, cycles_without_commit: 42, window: "measure" })
}

fn synthetic_experiments() -> [Experiment; 4] {
    [
        Experiment::new("slow_a", slow_a),
        Experiment::new("quick_b", quick_b),
        Experiment::new("quick_c", quick_c),
        Experiment::new("failing_d", failing_d),
    ]
}

#[test]
fn synthetic_campaign_is_byte_identical_across_jobs() {
    let dir1 = scratch_dir("synth-j1");
    let dir4 = scratch_dir("synth-j4");
    let cfg = |jobs| RunConfig { jobs, ..RunConfig::default() };

    let s1 = campaign::run(&synthetic_experiments(), &cfg(1), &dir1, false);
    let s4 = campaign::run(&synthetic_experiments(), &cfg(4), &dir4, false);

    // Outcomes come back in campaign order with identical statuses.
    assert_eq!(s1.outcomes, s4.outcomes);
    assert_eq!(s1.failed().len(), 1);

    assert_same_bytes(&dir1, &dir4, "manifest.json");
    for name in ["slow_a.json", "quick_b.json", "quick_c.json"] {
        assert_same_bytes(&dir1, &dir4, name);
    }
    assert!(!dir1.join("failing_d.json").exists());
    assert!(!dir4.join("failing_d.json").exists());

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn resume_skips_identically_at_any_jobs_value() {
    let dir = scratch_dir("synth-resume");
    let cfg = |jobs| RunConfig { jobs, ..RunConfig::default() };

    campaign::run(&synthetic_experiments(), &cfg(4), &dir, false);
    let before = std::fs::read(dir.join("manifest.json")).expect("manifest");

    // A parallel resume pass skips the three successes and re-runs only
    // the failure, whatever thread picks it up.
    let resumed = campaign::run(&synthetic_experiments(), &cfg(4), &dir, true);
    let statuses: Vec<_> = resumed.outcomes.iter().map(|o| &o.status).collect();
    use cs_bench::campaign::ExperimentStatus as S;
    assert!(matches!(statuses[0], S::Skipped));
    assert!(matches!(statuses[1], S::Skipped));
    assert!(matches!(statuses[2], S::Skipped));
    assert!(matches!(statuses[3], S::Failed { .. }));

    let after = std::fs::read(dir.join("manifest.json")).expect("manifest");
    assert_eq!(before, after, "a no-progress resume must not change the manifest");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
fn real_figure_campaign_is_byte_identical_across_jobs() {
    let dir1 = scratch_dir("fig3-j1");
    let dir4 = scratch_dir("fig3-j4");
    let fig3 = |jobs| {
        (
            campaign::experiments().into_iter().filter(|e| e.name == "fig3").collect::<Vec<_>>(),
            RunConfig {
                warmup_instr: 60_000,
                measure_instr: 120_000,
                max_cycles: 8_000_000,
                jobs,
                ..RunConfig::default()
            },
        )
    };

    let (exps, cfg) = fig3(1);
    let s1 = campaign::run(&exps, &cfg, &dir1, false);
    assert_eq!(s1.exit_code(), 0, "fig3 must succeed at jobs=1");
    let (exps, cfg) = fig3(4);
    let s4 = campaign::run(&exps, &cfg, &dir4, false);
    assert_eq!(s4.exit_code(), 0, "fig3 must succeed at jobs=4");

    assert_same_bytes(&dir1, &dir4, "manifest.json");
    assert_same_bytes(&dir1, &dir4, "fig3.json");
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}
