//! Criterion targets for the four ablation studies (A1–A4), each at a
//! reduced scale; the full tables come from the `all_figures` binary.

use cloudsuite::experiments::ablations;
use cloudsuite::harness::RunConfig;
use cloudsuite::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn tiny() -> RunConfig {
    RunConfig {
        warmup_instr: 40_000,
        measure_instr: 80_000,
        max_cycles: 4_000_000,
        ..RunConfig::default()
    }
}

fn bench_a1(c: &mut Criterion) {
    c.bench_function("ablation_a1_mediocre_cores", |b| {
        let benches = [Benchmark::web_search()];
        b.iter(|| black_box(ablations::a1_mediocre_cores(&benches, &tiny())))
    });
}

fn bench_a2(c: &mut Criterion) {
    c.bench_function("ablation_a2_small_llc", |b| {
        let benches = [Benchmark::web_frontend()];
        b.iter(|| black_box(ablations::a2_small_llc(&benches, &tiny())))
    });
}

fn bench_a3(c: &mut Criterion) {
    c.bench_function("ablation_a3_no_dcu", |b| {
        let benches = [Benchmark::media_streaming()];
        b.iter(|| black_box(ablations::a3_no_dcu(&benches, &tiny())))
    });
}

fn bench_a4(c: &mut Criterion) {
    c.bench_function("ablation_a4_one_channel", |b| {
        let benches = [Benchmark::data_serving()];
        b.iter(|| black_box(ablations::a4_one_channel(&benches, &tiny())))
    });
}

criterion_group! {
    name = ablation_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_a1, bench_a2, bench_a3, bench_a4
}
criterion_main!(ablation_benches);
