//! One Criterion target per table/figure of the paper's evaluation.
//!
//! Each target runs a scaled-down single-workload slice of the experiment
//! (the full multi-workload regeneration lives in the `fig*` binaries), so
//! `cargo bench` exercises every experiment path while staying tractable.

use cloudsuite::experiments::table1;
use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::{Benchmark, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use cs_memsys::PrefetchConfig;
use std::hint::black_box;

fn run(bench: &Benchmark, cfg: &RunConfig) -> RunResult {
    cloudsuite::harness::run(bench, cfg).expect("benchmark config is valid")
}

fn tiny() -> RunConfig {
    RunConfig {
        warmup_instr: 40_000,
        measure_instr: 80_000,
        max_cycles: 4_000_000,
        ..RunConfig::default()
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_render", |b| {
        let machine = MachineConfig::default();
        b.iter(|| black_box(table1::report(&machine).to_string()))
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_breakdown/data_serving", |b| {
        let bench = Benchmark::data_serving();
        b.iter(|| black_box(run(&bench, &tiny()).breakdown()))
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_imisses/web_search", |b| {
        let bench = Benchmark::web_search();
        b.iter(|| black_box(run(&bench, &tiny()).l1i_mpki()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_ipc_mlp_smt/mapreduce", |b| {
        let bench = Benchmark::mapreduce();
        let cfg = RunConfig { smt: true, ..tiny() };
        b.iter(|| black_box((run(&bench, &cfg).app_ipc(), run(&bench, &cfg).mlp())))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_llc_sweep_point/mcf", |b| {
        let bench = Benchmark::mcf();
        let cfg = RunConfig { polluter_bytes: Some(6 << 20), ..tiny() };
        b.iter(|| black_box(run(&bench, &cfg).app_ipc()))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_prefetch_ablation/media_streaming", |b| {
        let bench = Benchmark::media_streaming();
        let cfg = RunConfig { prefetch: Some(PrefetchConfig::none()), ..tiny() };
        b.iter(|| black_box(run(&bench, &cfg).l2_hit_ratio()))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_sharing/media_streaming", |b| {
        let bench = Benchmark::media_streaming();
        let cfg = RunConfig { split_sockets: true, ..tiny() };
        b.iter(|| black_box(run(&bench, &cfg).rw_shared_pct()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_bandwidth/sat_solver", |b| {
        let bench = Benchmark::sat_solver();
        b.iter(|| black_box(run(&bench, &tiny()).bandwidth_pct()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig1, bench_fig2, bench_fig3, bench_fig4,
              bench_fig5, bench_fig6, bench_fig7
}
criterion_main!(figures);
