//! Microbenchmarks of the simulator substrates: cache operations, Zipf
//! sampling, trace generation, and whole-chip simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cs_memsys::cache::{Cache, LineMeta};
use cs_memsys::{MemSysConfig, MemorySystem};
use cs_trace::rng::stream_rng;
use cs_trace::zipf::Zipf;
use cs_trace::{Privilege, TraceSource, WorkloadProfile};
use cs_uarch::{Chip, CoreConfig};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_hit", |b| {
        let mut cache = Cache::new(512, 8);
        for line in 0..4096u64 {
            cache.fill(line, LineMeta::clean());
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 4096;
            black_box(cache.lookup(line).is_some())
        })
    });
    g.bench_function("fill_evict", |b| {
        let mut cache = Cache::new(512, 8);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            black_box(cache.fill(line, LineMeta::clean()))
        })
    });
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf");
    g.throughput(Throughput::Elements(1));
    g.bench_function("sample_30M_objects", |b| {
        let zipf = Zipf::new(30_000_000, 0.99);
        let mut rng = stream_rng(1, 0);
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    g.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracegen");
    g.throughput(Throughput::Elements(1));
    g.bench_function("synthetic_op/data_serving", |b| {
        let mut src = WorkloadProfile::data_serving().build_source(0, 1);
        b.iter(|| black_box(src.next_op()))
    });
    g.finish();
}

fn bench_memsys(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsys");
    g.throughput(Throughput::Elements(1));
    g.bench_function("data_access_l1_hit", |b| {
        let mut m = MemorySystem::new(MemSysConfig::default(), 1);
        m.data_access(0, Privilege::User, 0x1000, false, 0x40_0000, 0);
        let mut now = 1u64;
        b.iter(|| {
            now += 1;
            black_box(m.data_access(0, Privilege::User, 0x1000, false, 0x40_0000, now))
        })
    });
    g.finish();
}

fn bench_chip(c: &mut Criterion) {
    let mut g = c.benchmark_group("chip");
    g.sample_size(10);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("cycles_4core/web_search", |b| {
        let mut chip = Chip::new(CoreConfig::x5670(), MemSysConfig::default(), 4);
        for t in 0..4 {
            chip.attach(t, Box::new(WorkloadProfile::web_search().build_source(t, 7)));
        }
        b.iter(|| {
            chip.run_cycles(10_000);
            black_box(chip.cycle())
        })
    });
    g.finish();
}

criterion_group!(substrate, bench_cache, bench_zipf, bench_tracegen, bench_memsys, bench_chip);
criterion_main!(substrate);
