//! Graceful-shutdown signal trap, dependency-free.
//!
//! `all_figures` campaigns run for a long time; a plain Ctrl-C or a
//! `SIGTERM` from a job scheduler used to kill the process mid-write and
//! lose every in-flight experiment. [`install`] registers a handler for
//! `SIGINT` and `SIGTERM` that does the only async-signal-safe thing
//! worth doing: it sets one shared [`AtomicBool`]. The campaign threads
//! poll that flag at deterministic simulation boundaries, save a
//! checkpoint, and exit with the documented interrupted code (3) — so the
//! next `--resume` pass continues from the snapshots instead of starting
//! over.
//!
//! No signal crate is used; the handler goes through `libc`'s `signal(2)`
//! via a two-line FFI declaration. This is the only unsafe code in the
//! workspace, confined to this module and consisting solely of the
//! `signal` call itself (installing a handler has no memory-safety
//! preconditions; the safety burden is the handler body, which only
//! performs an atomic store).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The process-wide stop flag the installed handler sets.
static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a relaxed-or-stronger atomic store, nothing else.
    if let Some(flag) = STOP.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent) and returns the stop
/// flag it sets. Callers hand the flag to the campaign layer, which polls
/// it at checkpoint boundaries.
#[allow(unsafe_code)]
pub fn install() -> Arc<AtomicBool> {
    let flag = STOP.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal(2)` with a non-reentrant, async-signal-safe handler
    // (a single atomic store). No Rust invariants are at stake: the
    // handler touches only a static atomic.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    flag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_the_flag_is_shared() {
        let a = install();
        let b = install();
        assert!(Arc::ptr_eq(&a, &b), "both installs must return the same flag");
        assert!(!a.load(Ordering::SeqCst));
        // Simulate delivery by calling the handler directly (raising a real
        // signal here would race the rest of the test binary).
        on_signal(SIGINT);
        assert!(a.load(Ordering::SeqCst), "the handler must set the shared flag");
        a.store(false, Ordering::SeqCst);
    }
}
