//! Tracked wall-clock baseline for the parallel campaign engine and the
//! simulator's hot substrates.
//!
//! Runs a fixed small campaign (fig3 + fig5 at reduced windows) twice —
//! serially (`jobs = 1`) and at the machine's available parallelism —
//! verifies the two passes produced byte-identical manifests and result
//! files, measures raw ops/sec of the two substrate hot paths (synthetic
//! micro-op generation, LLC-shaped cache lookup/fill), and writes all
//! numbers to `BENCH_campaign.json`.
//!
//! It also baselines the event-driven cycle-skipping fast path: the same
//! small campaign runs with skipping on and off (byte-compared, like the
//! jobs passes), and the stall-dominated single experiments the paper's
//! methodology makes skip-friendliest — the Figure 4 polluted leg and the
//! Figure 5 no-prefetch leg — are timed in both modes with their
//! skipped-cycle fraction recorded, so the speedup claim is inspectable
//! rather than asserted.
//!
//! Finally it baselines SMARTS-style sampled simulation: a 5M-instruction
//! full-detail measurement of the data-serving workload against a sampled
//! schedule whose functionally-warmed fast-forward spans and detailed
//! windows cover the same execution span. The file records both
//! wall-clocks, the speedup, the full-detail IPC, the sampled point
//! estimate with its CLT 95% interval, and whether the full-detail IPC
//! fell inside that interval — measured, not asserted.
//!
//! The window-parallel leg re-runs the sampled schedule under
//! `window_par` at `jobs = 1` and at the host's parallelism, records both
//! wall-clocks plus the speedup over the sequential sampled pass, and
//! Debug-compares the two parallel results for the byte-identity claim.
//!
//! Usage: `bench_campaign [--out PATH] [--force]`
//!
//! Every timed section records `host_cores` at measurement time; the
//! binary refuses to overwrite a section measured on a host with a
//! different core count unless `--force` is given, so the committed
//! baseline's history stays comparable.
//!
//! The committed baseline is refreshed with
//! `cargo run --release --bin bench_campaign` from the repo root; see
//! EXPERIMENTS.md for how to read the numbers. Wall-clock figures are
//! machine-dependent — the file records the host's core count next to
//! them.

use cloudsuite::config::{Knob, ParseOutcome, RunConfigBuilder};
use cloudsuite::harness::{RunConfig, RunResult};
use cloudsuite::Benchmark;
use cs_bench::campaign;
use cs_memsys::cache::{Cache, LineMeta};
use cs_memsys::PrefetchConfig;
use cs_trace::synth::SyntheticSource;
use cs_trace::{TraceSource, WorkloadProfile};
use serde_json::{Map, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Experiments of the fixed campaign: two sweep-style figures whose
/// per-workload units exercise the inner parallel layer.
const CAMPAIGN: &[&str] = &["fig3", "fig5"];

/// Reduced, fixed windows so the baseline runs in about a minute per
/// pass regardless of `CS_WARMUP`/`CS_MEASURE` in the environment.
fn bench_config(jobs: usize) -> RunConfig {
    RunConfig {
        warmup_instr: 100_000,
        measure_instr: 200_000,
        jobs,
        ..RunConfig::default()
    }
}

/// Runs the fixed campaign into `dir` and returns the wall-clock seconds.
fn time_campaign(cfg: &RunConfig, dir: &Path) -> f64 {
    let experiments: Vec<_> = campaign::experiments()
        .into_iter()
        .filter(|e| CAMPAIGN.contains(&e.name))
        .collect();
    let start = Instant::now();
    let summary = campaign::run(&experiments, cfg, dir, false);
    let secs = start.elapsed().as_secs_f64();
    for failed in summary.failed() {
        eprintln!("bench_campaign: warning: {} failed during timing", failed.name);
    }
    secs
}

/// Byte-compares the manifest and every result file between the two
/// campaign output directories.
fn outputs_identical(a: &Path, b: &Path) -> bool {
    let mut names: Vec<String> = CAMPAIGN.iter().map(|n| format!("{n}.json")).collect();
    names.push("manifest.json".to_owned());
    names.iter().all(|name| {
        let left = std::fs::read(a.join(name)).ok();
        left.is_some() && left == std::fs::read(b.join(name)).ok()
    })
}

/// Ops/sec of the synthetic trace generator, the per-op substrate under
/// every simulated thread.
fn synth_ops_per_sec() -> f64 {
    const OPS: usize = 2_000_000;
    let profile = WorkloadProfile::data_serving();
    let mut source = SyntheticSource::new(&profile, 0, 42);
    let mut block = Vec::new();
    // Warm the generator's tables before timing.
    source.next_block(&mut block, 10_000);
    block.clear();
    let start = Instant::now();
    let mut produced = 0usize;
    let mut checksum = 0u64;
    while produced < OPS {
        block.clear();
        produced += source.next_block(&mut block, 4096);
        // Fold the ops into a checksum so the work cannot be optimized out.
        checksum = block.iter().fold(checksum, |acc, op| acc ^ op.pc);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    produced as f64 / secs
}

/// Ops/sec of a lookup-then-fill-on-miss stream against an LLC-shaped
/// cache (12288 sets — the non-power-of-two fastmod case — x 16 ways).
fn cache_ops_per_sec() -> f64 {
    const OPS: usize = 4_000_000;
    let mut cache = Cache::new(12288, 16);
    let mut x = 0x0123_4567_89AB_CDEFu64;
    let mut next_line = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        // ~4x the cache capacity, so the stream mixes hits and misses.
        (z ^ (z >> 31)) % (12288 * 16 * 4)
    };
    for _ in 0..100_000 {
        let line = next_line();
        if cache.lookup(line).is_none() {
            cache.fill(line, LineMeta::clean());
        }
    }
    let start = Instant::now();
    let mut hits = 0u64;
    for _ in 0..OPS {
        let line = next_line();
        match cache.lookup(line) {
            Some(_) => hits += 1,
            None => {
                cache.fill(line, LineMeta::clean());
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(hits);
    OPS as f64 / secs
}

/// The sampled-simulation comparison: a 50M-instruction full-detail
/// measurement and a SMARTS schedule spanning the same execution region —
/// ten 20k-instruction detailed windows separated by 4.95M-instruction
/// functionally-warmed fast-forwards, each preceded by a 30k-instruction
/// detailed re-warm (10 x (4.95M + 30k + 20k) ≈ 50M). The leg is long
/// because that is where sampling earns its keep: the fixed detailed
/// costs (warmup, re-warms, windows) amortize, and the wall-clock ratio
/// approaches the functional path's per-instruction advantage.
fn sampled_leg_configs() -> (RunConfig, RunConfig) {
    let full = RunConfig {
        warmup_instr: 500_000,
        measure_instr: 50_000_000,
        ..RunConfig::default()
    };
    let sampled = RunConfig {
        measure_instr: 200_000,
        sample_windows: 10,
        sample_period: 4_950_000,
        sample_warmup_instr: 30_000,
        ..full.clone()
    };
    (full, sampled)
}

/// The window-parallel comparison: the sequential sampled schedule of
/// [`sampled_leg_configs`] against the same schedule under
/// `window_par`, at `jobs = 1` and at the host's parallelism, with the
/// two parallel passes' results Debug-compared (samples included) for
/// the byte-identity claim.
struct WindowParLegResult {
    par1_secs: f64,
    parn_secs: f64,
    identical: bool,
}

/// Times the window-parallel sampled runs. Returns `None` if a run
/// failed or was truncated.
fn time_window_par_leg(jobs_n: usize) -> Option<WindowParLegResult> {
    let bench = Benchmark::data_serving();
    let (_, sampled_cfg) = sampled_leg_configs();
    let wp1 = RunConfig { window_par: true, jobs: 1, ..sampled_cfg.clone() };
    let wpn = RunConfig { window_par: true, jobs: jobs_n, ..sampled_cfg };
    let start = Instant::now();
    let r1 = cloudsuite::harness::run_strict(&bench, &wp1).ok()?;
    let par1_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let rn = cloudsuite::harness::run_strict(&bench, &wpn).ok()?;
    let parn_secs = start.elapsed().as_secs_f64();
    Some(WindowParLegResult {
        par1_secs,
        parn_secs,
        identical: format!("{r1:?}") == format!("{rn:?}"),
    })
}

/// Everything the sampled comparison records: both wall-clocks, the
/// full-detail IPC, and the sampled estimate with its interval.
struct SampledLegResult {
    full_secs: f64,
    sampled_secs: f64,
    full_ipc: f64,
    point_ipc: f64,
    mean_ipc: f64,
    ci_lo: f64,
    ci_hi: f64,
    windows: usize,
}

/// Times the full-detail and sampled runs of the data-serving workload.
/// Returns `None` if either run failed or was truncated.
fn time_sampled_leg() -> Option<SampledLegResult> {
    let bench = Benchmark::data_serving();
    let (full_cfg, sampled_cfg) = sampled_leg_configs();
    let start = Instant::now();
    let full = cloudsuite::harness::run_strict(&bench, &full_cfg).ok()?;
    let full_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let sampled = cloudsuite::harness::run_strict(&bench, &sampled_cfg).ok()?;
    let sampled_secs = start.elapsed().as_secs_f64();
    let n = sampled.cores.len();
    let stat: cs_perf::RunningStat = sampled.samples.iter().map(|s| s.ipc(n)).collect();
    let (ci_lo, ci_hi) = stat.ci95();
    Some(SampledLegResult {
        full_secs,
        sampled_secs,
        full_ipc: full.ipc(),
        point_ipc: sampled.ipc(),
        mean_ipc: stat.mean(),
        ci_lo,
        ci_hi,
        windows: sampled.samples.len(),
    })
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

/// The stall-dominated single experiments the skip fast path targets:
/// the Figure 4 polluted leg and the Figure 5 no-prefetch leg, at the
/// same reduced windows as the campaign passes.
fn skip_legs() -> Vec<(&'static str, Benchmark, RunConfig)> {
    let base = bench_config(1);
    vec![
        (
            "fig4_web_search_polluted",
            Benchmark::web_search(),
            RunConfig { polluter_bytes: Some(8 << 20), ..base.clone() },
        ),
        (
            "fig5_data_serving_no_prefetch",
            Benchmark::data_serving(),
            RunConfig { prefetch: Some(PrefetchConfig::none()), ..base },
        ),
    ]
}

/// Everything the leg comparison needs: both wall-clocks, the skipped
/// fraction of the fast run, and whether the two runs' counters matched.
struct SkipLegResult {
    on_secs: f64,
    off_secs: f64,
    skipped_fraction: f64,
    identical: bool,
}

fn results_identical(a: &RunResult, b: &RunResult) -> bool {
    a.cycles == b.cycles
        && a.requests == b.requests
        && a.cores == b.cores
        && a.mem == b.mem
        && a.polluter_mem == b.polluter_mem
        && a.dram == b.dram
}

/// Times one experiment with skipping on then off and byte-compares the
/// counters the figures read. Returns `None` if the run itself failed.
fn time_skip_leg(bench: &Benchmark, cfg: &RunConfig) -> Option<SkipLegResult> {
    let on_cfg = RunConfig { cycle_skip: true, ..cfg.clone() };
    let off_cfg = RunConfig { cycle_skip: false, ..cfg.clone() };
    let start = Instant::now();
    let fast = cloudsuite::harness::run(bench, &on_cfg).ok()?;
    let on_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let slow = cloudsuite::harness::run(bench, &off_cfg).ok()?;
    let off_secs = start.elapsed().as_secs_f64();
    Some(SkipLegResult {
        on_secs,
        off_secs,
        skipped_fraction: fast.skipped_fraction(),
        identical: results_identical(&fast, &slow),
    })
}

/// Sections of the baseline file that carry wall-clock numbers, i.e.
/// whose history is only comparable across hosts with the same core
/// count. Each records `host_cores` at measurement time; overwriting one
/// recorded on a different core count requires `--force`.
const TIMED_SECTIONS: &[&str] =
    &["campaign", "cycle_skip", "sampled", "window_par", "substrate"];

/// Section names of the existing baseline whose recorded `host_cores`
/// differs from `host_cores` now. An unreadable/unparsable file, a
/// missing section, or a section without the field (pre-version-4
/// baselines) never blocks — only a *known, different* core count does.
fn core_count_conflicts(path: &Path, host_cores: u64) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(root) = serde_json::from_str::<Value>(&text) else { return Vec::new() };
    TIMED_SECTIONS
        .iter()
        .filter(|&&name| {
            root.get(name)
                .and_then(|s| s.get("host_cores"))
                .and_then(Value::as_u64)
                .is_some_and(|prev| prev != host_cores)
        })
        .map(|&name| name.to_owned())
        .collect()
}

fn main() -> ExitCode {
    // The two knobs this binary owns, declared through the same registry
    // the campaign binaries use.
    let builder = RunConfigBuilder::new("bench_campaign")
        .knob(Knob::valued(
            "--out",
            "PATH",
            &[],
            "--out requires a path",
            "where the baseline JSON is written",
            |s, v| {
                s.out = Some(PathBuf::from(v));
                true
            },
        ))
        .knob(Knob::switch(
            "--force",
            &[],
            "overwrite sections measured on a host with a different core count",
            |s, _| {
                s.force = true;
                true
            },
        ));
    let (out, force) = match builder.parse(std::env::args().skip(1)) {
        ParseOutcome::Ready(s) => {
            (s.out.unwrap_or_else(|| PathBuf::from("BENCH_campaign.json")), s.force)
        }
        ParseOutcome::Help(text) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        ParseOutcome::Error { message, show_usage } => {
            eprintln!("{message}");
            if show_usage {
                eprintln!("{}", builder.usage());
            }
            return ExitCode::from(2);
        }
    };

    let jobs_n = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    // Wall-clock sections are only comparable against a baseline measured
    // on the same core count; silently overwriting one measured elsewhere
    // would make the committed history lie about trends.
    let conflicts = core_count_conflicts(&out, jobs_n as u64);
    if !conflicts.is_empty() && !force {
        eprintln!(
            "bench_campaign: {} records sections {conflicts:?} measured on a host \
             with a different core count than this one ({jobs_n}); re-measuring \
             would overwrite them with incomparable numbers. Pass --force to \
             overwrite anyway.",
            out.display()
        );
        return ExitCode::from(3);
    }
    let scratch = std::env::temp_dir().join("cs_bench_campaign");
    let dir1 = scratch.join("jobs1");
    let dirn = scratch.join("jobsN");
    let dir_noskip = scratch.join("noskip");
    for dir in [&dir1, &dirn, &dir_noskip] {
        let _ = std::fs::remove_dir_all(dir);
    }

    eprintln!("bench_campaign: timing {CAMPAIGN:?} at jobs=1 ...");
    let secs_1 = time_campaign(&bench_config(1), &dir1);
    eprintln!("bench_campaign: timing {CAMPAIGN:?} at jobs={jobs_n} ...");
    let secs_n = time_campaign(&bench_config(jobs_n), &dirn);
    let identical = outputs_identical(&dir1, &dirn);

    eprintln!("bench_campaign: timing {CAMPAIGN:?} with cycle skipping off ...");
    let secs_noskip = time_campaign(
        &RunConfig { cycle_skip: false, ..bench_config(1) },
        &dir_noskip,
    );
    let skip_identical = outputs_identical(&dir1, &dir_noskip);

    let mut leg_objs = Map::new();
    let mut legs_identical = true;
    for (name, bench, cfg) in skip_legs() {
        eprintln!("bench_campaign: timing skip leg {name} ...");
        let Some(leg) = time_skip_leg(&bench, &cfg) else {
            eprintln!("bench_campaign: warning: {name} failed during timing");
            legs_identical = false;
            continue;
        };
        legs_identical &= leg.identical;
        let mut obj = Map::new();
        obj.insert("skip_on_wall_secs".into(), Value::from(round2(leg.on_secs)));
        obj.insert("skip_off_wall_secs".into(), Value::from(round2(leg.off_secs)));
        obj.insert(
            "speedup".into(),
            Value::from(round2(if leg.on_secs > 0.0 { leg.off_secs / leg.on_secs } else { 0.0 })),
        );
        obj.insert("skipped_fraction".into(), Value::from(round4(leg.skipped_fraction)));
        obj.insert("outputs_identical".into(), Value::from(leg.identical));
        leg_objs.insert(name.into(), Value::Object(obj));
    }

    eprintln!("bench_campaign: timing sampled-vs-full-detail leg (50M instructions) ...");
    let sampled_leg = time_sampled_leg();
    if sampled_leg.is_none() {
        eprintln!("bench_campaign: warning: sampled leg failed during timing");
    }

    eprintln!("bench_campaign: timing window-parallel sampled leg at jobs=1 and jobs={jobs_n} ...");
    let window_par_leg = time_window_par_leg(jobs_n);
    if window_par_leg.is_none() {
        eprintln!("bench_campaign: warning: window-parallel leg failed during timing");
    }

    eprintln!("bench_campaign: timing substrate microbenches ...");
    let synth_ops = synth_ops_per_sec();
    let cache_ops = cache_ops_per_sec();

    let mut campaign_obj = Map::new();
    campaign_obj.insert(
        "experiments".into(),
        Value::Array(CAMPAIGN.iter().map(|&n| Value::from(n)).collect()),
    );
    campaign_obj.insert("warmup_instr".into(), Value::from(bench_config(1).warmup_instr));
    campaign_obj.insert("measure_instr".into(), Value::from(bench_config(1).measure_instr));
    campaign_obj.insert("jobs1_wall_secs".into(), Value::from(round2(secs_1)));
    campaign_obj.insert("jobsN".into(), Value::from(jobs_n as u64));
    campaign_obj.insert("jobsN_wall_secs".into(), Value::from(round2(secs_n)));
    campaign_obj.insert(
        "speedup".into(),
        Value::from(round2(if secs_n > 0.0 { secs_1 / secs_n } else { 0.0 })),
    );
    campaign_obj.insert("outputs_identical".into(), Value::from(identical));

    let mut substrate = Map::new();
    substrate.insert("synth_gen_ops_per_sec".into(), Value::from(synth_ops.round()));
    substrate.insert("cache_lookup_fill_ops_per_sec".into(), Value::from(cache_ops.round()));

    let mut cycle_skip_obj = Map::new();
    cycle_skip_obj.insert("campaign_skip_on_wall_secs".into(), Value::from(round2(secs_1)));
    cycle_skip_obj.insert("campaign_skip_off_wall_secs".into(), Value::from(round2(secs_noskip)));
    cycle_skip_obj.insert(
        "campaign_speedup".into(),
        Value::from(round2(if secs_1 > 0.0 { secs_noskip / secs_1 } else { 0.0 })),
    );
    cycle_skip_obj.insert("campaign_outputs_identical".into(), Value::from(skip_identical));
    cycle_skip_obj.insert("experiments".into(), Value::Object(leg_objs));

    let mut sampled_obj = Map::new();
    {
        let (full_cfg, sampled_cfg) = sampled_leg_configs();
        sampled_obj.insert("workload".into(), Value::from("data_serving"));
        sampled_obj.insert("warmup_instr".into(), Value::from(full_cfg.warmup_instr));
        sampled_obj.insert("full_measure_instr".into(), Value::from(full_cfg.measure_instr));
        sampled_obj.insert("sample_windows".into(), Value::from(sampled_cfg.sample_windows as u64));
        sampled_obj.insert("sample_period".into(), Value::from(sampled_cfg.sample_period));
        sampled_obj.insert("sample_warmup_instr".into(), Value::from(sampled_cfg.sample_warmup_instr));
        sampled_obj.insert("sampled_measure_instr".into(), Value::from(sampled_cfg.measure_instr));
    }
    if let Some(leg) = &sampled_leg {
        sampled_obj.insert("full_detail_wall_secs".into(), Value::from(round2(leg.full_secs)));
        sampled_obj.insert("sampled_wall_secs".into(), Value::from(round2(leg.sampled_secs)));
        sampled_obj.insert(
            "speedup".into(),
            Value::from(round2(if leg.sampled_secs > 0.0 {
                leg.full_secs / leg.sampled_secs
            } else {
                0.0
            })),
        );
        sampled_obj.insert("full_detail_ipc".into(), Value::from(round4(leg.full_ipc)));
        sampled_obj.insert("sampled_ipc_point".into(), Value::from(round4(leg.point_ipc)));
        sampled_obj.insert("sampled_ipc_window_mean".into(), Value::from(round4(leg.mean_ipc)));
        sampled_obj.insert("sampled_ipc_ci95_lo".into(), Value::from(round4(leg.ci_lo)));
        sampled_obj.insert("sampled_ipc_ci95_hi".into(), Value::from(round4(leg.ci_hi)));
        sampled_obj.insert("windows".into(), Value::from(leg.windows as u64));
        sampled_obj.insert(
            "full_ipc_in_ci".into(),
            Value::from(leg.ci_lo <= leg.full_ipc && leg.full_ipc <= leg.ci_hi),
        );
    } else {
        sampled_obj.insert("failed".into(), Value::from(true));
    }

    let mut window_par_obj = Map::new();
    window_par_obj.insert("workload".into(), Value::from("data_serving"));
    window_par_obj.insert("jobsN".into(), Value::from(jobs_n as u64));
    window_par_obj.insert(
        "sample_inflight".into(),
        Value::from(RunConfig::default().sample_inflight as u64),
    );
    let mut window_par_identical = true;
    if let Some(leg) = &window_par_leg {
        if let Some(sampled) = &sampled_leg {
            window_par_obj
                .insert("sequential_wall_secs".into(), Value::from(round2(sampled.sampled_secs)));
            window_par_obj.insert(
                "speedup_vs_sequential".into(),
                Value::from(round2(if leg.parn_secs > 0.0 {
                    sampled.sampled_secs / leg.parn_secs
                } else {
                    0.0
                })),
            );
        }
        window_par_obj.insert("jobs1_wall_secs".into(), Value::from(round2(leg.par1_secs)));
        window_par_obj.insert("jobsN_wall_secs".into(), Value::from(round2(leg.parn_secs)));
        window_par_obj.insert(
            "jobs1_vs_jobsN_speedup".into(),
            Value::from(round2(if leg.parn_secs > 0.0 { leg.par1_secs / leg.parn_secs } else { 0.0 })),
        );
        window_par_obj.insert("outputs_identical".into(), Value::from(leg.identical));
        window_par_identical = leg.identical;
    } else {
        window_par_obj.insert("failed".into(), Value::from(true));
    }

    let mut root = Map::new();
    root.insert("campaign".into(), Value::Object(campaign_obj));
    root.insert("cycle_skip".into(), Value::Object(cycle_skip_obj));
    root.insert("sampled".into(), Value::Object(sampled_obj));
    root.insert("window_par".into(), Value::Object(window_par_obj));
    root.insert("substrate".into(), Value::Object(substrate));
    // Every timed section records the core count it was measured on, so a
    // future run on a different host can detect (and refuse) incomparable
    // overwrites per section.
    for name in TIMED_SECTIONS {
        if let Some(Value::Object(section)) = root.get_mut(*name) {
            section.insert("host_cores".into(), Value::from(jobs_n as u64));
        }
    }
    root.insert("host_cores".into(), Value::from(jobs_n as u64));
    root.insert("version".into(), Value::from(4u64));

    let text = match serde_json::to_string_pretty(&Value::Object(root)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_campaign: render failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, text + "\n") {
        eprintln!("bench_campaign: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench_campaign: jobs=1 {secs_1:.2}s, jobs={jobs_n} {secs_n:.2}s (identical: {identical}); \
         skip-off {secs_noskip:.2}s (identical: {skip_identical}); \
         synth {synth_ops:.0} ops/s, cache {cache_ops:.0} ops/s"
    );
    if let Some(leg) = &sampled_leg {
        eprintln!(
            "bench_campaign: sampled leg full {:.2}s vs sampled {:.2}s ({:.2}x); \
             full IPC {:.4}, sampled CI [{:.4}, {:.4}] (contained: {})",
            leg.full_secs,
            leg.sampled_secs,
            if leg.sampled_secs > 0.0 { leg.full_secs / leg.sampled_secs } else { 0.0 },
            leg.full_ipc,
            leg.ci_lo,
            leg.ci_hi,
            leg.ci_lo <= leg.full_ipc && leg.full_ipc <= leg.ci_hi
        );
    }
    if let Some(leg) = &window_par_leg {
        eprintln!(
            "bench_campaign: window-par leg jobs=1 {:.2}s vs jobs={jobs_n} {:.2}s (identical: {})",
            leg.par1_secs, leg.parn_secs, leg.identical
        );
    }
    eprintln!("(wrote {})", out.display());
    let mut ok = true;
    if !identical {
        eprintln!("bench_campaign: PARALLEL OUTPUT MISMATCH — results must be jobs-invariant");
        ok = false;
    }
    if !skip_identical || !legs_identical {
        eprintln!("bench_campaign: CYCLE-SKIP OUTPUT MISMATCH — skipping must be byte-invisible");
        ok = false;
    }
    if !window_par_identical {
        eprintln!(
            "bench_campaign: WINDOW-PAR OUTPUT MISMATCH — window-parallel sampling must be \
             jobs-invariant"
        );
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
