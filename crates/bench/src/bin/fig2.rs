//! Regenerates Figure 2: L1-I and L2 instruction miss rates.

use cloudsuite::experiments::fig2;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig2", |cfg| Ok(fig2::report(&fig2::collect(cfg)?)))
}
