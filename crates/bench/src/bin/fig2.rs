//! Regenerates Figure 2: L1-I and L2 instruction miss rates.

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig2::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig2::report(&rows), "fig2");
}
