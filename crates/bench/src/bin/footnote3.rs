//! Regenerates the footnote-3 verification: user-IPC is proportional to
//! application throughput across machine configurations.

use cloudsuite::experiments::footnote3;
use cloudsuite::Benchmark;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = cs_bench::config_from_env();
    for bench in Benchmark::scale_out_suite() {
        let name = format!("footnote3_{}", bench.name().to_lowercase().replace(' ', "_"));
        let rows = match footnote3::collect(&bench, &cfg) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = cs_bench::emit(&footnote3::report(&rows), &name) {
            eprintln!("{name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
