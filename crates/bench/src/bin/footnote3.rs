//! Regenerates the footnote-3 verification: user-IPC is proportional to
//! application throughput across machine configurations.

use cloudsuite::experiments::footnote3;
use cloudsuite::Benchmark;

fn main() {
    let cfg = cs_bench::config_from_env();
    for bench in Benchmark::scale_out_suite() {
        let rows = footnote3::collect(&bench, &cfg);
        cs_bench::emit(
            &footnote3::report(&rows),
            &format!("footnote3_{}", bench.name().to_lowercase().replace(' ', "_")),
        );
    }
}
