//! Regenerates the `fleet_resilience` experiment: gray failures that
//! evade health checks, correlated fault-domain outages, and a metastable
//! retry storm — each crossed with the client-side mitigation stack
//! (retry budget, circuit breakers, AIMD concurrency limit) over
//! harness-measured service profiles.
//!
//! Window sizes, seed, and jobs come from the usual environment knobs
//! (`CS_WARMUP`, `CS_MEASURE`, `CS_SEED`, `CS_JOBS`, ...); restrict the
//! sweep with `CS_FLEET_SCENARIOS` (comma-separated keys: `baseline`,
//! `gray_fleet`, `rack_outage`, `metastable`); set `CS_PARANOID=1` to run
//! the fleet conservation auditor — retry-budget token books and breaker
//! transition ledger included — after every simulated point. Results are
//! byte-identical across reruns and `CS_JOBS` values.

use cloudsuite::experiments::fleet_resilience;
use std::process::ExitCode;

fn main() -> ExitCode {
    cs_bench::figure_main("fleet_resilience", |cfg| {
        Ok(fleet_resilience::report(&fleet_resilience::collect(cfg)?))
    })
}
