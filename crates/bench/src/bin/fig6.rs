//! Regenerates Figure 6: read-write sharing (threads split across sockets).

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig6::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig6::report(&rows), "fig6");
}
