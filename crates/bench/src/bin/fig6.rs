//! Regenerates Figure 6: read-write sharing (threads split across sockets).

use cloudsuite::experiments::fig6;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig6", |cfg| Ok(fig6::report(&fig6::collect(cfg)?)))
}
