//! Regenerates every table and figure of the evaluation, plus the
//! ablations, as one resumable campaign.
//!
//! Each experiment runs in isolation: a failure (typed harness error or
//! panic) is recorded in `results/manifest.json` and the campaign moves
//! on. Transient failures — a tripped watchdog or a truncated window —
//! are retried once with a widened cycle budget. A second pass with
//! `--resume` skips every experiment whose result is already up to date
//! and re-runs only what failed.
//!
//! Experiments — and the config points inside the sweep experiments —
//! are independent seeded runs, so the campaign fans them over `--jobs N`
//! worker threads (default: `CS_JOBS`, then 1). Results are byte-identical
//! at any jobs value; only the wall-clock changes.
//!
//! Usage: `all_figures [--resume] [--results-dir DIR] [--jobs N] [--no-skip]`
//!
//! `--no-skip` disables the event-driven cycle-skipping fast path
//! (equivalently `CS_NO_SKIP=1`); results are byte-identical either way.
//!
//! Exits non-zero only if at least one experiment ultimately failed.

use cs_bench::campaign::{self, ExperimentStatus};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: all_figures [--resume] [--results-dir DIR] [--jobs N] [--no-skip]";

fn main() -> ExitCode {
    let mut resume = false;
    let mut results_dir = PathBuf::from("results");
    let mut jobs = None;
    let mut no_skip = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            "--no-skip" => no_skip = true,
            "--results-dir" => match args.next() {
                Some(dir) => results_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--results-dir requires a path");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut cfg = cs_bench::config_from_env();
    if let Some(jobs) = jobs {
        cfg.jobs = jobs; // The flag outranks CS_JOBS.
    }
    if no_skip {
        cfg.cycle_skip = false; // The flag outranks CS_NO_SKIP.
    }
    let summary = campaign::run(&campaign::experiments(), &cfg, &results_dir, resume);

    eprintln!("\ncampaign summary:");
    for outcome in &summary.outcomes {
        match &outcome.status {
            ExperimentStatus::Ok { attempts: 1 } => eprintln!("  ok      {}", outcome.name),
            ExperimentStatus::Ok { attempts } => {
                eprintln!("  ok      {} (after {attempts} attempts)", outcome.name)
            }
            ExperimentStatus::Skipped => eprintln!("  skipped {} (up to date)", outcome.name),
            ExperimentStatus::Failed { attempts, error } => {
                eprintln!("  FAILED  {} ({attempts} attempts): {error}", outcome.name)
            }
        }
    }
    let failed = summary.failed();
    if failed.is_empty() {
        eprintln!("all {} experiments accounted for", summary.outcomes.len());
    } else {
        eprintln!(
            "{} of {} experiments failed; fix or re-run with --resume",
            failed.len(),
            summary.outcomes.len()
        );
    }
    ExitCode::from(summary.exit_code())
}
