//! Regenerates every table and figure of the evaluation, plus the four
//! ablations, in one run.

use cloudsuite::experiments as exp;
use cloudsuite::Benchmark;

fn main() {
    let cfg = cs_bench::config_from_env();
    let machine = cloudsuite::MachineConfig::default();
    cs_bench::emit(&exp::table1::report(&machine), "table1");
    cs_bench::emit(&exp::fig1::report(&exp::fig1::collect(&cfg)), "fig1");
    cs_bench::emit(&exp::fig2::report(&exp::fig2::collect(&cfg)), "fig2");
    cs_bench::emit(&exp::fig3::report(&exp::fig3::collect(&cfg)), "fig3");
    cs_bench::emit(&exp::fig4::report(&exp::fig4::collect(&cfg)), "fig4");
    cs_bench::emit(&exp::fig5::report(&exp::fig5::collect(&cfg)), "fig5");
    cs_bench::emit(&exp::fig6::report(&exp::fig6::collect(&cfg)), "fig6");
    cs_bench::emit(&exp::fig7::report(&exp::fig7::collect(&cfg)), "fig7");

    let scale_out = Benchmark::scale_out_suite();
    let a1 = exp::ablations::a1_mediocre_cores(&scale_out[..2], &cfg);
    cs_bench::emit(&exp::ablations::report_a1(&a1), "ablation_a1");
    let a2 = exp::ablations::a2_small_llc(&scale_out, &cfg);
    cs_bench::emit(
        &exp::ablations::report_variant(
            "Ablation A2: modest 4 MB LLC (§4.3 implication)",
            "Scale-out performance is nearly unchanged when the LLC shrinks to 4 MB.",
            &a2,
        ),
        "ablation_a2",
    );
    let a3 = exp::ablations::a3_no_dcu(&scale_out, &cfg);
    cs_bench::emit(
        &exp::ablations::report_variant(
            "Ablation A3: DCU streamer disabled (§4.3)",
            "The L1-D streamer provides no benefit to scale-out workloads.",
            &a3,
        ),
        "ablation_a3",
    );
    let a4 = exp::ablations::a4_one_channel(&scale_out, &cfg);
    cs_bench::emit(
        &exp::ablations::report_variant(
            "Ablation A4: one DDR3 channel (§4.4 implication)",
            "Scaling off-chip bandwidth back leaves scale-out performance essentially unchanged.",
            &a4,
        ),
        "ablation_a4",
    );
    let a5 = exp::ablations::a5_big_l1i(&scale_out, &cfg);
    cs_bench::emit(
        &exp::ablations::report_variant(
            "Ablation A5: 128 KB L1-I opportunity study (§4.1 implication)",
            "What bringing instructions closer to the cores would buy.",
            &a5,
        ),
        "ablation_a5",
    );
    let a6 = exp::ablations::a6_no_instr_prefetch(&scale_out, &cfg);
    cs_bench::emit(
        &exp::ablations::report_variant(
            "Ablation A6: L1-I next-line prefetcher disabled (§4.1)",
            "The next-line prefetcher is inadequate for scale-out control flow.",
            &a6,
        ),
        "ablation_a6",
    );
    let a8 = exp::ablations::a8_narrow_interconnect(&scale_out, &cfg);
    cs_bench::emit(
        &exp::ablations::report_variant(
            "Ablation A8: narrower on-chip interconnect (§4.4 implication)",
            "Slower LLC and cross-socket paths barely move scale-out performance.",
            &a8,
        ),
        "ablation_a8",
    );
}
