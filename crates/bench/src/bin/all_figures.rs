//! Regenerates every table and figure of the evaluation, plus the
//! ablations, as one resumable campaign.
//!
//! Each experiment runs in isolation: a failure (typed harness error or
//! panic) is recorded in `results/manifest.json` and the campaign moves
//! on. Transient failures — a tripped watchdog or a truncated window —
//! are retried once with a widened cycle budget. A second pass with
//! `--resume` skips every experiment whose result is already up to date
//! and re-runs only what failed.
//!
//! Usage: `all_figures [--resume] [--results-dir DIR]`
//!
//! Exits non-zero only if at least one experiment ultimately failed.

use cs_bench::campaign::{self, ExperimentStatus};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut resume = false;
    let mut results_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            "--results-dir" => match args.next() {
                Some(dir) => results_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--results-dir requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: all_figures [--resume] [--results-dir DIR]");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = cs_bench::config_from_env();
    let summary = campaign::run(&campaign::experiments(), &cfg, &results_dir, resume);

    eprintln!("\ncampaign summary:");
    for outcome in &summary.outcomes {
        match &outcome.status {
            ExperimentStatus::Ok { attempts: 1 } => eprintln!("  ok      {}", outcome.name),
            ExperimentStatus::Ok { attempts } => {
                eprintln!("  ok      {} (after {attempts} attempts)", outcome.name)
            }
            ExperimentStatus::Skipped => eprintln!("  skipped {} (up to date)", outcome.name),
            ExperimentStatus::Failed { attempts, error } => {
                eprintln!("  FAILED  {} ({attempts} attempts): {error}", outcome.name)
            }
        }
    }
    let failed = summary.failed();
    if failed.is_empty() {
        eprintln!("all {} experiments accounted for", summary.outcomes.len());
    } else {
        eprintln!(
            "{} of {} experiments failed; fix or re-run with --resume",
            failed.len(),
            summary.outcomes.len()
        );
    }
    ExitCode::from(summary.exit_code())
}
