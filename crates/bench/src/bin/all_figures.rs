//! Regenerates every table and figure of the evaluation, plus the
//! ablations, as one resumable, kill-safe campaign.
//!
//! Each experiment runs in isolation: a failure (typed harness error or
//! panic) is recorded in `results/manifest.json` and the campaign moves
//! on. Transient failures — a tripped watchdog or a truncated window —
//! are retried on a capped exponential budget-widening schedule:
//! `--max-retries N` (default: `CS_MAX_RETRIES`, then 1) allows up to `N`
//! retries, retry `i` re-running with the original cycle budget widened
//! `min(4 * 4^i, 256)`-fold. A second pass with `--resume` skips every
//! experiment whose result is already up to date (checksum-verified) and
//! re-runs only what failed.
//!
//! The campaign is crash-safe: every experiment snapshots its complete
//! simulation state to `<results>.ckpt/` every `--ckpt-cycles` simulated
//! cycles, and SIGINT/SIGTERM triggers one final snapshot before the
//! process exits with code 3. A later `--resume` pass restores the
//! snapshots and continues mid-window; the finished results are
//! byte-identical to a never-interrupted campaign, at any `--jobs` value,
//! with cycle-skipping on or off.
//!
//! Experiments — and the config points inside the sweep experiments —
//! are independent seeded runs, so the campaign fans them over `--jobs N`
//! worker threads (default: `CS_JOBS`, then 1). Results are byte-identical
//! at any jobs value; only the wall-clock changes.
//!
//! Usage: `all_figures [--resume] [--results-dir DIR] [--jobs N]
//! [--no-skip] [--ckpt-cycles N] [--max-retries N] [--warmup-instr N]
//! [--measure-instr N] [--sample-windows K] [--sample-period N]
//! [--sample-warmup N] [--matrix-workloads LIST]` — `--help` prints the
//! full knob registry (flags, env vars, and defaults all come from
//! [`cloudsuite::config::RunConfigBuilder::campaign`], declared once).
//!
//! `--no-skip` disables the event-driven cycle-skipping fast path
//! (equivalently `CS_NO_SKIP=1`); results are byte-identical either way.
//! `--ckpt-cycles N` sets the checkpoint cadence in simulated cycles
//! (default: `CS_CKPT_CYCLES`, then 2,000,000; `0` disables cadence
//! snapshots — signal-triggered snapshots still happen).
//! `--warmup-instr`/`--measure-instr` set the two window budgets,
//! outranking `CS_WARMUP_INSTR`/`CS_MEASURE_INSTR` (which in turn outrank
//! `CS_WARMUP`/`CS_MEASURE`). `--sample-windows K` switches every
//! experiment to SMARTS-style sampled measurement with `K` detailed
//! windows (`CS_SAMPLE_WINDOWS`); `--sample-period` sets the functional
//! fast-forward span between windows (`CS_SAMPLE_PERIOD`, required
//! nonzero when sampling) and `--sample-warmup` the detailed warm-up
//! re-run before each window (`CS_SAMPLE_WARMUP`).
//!
//! Exit codes: `0` all experiments accounted for, `1` at least one
//! experiment ultimately failed, `2` usage error, `3` interrupted by a
//! stop request with checkpoints saved (finish with `--resume`).

use cloudsuite::config::{ParseOutcome, RunConfigBuilder};
use cs_bench::campaign::{self, CampaignOptions, ExperimentStatus};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Every knob — flag name, env var(s), precedence, help line — is
    // declared once in the shared campaign registry.
    let builder = RunConfigBuilder::campaign("all_figures");
    let settings = match builder.parse(std::env::args().skip(1)) {
        ParseOutcome::Ready(s) => *s,
        ParseOutcome::Help(text) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        ParseOutcome::Error { message, show_usage } => {
            eprintln!("{message}");
            if show_usage {
                eprintln!("{}", builder.usage());
            }
            return ExitCode::from(2);
        }
    };
    let cfg = settings.run;
    // Reject a degenerate schedule up front instead of failing every
    // experiment with the same typed error.
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::from(2);
    }

    let mut opts = CampaignOptions {
        resume: settings.resume,
        stop: cs_bench::signal::install(),
        interrupt_after: settings.interrupt_after,
        ..Default::default()
    };
    if let Some(n) = settings.ckpt_cycles {
        opts.ckpt_cycles = n;
    }
    // The widening schedule itself (4x, 16x, ... capped 256x) stays fixed;
    // only the retry cap is tunable.
    if let Some(n) = settings.max_retries {
        opts.retry.max_retries = n;
    }

    let summary = campaign::run_with(&campaign::experiments(), &cfg, &settings.results_dir, &opts);

    eprintln!("\ncampaign summary:");
    for outcome in &summary.outcomes {
        match &outcome.status {
            ExperimentStatus::Ok { attempts: 1, .. } => eprintln!("  ok      {}", outcome.name),
            ExperimentStatus::Ok { attempts, .. } => {
                eprintln!("  ok      {} (after {attempts} attempts)", outcome.name)
            }
            ExperimentStatus::Skipped => eprintln!("  skipped {} (up to date)", outcome.name),
            ExperimentStatus::Interrupted => {
                eprintln!("  paused  {} (snapshot saved; --resume continues)", outcome.name)
            }
            ExperimentStatus::Failed { attempts, error } => {
                eprintln!("  FAILED  {} ({attempts} attempts): {error}", outcome.name)
            }
        }
    }
    let failed = summary.failed();
    let interrupted = summary.interrupted();
    if !failed.is_empty() {
        eprintln!(
            "{} of {} experiments failed; fix or re-run with --resume",
            failed.len(),
            summary.outcomes.len()
        );
    } else if !interrupted.is_empty() {
        eprintln!(
            "interrupted with {} of {} experiments pending; finish with --resume",
            interrupted.len(),
            summary.outcomes.len()
        );
    } else {
        eprintln!("all {} experiments accounted for", summary.outcomes.len());
    }
    ExitCode::from(summary.exit_code())
}
