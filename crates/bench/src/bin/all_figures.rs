//! Regenerates every table and figure of the evaluation, plus the
//! ablations, as one resumable, kill-safe campaign.
//!
//! Each experiment runs in isolation: a failure (typed harness error or
//! panic) is recorded in `results/manifest.json` and the campaign moves
//! on. Transient failures — a tripped watchdog or a truncated window —
//! are retried on a capped exponential budget-widening schedule:
//! `--max-retries N` (default: `CS_MAX_RETRIES`, then 1) allows up to `N`
//! retries, retry `i` re-running with the original cycle budget widened
//! `min(4 * 4^i, 256)`-fold. A second pass with `--resume` skips every
//! experiment whose result is already up to date (checksum-verified) and
//! re-runs only what failed.
//!
//! The campaign is crash-safe: every experiment snapshots its complete
//! simulation state to `<results>.ckpt/` every `--ckpt-cycles` simulated
//! cycles, and SIGINT/SIGTERM triggers one final snapshot before the
//! process exits with code 3. A later `--resume` pass restores the
//! snapshots and continues mid-window; the finished results are
//! byte-identical to a never-interrupted campaign, at any `--jobs` value,
//! with cycle-skipping on or off.
//!
//! Experiments — and the config points inside the sweep experiments —
//! are independent seeded runs, so the campaign fans them over `--jobs N`
//! worker threads (default: `CS_JOBS`, then 1). Results are byte-identical
//! at any jobs value; only the wall-clock changes.
//!
//! Usage: `all_figures [--resume] [--results-dir DIR] [--jobs N]
//! [--no-skip] [--ckpt-cycles N] [--max-retries N] [--warmup-instr N]
//! [--measure-instr N] [--sample-windows K] [--sample-period N]
//! [--sample-warmup N]`
//!
//! `--no-skip` disables the event-driven cycle-skipping fast path
//! (equivalently `CS_NO_SKIP=1`); results are byte-identical either way.
//! `--ckpt-cycles N` sets the checkpoint cadence in simulated cycles
//! (default: `CS_CKPT_CYCLES`, then 2,000,000; `0` disables cadence
//! snapshots — signal-triggered snapshots still happen).
//! `--warmup-instr`/`--measure-instr` set the two window budgets,
//! outranking `CS_WARMUP_INSTR`/`CS_MEASURE_INSTR` (which in turn outrank
//! `CS_WARMUP`/`CS_MEASURE`). `--sample-windows K` switches every
//! experiment to SMARTS-style sampled measurement with `K` detailed
//! windows (`CS_SAMPLE_WINDOWS`); `--sample-period` sets the functional
//! fast-forward span between windows (`CS_SAMPLE_PERIOD`, required
//! nonzero when sampling) and `--sample-warmup` the detailed warm-up
//! re-run before each window (`CS_SAMPLE_WARMUP`).
//!
//! Exit codes: `0` all experiments accounted for, `1` at least one
//! experiment ultimately failed, `2` usage error, `3` interrupted by a
//! stop request with checkpoints saved (finish with `--resume`).

use cs_bench::campaign::{self, CampaignOptions, ExperimentStatus};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: all_figures [--resume] [--results-dir DIR] [--jobs N] \
                     [--no-skip] [--ckpt-cycles N] [--max-retries N] \
                     [--warmup-instr N] [--measure-instr N] [--sample-windows K] \
                     [--sample-period N] [--sample-warmup N]";

fn main() -> ExitCode {
    let mut resume = false;
    let mut results_dir = PathBuf::from("results");
    let mut jobs = None;
    let mut no_skip = false;
    let mut ckpt_cycles = None;
    let mut max_retries = None;
    let mut warmup_instr = None;
    let mut measure_instr = None;
    let mut sample_windows = None;
    let mut sample_period = None;
    let mut sample_warmup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            "--no-skip" => no_skip = true,
            "--results-dir" => match args.next() {
                Some(dir) => results_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--results-dir requires a path");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--ckpt-cycles" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => ckpt_cycles = Some(n),
                None => {
                    eprintln!("--ckpt-cycles requires a cycle count (0 disables cadence)");
                    return ExitCode::from(2);
                }
            },
            "--max-retries" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => max_retries = Some(n),
                None => {
                    eprintln!("--max-retries requires a retry count (0 disables retries)");
                    return ExitCode::from(2);
                }
            },
            "--warmup-instr" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => warmup_instr = Some(n),
                None => {
                    eprintln!("--warmup-instr requires an instruction count");
                    return ExitCode::from(2);
                }
            },
            "--measure-instr" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => measure_instr = Some(n),
                _ => {
                    eprintln!("--measure-instr requires a positive instruction count");
                    return ExitCode::from(2);
                }
            },
            "--sample-windows" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(k) => sample_windows = Some(k),
                None => {
                    eprintln!("--sample-windows requires a window count (0 disables sampling)");
                    return ExitCode::from(2);
                }
            },
            "--sample-period" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => sample_period = Some(n),
                None => {
                    eprintln!("--sample-period requires an instruction count");
                    return ExitCode::from(2);
                }
            },
            "--sample-warmup" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => sample_warmup = Some(n),
                None => {
                    eprintln!("--sample-warmup requires an instruction count");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut cfg = cs_bench::config_from_env();
    if let Some(jobs) = jobs {
        cfg.jobs = jobs; // The flag outranks CS_JOBS.
    }
    if no_skip {
        cfg.cycle_skip = false; // The flag outranks CS_NO_SKIP.
    }
    // Window-budget and sampling-schedule flags outrank their env forms.
    if let Some(n) = warmup_instr {
        cfg.warmup_instr = n;
    }
    if let Some(n) = measure_instr {
        cfg.measure_instr = n;
    }
    if let Some(k) = sample_windows {
        cfg.sample_windows = k;
    }
    if let Some(n) = sample_period {
        cfg.sample_period = n;
    }
    if let Some(n) = sample_warmup {
        cfg.sample_warmup_instr = n;
    }
    // Reject a degenerate schedule up front instead of failing every
    // experiment with the same typed error.
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::from(2);
    }

    let mut opts = CampaignOptions { resume, stop: cs_bench::signal::install(), ..Default::default() };
    if let Some(n) = ckpt_cycles {
        opts.ckpt_cycles = n; // The flag outranks CS_CKPT_CYCLES.
    } else if let Ok(v) = std::env::var("CS_CKPT_CYCLES") {
        if let Ok(n) = v.parse::<u64>() {
            opts.ckpt_cycles = n;
        }
    }
    // Deterministic kill switch for tests and CI: behave exactly as if a
    // signal arrived once each unit's chip reaches this cycle.
    if let Ok(v) = std::env::var("CS_INTERRUPT_AFTER") {
        if let Ok(n) = v.parse::<u64>() {
            opts.interrupt_after = Some(n);
        }
    }
    // Transient-failure retry cap: the flag outranks CS_MAX_RETRIES; the
    // widening schedule itself (4x, 16x, ... capped 256x) stays fixed.
    if let Some(n) = max_retries {
        opts.retry.max_retries = n;
    } else if let Ok(v) = std::env::var("CS_MAX_RETRIES") {
        if let Ok(n) = v.parse::<u32>() {
            opts.retry.max_retries = n;
        }
    }

    let summary = campaign::run_with(&campaign::experiments(), &cfg, &results_dir, &opts);

    eprintln!("\ncampaign summary:");
    for outcome in &summary.outcomes {
        match &outcome.status {
            ExperimentStatus::Ok { attempts: 1, .. } => eprintln!("  ok      {}", outcome.name),
            ExperimentStatus::Ok { attempts, .. } => {
                eprintln!("  ok      {} (after {attempts} attempts)", outcome.name)
            }
            ExperimentStatus::Skipped => eprintln!("  skipped {} (up to date)", outcome.name),
            ExperimentStatus::Interrupted => {
                eprintln!("  paused  {} (snapshot saved; --resume continues)", outcome.name)
            }
            ExperimentStatus::Failed { attempts, error } => {
                eprintln!("  FAILED  {} ({attempts} attempts): {error}", outcome.name)
            }
        }
    }
    let failed = summary.failed();
    let interrupted = summary.interrupted();
    if !failed.is_empty() {
        eprintln!(
            "{} of {} experiments failed; fix or re-run with --resume",
            failed.len(),
            summary.outcomes.len()
        );
    } else if !interrupted.is_empty() {
        eprintln!(
            "interrupted with {} of {} experiments pending; finish with --resume",
            interrupted.len(),
            summary.outcomes.len()
        );
    } else {
        eprintln!("all {} experiments accounted for", summary.outcomes.len());
    }
    ExitCode::from(summary.exit_code())
}
