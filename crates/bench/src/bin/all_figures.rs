//! Regenerates every table and figure of the evaluation, plus the
//! ablations, as one resumable, kill-safe campaign.
//!
//! Each experiment runs in isolation: a failure (typed harness error or
//! panic) is recorded in `results/manifest.json` and the campaign moves
//! on. Transient failures — a tripped watchdog or a truncated window —
//! are retried on a capped exponential budget-widening schedule:
//! `--max-retries N` (default: `CS_MAX_RETRIES`, then 1) allows up to `N`
//! retries, retry `i` re-running with the original cycle budget widened
//! `min(4 * 4^i, 256)`-fold. A second pass with `--resume` skips every
//! experiment whose result is already up to date (checksum-verified) and
//! re-runs only what failed.
//!
//! The campaign is crash-safe: every experiment snapshots its complete
//! simulation state to `<results>.ckpt/` every `--ckpt-cycles` simulated
//! cycles, and SIGINT/SIGTERM triggers one final snapshot before the
//! process exits with code 3. A later `--resume` pass restores the
//! snapshots and continues mid-window; the finished results are
//! byte-identical to a never-interrupted campaign, at any `--jobs` value,
//! with cycle-skipping on or off.
//!
//! Experiments — and the config points inside the sweep experiments —
//! are independent seeded runs, so the campaign fans them over `--jobs N`
//! worker threads (default: `CS_JOBS`, then 1). Results are byte-identical
//! at any jobs value; only the wall-clock changes.
//!
//! Usage: `all_figures [--resume] [--results-dir DIR] [--jobs N]
//! [--no-skip] [--ckpt-cycles N] [--max-retries N]`
//!
//! `--no-skip` disables the event-driven cycle-skipping fast path
//! (equivalently `CS_NO_SKIP=1`); results are byte-identical either way.
//! `--ckpt-cycles N` sets the checkpoint cadence in simulated cycles
//! (default: `CS_CKPT_CYCLES`, then 2,000,000; `0` disables cadence
//! snapshots — signal-triggered snapshots still happen).
//!
//! Exit codes: `0` all experiments accounted for, `1` at least one
//! experiment ultimately failed, `2` usage error, `3` interrupted by a
//! stop request with checkpoints saved (finish with `--resume`).

use cs_bench::campaign::{self, CampaignOptions, ExperimentStatus};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: all_figures [--resume] [--results-dir DIR] [--jobs N] \
                     [--no-skip] [--ckpt-cycles N] [--max-retries N]";

fn main() -> ExitCode {
    let mut resume = false;
    let mut results_dir = PathBuf::from("results");
    let mut jobs = None;
    let mut no_skip = false;
    let mut ckpt_cycles = None;
    let mut max_retries = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            "--no-skip" => no_skip = true,
            "--results-dir" => match args.next() {
                Some(dir) => results_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--results-dir requires a path");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--ckpt-cycles" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => ckpt_cycles = Some(n),
                None => {
                    eprintln!("--ckpt-cycles requires a cycle count (0 disables cadence)");
                    return ExitCode::from(2);
                }
            },
            "--max-retries" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => max_retries = Some(n),
                None => {
                    eprintln!("--max-retries requires a retry count (0 disables retries)");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut cfg = cs_bench::config_from_env();
    if let Some(jobs) = jobs {
        cfg.jobs = jobs; // The flag outranks CS_JOBS.
    }
    if no_skip {
        cfg.cycle_skip = false; // The flag outranks CS_NO_SKIP.
    }

    let mut opts = CampaignOptions { resume, stop: cs_bench::signal::install(), ..Default::default() };
    if let Some(n) = ckpt_cycles {
        opts.ckpt_cycles = n; // The flag outranks CS_CKPT_CYCLES.
    } else if let Ok(v) = std::env::var("CS_CKPT_CYCLES") {
        if let Ok(n) = v.parse::<u64>() {
            opts.ckpt_cycles = n;
        }
    }
    // Deterministic kill switch for tests and CI: behave exactly as if a
    // signal arrived once each unit's chip reaches this cycle.
    if let Ok(v) = std::env::var("CS_INTERRUPT_AFTER") {
        if let Ok(n) = v.parse::<u64>() {
            opts.interrupt_after = Some(n);
        }
    }
    // Transient-failure retry cap: the flag outranks CS_MAX_RETRIES; the
    // widening schedule itself (4x, 16x, ... capped 256x) stays fixed.
    if let Some(n) = max_retries {
        opts.retry.max_retries = n;
    } else if let Ok(v) = std::env::var("CS_MAX_RETRIES") {
        if let Ok(n) = v.parse::<u32>() {
            opts.retry.max_retries = n;
        }
    }

    let summary = campaign::run_with(&campaign::experiments(), &cfg, &results_dir, &opts);

    eprintln!("\ncampaign summary:");
    for outcome in &summary.outcomes {
        match &outcome.status {
            ExperimentStatus::Ok { attempts: 1, .. } => eprintln!("  ok      {}", outcome.name),
            ExperimentStatus::Ok { attempts, .. } => {
                eprintln!("  ok      {} (after {attempts} attempts)", outcome.name)
            }
            ExperimentStatus::Skipped => eprintln!("  skipped {} (up to date)", outcome.name),
            ExperimentStatus::Interrupted => {
                eprintln!("  paused  {} (snapshot saved; --resume continues)", outcome.name)
            }
            ExperimentStatus::Failed { attempts, error } => {
                eprintln!("  FAILED  {} ({attempts} attempts): {error}", outcome.name)
            }
        }
    }
    let failed = summary.failed();
    let interrupted = summary.interrupted();
    if !failed.is_empty() {
        eprintln!(
            "{} of {} experiments failed; fix or re-run with --resume",
            failed.len(),
            summary.outcomes.len()
        );
    } else if !interrupted.is_empty() {
        eprintln!(
            "interrupted with {} of {} experiments pending; finish with --resume",
            interrupted.len(),
            summary.outcomes.len()
        );
    } else {
        eprintln!("all {} experiments accounted for", summary.outcomes.len());
    }
    ExitCode::from(summary.exit_code())
}
