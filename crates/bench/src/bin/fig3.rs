//! Regenerates Figure 3: IPC and MLP, baseline vs SMT.

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig3::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig3::report(&rows), "fig3");
}
