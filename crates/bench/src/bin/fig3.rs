//! Regenerates Figure 3: IPC and MLP, baseline vs SMT.

use cloudsuite::experiments::fig3;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig3", |cfg| Ok(fig3::report(&fig3::collect(cfg)?)))
}
