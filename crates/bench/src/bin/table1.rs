//! Regenerates Table 1 (architectural parameters).

fn main() {
    let machine = cloudsuite::MachineConfig::default();
    cs_bench::emit(&cloudsuite::experiments::table1::report(&machine), "table1");
}
