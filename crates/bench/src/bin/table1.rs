//! Regenerates Table 1 (architectural parameters).

use std::process::ExitCode;

fn main() -> ExitCode {
    let machine = cloudsuite::MachineConfig::default();
    match cs_bench::emit(&cloudsuite::experiments::table1::report(&machine), "table1") {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("table1: {e}");
            ExitCode::FAILURE
        }
    }
}
