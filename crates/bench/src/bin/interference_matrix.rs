//! Regenerates the N×N co-location interference matrix: per-tenant IPC
//! loss, LLC occupancy, and DRAM shares for every workload pairing under
//! no mitigation, LLC way-partitioning, and DRAM bandwidth throttling.
//!
//! `CS_MATRIX_WORKLOADS` (comma-separated roster keys) restricts the
//! matrix for smoke runs; see EXPERIMENTS.md.

use cloudsuite::experiments::interference_matrix as im;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("interference_matrix", |cfg| Ok(im::report(&im::collect(cfg)?)))
}
