//! Regenerates the `fleet_slo` experiment: harness-measured service times
//! driving the `cs-fleet` cluster simulator across fleet sizes and fault
//! intensities, reporting p50/p99/p999 latency, goodput, SLO attainment,
//! and the retry/hedge/shed/failure counters.
//!
//! Window sizes, seed, and jobs come from the usual environment knobs
//! (`CS_WARMUP`, `CS_MEASURE`, `CS_SEED`, `CS_JOBS`, ...); set
//! `CS_PARANOID=1` to run the fleet conservation auditor after every
//! simulated point. Results are byte-identical across reruns and `CS_JOBS`
//! values.

use cloudsuite::experiments::fleet_slo;
use std::process::ExitCode;

fn main() -> ExitCode {
    cs_bench::figure_main("fleet_slo", |cfg| {
        Ok(fleet_slo::report(&fleet_slo::collect(cfg)?))
    })
}
