//! Regenerates the "continuing the trends" study (§1/§6).

use cloudsuite::experiments::trends;
use cloudsuite::Benchmark;

fn main() {
    let cfg = cs_bench::config_from_env();
    for bench in [Benchmark::data_serving(), Benchmark::web_search()] {
        let rows = trends::collect(&bench, &cfg);
        cs_bench::emit(
            &trends::report(bench.name(), &rows),
            &format!("trends_{}", bench.name().to_lowercase().replace(' ', "_")),
        );
    }
}
