//! Regenerates the "continuing the trends" study (§1/§6).

use cloudsuite::experiments::trends;
use cloudsuite::Benchmark;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = cs_bench::config_from_env();
    for bench in [Benchmark::data_serving(), Benchmark::web_search()] {
        let name = format!("trends_{}", bench.name().to_lowercase().replace(' ', "_"));
        let rows = match trends::collect(&bench, &cfg) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = cs_bench::emit(&trends::report(bench.name(), &rows), &name) {
            eprintln!("{name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
