//! Workload inspector: one-line micro-architectural summary per workload.
//!
//! Usage: `inspect [workload-name-substring]` — runs the matching
//! workloads (all by default) under the standard 4-core setup and prints
//! IPC, MLP, stall/memory fractions, instruction miss rates, L2 hit
//! ratio, sharing and bandwidth. The environment variables `CS_WARMUP` /
//! `CS_MEASURE` / `CS_SEED` select the window sizes.

use cloudsuite::harness::run;
use cloudsuite::Benchmark;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default().to_lowercase();
    let cfg = cs_bench::config_from_env();
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7} {:>6}",
        "workload", "ipc", "app", "mlp", "stall", "mem", "l1i/k", "l2i/k", "l2hit", "share%", "bw%"
    );
    for bench in Benchmark::all() {
        if !bench.name().to_lowercase().contains(&filter) {
            continue;
        }
        let r = match run(&bench, &cfg) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<16} {e}", bench.name());
                continue;
            }
        };
        let b = r.breakdown();
        let (l1a, l1o) = r.l1i_mpki();
        let (l2a, l2o) = r.l2i_mpki();
        let (sa, so) = r.rw_shared_pct();
        let (ba, bo) = r.bandwidth_pct();
        println!(
            "{:<16} {:>5.2} {:>5.2} {:>5.2} {:>6.2} {:>6.2} {:>6.1} {:>6.1} {:>6.2} {:>7.2} {:>6.2}",
            r.name,
            r.ipc(),
            r.app_ipc(),
            r.mlp(),
            b.stalled_app + b.stalled_os,
            b.memory,
            l1a + l1o,
            l2a + l2o,
            r.l2_hit_ratio(),
            sa + so,
            ba + bo
        );
    }
}
