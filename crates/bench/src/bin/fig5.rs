//! Regenerates Figure 5: L2 hit ratios vs prefetcher configuration.

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig5::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig5::report(&rows), "fig5");
}
