//! Regenerates Figure 5: L2 hit ratios vs prefetcher configuration.

use cloudsuite::experiments::fig5;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig5", |cfg| Ok(fig5::report(&fig5::collect(cfg)?)))
}
