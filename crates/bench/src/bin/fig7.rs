//! Regenerates Figure 7: off-chip memory bandwidth utilization.

use cloudsuite::experiments::fig7;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig7", |cfg| Ok(fig7::report(&fig7::collect(cfg)?)))
}
