//! Regenerates Figure 7: off-chip memory bandwidth utilization.

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig7::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig7::report(&rows), "fig7");
}
