//! Regenerates the compute-density study (the paper's §6 conclusion,
//! quantified with the first-order area/power model).

use cloudsuite::experiments::density;
use cloudsuite::Benchmark;

fn main() {
    let cfg = cs_bench::config_from_env();
    for bench in [Benchmark::web_search(), Benchmark::data_serving()] {
        let rows = density::collect(&bench, &cfg);
        cs_bench::emit(
            &density::report(bench.name(), &rows),
            &format!("density_{}", bench.name().to_lowercase().replace(' ', "_")),
        );
    }
}
