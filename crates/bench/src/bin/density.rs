//! Regenerates the compute-density study (the paper's §6 conclusion,
//! quantified with the first-order area/power model).

use cloudsuite::experiments::density;
use cloudsuite::Benchmark;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = cs_bench::config_from_env();
    for bench in [Benchmark::web_search(), Benchmark::data_serving()] {
        let name = format!("density_{}", bench.name().to_lowercase().replace(' ', "_"));
        let rows = match density::collect(&bench, &cfg) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = cs_bench::emit(&density::report(bench.name(), &rows), &name) {
            eprintln!("{name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
