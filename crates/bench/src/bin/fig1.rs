//! Regenerates Figure 1: execution-time breakdown and memory cycles.

use cloudsuite::experiments::fig1;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig1", |cfg| Ok(fig1::report(&fig1::collect(cfg)?)))
}
