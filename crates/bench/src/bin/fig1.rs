//! Regenerates Figure 1: execution-time breakdown and memory cycles.

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig1::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig1::report(&rows), "fig1");
}
