//! Regenerates Figure 4: performance sensitivity to LLC capacity
//! (cache-polluter methodology).

use cloudsuite::experiments::fig4;

fn main() -> std::process::ExitCode {
    cs_bench::figure_main("fig4", |cfg| Ok(fig4::report(&fig4::collect(cfg)?)))
}
