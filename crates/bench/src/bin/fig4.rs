//! Regenerates Figure 4: performance sensitivity to LLC capacity
//! (cache-polluter methodology).

fn main() {
    let cfg = cs_bench::config_from_env();
    let rows = cloudsuite::experiments::fig4::collect(&cfg);
    cs_bench::emit(&cloudsuite::experiments::fig4::report(&rows), "fig4");
}
