//! Resumable, fault-tolerant figure campaigns — the `all_figures` engine.
//!
//! A campaign is an ordered list of [`Experiment`]s, each of which renders
//! one `<results>/<name>.json`. The runner keeps experiments isolated from
//! each other: a panic or a typed [`HarnessError`] in one experiment is
//! caught, recorded, and the rest of the campaign continues. Transient
//! failures — a tripped watchdog or a truncated window — are retried on a
//! configurable capped exponential-backoff schedule
//! ([`CampaignOptions::retry`], the same [`cs_fleet::RetryPolicy`] the
//! fleet simulator's clients use): each attempt widens the cycle budget by
//! the schedule's next multiplier, applied to the *original* budget so the
//! schedule — not attempt compounding — bounds the worst case. The default
//! is one retry at 4x, the historical behavior.
//!
//! Every outcome is recorded in `<results>/manifest.json`, rewritten after
//! each experiment so an interrupted campaign loses at most the experiment
//! it was running. With `resume = true` the runner skips experiments whose
//! manifest entry says `ok`, whose fingerprint matches the current
//! configuration, and whose result file still exists — so a second pass
//! after a partial failure re-runs only what actually failed.
//!
//! The manifest is deterministic: object keys are sorted and no timestamps
//! or durations are recorded, so two runs of the same campaign over the
//! same configuration produce byte-identical manifests.
//!
//! Experiments are mutually independent, so the runner fans them over
//! [`RunConfig::jobs`] worker threads ([`cloudsuite::par::par_map`]);
//! sweep experiments additionally parallelize their own config points
//! with the same knob. Every unit stays isolated — a worker-thread panic
//! is caught and recorded as that experiment's `failed` entry, never
//! aborting its siblings — and because outcomes are collected in campaign
//! order and the manifest map is key-sorted, the final `manifest.json`
//! and every result file are byte-identical at any `jobs` value.
//!
//! # Mid-run checkpointing and graceful shutdown
//!
//! Every experiment runs under a [`cloudsuite::checkpoint::CheckpointCtl`]
//! rooted at the sibling directory `<results>.ckpt` (kept outside the
//! results directory so `diff -r` between two result trees never sees
//! transient snapshot files). The harness snapshots its complete
//! simulation state there every [`CampaignOptions::ckpt_cycles`] simulated
//! cycles and — when the [`CampaignOptions::stop`] flag is raised by the
//! SIGINT/SIGTERM handler ([`crate::signal::install`]) — saves one final
//! snapshot and stops. An interrupted experiment is reported as
//! [`ExperimentStatus::Interrupted`]: its manifest entry is left untouched
//! (it is neither ok nor failed), the campaign's exit code becomes 3, and
//! the next `--resume` pass restores the snapshot and continues, producing
//! results byte-identical to a never-interrupted campaign. Checkpoints of
//! an experiment are deleted once its result file is durably emitted.

use cloudsuite::checkpoint::{with_checkpointing, CheckpointCtl, DEFAULT_CADENCE_CYCLES};
use cloudsuite::experiments as exp;
use cloudsuite::harness::RunConfig;
use cloudsuite::{Benchmark, HarnessError, MachineConfig};
use cs_fleet::RetryPolicy;
use cs_perf::Report;
use serde_json::{Map, Value};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A shareable experiment builder: runs the experiment and renders its
/// report.
pub type ExperimentFn = Arc<dyn Fn(&RunConfig) -> Result<Report, HarnessError> + Send + Sync>;

/// One independently-run, independently-resumable unit of a campaign.
#[derive(Clone)]
pub struct Experiment {
    /// Manifest key and result-file stem (`<results>/<name>.json`).
    pub name: &'static str,
    /// Runs the experiment and renders its report.
    pub build: ExperimentFn,
}

impl Experiment {
    /// Wraps a plain builder function (or closure) under a manifest name.
    pub fn new(
        name: &'static str,
        build: impl Fn(&RunConfig) -> Result<Report, HarnessError> + Send + Sync + 'static,
    ) -> Self {
        Self { name, build: Arc::new(build) }
    }

    /// Adapts a [`cloudsuite::experiments::Experiment`] trait object: the
    /// experiment's own name becomes the manifest key, and its `run`
    /// method the builder. This is how every non-figure experiment enters
    /// the campaign — the loop never special-cases them.
    pub fn from_registry(e: Box<dyn exp::Experiment + Send + Sync>) -> Self {
        let name = e.name();
        Self { name, build: Arc::new(move |cfg| e.run(cfg)) }
    }
}

/// The full campaign behind `all_figures`: Table 1, Figures 1–7, the
/// ablation studies, and — via [`cloudsuite::experiments::registry`] —
/// the fleet serving layer, the sampled-simulation estimates, and the
/// co-location interference matrix.
pub fn experiments() -> Vec<Experiment> {
    fn table1(_cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::table1::report(&MachineConfig::default()))
    }
    fn fig1(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig1::report(&exp::fig1::collect(cfg)?))
    }
    fn fig2(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig2::report(&exp::fig2::collect(cfg)?))
    }
    fn fig3(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig3::report(&exp::fig3::collect(cfg)?))
    }
    fn fig4(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig4::report(&exp::fig4::collect(cfg)?))
    }
    fn fig5(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig5::report(&exp::fig5::collect(cfg)?))
    }
    fn fig6(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig6::report(&exp::fig6::collect(cfg)?))
    }
    fn fig7(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::fig7::report(&exp::fig7::collect(cfg)?))
    }
    fn a1(cfg: &RunConfig) -> Result<Report, HarnessError> {
        let scale_out = Benchmark::scale_out_suite();
        Ok(exp::ablations::report_a1(&exp::ablations::a1_mediocre_cores(
            &scale_out[..2],
            cfg,
        )?))
    }
    fn a2(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::ablations::report_variant(
            "Ablation A2: modest 4 MB LLC (§4.3 implication)",
            "Scale-out performance is nearly unchanged when the LLC shrinks to 4 MB.",
            &exp::ablations::a2_small_llc(&Benchmark::scale_out_suite(), cfg)?,
        ))
    }
    fn a3(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::ablations::report_variant(
            "Ablation A3: DCU streamer disabled (§4.3)",
            "The L1-D streamer provides no benefit to scale-out workloads.",
            &exp::ablations::a3_no_dcu(&Benchmark::scale_out_suite(), cfg)?,
        ))
    }
    fn a4(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::ablations::report_variant(
            "Ablation A4: one DDR3 channel (§4.4 implication)",
            "Scaling off-chip bandwidth back leaves scale-out performance essentially unchanged.",
            &exp::ablations::a4_one_channel(&Benchmark::scale_out_suite(), cfg)?,
        ))
    }
    fn a5(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::ablations::report_variant(
            "Ablation A5: 128 KB L1-I opportunity study (§4.1 implication)",
            "What bringing instructions closer to the cores would buy.",
            &exp::ablations::a5_big_l1i(&Benchmark::scale_out_suite(), cfg)?,
        ))
    }
    fn a6(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::ablations::report_variant(
            "Ablation A6: L1-I next-line prefetcher disabled (§4.1)",
            "The next-line prefetcher is inadequate for scale-out control flow.",
            &exp::ablations::a6_no_instr_prefetch(&Benchmark::scale_out_suite(), cfg)?,
        ))
    }
    fn a8(cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(exp::ablations::report_variant(
            "Ablation A8: narrower on-chip interconnect (§4.4 implication)",
            "Slower LLC and cross-socket paths barely move scale-out performance.",
            &exp::ablations::a8_narrow_interconnect(&Benchmark::scale_out_suite(), cfg)?,
        ))
    }
    let mut v = vec![
        Experiment::new("table1", table1),
        Experiment::new("fig1", fig1),
        Experiment::new("fig2", fig2),
        Experiment::new("fig3", fig3),
        Experiment::new("fig4", fig4),
        Experiment::new("fig5", fig5),
        Experiment::new("fig6", fig6),
        Experiment::new("fig7", fig7),
        Experiment::new("ablation_a1", a1),
        Experiment::new("ablation_a2", a2),
        Experiment::new("ablation_a3", a3),
        Experiment::new("ablation_a4", a4),
        Experiment::new("ablation_a5", a5),
        Experiment::new("ablation_a6", a6),
        Experiment::new("ablation_a8", a8),
    ];
    // Every non-figure experiment registers itself through the trait; the
    // campaign just adapts the registry instead of naming each one.
    v.extend(exp::registry().into_iter().map(Experiment::from_registry));
    v
}

/// How one experiment of a campaign ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentStatus {
    /// The result file was written.
    Ok {
        /// Attempts used (2 means the transient-failure retry fired).
        attempts: u32,
        /// FNV-1a 64 content checksum (hex) of the emitted result file,
        /// recorded in the manifest for resume-time verification.
        checksum: String,
        /// Checkpoint file names this experiment's simulation units used
        /// (deleted on success; recorded for observability).
        units: Vec<String>,
    },
    /// An up-to-date result already existed (`resume`).
    Skipped,
    /// A stop request (signal or deterministic test trigger) cut the
    /// experiment short after a checkpoint was saved, or arrived before it
    /// started. Not a failure: its manifest entry is left untouched and the
    /// next `--resume` pass continues from the snapshot.
    Interrupted,
    /// The experiment failed after all attempts.
    Failed {
        /// Attempts used.
        attempts: u32,
        /// Rendered error (typed harness error, panic message, or I/O).
        error: String,
    },
}

/// One experiment's name and final status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The experiment's manifest key.
    pub name: String,
    /// Its final status.
    pub status: ExperimentStatus,
}

/// Every outcome of a campaign run, in campaign order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Per-experiment outcomes.
    pub outcomes: Vec<Outcome>,
}

impl CampaignSummary {
    /// Experiments that ultimately failed.
    pub fn failed(&self) -> Vec<&Outcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, ExperimentStatus::Failed { .. }))
            .collect()
    }

    /// Experiments cut short by a stop request (resumable, not failed).
    pub fn interrupted(&self) -> Vec<&Outcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, ExperimentStatus::Interrupted))
            .collect()
    }

    /// Process exit code: `1` if an experiment ultimately failed, `3` if
    /// the campaign was interrupted (checkpoints saved, `--resume`
    /// continues it), `0` otherwise.
    pub fn exit_code(&self) -> u8 {
        if !self.failed().is_empty() {
            1
        } else if !self.interrupted().is_empty() {
            3
        } else {
            0
        }
    }
}

/// Knobs of one campaign pass beyond the [`RunConfig`] itself.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Skip experiments whose manifest entry is ok, fingerprint-matched,
    /// and whose result file exists with a matching content checksum.
    pub resume: bool,
    /// Checkpoint cadence in simulated cycles (`0` disables cadence
    /// snapshots; stop-triggered snapshots still happen).
    pub ckpt_cycles: u64,
    /// Cooperative stop flag, usually the one [`crate::signal::install`]
    /// returns. Raised mid-campaign, it makes every in-flight experiment
    /// save a snapshot and stop, and keeps pending ones from starting.
    pub stop: Arc<AtomicBool>,
    /// Deterministic interruption for tests and CI (`CS_INTERRUPT_AFTER`):
    /// each simulation unit stops once its chip reaches this cycle, as if
    /// a signal had arrived.
    pub interrupt_after: Option<u64>,
    /// Transient-failure retry schedule. `backoff(i)` is the budget
    /// *multiplier* of retry `i` (applied to the original `max_cycles` and
    /// `watchdog_grace`, not compounded across attempts); `max_retries`
    /// bounds the attempts at `1 + max_retries`.
    pub retry: RetryPolicy,
}

/// The historical transient-retry behavior: one retry with a 4x budget
/// (schedule 4, 16, 64, capped at 256x, of which only the first fires).
pub const DEFAULT_RETRY: RetryPolicy =
    RetryPolicy { max_retries: 1, base: 4, factor: 4, cap: 256 };

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            resume: false,
            ckpt_cycles: DEFAULT_CADENCE_CYCLES,
            stop: Arc::new(AtomicBool::new(false)),
            interrupt_after: None,
            retry: DEFAULT_RETRY,
        }
    }
}

/// The configuration fingerprint stored per manifest entry; a resume pass
/// only trusts results produced under the same fingerprint.
///
/// Sampling-disabled configs keep the historical `w-m-s` shape so manifests
/// written before sampling existed still resume; a sampled schedule appends
/// its three knobs, so flipping sampling on or off invalidates prior
/// results.
pub fn fingerprint(cfg: &RunConfig) -> String {
    let mut fp = format!("w{}-m{}-s{}", cfg.warmup_instr, cfg.measure_instr, cfg.seed);
    if cfg.sample_windows > 0 {
        fp = format!(
            "{fp}-k{}-p{}-sw{}",
            cfg.sample_windows, cfg.sample_period, cfg.sample_warmup_instr
        );
        // The overlapped window-parallel schedule warms each window from a
        // snapshot instead of measuring in-line, so its bytes differ from
        // the sequential sampled path; flipping it must invalidate prior
        // results. `sample_inflight` is scheduling-only (byte-identical at
        // any value) and deliberately stays out of the fingerprint.
        if cfg.window_par {
            fp = format!("{fp}-wp");
        }
    }
    // A restricted interference matrix produces a different result file
    // under the same name; widening it back must invalidate the entry.
    if let Some(w) = &cfg.matrix_workloads {
        fp = format!("{fp}-x{}", w.join("+"));
    }
    // Same contract for a restricted fleet_resilience scenario sweep.
    if let Some(sc) = &cfg.fleet_scenarios {
        fp = format!("{fp}-fr{}", sc.join("+"));
    }
    fp
}

/// Runs the campaign, emitting result files into `results_dir` and
/// maintaining `results_dir/manifest.json`.
///
/// Experiments run concurrently on up to [`RunConfig::jobs`] threads; the
/// skip set of a resume pass is decided up front from the loaded manifest,
/// and outcomes are reported in campaign order regardless of which thread
/// finished first. A panic escaping an experiment's worker thread is
/// recorded as that experiment's [`ExperimentStatus::Failed`] — one
/// poisoned unit never aborts the campaign.
pub fn run(
    experiments: &[Experiment],
    cfg: &RunConfig,
    results_dir: &Path,
    resume: bool,
) -> CampaignSummary {
    run_with(experiments, cfg, results_dir, &CampaignOptions { resume, ..Default::default() })
}

/// [`run`] with explicit [`CampaignOptions`]: checkpoint cadence, the
/// graceful-shutdown stop flag, and the deterministic interrupt trigger.
pub fn run_with(
    experiments: &[Experiment],
    cfg: &RunConfig,
    results_dir: &Path,
    opts: &CampaignOptions,
) -> CampaignSummary {
    let manifest_path = results_dir.join("manifest.json");
    let loaded = if opts.resume { load_manifest(&manifest_path) } else { Map::new() };
    let fp = fingerprint(cfg);
    // The skip set is decided before any worker starts: entries written
    // mid-campaign must not change which experiments this pass runs.
    let skip: Vec<bool> = experiments
        .iter()
        .map(|e| opts.resume && up_to_date(&loaded, e.name, &fp, results_dir))
        .collect();
    let manifest = Mutex::new(loaded);
    // Snapshots live in a sibling of the results directory, never inside
    // it: `diff -r` between two result trees must not see them.
    let ckpt_root = PathBuf::from(format!("{}.ckpt", results_dir.display()));

    let statuses = cloudsuite::par::par_map(cfg.jobs, experiments, |i, e| {
        if skip[i] {
            eprintln!("[campaign] {}: up to date, skipping", e.name);
            return ExperimentStatus::Skipped;
        }
        // A stop raised before this experiment was dispatched: do not start
        // new work, just mark it resumable.
        if opts.stop.load(Ordering::SeqCst) {
            eprintln!("[campaign] {}: stop requested, not starting", e.name);
            return ExperimentStatus::Interrupted;
        }
        let ctl = CheckpointCtl {
            dir: ckpt_root.clone(),
            cadence_cycles: opts.ckpt_cycles,
            stop: Arc::clone(&opts.stop),
            interrupt_after: opts.interrupt_after,
            scope: e.name.to_string(),
            used: Arc::new(Mutex::new(Vec::new())),
        };
        // `run_one` already catches panics inside the experiment body; this
        // outer guard is the campaign-level backstop that converts a panic
        // escaping anywhere on the worker (result emission included) into
        // this experiment's failure outcome instead of sinking siblings.
        let status = panic::catch_unwind(AssertUnwindSafe(|| {
            with_checkpointing(ctl.clone(), || {
                run_one(e, cfg, results_dir, &ctl, &opts.retry)
            })
        }))
        .unwrap_or_else(|payload| ExperimentStatus::Failed {
            attempts: 1,
            error: panic_message(&*payload),
        });
        // An interrupted experiment leaves its manifest entry untouched:
        // it is neither ok (the result was not produced) nor failed (the
        // checkpoint makes it resumable).
        if status == ExperimentStatus::Interrupted {
            eprintln!(
                "[campaign] {}: interrupted; snapshot saved, `--resume` continues it",
                e.name
            );
            return status;
        }
        let mut entries = manifest.lock().unwrap_or_else(PoisonError::into_inner);
        entries.insert(e.name.to_string(), manifest_entry(&fp, &status));
        // Rewritten after every experiment: an interrupted campaign loses
        // at most the experiments that were in flight.
        if let Err(err) = write_manifest(&manifest_path, &entries) {
            eprintln!("[campaign] warning: could not write manifest: {err}");
        }
        status
    });

    let outcomes = experiments
        .iter()
        .zip(statuses)
        .map(|(e, status)| Outcome { name: e.name.into(), status })
        .collect();
    write_telemetry(&ckpt_root);
    CampaignSummary { outcomes }
}

/// Drains the harness's per-phase wall-clock telemetry accumulated by the
/// sampled units of this pass and writes it to `<results>.ckpt/telemetry.json`
/// — deliberately *outside* the results directory, because wall-clock
/// timings are host-dependent and must never show up in a `diff -r` between
/// two result trees. Best-effort: an unwritable directory only loses the
/// timings, never the campaign.
///
/// A resumed pass only re-runs stale units, so this pass's rows merge into
/// whatever the previous pass left: same-unit rows are replaced, other
/// units survive. A corrupt or torn existing file (a previous process was
/// killed mid-write before this writer became atomic, or the disk filled)
/// degrades to an empty history instead of aborting — and the write itself
/// goes through a temp file + rename so this writer can never produce such
/// a torn file again.
fn write_telemetry(ckpt_root: &Path) {
    write_telemetry_units(ckpt_root, &cloudsuite::sampling::drain_telemetry());
}

/// [`write_telemetry`] with the drained units passed in, so tests can
/// exercise the merge and corruption tolerance without the process-global
/// telemetry accumulator.
fn write_telemetry_units(ckpt_root: &Path, units: &[cloudsuite::sampling::PhaseTelemetry]) {
    use std::io::Write;
    if units.is_empty() {
        return;
    }
    let path = ckpt_root.join("telemetry.json");
    let mut rows = load_telemetry_rows(&path);
    for t in units {
        let mut m = Map::new();
        m.insert("unit".into(), Value::String(t.unit.clone()));
        m.insert("windows".into(), Value::from(t.windows as u64));
        m.insert("forward_secs".into(), Value::from(t.forward_secs));
        m.insert("warm_secs".into(), Value::from(t.warm_secs));
        m.insert("measure_secs".into(), Value::from(t.measure_secs));
        m.insert("fold_wait_secs".into(), Value::from(t.fold_wait_secs));
        let row = Value::Object(m);
        match rows.iter_mut().find(|r| r.get("unit").and_then(Value::as_str) == Some(&t.unit)) {
            Some(existing) => *existing = row,
            None => rows.push(row),
        }
    }
    let mut root = Map::new();
    root.insert("units".into(), Value::Array(rows));
    let Ok(text) = serde_json::to_string_pretty(&Value::Object(root)) else { return };
    if std::fs::create_dir_all(ckpt_root).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    };
    if let Err(e) = write() {
        eprintln!("[campaign] warning: could not write telemetry: {e}");
    }
}

/// The unit rows of an existing telemetry file; anything unreadable —
/// missing, truncated mid-JSON, or the wrong shape — is an empty history.
fn load_telemetry_rows(path: &Path) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    match serde_json::from_str::<Value>(&text) {
        Ok(v) => match v.get("units").and_then(Value::as_array) {
            Some(rows) => rows.iter().filter(|r| r.as_object().is_some()).cloned().collect(),
            None => Vec::new(),
        },
        Err(_) => Vec::new(),
    }
}

struct Failure {
    message: String,
    transient: bool,
    interrupted: bool,
}

/// One guarded attempt: typed errors and panics both become [`Failure`]s.
fn attempt(e: &Experiment, cfg: &RunConfig) -> Result<Report, Failure> {
    match panic::catch_unwind(AssertUnwindSafe(|| (e.build)(cfg))) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(err)) => Err(Failure {
            transient: matches!(
                err,
                HarnessError::Stalled { .. } | HarnessError::Truncated { .. }
            ),
            interrupted: matches!(err, HarnessError::Interrupted),
            message: err.to_string(),
        }),
        // `&*payload`, not `&payload`: coercing the Box itself to
        // `dyn Any` would make both downcasts miss.
        Err(payload) => Err(Failure {
            message: panic_message(&*payload),
            transient: false,
            interrupted: false,
        }),
    }
}

fn run_one(
    e: &Experiment,
    cfg: &RunConfig,
    results_dir: &Path,
    ctl: &CheckpointCtl,
    retry: &RetryPolicy,
) -> ExperimentStatus {
    let mut attempts: u32 = 1;
    let mut result = attempt(e, cfg);
    while let Err(f) = &result {
        // A stop request is not a failure — never retried, never recorded:
        // the checkpoint the harness just saved makes the unit resumable.
        if f.interrupted {
            return ExperimentStatus::Interrupted;
        }
        if !f.transient || attempts > retry.max_retries {
            break;
        }
        // Retry i widens the *original* budget by `backoff(i)`: the
        // schedule, not attempt compounding, bounds the worst case.
        let widen = retry.backoff(attempts - 1);
        eprintln!(
            "[campaign] {}: transient failure ({}); retry {}/{} with a {}x cycle budget",
            e.name, f.message, attempts, retry.max_retries, widen
        );
        let widened = RunConfig {
            max_cycles: cfg.max_cycles.saturating_mul(widen),
            watchdog_grace: cfg.watchdog_grace.saturating_mul(widen),
            ..cfg.clone()
        };
        attempts += 1;
        result = attempt(e, &widened);
    }
    match result {
        Ok(report) => match crate::emit_to(results_dir, &report, e.name) {
            Ok(emitted) => {
                // The result is durable; this experiment's snapshots have
                // served their purpose.
                let units = ctl.used_files();
                for f in &units {
                    let _ = std::fs::remove_file(ctl.dir.join(f));
                }
                ExperimentStatus::Ok { attempts, checksum: emitted.checksum, units }
            }
            Err(err) => ExperimentStatus::Failed { attempts, error: err.to_string() },
        },
        Err(f) if f.interrupted => ExperimentStatus::Interrupted,
        Err(f) => {
            eprintln!("[campaign] {}: FAILED: {}", e.name, f.message);
            ExperimentStatus::Failed { attempts, error: f.message }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".into()
    }
}

fn manifest_entry(fp: &str, status: &ExperimentStatus) -> Value {
    let mut m = Map::new();
    m.insert("fingerprint".into(), Value::String(fp.into()));
    match status {
        ExperimentStatus::Ok { attempts, checksum, units } => {
            m.insert("attempts".into(), Value::from(u64::from(*attempts)));
            m.insert("checksum".into(), Value::String(checksum.clone()));
            m.insert("status".into(), Value::String("ok".into()));
            m.insert(
                "units".into(),
                Value::Array(units.iter().map(|u| Value::String(u.clone())).collect()),
            );
        }
        ExperimentStatus::Failed { attempts, error } => {
            m.insert("attempts".into(), Value::from(u64::from(*attempts)));
            m.insert("error".into(), Value::String(error.clone()));
            m.insert("status".into(), Value::String("failed".into()));
        }
        // Skips and interruptions never reach the manifest: the existing
        // entry (if any) stands.
        ExperimentStatus::Skipped | ExperimentStatus::Interrupted => {}
    }
    Value::Object(m)
}

fn load_manifest(path: &Path) -> Map<String, Value> {
    let Ok(text) = std::fs::read_to_string(path) else { return Map::new() };
    match serde_json::from_str::<Value>(&text) {
        Ok(v) => match v.get("experiments").and_then(Value::as_object) {
            Some(entries) => entries.clone(),
            None => Map::new(),
        },
        Err(_) => Map::new(),
    }
}

fn write_manifest(path: &Path, entries: &Map<String, Value>) -> std::io::Result<()> {
    use std::io::Write;
    let mut root = Map::new();
    root.insert("experiments".into(), Value::Object(entries.clone()));
    root.insert("version".into(), Value::from(1u64));
    let text = serde_json::to_string_pretty(&Value::Object(root))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    // Atomic, like every other artifact: a kill mid-rewrite must leave the
    // previous manifest intact, not a torn one a resume pass would misread.
    let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.write_all(b"\n")?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

fn up_to_date(manifest: &Map<String, Value>, name: &str, fp: &str, results_dir: &Path) -> bool {
    let Some(entry) = manifest.get(name) else { return false };
    if entry.get("status").and_then(Value::as_str) != Some("ok")
        || entry.get("fingerprint").and_then(Value::as_str) != Some(fp)
    {
        return false;
    }
    // Trust content, not existence: the recorded checksum must match the
    // bytes on disk, so a torn, corrupted, or hand-edited result is re-run
    // rather than silently kept. Entries without a checksum are re-run too.
    let Some(recorded) = entry.get("checksum").and_then(Value::as_str) else { return false };
    match std::fs::read(results_dir.join(format!("{name}.json"))) {
        Ok(bytes) => crate::content_checksum(&bytes) == recorded,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("cs-campaign-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ok_report(_cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(Report::new("healthy"))
    }

    fn stalling(_cfg: &RunConfig) -> Result<Report, HarnessError> {
        Err(HarnessError::Stalled { core: 3, cycles_without_commit: 99, window: "measure" })
    }

    fn panicking(_cfg: &RunConfig) -> Result<Report, HarnessError> {
        panic!("exploded mid-experiment")
    }

    fn read_manifest(dir: &Path) -> Value {
        let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest");
        serde_json::from_str(&text).expect("manifest parses")
    }

    #[test]
    fn one_failure_does_not_sink_the_campaign() {
        let dir = scratch_dir("isolation");
        let exps = [
            Experiment::new("good_a", ok_report),
            Experiment::new("sick", stalling),
            Experiment::new("explosive", panicking),
            Experiment::new("good_b", ok_report),
        ];
        let summary = run(&exps, &RunConfig::default(), &dir, false);
        assert_eq!(summary.exit_code(), 1);
        assert_eq!(summary.failed().len(), 2);
        assert!(dir.join("good_a.json").exists());
        assert!(dir.join("good_b.json").exists());
        assert!(!dir.join("sick.json").exists());

        let manifest = read_manifest(&dir);
        let sick = manifest.get("experiments").and_then(|e| e.get("sick")).expect("entry");
        assert_eq!(sick.get("status").and_then(Value::as_str), Some("failed"));
        // A stall is transient: the widened-budget retry must have fired.
        assert_eq!(sick.get("attempts").and_then(Value::as_u64), Some(2));
        assert!(sick
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("core 3")));
        let boom =
            manifest.get("experiments").and_then(|e| e.get("explosive")).expect("entry");
        // Panics are not transient: exactly one attempt.
        assert_eq!(boom.get("attempts").and_then(Value::as_u64), Some(1));
        assert!(boom
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("exploded")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    static RESUME_RUNS: AtomicUsize = AtomicUsize::new(0);

    fn counted_ok(_cfg: &RunConfig) -> Result<Report, HarnessError> {
        RESUME_RUNS.fetch_add(1, Ordering::SeqCst);
        Ok(Report::new("counted"))
    }

    #[test]
    fn resume_reruns_only_the_failure() {
        let dir = scratch_dir("resume");
        let broken = [
            Experiment::new("steady", counted_ok),
            Experiment::new("flaky", stalling),
        ];
        let first = run(&broken, &RunConfig::default(), &dir, false);
        assert_eq!(first.exit_code(), 1);
        assert_eq!(RESUME_RUNS.load(Ordering::SeqCst), 1);

        // The flaw is fixed; a resume pass must re-run only "flaky".
        let fixed = [
            Experiment::new("steady", counted_ok),
            Experiment::new("flaky", ok_report),
        ];
        let second = run(&fixed, &RunConfig::default(), &dir, true);
        assert_eq!(second.exit_code(), 0);
        assert_eq!(RESUME_RUNS.load(Ordering::SeqCst), 1, "steady must be skipped");
        assert_eq!(second.outcomes[0].status, ExperimentStatus::Skipped);
        assert!(matches!(second.outcomes[1].status, ExperimentStatus::Ok { attempts: 1, .. }));
        assert!(dir.join("flaky.json").exists());

        // A config change invalidates the fingerprint: nothing is skipped.
        let wider = RunConfig { measure_instr: 123_456, ..RunConfig::default() };
        let third = run(&fixed, &wider, &dir, true);
        assert!(matches!(third.outcomes[0].status, ExperimentStatus::Ok { attempts: 1, .. }));
        assert_eq!(RESUME_RUNS.load(Ordering::SeqCst), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_distrusts_corrupted_results() {
        let dir = scratch_dir("checksum");
        let exps = [Experiment::new("good", ok_report)];
        let first = run(&exps, &RunConfig::default(), &dir, false);
        assert_eq!(first.exit_code(), 0);
        // The manifest records the content checksum of the emitted file.
        let manifest = read_manifest(&dir);
        let entry = manifest.get("experiments").and_then(|e| e.get("good")).expect("entry");
        let recorded = entry.get("checksum").and_then(Value::as_str).expect("checksum");
        let bytes = std::fs::read(dir.join("good.json")).expect("result");
        assert_eq!(crate::content_checksum(&bytes), recorded);

        // Untouched: a resume pass skips.
        let second = run(&exps, &RunConfig::default(), &dir, true);
        assert_eq!(second.outcomes[0].status, ExperimentStatus::Skipped);

        // Corrupted on disk: the checksum mismatch forces a re-run.
        std::fs::write(dir.join("good.json"), b"{\"tampered\": true}").expect("tamper");
        let third = run(&exps, &RunConfig::default(), &dir, true);
        assert!(
            matches!(third.outcomes[0].status, ExperimentStatus::Ok { .. }),
            "a corrupted result must be re-run, got {:?}",
            third.outcomes[0].status
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn interrupting(_cfg: &RunConfig) -> Result<Report, HarnessError> {
        Err(HarnessError::Interrupted)
    }

    #[test]
    fn interruption_is_resumable_not_failed() {
        let dir = scratch_dir("interrupt");
        // Establish a manifest entry for "good", then interrupt a pass
        // containing both experiments.
        let warm = [Experiment::new("good", ok_report)];
        run(&warm, &RunConfig::default(), &dir, false);
        let manifest_before = read_manifest(&dir);

        let exps = [
            Experiment::new("good", interrupting),
            Experiment::new("late", interrupting),
        ];
        let summary = run(&exps, &RunConfig::default(), &dir, false);
        assert_eq!(summary.exit_code(), 3, "interrupted campaigns exit 3");
        assert_eq!(summary.interrupted().len(), 2);
        assert!(summary.failed().is_empty(), "interruption is not failure");
        // No retry for interruptions, and the manifest is untouched: the
        // prior ok entry stands and "late" never appears.
        let manifest_after = read_manifest(&dir);
        assert_eq!(manifest_before, manifest_after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raised_stop_flag_prevents_new_experiments() {
        let dir = scratch_dir("stopflag");
        let exps = [
            Experiment::new("one", counted_ok),
            Experiment::new("two", counted_ok),
        ];
        let before = RESUME_RUNS.load(Ordering::SeqCst);
        let opts = CampaignOptions::default();
        opts.stop.store(true, Ordering::SeqCst);
        let summary = run_with(&exps, &RunConfig::default(), &dir, &opts);
        assert_eq!(summary.exit_code(), 3);
        assert_eq!(summary.interrupted().len(), 2);
        assert_eq!(
            RESUME_RUNS.load(Ordering::SeqCst),
            before,
            "no experiment body may run once the stop flag is raised"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    static FLAKY_CALLS: AtomicUsize = AtomicUsize::new(0);
    static FLAKY_BUDGETS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    fn flaky_twice(cfg: &RunConfig) -> Result<Report, HarnessError> {
        FLAKY_BUDGETS.lock().unwrap_or_else(PoisonError::into_inner).push(cfg.max_cycles);
        if FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
            Err(HarnessError::Truncated { committed: 1, target: 2 })
        } else {
            Ok(Report::new("finally"))
        }
    }

    #[test]
    fn retry_schedule_widens_the_original_budget_until_success() {
        let dir = scratch_dir("retry-schedule");
        let exps = [Experiment::new("flaky_twice", flaky_twice)];
        let opts = CampaignOptions {
            retry: RetryPolicy { max_retries: 3, base: 2, factor: 3, cap: 7 },
            ..Default::default()
        };
        let cfg = RunConfig::default();
        let summary = run_with(&exps, &cfg, &dir, &opts);
        assert_eq!(summary.exit_code(), 0);
        assert!(
            matches!(summary.outcomes[0].status, ExperimentStatus::Ok { attempts: 3, .. }),
            "two transient failures then success must use 3 attempts, got {:?}",
            summary.outcomes[0].status
        );
        // Multipliers come from the schedule (2, 6, capped 7) and apply to
        // the ORIGINAL budget — never compounded across attempts.
        let budgets =
            FLAKY_BUDGETS.lock().unwrap_or_else(PoisonError::into_inner).clone();
        assert_eq!(
            budgets,
            vec![cfg.max_cycles, cfg.max_cycles * 2, cfg.max_cycles * 6],
            "budgets must follow the capped exponential schedule"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_budget_exhaustion_is_a_failure_with_counted_attempts() {
        let dir = scratch_dir("retry-exhaust");
        let exps = [Experiment::new("always_sick", stalling)];
        let opts = CampaignOptions {
            retry: RetryPolicy { max_retries: 2, base: 4, factor: 4, cap: 256 },
            ..Default::default()
        };
        let summary = run_with(&exps, &RunConfig::default(), &dir, &opts);
        assert_eq!(summary.exit_code(), 1);
        assert!(
            matches!(
                summary.outcomes[0].status,
                ExperimentStatus::Failed { attempts: 3, .. }
            ),
            "1 initial + 2 retries, got {:?}",
            summary.outcomes[0].status
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_retries_means_exactly_one_attempt() {
        let dir = scratch_dir("retry-none");
        let exps = [Experiment::new("sick_once", stalling)];
        let opts =
            CampaignOptions { retry: RetryPolicy::none(), ..Default::default() };
        let summary = run_with(&exps, &RunConfig::default(), &dir, &opts);
        assert!(matches!(
            summary.outcomes[0].status,
            ExperimentStatus::Failed { attempts: 1, .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_bytes_are_deterministic() {
        let dir_a = scratch_dir("det-a");
        let dir_b = scratch_dir("det-b");
        let exps = [
            Experiment::new("one", ok_report),
            Experiment::new("two", stalling),
        ];
        run(&exps, &RunConfig::default(), &dir_a, false);
        run(&exps, &RunConfig::default(), &dir_b, false);
        let a = std::fs::read(dir_a.join("manifest.json")).expect("manifest a");
        let b = std::fs::read(dir_b.join("manifest.json")).expect("manifest b");
        assert_eq!(a, b, "same campaign, same config, same bytes");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn fingerprint_encodes_the_windows_and_seed() {
        let cfg = RunConfig {
            warmup_instr: 10,
            measure_instr: 20,
            seed: 7,
            ..RunConfig::default()
        };
        assert_eq!(fingerprint(&cfg), "w10-m20-s7");
        // A sampled schedule appends its knobs; disabled stays bare so
        // pre-sampling manifests still match.
        let sampled = RunConfig {
            sample_windows: 4,
            sample_period: 500,
            sample_warmup_instr: 50,
            ..cfg.clone()
        };
        assert_eq!(fingerprint(&sampled), "w10-m20-s7-k4-p500-sw50");
        // Window-parallelism appends its marker only when sampling is on;
        // the in-flight budget never shows up (scheduling-only).
        let wp = RunConfig { window_par: true, sample_inflight: 8, ..sampled.clone() };
        assert_eq!(fingerprint(&wp), "w10-m20-s7-k4-p500-sw50-wp");
        let wp_off =
            RunConfig { window_par: true, sample_windows: 0, ..sampled.clone() };
        assert_eq!(
            fingerprint(&wp_off),
            "w10-m20-s7",
            "window_par without sampling must not perturb the fingerprint"
        );
        // Restricted sweeps produce different result files under the same
        // names; their markers must invalidate unrestricted entries (and
        // vice versa). Unset, they stay out so old manifests still match.
        let matrix = RunConfig {
            matrix_workloads: Some(vec!["web_search".into(), "polluter".into()]),
            ..cfg.clone()
        };
        assert_eq!(fingerprint(&matrix), "w10-m20-s7-xweb_search+polluter");
        let fleet = RunConfig {
            fleet_scenarios: Some(vec!["metastable".into(), "gray_fleet".into()]),
            ..cfg.clone()
        };
        assert_eq!(fingerprint(&fleet), "w10-m20-s7-frmetastable+gray_fleet");
    }

    fn unit(name: &str, windows: usize) -> cloudsuite::sampling::PhaseTelemetry {
        cloudsuite::sampling::PhaseTelemetry {
            unit: name.to_owned(),
            windows,
            forward_secs: 1.0,
            warm_secs: 2.0,
            measure_secs: 3.0,
            fold_wait_secs: 0.0,
        }
    }

    fn telemetry_units(dir: &Path) -> Vec<Value> {
        let text =
            std::fs::read_to_string(dir.join("telemetry.json")).expect("telemetry file");
        let v: Value = serde_json::from_str(&text).expect("telemetry parses");
        v.get("units").and_then(Value::as_array).expect("units array").clone()
    }

    #[test]
    fn telemetry_merges_across_passes_and_survives_corruption() {
        let dir = scratch_dir("telemetry");

        // First pass: two units land.
        write_telemetry_units(&dir, &[unit("alpha", 2), unit("beta", 3)]);
        assert_eq!(telemetry_units(&dir).len(), 2);
        assert!(
            !dir.join(format!("telemetry.json.tmp.{}", std::process::id())).exists(),
            "the temp file must not outlive the rename"
        );

        // Resumed pass re-ran only beta (new numbers) plus a new unit:
        // alpha survives, beta is replaced, gamma appends.
        write_telemetry_units(&dir, &[unit("beta", 9), unit("gamma", 1)]);
        let rows = telemetry_units(&dir);
        let windows_of = |name: &str| {
            rows.iter()
                .find(|r| r.get("unit").and_then(Value::as_str) == Some(name))
                .and_then(|r| r.get("windows"))
                .and_then(Value::as_u64)
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(windows_of("alpha"), Some(2));
        assert_eq!(windows_of("beta"), Some(9), "re-run units replace their row");
        assert_eq!(windows_of("gamma"), Some(1));

        // A torn file from a killed previous process degrades to an empty
        // history instead of wedging every later pass.
        std::fs::write(dir.join("telemetry.json"), "{\"units\": [{\"unit\": \"al")
            .expect("plant torn file");
        write_telemetry_units(&dir, &[unit("delta", 4)]);
        let rows = telemetry_units(&dir);
        assert_eq!(rows.len(), 1, "corrupt history is dropped, not merged");
        assert_eq!(
            rows[0].get("unit").and_then(Value::as_str),
            Some("delta"),
            "the fresh pass still records"
        );

        // The wrong shape (valid JSON, no units array) is equally ignored.
        std::fs::write(dir.join("telemetry.json"), "[1, 2, 3]\n").expect("plant wrong shape");
        write_telemetry_units(&dir, &[unit("epsilon", 5)]);
        assert_eq!(telemetry_units(&dir).len(), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
