//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Every table and figure of the paper has a binary (`table1`, `fig1` …
//! `fig7`, `all_figures`) that runs the corresponding experiment from
//! `cloudsuite::experiments`, prints the rows, and writes a JSON copy under
//! `results/`. Window sizes are tunable through environment variables so CI
//! smoke runs and full reproductions share one binary:
//!
//! - `CS_WARMUP` — warmup instructions (default 1,600,000)
//! - `CS_MEASURE` — measured instructions (default 3,200,000)
//! - `CS_SEED` — base random seed (default 42)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cloudsuite::harness::RunConfig;
use cs_perf::Report;
use std::path::PathBuf;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Builds the run configuration from the environment.
pub fn config_from_env() -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.warmup_instr = env_u64("CS_WARMUP", cfg.warmup_instr);
    cfg.measure_instr = env_u64("CS_MEASURE", cfg.measure_instr);
    cfg.seed = env_u64("CS_SEED", cfg.seed);
    cfg
}

/// Prints the report and writes its JSON twin under `results/<name>.json`.
pub fn emit(report: &Report, name: &str) {
    println!("{report}");
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if std::fs::write(&path, report.to_json()).is_ok() {
            eprintln!("(wrote {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        let cfg = config_from_env();
        assert!(cfg.warmup_instr > 0);
        assert!(cfg.measure_instr > 0);
    }
}
