//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Every table and figure of the paper has a binary (`table1`, `fig1` …
//! `fig7`, `all_figures`) that runs the corresponding experiment from
//! `cloudsuite::experiments`, prints the rows, and writes a JSON copy under
//! `results/`. Window sizes are tunable through environment variables so CI
//! smoke runs and full reproductions share one binary:
//!
//! - `CS_WARMUP` — warmup instructions (default 1,600,000)
//! - `CS_MEASURE` — measured instructions (default 3,200,000)
//! - `CS_WARMUP_INSTR` / `CS_MEASURE_INSTR` — explicit aliases for the two
//!   window budgets; when both an alias and its short form are set, the
//!   alias wins (the `all_figures --warmup-instr`/`--measure-instr` flags
//!   outrank both)
//! - `CS_SAMPLE_WINDOWS` — SMARTS-style sampling: number of detailed
//!   measurement windows (default 0 = sampling disabled, one contiguous
//!   window). When nonzero, the run fast-forwards functionally between
//!   windows, keeping caches/TLBs/predictors warm, and the measured
//!   budget is split evenly across the windows.
//! - `CS_SAMPLE_PERIOD` — instructions fast-forwarded before each window
//!   (required nonzero when sampling is enabled)
//! - `CS_SAMPLE_WARMUP` — detailed warm-up instructions re-run before each
//!   window's measurement starts (`0` drops straight into measurement)
//! - `CS_SEED` — base random seed (default 42)
//! - `CS_MAX_CYCLES` — per-window simulated-cycle safety cap
//! - `CS_WATCHDOG` — forward-progress watchdog grace period in cycles
//!   (`0` disables the watchdog)
//! - `CS_JOBS` — worker threads for the campaign and sweep layers
//!   (default 1; the `all_figures --jobs` flag outranks it). Results are
//!   byte-identical at any value — only the wall-clock changes.
//! - `CS_NO_SKIP` — set to `1` to disable the event-driven cycle-skipping
//!   fast path (`all_figures --no-skip` does the same). Results are
//!   byte-identical with skipping on or off — the switch exists so any
//!   suspected divergence is bisectable with one flag flip.
//! - `CS_MAX_RETRIES` — transient-failure retries per experiment in the
//!   campaign (default 1; the `all_figures --max-retries` flag outranks
//!   it). Retry `i` re-runs with the original cycle budget widened by the
//!   capped exponential schedule `min(4 * 4^i, 256)`; `0` disables
//!   retries entirely.
//! - `CS_MATRIX_WORKLOADS` — comma-separated roster keys restricting the
//!   interference-matrix experiment to a sub-matrix (the `all_figures
//!   --matrix-workloads` flag outranks it); unknown keys are a loud
//!   configuration error.
//! - `CS_FLEET_SCENARIOS` — comma-separated scenario keys (`baseline`,
//!   `gray_fleet`, `rack_outage`, `metastable`) restricting the
//!   fleet-resilience experiment (the `all_figures --fleet-scenarios`
//!   flag outranks it); unknown keys are a loud configuration error.
//!   Unknown `CS_*` variables themselves are rejected by the flag-parsing
//!   binaries with a nearest-knob suggestion, so a typo like
//!   `CS_WINDOW_PARR` fails loudly instead of silently doing nothing.
//! - `CS_LLC_BYTES` — override the LLC capacity in bytes. CI smoke runs
//!   shrink it so short windows still produce real cache pressure.
//!
//! Deterministic fault injection can be switched on from the environment
//! to rehearse the failure paths (watchdog, retries, the campaign
//! manifest) without touching any code:
//!
//! - `CS_FAULT_DRAM_LAT` — extra cycles added to perturbed DRAM reads
//! - `CS_FAULT_DRAM_RATE` — fraction of DRAM reads perturbed (default 1.0
//!   when `CS_FAULT_DRAM_LAT` is set)
//! - `CS_FAULT_PF_DROP` — fraction of prefetch issues dropped
//! - `CS_FAULT_SEED` — seed of the perturbation stream (default 0xC10D)
//!
//! Crash-safety and auditing knobs:
//!
//! - `CS_CKPT_CYCLES` — checkpoint cadence in simulated cycles (default
//!   2,000,000; the `all_figures --ckpt-cycles` flag outranks it; `0`
//!   disables cadence snapshots but stop-triggered snapshots still happen)
//! - `CS_INTERRUPT_AFTER` — deterministic kill switch for tests and CI:
//!   every run saves a checkpoint and stops once its chip reaches this
//!   cycle, exactly as if a signal had arrived. Unset it on the resume leg.
//! - `CS_PARANOID` — enable the end-of-run conservation auditor: a result
//!   violating a cycle-accounting or cache-accounting invariant is
//!   withheld and the run fails with a typed audit error.
//!
//! The multi-experiment campaign engine behind `all_figures` — experiment
//! isolation, transparent retries, graceful shutdown, mid-run
//! checkpointing, and the resumable `manifest.json` — lives in
//! [`campaign`]; the dependency-free SIGINT/SIGTERM trap lives in
//! [`signal`].

#![deny(unsafe_code)] // `forbid` would reject the one vetted FFI call in `signal`.
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

use cloudsuite::harness::RunConfig;
use cloudsuite::HarnessError;
use cs_perf::Report;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub mod campaign;
pub mod signal;

/// Builds the run configuration from the environment.
///
/// A thin wrapper over the declarative knob registry
/// ([`cloudsuite::config::RunConfigBuilder::campaign`]), which is the
/// single place every `CS_*` variable and its precedence is declared.
pub fn config_from_env() -> RunConfig {
    cloudsuite::config::RunConfigBuilder::campaign("cs-bench").settings_from_env().run
}

/// A failed attempt to write a result file: the path that could not be
/// written and the underlying I/O error.
#[derive(Debug)]
pub struct EmitError {
    /// The file or directory the write failed on.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for EmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A successfully emitted result file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emitted {
    /// Where the file landed.
    pub path: PathBuf,
    /// FNV-1a 64 content checksum (hex), recorded in the campaign manifest
    /// so a resume pass can detect silently corrupted or hand-edited
    /// results instead of trusting file existence.
    pub checksum: String,
}

/// FNV-1a 64 checksum of `bytes`, rendered as 16 hex digits — the
/// fingerprint stored per result file in `manifest.json`.
pub fn content_checksum(bytes: &[u8]) -> String {
    format!("{:016x}", cs_trace::snap::fnv1a64(bytes))
}

/// Prints the report and writes its JSON twin under `results/<name>.json`.
pub fn emit(report: &Report, name: &str) -> Result<Emitted, EmitError> {
    emit_to(Path::new("results"), report, name)
}

/// Prints the report and writes its JSON twin under `<dir>/<name>.json`,
/// returning the written path and content checksum.
///
/// The write is atomic: the bytes go to a uniquely-named temp file in the
/// same directory, are fsynced, and renamed over the destination — a crash
/// (or a kill signal) at any point leaves either the complete old file or
/// the complete new one, never a torn result that a resume pass would
/// trust.
pub fn emit_to(dir: &Path, report: &Report, name: &str) -> Result<Emitted, EmitError> {
    use std::io::Write;
    println!("{report}");
    std::fs::create_dir_all(dir)
        .map_err(|source| EmitError { path: dir.to_path_buf(), source })?;
    let path = dir.join(format!("{name}.json"));
    let bytes = report.to_json().into_bytes();
    let tmp = dir.join(format!(".{name}.json.tmp.{}", std::process::id()));
    let write_atomic = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)
    };
    write_atomic().map_err(|source| {
        let _ = std::fs::remove_file(&tmp);
        EmitError { path: path.clone(), source }
    })?;
    eprintln!("(wrote {})", path.display());
    Ok(Emitted { path, checksum: content_checksum(&bytes) })
}

/// Standard `main` body for a single-figure binary: builds the config
/// from the environment, runs `body`, emits the report, and converts
/// every failure into a message on stderr plus a failing exit code.
pub fn figure_main(
    name: &str,
    body: fn(&RunConfig) -> Result<Report, HarnessError>,
) -> ExitCode {
    let cfg = config_from_env();
    let report = match body(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match emit(&report, name) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{name}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        let cfg = config_from_env();
        assert!(cfg.warmup_instr > 0);
        assert!(cfg.measure_instr > 0);
        assert!(cfg.max_cycles > 0);
    }

    #[test]
    fn emit_error_names_the_path() {
        let report = Report::new("x");
        let err = emit_to(Path::new("/dev/null/not-a-dir"), &report, "x")
            .expect_err("writing under /dev/null must fail");
        assert!(err.to_string().contains("/dev/null/not-a-dir"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
