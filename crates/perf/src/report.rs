//! Table rendering and JSON export for experiment output.
//!
//! Every figure-regeneration binary prints its data through a [`Table`]:
//! one row per workload (or sweep point), one column per series, matching
//! the rows/series of the corresponding figure in the paper. Tables render
//! as aligned text for humans and serialize to JSON for tooling, and a
//! [`Report`] groups several tables under headed sections.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value cell in a table: text or a number with fixed precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// A text cell.
    Text(String),
    /// A numeric cell rendered with [`Table::precision`] decimals.
    Num(f64),
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Num(x)
    }
}

impl From<u64> for Cell {
    fn from(x: u64) -> Self {
        Cell::Num(x as f64)
    }
}

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use cs_perf::Table;
///
/// let mut t = Table::new("ipc", &["workload", "ipc"]);
/// t.row(["Web Search".into(), 1.02.into()]);
/// let text = t.to_string();
/// assert!(text.contains("Web Search"));
/// assert!(text.contains("1.02"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table identifier (used as JSON key and section label).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must have exactly `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Decimal places for numeric cells (default 2).
    pub precision: usize,
}

impl Table {
    /// Creates an empty table with the given name and column headers.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            name: name.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            precision: 2,
        }
    }

    /// Sets the numeric precision, returning `self` for chaining.
    pub fn with_precision(mut self, precision: usize) -> Self {
        self.precision = precision;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn row<I: IntoIterator<Item = Cell>>(&mut self, cells: I) {
        let row: Vec<Cell> = cells.into_iter().collect();
        assert_eq!(row.len(), self.columns.len(), "row width mismatch in table {}", self.name);
        self.rows.push(row);
    }

    fn render_cell(&self, c: &Cell) -> String {
        match c {
            Cell::Text(s) => s.clone(),
            Cell::Num(x) => format!("{:.*}", self.precision, x),
        }
    }

    /// Serializes the table to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialization cannot fail")
    }

    /// Serializes the table as CSV (header row plus data rows; text cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| escape(&self.render_cell(c))).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| self.render_cell(c)).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{:width$}", c, width = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for (r, row) in rendered.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Left-align text, right-align numbers.
                match self.rows[r].get(i) {
                    Some(Cell::Num(_)) => write!(f, "{:>width$}", cell, width = widths[i])?,
                    _ => write!(f, "{:width$}", cell, width = widths[i])?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A titled collection of tables (one experiment's full output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Report title (e.g. `"Figure 3: IPC and MLP"`).
    pub title: String,
    /// Free-text notes (methodology reminders, caveats).
    pub notes: Vec<String>,
    /// The tables.
    pub tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), notes: Vec::new(), tables: Vec::new() }
    }

    /// Appends a methodology note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Appends a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Serializes the report to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for n in &self.notes {
            writeln!(f, "   {n}")?;
        }
        for t in &self.tables {
            writeln!(f)?;
            writeln!(f, "-- {} --", t.name)?;
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["workload", "ipc"]);
        t.row(["Data Serving".into(), 0.66.into()]);
        t.row(["MapReduce".into(), 0.74.into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("workload"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("0.66"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn precision_is_configurable() {
        let mut t = Table::new("p", &["x"]).with_precision(4);
        t.row([0.123456.into()]);
        assert!(t.to_string().contains("0.1235"));
    }

    #[test]
    fn report_renders_title_notes_tables() {
        let mut r = Report::new("Figure 1");
        r.note("methodology note");
        let mut t = Table::new("breakdown", &["w"]);
        t.row(["X".into()]);
        r.push(t);
        let s = r.to_string();
        assert!(s.contains("== Figure 1 =="));
        assert!(s.contains("methodology note"));
        assert!(s.contains("breakdown"));
    }

    #[test]
    fn csv_renders_and_escapes() {
        let mut t = Table::new("c", &["name", "v"]);
        t.row(["plain".into(), 1.5.into()]);
        t.row(["has,comma".into(), 2.0.into()]);
        t.row(["has\"quote".into(), 3.0.into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,v");
        assert_eq!(lines[1], "plain,1.50");
        assert_eq!(lines[2], "\"has,comma\",2.00");
        assert_eq!(lines[3], "\"has\"\"quote\",3.00");
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("j", &["a"]);
        t.row([1.5.into()]);
        let back: Table = serde_json::from_str(&t.to_json()).expect("parse");
        assert_eq!(back, t);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from("x"), Cell::Text("x".into()));
        assert_eq!(Cell::from(2u64), Cell::Num(2.0));
        assert_eq!(Cell::from(String::from("y")), Cell::Text("y".into()));
    }
}
