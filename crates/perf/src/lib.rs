//! Performance-counter surface and derived metrics for CloudSuite-RS.
//!
//! The paper's entire methodology (§3.1) is built on hardware performance
//! counters read through VTune. This crate is the simulator's equivalent
//! surface:
//!
//! - [`counters`] — a named counter set, mergeable across cores and runs,
//!   used for determinism checks and machine-readable experiment output;
//! - [`metrics`] — the derived-metric formulas used throughout the figures
//!   (IPC, misses-per-kilo-instruction, hit ratios, utilization) plus
//!   running statistics and histograms;
//! - [`report`] — fixed-width table rendering and JSON export for the
//!   experiment binaries, so every figure can be regenerated as text rows
//!   or consumed by plotting tools.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

pub mod counters;
pub mod metrics;
pub mod report;

pub use counters::CounterSet;
pub use metrics::{mpki, percent, ratio, Histogram, RunningStat};
pub use report::{Report, Table};
