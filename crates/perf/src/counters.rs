//! Named counter sets.
//!
//! Hot-path components in the simulator keep their statistics in plain
//! struct fields for speed; at reporting boundaries they export them into a
//! [`CounterSet`], which supports merging (across cores, across sockets),
//! diffing (warmup-window subtraction) and serialization (experiment
//! output, determinism tests).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An ordered map from counter name to value.
///
/// # Example
///
/// ```
/// use cs_perf::CounterSet;
///
/// let mut a = CounterSet::new();
/// a.add("cycles", 100);
/// a.add("instructions", 250);
/// let mut b = CounterSet::new();
/// b.add("cycles", 50);
/// a.merge(&b);
/// assert_eq!(a.get("cycles"), 150);
/// assert_eq!(a.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet {
    values: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.values.entry(name.into()).or_insert(0) += delta;
    }

    /// Sets counter `name` to `value`.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Reads counter `name`, returning 0 when absent.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Accumulates every counter of `other` into `self`.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Returns `self - baseline` per counter, saturating at zero.
    ///
    /// Used to isolate a measurement window from its warmup: snapshot the
    /// counters at the end of warmup, then diff at the end of measurement.
    pub fn delta_from(&self, baseline: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for (k, v) in &self.values {
            out.set(k.clone(), v.saturating_sub(baseline.get(k)));
        }
        out
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set has no counters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(String, u64)> for CounterSet {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> Self {
        Self { values: iter.into_iter().collect() }
    }
}

impl Extend<(String, u64)> for CounterSet {
    fn extend<I: IntoIterator<Item = (String, u64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut c = CounterSet::new();
        assert!(c.is_empty());
        c.add("a", 3);
        c.add("a", 4);
        assert_eq!(c.get("a"), 7);
        assert_eq!(c.get("b"), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        let mut b = CounterSet::new();
        b.add("x", 2);
        b.add("y", 5);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 5);
    }

    #[test]
    fn delta_isolates_measurement_window() {
        let mut warm = CounterSet::new();
        warm.add("cycles", 100);
        let mut end = warm.clone();
        end.add("cycles", 40);
        end.add("instr", 90);
        let d = end.delta_from(&warm);
        assert_eq!(d.get("cycles"), 40);
        assert_eq!(d.get("instr"), 90);
    }

    #[test]
    fn delta_saturates() {
        let mut a = CounterSet::new();
        a.add("x", 5);
        let mut b = CounterSet::new();
        b.add("x", 9);
        assert_eq!(a.delta_from(&b).get("x"), 0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = CounterSet::new();
        c.add("zz", 1);
        c.add("aa", 2);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["aa", "zz"]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = CounterSet::new();
        c.add("cycles", 42);
        let json = serde_json::to_string(&c).expect("serialize");
        let back: CounterSet = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }

    #[test]
    fn collect_and_extend() {
        let c: CounterSet = [("a".to_owned(), 1u64)].into_iter().collect();
        let mut d = CounterSet::new();
        d.extend([("a".to_owned(), 2u64), ("b".to_owned(), 3u64)]);
        assert_eq!(c.get("a"), 1);
        assert_eq!(d.get("a"), 2);
        assert_eq!(d.get("b"), 3);
    }
}
