//! Derived-metric formulas and summary statistics.
//!
//! These are the formulas the paper's figures are computed with: IPC and
//! MLP (Figure 3), misses per kilo-instruction (Figure 2), hit ratios
//! (Figure 5), and percentage utilizations (Figures 6 and 7). Figure 3 also
//! needs min/max range bars per workload group, provided by
//! [`RunningStat`].

use serde::{Deserialize, Serialize};

/// `numerator / denominator`, or 0 when the denominator is zero.
#[inline]
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Events per kilo-instruction (e.g. L1-I misses per 1000 instructions,
/// the unit of the paper's Figure 2).
#[inline]
pub fn mpki(events: u64, instructions: u64) -> f64 {
    1000.0 * ratio(events, instructions)
}

/// `part / whole` as a percentage, 0 when `whole` is zero.
#[inline]
pub fn percent(part: u64, whole: u64) -> f64 {
    100.0 * ratio(part, whole)
}

/// Streaming mean / min / max over `f64` samples.
///
/// # Example
///
/// ```
/// use cs_perf::RunningStat;
///
/// let mut s = RunningStat::new();
/// for x in [1.0, 3.0, 2.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStat {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty statistic.
    pub fn new() -> Self {
        Self { count: 0, sum: 0.0, sum_sq: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean).max(0.0).sqrt()
    }

    /// Sample standard deviation (Bessel-corrected, `n - 1` denominator;
    /// 0 with fewer than two samples). This is the estimator the sampled
    /// simulation's confidence intervals are built on: the measurement
    /// windows are a sample drawn from the run, not the whole population.
    pub fn sample_stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0).sqrt()
    }

    /// Half-width of the CLT-based 95% confidence interval on the mean:
    /// `1.96 * s / sqrt(n)` with `s` the sample standard deviation
    /// ([`RunningStat::sample_stddev`]). Returns 0 with fewer than two
    /// samples — a single window carries no interval.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.sample_stddev() / (self.count as f64).sqrt()
    }

    /// The 95% confidence interval on the mean as `(lo, hi)` —
    /// `mean ± ci95_half_width`. Degenerates to `(mean, mean)` with fewer
    /// than two samples.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean() - h, self.mean() + h)
    }
}

impl FromIterator<f64> for RunningStat {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Used for occupancy distributions (MSHR / super-queue occupancy, ROB
/// occupancy) that back the paper's MLP methodology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..capacity` plus an overflow
    /// bucket.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "histogram needs at least one bucket");
        Self { buckets: vec![0; capacity], overflow: 0 }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Records `weight` observations of `value`.
    pub fn record_n(&mut self, value: u64, weight: u64) {
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += weight,
            None => self.overflow += weight,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Observations recorded at exactly `value` (overflow excluded).
    pub fn count_at(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Observations that exceeded the bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of in-range buckets (the `capacity` passed to
    /// [`Histogram::new`]). Together with [`Histogram::count_at`] and
    /// [`Histogram::overflow`] this makes the full distribution readable
    /// through the public API, which the snapshot codec relies on.
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// Mean of the distribution, counting overflow at the bucket cap.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, c)| i as u64 * c)
            .sum::<u64>()
            + self.overflow * self.buckets.len() as u64;
        sum as f64 / total as f64
    }

    /// Adds every bucket of `other` into `self` (used by the sampling
    /// harness to merge per-window occupancy distributions into run
    /// totals).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ — merging distributions recorded
    /// against different bucket ranges is a configuration bug.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram capacity mismatch in merge"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.overflow += other.overflow;
    }

    /// Mean over only the observations with `value >= 1` — the paper's MLP
    /// formula: average outstanding misses over cycles with at least one
    /// outstanding miss.
    pub fn mean_nonzero(&self) -> f64 {
        let total_nonzero = self.total() - self.count_at(0);
        if total_nonzero == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| i as u64 * c)
            .sum::<u64>()
            + self.overflow * self.buckets.len() as u64;
        sum as f64 / total_nonzero as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(5, 10), 0.5);
    }

    #[test]
    fn mpki_formula() {
        assert_eq!(mpki(30, 1000), 30.0);
        assert_eq!(mpki(3, 2000), 1.5);
    }

    #[test]
    fn percent_formula() {
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(1, 0), 0.0);
    }

    #[test]
    fn running_stat_empty_is_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn running_stat_collect() {
        let s: RunningStat = [2.0, 4.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.count(), 2);
        assert!((s.stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s: RunningStat = [5.0, 5.0, 5.0].into_iter().collect();
        assert!(s.stddev().abs() < 1e-12);
    }

    #[test]
    fn sample_stddev_uses_bessel_correction() {
        let s: RunningStat = [2.0, 4.0].into_iter().collect();
        // Population stddev is 1.0; sample stddev is sqrt(2).
        assert!((s.sample_stddev() - 2f64.sqrt()).abs() < 1e-12);
        let single: RunningStat = [3.0].into_iter().collect();
        assert_eq!(single.sample_stddev(), 0.0);
        assert_eq!(single.ci95_half_width(), 0.0);
        assert_eq!(single.ci95(), (3.0, 3.0));
    }

    #[test]
    fn ci95_brackets_the_mean_symmetrically() {
        let s: RunningStat = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean() && s.mean() < hi, "CI must contain the mean");
        assert!((hi - s.mean() - (s.mean() - lo)).abs() < 1e-12, "CI is symmetric");
        let expected = 1.96 * s.sample_stddev() / 2.0; // sqrt(4) = 2
        assert!((s.ci95_half_width() - expected).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds_buckets_and_overflow() {
        let mut a = Histogram::new(3);
        a.record_n(1, 4);
        a.record(10);
        let mut b = Histogram::new(3);
        b.record_n(1, 2);
        b.record_n(2, 5);
        b.record(99);
        a.merge_from(&b);
        assert_eq!(a.count_at(1), 6);
        assert_eq!(a.count_at(2), 5);
        assert_eq!(a.overflow(), 2);
        assert_eq!(a.total(), 13);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn histogram_merge_rejects_capacity_mismatch() {
        let mut a = Histogram::new(3);
        a.merge_from(&Histogram::new(4));
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(3);
        h.record(100);
        h.record_n(2, 5);
        assert_eq!(h.total(), 8);
        assert_eq!(h.count_at(2), 5);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_mean_nonzero_is_mlp_formula() {
        let mut h = Histogram::new(8);
        // 10 idle cycles, 5 cycles with 2 outstanding, 5 cycles with 4.
        h.record_n(0, 10);
        h.record_n(2, 5);
        h.record_n(4, 5);
        assert_eq!(h.mean_nonzero(), 3.0);
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_means_are_zero() {
        let h = Histogram::new(2);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.mean_nonzero(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn histogram_rejects_zero_capacity() {
        let _ = Histogram::new(0);
    }
}
