//! Property-based tests of the counter and metric types.

use cs_perf::{CounterSet, Histogram};
use proptest::prelude::*;

proptest! {
    /// merge is associative over values and delta_from undoes merge.
    #[test]
    fn merge_and_delta(
        base in proptest::collection::btree_map("[a-d]", 0u64..1000, 0..6),
        extra in proptest::collection::btree_map("[a-d]", 0u64..1000, 0..6),
    ) {
        let a: CounterSet = base.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let b: CounterSet = extra.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let recovered = merged.delta_from(&a);
        for (k, v) in b.iter() {
            prop_assert_eq!(recovered.get(k), v);
        }
    }

    /// Histogram totals equal the number of recorded observations, and the
    /// nonzero mean is at least 1 when any nonzero value was recorded.
    #[test]
    fn histogram_totals(values in proptest::collection::vec(0u64..40, 1..200)) {
        let mut h = Histogram::new(16);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        if values.iter().any(|&v| v > 0) {
            prop_assert!(h.mean_nonzero() >= 1.0);
        }
        prop_assert!(h.mean() <= h.mean_nonzero() + 1e-9);
    }
}
