//! The micro-operation model consumed by the core timing model.
//!
//! Workloads (both the mini scale-out applications in `cs-workloads` and the
//! synthetic profiles in [`crate::profile`]) are compiled down to a stream of
//! [`MicroOp`]s. A micro-op carries everything the timing model needs: the
//! program counter used for instruction-cache behaviour, the operation class
//! used for functional-unit scheduling, an optional memory reference, the
//! privilege level used for the paper's application/OS attribution, and up to
//! two register dependencies expressed as distances back in program order.

use serde::{Deserialize, Serialize};

/// Privilege level of a micro-op.
///
/// The paper attributes every counter to either application or operating
/// system execution (Figures 1, 2, 6 and 7 all carry App/OS splits), so the
/// privilege level is a first-class part of the trace model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Privilege {
    /// Application (user-mode) execution.
    #[default]
    User,
    /// Operating-system (kernel-mode) execution.
    Kernel,
}

impl Privilege {
    /// Returns `true` for [`Privilege::Kernel`].
    #[inline]
    pub fn is_kernel(self) -> bool {
        matches!(self, Privilege::Kernel)
    }
}

impl std::fmt::Display for Privilege {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Privilege::User => f.write_str("user"),
            Privilege::Kernel => f.write_str("kernel"),
        }
    }
}

/// Functional class of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Simple integer ALU operation (1-cycle latency).
    IntAlu,
    /// Integer multiply (3-cycle latency).
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Floating-point operation (pipelined, multi-cycle latency).
    Fp,
    /// Memory load. Must carry a [`MemRef`].
    Load,
    /// Memory store. Must carry a [`MemRef`].
    Store,
    /// Control transfer. `mispredict` marks branches the (implicit) branch
    /// predictor gets wrong; the core charges a pipeline flush for them.
    Branch {
        /// Whether this branch is mispredicted in this execution.
        mispredict: bool,
    },
}

impl OpKind {
    /// Returns `true` for [`OpKind::Load`].
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, OpKind::Load)
    }

    /// Returns `true` for [`OpKind::Store`].
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, OpKind::Store)
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for branches.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpKind::Branch { .. })
    }
}

/// A data-memory reference attached to a load or store micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Virtual byte address of the access.
    pub addr: u64,
    /// Access size in bytes (1–64).
    pub size: u8,
}

impl MemRef {
    /// Creates a memory reference.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or larger than a cache line (64 bytes).
    #[inline]
    pub fn new(addr: u64, size: u8) -> Self {
        assert!((1..=64).contains(&size), "access size must be 1..=64 bytes");
        Self { addr, size }
    }

    /// The 64-byte cache-line address containing the first byte.
    #[inline]
    pub fn line(&self) -> u64 {
        self.addr >> 6
    }
}

/// A single micro-operation in a workload's dynamic instruction stream.
///
/// Dependencies are encoded as distances back in program order (`dep1`,
/// `dep2`): a value of `k > 0` means this op reads the result of the op that
/// appeared `k` positions earlier in the same hardware thread's stream. Zero
/// means no dependency. Distances longer than the reorder window are
/// effectively always satisfied and are therefore capped at `u8::MAX` by
/// generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Program counter (virtual address of the instruction).
    pub pc: u64,
    /// Functional class.
    pub kind: OpKind,
    /// Memory reference for loads and stores, `None` otherwise.
    pub mem: Option<MemRef>,
    /// Privilege level this op executes at.
    pub privilege: Privilege,
    /// First register dependency, as a distance back in program order
    /// (0 = none).
    pub dep1: u8,
    /// Second register dependency (0 = none).
    pub dep2: u8,
}

impl MicroOp {
    /// Creates an integer ALU op at `pc` with no dependencies.
    #[inline]
    pub fn alu(pc: u64) -> Self {
        Self::of_kind(pc, OpKind::IntAlu)
    }

    /// Creates an op of an arbitrary non-memory kind at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a load or store; use [`MicroOp::load`] or
    /// [`MicroOp::store`] for those so the memory reference is supplied.
    #[inline]
    pub fn of_kind(pc: u64, kind: OpKind) -> Self {
        assert!(!kind.is_mem(), "memory ops must use MicroOp::load/store");
        Self { pc, kind, mem: None, privilege: Privilege::User, dep1: 0, dep2: 0 }
    }

    /// Creates a load of `size` bytes at address `addr`.
    #[inline]
    pub fn load(pc: u64, addr: u64, size: u8) -> Self {
        Self {
            pc,
            kind: OpKind::Load,
            mem: Some(MemRef::new(addr, size)),
            privilege: Privilege::User,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Creates a store of `size` bytes at address `addr`.
    #[inline]
    pub fn store(pc: u64, addr: u64, size: u8) -> Self {
        Self {
            pc,
            kind: OpKind::Store,
            mem: Some(MemRef::new(addr, size)),
            privilege: Privilege::User,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Creates a branch at `pc`; `mispredict` charges a pipeline flush.
    #[inline]
    pub fn branch(pc: u64, mispredict: bool) -> Self {
        Self {
            pc,
            kind: OpKind::Branch { mispredict },
            mem: None,
            privilege: Privilege::User,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Returns this op with the privilege level replaced.
    #[inline]
    pub fn with_privilege(mut self, privilege: Privilege) -> Self {
        self.privilege = privilege;
        self
    }

    /// Returns this op with the first (and optionally second) dependency set.
    ///
    /// Distances are saturated into `u8`.
    #[inline]
    pub fn with_deps(mut self, dep1: u64, dep2: u64) -> Self {
        self.dep1 = dep1.min(u8::MAX as u64) as u8;
        self.dep2 = dep2.min(u8::MAX as u64) as u8;
        self
    }

    /// Returns `true` if this is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.kind.is_load()
    }

    /// Returns `true` if this is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.kind.is_store()
    }

    /// Returns `true` if this op references data memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.kind.is_mem()
    }

    /// Returns `true` if this op runs in kernel mode.
    #[inline]
    pub fn is_kernel(&self) -> bool {
        self.privilege.is_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_line_extraction() {
        let m = MemRef::new(0x1040, 8);
        assert_eq!(m.line(), 0x1040 >> 6);
        assert_eq!(MemRef::new(63, 1).line(), 0);
        assert_eq!(MemRef::new(64, 1).line(), 1);
    }

    #[test]
    #[should_panic(expected = "access size")]
    fn memref_rejects_zero_size() {
        let _ = MemRef::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "access size")]
    fn memref_rejects_oversized() {
        let _ = MemRef::new(0, 65);
    }

    #[test]
    fn constructors_set_kind_and_mem() {
        assert!(MicroOp::load(0x400000, 0x1000, 8).is_load());
        assert!(MicroOp::store(0x400000, 0x1000, 8).is_store());
        assert!(MicroOp::alu(0x400000).kind == OpKind::IntAlu);
        assert!(MicroOp::branch(0x400000, true).kind.is_branch());
        assert!(MicroOp::alu(0x400000).mem.is_none());
    }

    #[test]
    #[should_panic(expected = "memory ops")]
    fn of_kind_rejects_memory_kinds() {
        let _ = MicroOp::of_kind(0, OpKind::Load);
    }

    #[test]
    fn deps_saturate() {
        let op = MicroOp::alu(0).with_deps(1000, 3);
        assert_eq!(op.dep1, u8::MAX);
        assert_eq!(op.dep2, 3);
    }

    #[test]
    fn privilege_display_and_default() {
        assert_eq!(Privilege::default(), Privilege::User);
        assert_eq!(Privilege::Kernel.to_string(), "kernel");
        assert!(Privilege::Kernel.is_kernel());
        assert!(!Privilege::User.is_kernel());
    }

    #[test]
    fn kernel_attribution_via_with_privilege() {
        let op = MicroOp::alu(0).with_privilege(Privilege::Kernel);
        assert!(op.is_kernel());
    }
}
