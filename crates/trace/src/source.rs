//! The pull-based trace source abstraction.
//!
//! A [`TraceSource`] is a hardware thread's dynamic instruction stream. The
//! core model in `cs-uarch` pulls micro-ops from one source per hardware
//! context, which keeps workload execution in lock-step with simulated time
//! and avoids materializing multi-hundred-megabyte traces.

use crate::op::MicroOp;

/// A stream of micro-ops feeding one hardware thread.
///
/// Sources for the CloudSuite workloads are endless (the applications serve
/// an open request stream); sources for run-to-completion benchmarks such as
/// SPEC may terminate by returning `None`, after which the core parks the
/// thread.
pub trait TraceSource {
    /// Produces the next micro-op in program order, or `None` when the
    /// workload has run to completion.
    fn next_op(&mut self) -> Option<MicroOp>;

    /// Produces up to `max` micro-ops in program order, appending them to
    /// `out`, and returns how many were appended. Returning fewer than
    /// `max` — in particular zero — means the workload has run to
    /// completion.
    ///
    /// Op streams carry no feedback from simulated time, so a block is
    /// exactly the ops the same number of [`TraceSource::next_op`] calls
    /// would yield; the core model pulls blocks to amortize the per-op
    /// virtual dispatch on its fetch path. The default implementation
    /// loops `next_op`; hot sources override it with a devirtualized loop.
    fn next_block(&mut self, out: &mut Vec<MicroOp>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_op() {
                Some(op) => {
                    out.push(op);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// A short human-readable label for reports; defaults to `"anonymous"`.
    fn label(&self) -> &str {
        "anonymous"
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_op(&mut self) -> Option<MicroOp> {
        (**self).next_op()
    }

    fn next_block(&mut self, out: &mut Vec<MicroOp>, max: usize) -> usize {
        (**self).next_block(out, max)
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// A trace source that replays a fixed vector of micro-ops once.
///
/// Used pervasively by unit tests of the core model, and by trace capture
/// tooling.
#[derive(Debug, Clone)]
pub struct VecSource {
    ops: Vec<MicroOp>,
    pos: usize,
    label: String,
}

impl VecSource {
    /// Creates a source replaying `ops` in order, once.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        Self { ops, pos: 0, label: "vec".to_owned() }
    }

    /// Creates a named source replaying `ops` in order, once.
    pub fn with_label(ops: Vec<MicroOp>, label: impl Into<String>) -> Self {
        Self { ops, pos: 0, label: label.into() }
    }

    /// Number of ops remaining.
    pub fn remaining(&self) -> usize {
        self.ops.len() - self.pos
    }
}

impl TraceSource for VecSource {
    fn next_op(&mut self) -> Option<MicroOp> {
        let op = self.ops.get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A trace source that cycles a fixed vector of micro-ops forever.
#[derive(Debug, Clone)]
pub struct LoopSource {
    ops: Vec<MicroOp>,
    pos: usize,
    label: String,
}

impl LoopSource {
    /// Creates a source replaying `ops` in order, forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty (an empty loop cannot make progress).
    pub fn new(ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "loop source requires at least one op");
        Self { ops, pos: 0, label: "loop".to_owned() }
    }
}

impl TraceSource for LoopSource {
    fn next_op(&mut self) -> Option<MicroOp> {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        Some(op)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Limits an inner source to a fixed number of ops, then reports exhaustion.
#[derive(Debug, Clone)]
pub struct TakeSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> TakeSource<S> {
    /// Wraps `inner`, passing through at most `limit` micro-ops.
    pub fn new(inner: S, limit: u64) -> Self {
        Self { inner, remaining: limit }
    }
}

impl<S: TraceSource> TraceSource for TakeSource<S> {
    fn next_op(&mut self) -> Option<MicroOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_op()
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MicroOp;

    fn ops(n: usize) -> Vec<MicroOp> {
        (0..n).map(|i| MicroOp::alu(0x400000 + 4 * i as u64)).collect()
    }

    #[test]
    fn vec_source_replays_once() {
        let mut s = VecSource::new(ops(3));
        assert_eq!(s.remaining(), 3);
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_none());
        assert!(s.next_op().is_none());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn loop_source_wraps_around() {
        let mut s = LoopSource::new(ops(2));
        let a = s.next_op().unwrap();
        let b = s.next_op().unwrap();
        let a2 = s.next_op().unwrap();
        assert_ne!(a.pc, b.pc);
        assert_eq!(a.pc, a2.pc);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn loop_source_rejects_empty() {
        let _ = LoopSource::new(Vec::new());
    }

    #[test]
    fn take_source_truncates() {
        let mut s = TakeSource::new(LoopSource::new(ops(2)), 5);
        let mut n = 0;
        while s.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn default_next_block_stops_at_exhaustion() {
        let mut s = VecSource::new(ops(5));
        let mut out = Vec::new();
        assert_eq!(s.next_block(&mut out, 3), 3);
        assert_eq!(s.next_block(&mut out, 3), 2);
        assert_eq!(s.next_block(&mut out, 3), 0);
        assert_eq!(out, ops(5));
    }

    #[test]
    fn boxed_source_dispatches() {
        let mut s: Box<dyn TraceSource> = Box::new(VecSource::with_label(ops(1), "t"));
        assert_eq!(s.label(), "t");
        assert!(s.next_op().is_some());
        assert!(s.next_op().is_none());
    }
}
