//! Rejection-inversion Zipf sampler.
//!
//! Both the instruction-footprint model (function popularity) and the data
//! models (YCSB-style object popularity, §3.2 of the paper: "requests
//! following a Zipfian distribution") need Zipf-distributed indices over very
//! large domains. This module implements the rejection-inversion method of
//! Hörmann and Derflinger (*Rejection-inversion to generate variates from
//! monotone discrete distributions*, ACM TOMACS 1996), which samples in O(1)
//! independent of the domain size.

use rand::Rng;

/// A Zipf distribution over `1..=n` with exponent `s > 0`:
/// `P(k) ∝ k^-s`.
///
/// # Example
///
/// ```
/// use cs_trace::zipf::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1_000_000, 0.99);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let k = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&k));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(x) = (x^(1-s) - 1) / (1 - s)` evaluated at `n + 1/2`.
    h_n: f64,
    /// `H(1/2)`.
    h_x0: f64,
    /// Acceptance shortcut threshold for `k = 1`.
    threshold: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is not strictly positive and finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "zipf domain must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive and finite");
        let h = |x: f64| h_integral(x, s);
        let h_x0 = h(0.5);
        let h_n = h(n as f64 + 0.5);
        // `s` in Hörmann-Derflinger notation: the shortcut acceptance band
        // around k = 1.
        let threshold = 1.0 - h_integral_inv(h(1.5) - (-s * 1.0f64.ln()).exp(), s);
        Self { n, s, h_n, h_x0, threshold }
    }

    /// Domain size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `1..=n`, rank 1 being the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_x0 + rng.gen::<f64>() * (self.h_n - self.h_x0);
            let x = h_integral_inv(u, self.s);
            // Clamp guards against floating-point excursions at the ends.
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.threshold {
                return k as u64;
            }
            if u >= h_integral(k + 0.5, self.s) - (-self.s * k.ln()).exp() {
                return k as u64;
            }
        }
    }

    /// Exact probability mass of rank `k` (for validation and tests).
    ///
    /// Computed by direct normalization; O(n), so only call this for small
    /// domains.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n, "rank out of domain");
        let norm: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / norm
    }
}

/// `H(x) = (x^(1-s) - 1) / (1 - s)` with the `s == 1` limit `ln(x)`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (s - 1.0).abs() < 1e-9 {
        log_x
    } else {
        (((1.0 - s) * log_x).exp() - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        y.exp()
    } else {
        let t = (y * (1.0 - s) + 1.0).max(f64::MIN_POSITIVE);
        (t.ln() / (1.0 - s)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn degenerate_domain_always_returns_one() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_matches_exact_pmf_small_domain() {
        let n = 20;
        let zipf = Zipf::new(n, 0.8);
        let mut rng = SmallRng::seed_from_u64(3);
        let draws = 400_000;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for k in 1..=n {
            let expected = zipf.pmf(k);
            let got = counts[k as usize] as f64 / draws as f64;
            // Loose 10% relative + small absolute tolerance.
            assert!(
                (got - expected).abs() < 0.1 * expected + 0.002,
                "rank {k}: expected {expected:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn popularity_is_monotone_for_unit_exponent() {
        // Covers the s == 1 special case in h_integral / h_integral_inv.
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = vec![0u64; 101];
        for _ in 0..200_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[80]);
    }

    #[test]
    fn huge_domain_sampling_is_cheap_and_skewed() {
        let zipf = Zipf::new(1 << 40, 0.99);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut head = 0u64;
        let draws = 100_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) <= 1000 {
                head += 1;
            }
        }
        // Under Zipf(0.99) over 2^40 items, the top-1000 carry a visible
        // fraction of the mass (roughly a quarter).
        assert!(head > draws / 10, "head mass too small: {head}/{draws}");
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_nonpositive_exponent() {
        let _ = Zipf::new(10, 0.0);
    }
}
