//! Micro-op trace substrate for the CloudSuite-RS simulator.
//!
//! This crate is the lowest layer of the reproduction of *Clearing the
//! Clouds: A Study of Emerging Scale-out Workloads on Modern Hardware*
//! (Ferdman et al., ASPLOS 2012). It defines:
//!
//! - the [`MicroOp`] model that every workload produces and that the core
//!   model in `cs-uarch` consumes ([`op`]);
//! - the pull-based [`TraceSource`] abstraction connecting workloads to
//!   cores ([`source`]);
//! - deterministic random samplers used throughout the suite, notably the
//!   rejection-inversion Zipf sampler ([`zipf`]) that drives both
//!   instruction-footprint reuse and the YCSB-style data popularity
//!   distributions ([`rng`]);
//! - the instruction-footprint model ([`ifoot`]) that synthesizes
//!   instruction-fetch streams over multi-megabyte code working sets, the
//!   defining frontend property of scale-out workloads (paper §4.1);
//! - data-access pattern generators ([`datagen`]): Zipfian object access,
//!   sequential streaming, dependent pointer chasing, hot stack regions and
//!   shared read-write pools;
//! - the simulated virtual address-space layout ([`layout`]);
//! - statistical workload profiles ([`profile`]) for the traditional
//!   comparison benchmarks (SPECint, PARSEC, SPECweb09, TPC-C, TPC-E, Web
//!   Backend) of the paper's §3.3;
//! - the synthetic trace source ([`synth`]) that combines all of the above,
//!   plus the operating-system overlay that interleaves kernel-mode
//!   execution bursts into any application-level source;
//! - the byte-stable binary snapshot codec ([`snap`]) that the
//!   checkpoint/restore subsystem serializes all simulator state through;
//! - trace capture and binary replay ([`capture`]), the suite's analogue
//!   of the paper's re-used SAT Solver input traces (§3.1).
//!
//! # Example
//!
//! ```
//! use cs_trace::profile::WorkloadProfile;
//! use cs_trace::source::TraceSource;
//!
//! // Build the SPECint (cpu-bound group) synthetic workload and pull the
//! // first million micro-ops from the stream of hardware thread 0.
//! let profile = WorkloadProfile::specint_cpu();
//! let mut src = profile.build_source(/*thread=*/ 0, /*seed=*/ 42);
//! let mut loads = 0u64;
//! for _ in 0..1_000_000 {
//!     let op = src.next_op().expect("synthetic sources are endless");
//!     if op.is_load() {
//!         loads += 1;
//!     }
//! }
//! assert!(loads > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

pub mod capture;
pub mod datagen;
pub mod ifoot;
pub mod layout;
pub mod op;
pub mod profile;
pub mod rng;
pub mod snap;
pub mod source;
pub mod synth;
pub mod zipf;

pub use op::{MemRef, MicroOp, OpKind, Privilege};
pub use profile::WorkloadProfile;
pub use source::TraceSource;
