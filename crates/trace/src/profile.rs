//! Statistical workload profiles.
//!
//! A [`WorkloadProfile`] is the declarative description of a workload's
//! micro-architectural character: instruction footprint, instruction mix,
//! data-access mixture, instruction-level-parallelism structure and
//! operating-system involvement. Profiles serve two roles in the suite:
//!
//! 1. they define the *traditional* comparison benchmarks of the paper's
//!    §3.3 (SPEC CINT2006 cpu/mem groups, PARSEC cpu/mem groups, SPECweb09,
//!    TPC-C, TPC-E, Web Backend, plus the `mcf` outlier used in Figure 4),
//!    for which only the statistical characterization matters; and
//! 2. they provide profile-level twins of the six scale-out workloads whose
//!    first-class implementations live in `cs-workloads`, used for fast
//!    parameter sweeps.
//!
//! Every constructor documents the workload configuration from the paper it
//! models. The numeric knobs are calibrated so that the simulated machine
//! reproduces the *shape* of the paper's Figures 1–7 (see EXPERIMENTS.md),
//! not any particular absolute number. The main calibration anchors:
//!
//! - instruction footprint and its reuse skew set the L1-I/L2 instruction
//!   miss rates (Figure 2);
//! - the weight on DRAM-resident patterns (huge Zipf datasets, pointer
//!   chases) sets off-chip misses per kilo-instruction, anchored by the
//!   paper's Figure 7 bandwidth utilizations (a few 64-byte lines per
//!   kilo-instruction for most scale-out workloads);
//! - `load_chain_prob` and chase chain counts set MLP (Figure 3);
//! - `SharedRw` pools set read-write sharing (Figure 6).

use crate::datagen::PatternSpec;
use crate::ifoot::CodeProfile;
use crate::synth::SyntheticSource;
use serde::{Deserialize, Serialize};

/// Fractions of each functional class among non-branch micro-ops.
///
/// Branches are produced structurally by the instruction-footprint walker
/// (one per basic block), so they are not part of this mix. The remainder
/// after all listed classes is simple integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of floating-point ops.
    pub fp: f64,
    /// Fraction of integer multiplies.
    pub mul: f64,
    /// Fraction of integer divides.
    pub div: f64,
}

impl InstrMix {
    /// A typical integer-server mix: 30% loads, 12% stores, no FP.
    pub fn server() -> Self {
        Self { load: 0.30, store: 0.12, fp: 0.00, mul: 0.01, div: 0.002 }
    }

    /// A compute-heavy mix with some floating point.
    pub fn compute(fp: f64) -> Self {
        Self { load: 0.25, store: 0.08, fp, mul: 0.02, div: 0.002 }
    }

    /// Sum of all explicit classes (must be ≤ 1; the rest is ALU work).
    pub fn total(&self) -> f64 {
        self.load + self.store + self.fp + self.mul + self.div
    }

    /// Validates the mix.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the total exceeds 1.
    pub fn validate(&self) {
        for (name, v) in [
            ("load", self.load),
            ("store", self.store),
            ("fp", self.fp),
            ("mul", self.mul),
            ("div", self.div),
        ] {
            assert!(v >= 0.0, "negative {name} fraction");
        }
        assert!(self.total() <= 1.0 + 1e-9, "instruction mix exceeds 1.0");
    }
}

/// Instruction-level-parallelism structure of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IlpModel {
    /// Probability that an op names a first register dependency at all.
    pub dep_prob: f64,
    /// Mean of the geometric distance (in ops, back in program order) of
    /// register dependencies. Larger means more independent instructions in
    /// the window, i.e. more exploitable ILP.
    pub mean_dep_distance: f64,
    /// Probability of a second dependency (given a first one exists).
    pub second_dep_prob: f64,
    /// Probability that a (non-chase) load's address depends on the most
    /// recent earlier load — the request-processing serialization that
    /// limits MLP in server software (the paper's "complex data structure
    /// dependencies", §4.4).
    pub load_chain_prob: f64,
}

impl IlpModel {
    /// An ILP model with the given mean dependency distance and load
    /// chaining, and conventional dependency probabilities.
    pub fn new(mean: f64, load_chain_prob: f64) -> Self {
        Self { dep_prob: 0.85, mean_dep_distance: mean, second_dep_prob: 0.35, load_chain_prob }
    }
}

/// Operating-system involvement of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsProfile {
    /// Long-run fraction of micro-ops executed in kernel mode.
    pub fraction: f64,
    /// Mean kernel burst length in micro-ops (one syscall / interrupt
    /// service worth of work).
    pub burst_mean: f64,
    /// Kernel code footprint model.
    pub code: CodeProfile,
    /// Kernel data-access mixture (weight, pattern).
    pub data: Vec<(f64, PatternSpec)>,
    /// Kernel instruction mix.
    pub mix: InstrMix,
}

impl OsProfile {
    /// A network-I/O-centric kernel profile typical of scale-out workloads:
    /// a restricted kernel instruction working set (the paper finds the OS
    /// footprint of scale-out workloads *smaller* than traditional server
    /// workloads, §4.1) and a shared network buffer pool (the source of OS
    /// read-write sharing in Figure 6).
    pub fn network(fraction: f64, code_kb: u64, net_share: f64) -> Self {
        Self {
            fraction,
            burst_mean: 400.0,
            code: CodeProfile::new(code_kb * 1024, 0.86, 0.012),
            data: vec![
                (
                    net_share,
                    PatternSpec::SharedRw { slots: 384, slot_bytes: 2048, write_frac: 0.35 },
                ),
                (
                    0.08,
                    PatternSpec::Zipf {
                        dataset_bytes: 8 << 20,
                        s: 0.85,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.06,
                    },
                ),
                (
                    0.02,
                    PatternSpec::Zipf {
                        dataset_bytes: 256 << 20,
                        s: 0.8,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.05,
                    },
                ),
                (1.0 - net_share - 0.10, PatternSpec::Hot { bytes: 16 * 1024 }),
            ],
            mix: InstrMix::server(),
        }
    }
}

/// Full declarative description of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name as it appears in the paper's figures.
    pub name: String,
    /// Application code footprint model.
    pub code: CodeProfile,
    /// Application instruction mix.
    pub mix: InstrMix,
    /// Application data mixture (weight, pattern).
    pub data: Vec<(f64, PatternSpec)>,
    /// ILP structure.
    pub ilp: IlpModel,
    /// Operating-system involvement, if any.
    pub os: Option<OsProfile>,
    /// Whether heap datasets are shared between threads. Scale-out and
    /// database servers share one dataset across worker threads; SPEC and
    /// PARSEC runs are independent processes (or partition their data), so
    /// each hardware thread gets a private copy.
    pub shared_data: bool,
}

impl WorkloadProfile {
    /// Builds the synthetic trace source for one hardware thread.
    ///
    /// Threads built from the same profile share all non-private data
    /// regions (dataset, shared pools) but keep private stacks and
    /// independent random streams, matching the paper's "completely
    /// independent requests" workload structure.
    pub fn build_source(&self, thread: usize, seed: u64) -> SyntheticSource {
        SyntheticSource::new(self, thread, seed)
    }

    // ------------------------------------------------------------------
    // Scale-out workload profile twins (§3.2). First-class implementations
    // live in `cs-workloads`; these profiles are their statistical twins.
    // ------------------------------------------------------------------

    /// Data Serving: Cassandra 0.7.3 with a 15 GB YCSB dataset, Zipfian
    /// 95:5 read:write request mix (§3.2).
    pub fn data_serving() -> Self {
        Self {
            name: "Data Serving".into(),
            code: CodeProfile::new(2560 * 1024, 0.84, 0.016),
            mix: InstrMix::server(),
            data: vec![
                (0.68, PatternSpec::Hot { bytes: 24 * 1024 }),
                // Per-request scratch and connection state: L2/LLC-warm.
                (0.10, PatternSpec::Hot { bytes: 128 * 1024 }),
                // Memtable/row-cache metadata: LLC-warm.
                (
                    0.025,
                    PatternSpec::Zipf {
                        dataset_bytes: 48 << 20,
                        s: 0.9,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.01,
                    },
                ),
                // The YCSB dataset itself: Zipf(0.99) over 15 GB; reads
                // dominate (95:5 and writes are log-structured).
                (
                    0.007,
                    PatternSpec::Zipf {
                        dataset_bytes: 15 << 30,
                        s: 0.99,
                        object_bytes: 512,
                        burst: 4,
                        write_frac: 0.02,
                    },
                ),
                // Index descent to locate the row.
                (
                    0.004,
                    PatternSpec::Chase {
                        region_bytes: 2 << 30,
                        node_bytes: 64,
                        chains: 2,
                        write_frac: 0.0,
                    },
                ),
                // Parallel garbage collector metadata: the small
                // application-level sharing the paper calls out in §4.4.
                (0.001, PatternSpec::SharedRw { slots: 512, slot_bytes: 512, write_frac: 0.12 }),
            ],
            ilp: IlpModel::new(3.1, 0.25),
            os: Some(OsProfile::network(0.22, 1280, 0.008)),
            shared_data: true,
        }
    }

    /// MapReduce: Hadoop 0.20.2 running the Mahout Bayesian classifier over
    /// 4.5 GB of Wikipedia pages (§3.2).
    pub fn mapreduce() -> Self {
        Self {
            name: "MapReduce".into(),
            code: CodeProfile::new(2048 * 1024, 0.85, 0.014),
            mix: InstrMix { load: 0.30, store: 0.10, fp: 0.04, mul: 0.02, div: 0.002 },
            data: vec![
                (0.66, PatternSpec::Hot { bytes: 24 * 1024 }),
                // Token/feature tables: warm.
                (0.12, PatternSpec::Hot { bytes: 192 * 1024 }),
                // Input-split scanning: the one scale-out access stream
                // simple prefetchers do help (Figure 5 singles MapReduce
                // out). Private per map task.
                (0.015, PatternSpec::Stream { region_bytes: 1 << 30, stride: 8, write_frac: 0.0 }),
                (
                    0.006,
                    PatternSpec::Zipf {
                        dataset_bytes: 1 << 30,
                        s: 0.7,
                        object_bytes: 128,
                        burst: 2,
                        write_frac: 0.05,
                    },
                ),
                // Output spill buffers.
                (
                    0.005,
                    PatternSpec::Stream { region_bytes: 128 << 20, stride: 8, write_frac: 0.9 },
                ),
            ],
            ilp: IlpModel::new(3.3, 0.22),
            os: Some(OsProfile::network(0.16, 1024, 0.010)),
            shared_data: true,
        }
    }

    /// Media Streaming: Darwin Streaming Server with Faban clients, low
    /// bit-rate streams (§3.2). Each client reads a different offset of a
    /// large pre-encoded file (effectively one-touch), and the global
    /// packet counters the paper calls out (§4.4) appear as a small shared
    /// read-write pool.
    pub fn media_streaming() -> Self {
        Self {
            name: "Media Streaming".into(),
            code: CodeProfile::new(1536 * 1024, 0.85, 0.012),
            mix: InstrMix { load: 0.33, store: 0.10, fp: 0.0, mul: 0.01, div: 0.001 },
            data: vec![
                (0.62, PatternSpec::Hot { bytes: 16 * 1024 }),
                // RTP packetization scratch: warm.
                (0.12, PatternSpec::Hot { bytes: 96 * 1024 }),
                // Media chunks: per-client positions scattered over many
                // gigabytes, read once per packet — the paper's worst-case
                // off-chip traffic (Figure 7).
                (
                    0.05,
                    PatternSpec::Zipf {
                        dataset_bytes: 24 << 30,
                        s: 0.3,
                        object_bytes: 1344,
                        burst: 12,
                        write_frac: 0.0,
                    },
                ),
                // Session metadata.
                (
                    0.04,
                    PatternSpec::Zipf {
                        dataset_bytes: 64 << 20,
                        s: 0.9,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.01,
                    },
                ),
                // Global sent-packet counters (mutex-protected).
                (0.002, PatternSpec::SharedRw { slots: 32, slot_bytes: 128, write_frac: 0.5 }),
            ],
            ilp: IlpModel::new(2.8, 0.25),
            os: Some(OsProfile::network(0.30, 1536, 0.030)),
            shared_data: true,
        }
    }

    /// SAT Solver: Klee instances from the Cloud9 symbolic-execution engine,
    /// one per core, CPU-bound with negligible OS time (§3.2).
    pub fn sat_solver() -> Self {
        Self {
            name: "SAT Solver".into(),
            code: CodeProfile::new(1024 * 1024, 0.88, 0.02),
            mix: InstrMix { load: 0.31, store: 0.09, fp: 0.0, mul: 0.01, div: 0.002 },
            data: vec![
                (0.64, PatternSpec::Hot { bytes: 32 * 1024 }),
                // Trail / assignment vectors: warm.
                (0.12, PatternSpec::Hot { bytes: 160 * 1024 }),
                // Clause database traversal: pointer-heavy, multiple watch
                // lists walked concurrently (the highest scale-out MLP in
                // Figure 3).
                (
                    0.008,
                    PatternSpec::Chase {
                        region_bytes: 768 << 20,
                        node_bytes: 64,
                        chains: 5,
                        write_frac: 0.02,
                    },
                ),
                (
                    0.007,
                    PatternSpec::Zipf {
                        dataset_bytes: 256 << 20,
                        s: 0.7,
                        object_bytes: 128,
                        burst: 2,
                        write_frac: 0.05,
                    },
                ),
                (0.006, PatternSpec::Stream { region_bytes: 64 << 20, stride: 8, write_frac: 0.1 }),
            ],
            ilp: IlpModel::new(3.5, 0.14),
            os: Some(OsProfile::network(0.04, 512, 0.010)),
            // One independent solver process per core.
            shared_data: false,
        }
    }

    /// Web Frontend: Nginx + PHP (APC opcode cache) serving Olio with Faban
    /// clients (§3.2). The interpreter gives the largest instruction
    /// footprint, a hot interpreter-local working set (highest IPC of the
    /// scale-out group) and the lowest MLP (1.4 in Figure 3).
    pub fn web_frontend() -> Self {
        Self {
            name: "Web Frontend".into(),
            code: CodeProfile::new(3584 * 1024, 0.90, 0.012),
            mix: InstrMix { load: 0.28, store: 0.11, fp: 0.0, mul: 0.01, div: 0.001 },
            data: vec![
                (0.70, PatternSpec::Hot { bytes: 48 * 1024 }),
                // Opcode cache and interpreter tables: warm.
                (0.12, PatternSpec::Hot { bytes: 224 * 1024 }),
                // Session store and file cache over the 12 GB dataset.
                (
                    0.005,
                    PatternSpec::Zipf {
                        dataset_bytes: 12 << 30,
                        s: 0.9,
                        object_bytes: 1024,
                        burst: 8,
                        write_frac: 0.03,
                    },
                ),
                // Single dependent descent per request: lowest MLP.
                (
                    0.007,
                    PatternSpec::Chase {
                        region_bytes: 256 << 20,
                        node_bytes: 64,
                        chains: 1,
                        write_frac: 0.0,
                    },
                ),
                (0.001, PatternSpec::SharedRw { slots: 512, slot_bytes: 256, write_frac: 0.06 }),
            ],
            ilp: IlpModel::new(3.7, 0.40),
            os: Some(OsProfile::network(0.22, 1536, 0.015)),
            shared_data: true,
        }
    }

    /// Web Search: a Nutch/Lucene index serving node with a 2 GB in-memory
    /// index shard and 23 GB segment (§3.2).
    pub fn web_search() -> Self {
        Self {
            name: "Web Search".into(),
            code: CodeProfile::new(2560 * 1024, 0.88, 0.012),
            mix: InstrMix { load: 0.30, store: 0.08, fp: 0.02, mul: 0.02, div: 0.001 },
            data: vec![
                (0.68, PatternSpec::Hot { bytes: 32 * 1024 }),
                // Scoring accumulators and term dictionaries: warm.
                (0.12, PatternSpec::Hot { bytes: 160 * 1024 }),
                // Posting-list scans over the memory-resident index shard.
                (
                    0.010,
                    PatternSpec::Zipf {
                        dataset_bytes: 2 << 30,
                        s: 0.8,
                        object_bytes: 4096,
                        burst: 10,
                        write_frac: 0.0,
                    },
                ),
                (
                    0.04,
                    PatternSpec::Zipf {
                        dataset_bytes: 64 << 20,
                        s: 0.9,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.01,
                    },
                ),
                // Parallel GC metadata, as in Data Serving.
                (0.001, PatternSpec::SharedRw { slots: 512, slot_bytes: 512, write_frac: 0.10 }),
            ],
            ilp: IlpModel::new(3.8, 0.20),
            os: Some(OsProfile::network(0.12, 1024, 0.012)),
            shared_data: true,
        }
    }

    // ------------------------------------------------------------------
    // Traditional benchmarks (§3.3).
    // ------------------------------------------------------------------

    /// SPEC CINT2006, cpu-intensive group: L1-resident code, high ILP,
    /// cache-resident data, no OS time.
    pub fn specint_cpu() -> Self {
        Self {
            name: "SPECint (cpu)".into(),
            code: CodeProfile::new(12 * 1024, 0.9, 0.006),
            mix: InstrMix::compute(0.02),
            data: vec![
                (0.78, PatternSpec::Hot { bytes: 16 * 1024 }),
                (
                    0.22,
                    PatternSpec::Zipf {
                        dataset_bytes: 256 * 1024,
                        s: 0.85,
                        object_bytes: 64,
                        burst: 2,
                        write_frac: 0.30,
                    },
                ),
            ],
            ilp: IlpModel::new(5.2, 0.10),
            os: None,
            shared_data: false,
        }
    }

    /// SPEC CINT2006, memory-intensive group: small code, pointer-heavy data
    /// far beyond the LLC, abundant MLP.
    pub fn specint_mem() -> Self {
        Self {
            name: "SPECint (mem)".into(),
            code: CodeProfile::new(12 * 1024, 0.9, 0.02),
            mix: InstrMix::compute(0.01),
            data: vec![
                (0.66, PatternSpec::Hot { bytes: 16 * 1024 }),
                (
                    0.05,
                    PatternSpec::Chase {
                        region_bytes: 512 << 20,
                        node_bytes: 64,
                        chains: 8,
                        write_frac: 0.05,
                    },
                ),
                (
                    0.05,
                    PatternSpec::Zipf {
                        dataset_bytes: 128 << 20,
                        s: 0.7,
                        object_bytes: 128,
                        burst: 2,
                        write_frac: 0.10,
                    },
                ),
            ],
            ilp: IlpModel::new(4.5, 0.05),
            os: None,
            shared_data: false,
        }
    }

    /// The SPECint `mcf` outlier used in Figure 4: a working set a few times
    /// the LLC capacity, so every megabyte of cache visibly matters.
    pub fn mcf() -> Self {
        Self {
            name: "SPECint (mcf)".into(),
            code: CodeProfile::new(8 * 1024, 0.9, 0.02),
            mix: InstrMix::compute(0.0),
            data: vec![
                (0.12, PatternSpec::Hot { bytes: 8 * 1024 }),
                // A working set just beyond the 12 MB LLC with near-uniform
                // reuse: every megabyte of capacity converts misses into
                // hits, the defining Figure 4 behaviour of mcf.
                (
                    0.62,
                    PatternSpec::Zipf {
                        dataset_bytes: 3584 * 1024,
                        s: 0.3,
                        object_bytes: 128,
                        burst: 2,
                        write_frac: 0.15,
                    },
                ),
                (
                    0.25,
                    PatternSpec::Chase {
                        region_bytes: 3 << 20,
                        node_bytes: 64,
                        chains: 2,
                        write_frac: 0.05,
                    },
                ),
            ],
            ilp: IlpModel::new(4.0, 0.50),
            os: None,
            shared_data: false,
        }
    }

    /// PARSEC 2.1, cpu-intensive group: negligible instruction working set,
    /// high ILP, FP-heavy, cache-resident data.
    pub fn parsec_cpu() -> Self {
        Self {
            name: "PARSEC (cpu)".into(),
            code: CodeProfile::new(16 * 1024, 0.9, 0.005),
            mix: InstrMix::compute(0.30),
            data: vec![
                (0.74, PatternSpec::Hot { bytes: 24 * 1024 }),
                (0.10, PatternSpec::Stream { region_bytes: 256 * 1024, stride: 8, write_frac: 0.2 }),
                (
                    0.16,
                    PatternSpec::Zipf {
                        dataset_bytes: 768 * 1024,
                        s: 0.8,
                        object_bytes: 64,
                        burst: 2,
                        write_frac: 0.25,
                    },
                ),
            ],
            ilp: IlpModel::new(6.0, 0.10),
            os: None,
            shared_data: false,
        }
    }

    /// PARSEC 2.1, memory-intensive group: streaming and chasing over large
    /// arrays with high memory-level parallelism.
    pub fn parsec_mem() -> Self {
        Self {
            name: "PARSEC (mem)".into(),
            code: CodeProfile::new(16 * 1024, 0.9, 0.006),
            mix: InstrMix::compute(0.20),
            data: vec![
                (0.44, PatternSpec::Hot { bytes: 24 * 1024 }),
                (
                    0.36,
                    PatternSpec::Stream { region_bytes: 768 << 20, stride: 8, write_frac: 0.15 },
                ),
                (
                    0.06,
                    PatternSpec::Chase {
                        region_bytes: 256 << 20,
                        node_bytes: 64,
                        chains: 12,
                        write_frac: 0.05,
                    },
                ),
            ],
            ilp: IlpModel::new(5.0, 0.05),
            os: None,
            shared_data: false,
        }
    }

    /// SPECweb09 (e-banking on Nginx + FastCGI PHP): a traditional
    /// enterprise web workload dominated by static files and a small set of
    /// dynamic scripts, with heavy OS involvement (§4, Figure 1 discussion).
    pub fn specweb09() -> Self {
        Self {
            name: "SPECweb09".into(),
            code: CodeProfile::new(1024 * 1024, 0.86, 0.012),
            mix: InstrMix::server(),
            data: vec![
                (0.64, PatternSpec::Hot { bytes: 16 * 1024 }),
                (0.10, PatternSpec::Hot { bytes: 96 * 1024 }),
                // Static file cache over a 4 GB-scaled corpus.
                (
                    0.008,
                    PatternSpec::Zipf {
                        dataset_bytes: 4 << 30,
                        s: 0.9,
                        object_bytes: 4096,
                        burst: 16,
                        write_frac: 0.0,
                    },
                ),
                (
                    0.008,
                    PatternSpec::Chase {
                        region_bytes: 64 << 20,
                        node_bytes: 64,
                        chains: 1,
                        write_frac: 0.0,
                    },
                ),
                (0.002, PatternSpec::SharedRw { slots: 512, slot_bytes: 512, write_frac: 0.08 }),
            ],
            ilp: IlpModel::new(2.9, 0.38),
            os: Some(OsProfile {
                fraction: 0.45,
                burst_mean: 600.0,
                code: CodeProfile::new(2048 * 1024, 0.85, 0.014),
                data: OsProfile::network(0.45, 2048, 0.020).data,
                mix: InstrMix::server(),
            }),
            shared_data: true,
        }
    }

    /// TPC-C on a commercial DBMS (40 warehouses, 3 GB buffer pool): the
    /// paper's worst case — over 80% of time stalled on *dependent* memory
    /// accesses, with heavy lock/latch read-write sharing and 14% RFO
    /// memory cycles.
    pub fn tpcc() -> Self {
        Self {
            name: "TPC-C".into(),
            code: CodeProfile::new(3072 * 1024, 0.62, 0.018),
            mix: InstrMix::server(),
            data: vec![
                (0.58, PatternSpec::Hot { bytes: 16 * 1024 }),
                // Hot inner B-tree levels and row cache: LLC-warm.
                (
                    0.10,
                    PatternSpec::Zipf {
                        dataset_bytes: 48 << 20,
                        s: 0.85,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.08,
                    },
                ),
                // Leaf/row chains in the buffer pool: single-chain pointer
                // chasing — minimal MLP, mostly off-chip.
                (
                    0.014,
                    PatternSpec::Chase {
                        region_bytes: 3 << 30,
                        node_bytes: 64,
                        chains: 1,
                        write_frac: 0.10,
                    },
                ),
                (
                    0.008,
                    PatternSpec::Zipf {
                        dataset_bytes: 3 << 30,
                        s: 0.85,
                        object_bytes: 512,
                        burst: 3,
                        write_frac: 0.10,
                    },
                ),
                // Lock manager / latches: intense application-level sharing.
                (0.010, PatternSpec::SharedRw { slots: 192, slot_bytes: 128, write_frac: 0.40 }),
            ],
            ilp: IlpModel::new(2.4, 0.70),
            os: Some(OsProfile {
                fraction: 0.30,
                burst_mean: 500.0,
                code: CodeProfile::new(2560 * 1024, 0.70, 0.016),
                data: OsProfile::network(0.30, 2560, 0.012).data,
                mix: InstrMix::server(),
            }),
            shared_data: true,
        }
    }

    /// TPC-E 1.12 on a commercial DBMS (5000 customers, 52 GB, 10 GB buffer
    /// pool): more complex schemas and queries than TPC-C, which the paper
    /// finds closest to the scale-out class.
    pub fn tpce() -> Self {
        Self {
            name: "TPC-E".into(),
            code: CodeProfile::new(3072 * 1024, 0.76, 0.016),
            mix: InstrMix::server(),
            data: vec![
                (0.62, PatternSpec::Hot { bytes: 24 * 1024 }),
                (
                    0.09,
                    PatternSpec::Zipf {
                        dataset_bytes: 48 << 20,
                        s: 0.85,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.08,
                    },
                ),
                (
                    0.007,
                    PatternSpec::Chase {
                        region_bytes: 8 << 30,
                        node_bytes: 64,
                        chains: 2,
                        write_frac: 0.05,
                    },
                ),
                (
                    0.008,
                    PatternSpec::Zipf {
                        dataset_bytes: 10 << 30,
                        s: 0.85,
                        object_bytes: 512,
                        burst: 4,
                        write_frac: 0.05,
                    },
                ),
                (0.008, PatternSpec::SharedRw { slots: 256, slot_bytes: 128, write_frac: 0.35 }),
            ],
            ilp: IlpModel::new(2.8, 0.50),
            os: Some(OsProfile {
                fraction: 0.22,
                burst_mean: 500.0,
                code: CodeProfile::new(2048 * 1024, 0.76, 0.014),
                data: OsProfile::network(0.22, 2048, 0.012).data,
                mix: InstrMix::server(),
            }),
            shared_data: true,
        }
    }

    /// Web Backend: MySQL 5.5.9 with a 2 GB buffer pool executing the
    /// database half of the Web Frontend benchmark.
    pub fn web_backend() -> Self {
        Self {
            name: "Web Backend".into(),
            code: CodeProfile::new(2048 * 1024, 0.78, 0.016),
            mix: InstrMix::server(),
            data: vec![
                (0.62, PatternSpec::Hot { bytes: 24 * 1024 }),
                (
                    0.08,
                    PatternSpec::Zipf {
                        dataset_bytes: 32 << 20,
                        s: 0.85,
                        object_bytes: 256,
                        burst: 2,
                        write_frac: 0.08,
                    },
                ),
                (
                    0.009,
                    PatternSpec::Chase {
                        region_bytes: 2 << 30,
                        node_bytes: 64,
                        chains: 2,
                        write_frac: 0.08,
                    },
                ),
                (
                    0.008,
                    PatternSpec::Zipf {
                        dataset_bytes: 2 << 30,
                        s: 0.9,
                        object_bytes: 512,
                        burst: 4,
                        write_frac: 0.05,
                    },
                ),
                (0.008, PatternSpec::SharedRw { slots: 256, slot_bytes: 128, write_frac: 0.35 }),
            ],
            ilp: IlpModel::new(3.1, 0.38),
            os: Some(OsProfile::network(0.24, 1792, 0.015)),
            shared_data: true,
        }
    }

    /// A cache-polluter thread (§3.1): walks an array of `array_bytes` in a
    /// pseudo-random order so that every access misses the L1/L2 and hits
    /// the LLC, stealing that much LLC capacity from the workload under
    /// test. Used by the Figure 4 methodology.
    pub fn polluter(array_bytes: u64) -> Self {
        Self {
            name: format!("polluter-{}MB", array_bytes >> 20),
            code: CodeProfile::new(4 * 1024, 0.9, 0.001),
            mix: InstrMix { load: 0.60, store: 0.0, fp: 0.0, mul: 0.0, div: 0.0 },
            data: vec![(
                1.0,
                PatternSpec::Chase {
                    region_bytes: array_bytes,
                    node_bytes: 64,
                    chains: 24,
                    write_frac: 0.0,
                },
            )],
            ilp: IlpModel::new(8.0, 0.0),
            os: None,
            shared_data: false,
        }
    }

    /// All six scale-out profile twins, in the paper's figure order.
    pub fn scale_out_suite() -> Vec<Self> {
        vec![
            Self::data_serving(),
            Self::mapreduce(),
            Self::media_streaming(),
            Self::sat_solver(),
            Self::web_frontend(),
            Self::web_search(),
        ]
    }

    /// All traditional comparison profiles, in the paper's figure order.
    pub fn traditional_suite() -> Vec<Self> {
        vec![
            Self::parsec_cpu(),
            Self::parsec_mem(),
            Self::specint_cpu(),
            Self::specint_mem(),
            Self::specweb09(),
            Self::tpcc(),
            Self::tpce(),
            Self::web_backend(),
        ]
    }

    /// Validates structural invariants of the profile.
    ///
    /// # Panics
    ///
    /// Panics if the instruction mix or pattern weights are malformed.
    pub fn validate(&self) {
        self.mix.validate();
        assert!(!self.data.is_empty(), "profile needs at least one data pattern");
        let total: f64 = self.data.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "data pattern weights must be positive");
        assert!(self.data.iter().all(|(w, _)| *w >= 0.0), "negative pattern weight");
        if let Some(os) = &self.os {
            os.mix.validate();
            assert!((0.0..1.0).contains(&os.fraction), "os fraction must be in [0,1)");
            assert!(!os.data.is_empty(), "os profile needs data patterns");
            assert!(os.data.iter().all(|(w, _)| *w >= 0.0), "negative os pattern weight");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stock_profiles_validate() {
        for p in WorkloadProfile::scale_out_suite()
            .into_iter()
            .chain(WorkloadProfile::traditional_suite())
            .chain([WorkloadProfile::mcf(), WorkloadProfile::polluter(4 << 20)])
        {
            p.validate();
        }
    }

    #[test]
    fn scale_out_footprints_exceed_l1i_by_an_order_of_magnitude() {
        for p in WorkloadProfile::scale_out_suite() {
            assert!(
                p.code.footprint_bytes >= 10 * 32 * 1024,
                "{} footprint too small for the paper's §4.1 claim",
                p.name
            );
        }
    }

    #[test]
    fn cpu_benchmarks_fit_in_l1i() {
        for p in [WorkloadProfile::specint_cpu(), WorkloadProfile::parsec_cpu()] {
            assert!(p.code.footprint_bytes <= 32 * 1024, "{}", p.name);
        }
    }

    #[test]
    fn scale_out_workloads_involve_the_os_and_share_data() {
        for p in WorkloadProfile::scale_out_suite() {
            assert!(p.os.is_some(), "{} must model OS time", p.name);
        }
        assert!(WorkloadProfile::data_serving().shared_data);
    }

    #[test]
    fn desktop_and_parallel_benchmarks_are_private() {
        for p in [
            WorkloadProfile::specint_cpu(),
            WorkloadProfile::specint_mem(),
            WorkloadProfile::parsec_cpu(),
            WorkloadProfile::parsec_mem(),
            WorkloadProfile::mcf(),
        ] {
            assert!(p.os.is_none(), "{}", p.name);
            assert!(!p.shared_data, "{} must not share data", p.name);
        }
    }

    #[test]
    fn mix_validation_rejects_oversubscription() {
        let mut mix = InstrMix::server();
        mix.load = 0.95;
        let result = std::panic::catch_unwind(move || mix.validate());
        assert!(result.is_err());
    }

    #[test]
    fn polluter_is_pure_chase() {
        let p = WorkloadProfile::polluter(6 << 20);
        assert_eq!(p.data.len(), 1);
        assert!(matches!(p.data[0].1, PatternSpec::Chase { .. }));
        assert!(p.os.is_none());
    }

    #[test]
    fn suites_have_paper_cardinalities() {
        assert_eq!(WorkloadProfile::scale_out_suite().len(), 6);
        assert_eq!(WorkloadProfile::traditional_suite().len(), 8);
    }

    #[test]
    fn os_fraction_bands_match_the_paper() {
        // SAT Solver is compute-bound; Media Streaming is network-heavy.
        let sat = WorkloadProfile::sat_solver().os.expect("has os").fraction;
        let media = WorkloadProfile::media_streaming().os.expect("has os").fraction;
        assert!(sat < 0.10);
        assert!(media > 0.25);
    }
}
