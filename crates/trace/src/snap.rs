//! Binary snapshot codec for crash-safe checkpoint/restore.
//!
//! Every layer of the simulator (cores, caches, DRAM timers, fault
//! cursors, accumulated counters) serializes its state through the tiny
//! explicit codec in this module rather than through serde: the snapshot
//! format must be *byte-stable* across builds — a checkpoint written by an
//! interrupted campaign is read back by a fresh process and must restore
//! bit-identical state — so every field is written in a fixed order with a
//! fixed-width little-endian representation and read back with typed
//! errors instead of panics.
//!
//! The format rules, applied uniformly:
//!
//! - integers are fixed-width little-endian (`u64::to_le_bytes` and
//!   friends); lengths are `u64`;
//! - `bool` is one byte (0/1), any other value is a [`SnapError::BadTag`];
//! - `Option<T>` is a one-byte tag (0 = `None`, 1 = `Some`) followed by
//!   the payload;
//! - `f64` travels as its IEEE-754 bit pattern (`to_bits`), so exact
//!   values round-trip;
//! - enums are a one-byte tag; unknown tags are a typed error, never UB.
//!
//! Checksumming (FNV-1a 64) and the versioned envelope live with the
//! checkpoint manager in `cs-core`; this module provides the primitive
//! [`fnv1a64`] plus the [`Enc`]/[`Dec`] pair and codecs for the trace
//! types ([`MicroOp`] et al.) that higher layers embed in their snapshots.

use crate::op::{MemRef, MicroOp, OpKind, Privilege};

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the field being read.
    Truncated,
    /// An enum/bool/option tag byte had no defined meaning.
    BadTag(u8),
    /// The envelope magic did not match.
    BadMagic,
    /// The envelope carried an unsupported format version.
    Version(u32),
    /// The payload checksum did not match its header.
    Checksum,
    /// The snapshot is internally valid but inconsistent with the state
    /// being restored into (wrong topology, wrong config, …).
    Mismatch(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => f.write_str("snapshot truncated"),
            SnapError::BadTag(t) => write!(f, "snapshot contains undefined tag byte {t:#04x}"),
            SnapError::BadMagic => f.write_str("not a snapshot file (bad magic)"),
            SnapError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::Checksum => f.write_str("snapshot checksum mismatch"),
            SnapError::Mismatch(why) => write!(f, "snapshot does not match this run: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash — the snapshot payload checksum. Not cryptographic;
/// it guards against torn writes and bit rot, not adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only snapshot encoder.
#[derive(Debug, Default)]
pub struct Enc {
    /// The bytes written so far.
    pub buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an `Option<u64>` as tag + payload.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// Writes an `Option<u8>` as tag + payload.
    pub fn opt_u8(&mut self, v: Option<u8>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u8(x);
            }
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed opaque byte blob — the in-memory handoff
    /// primitive for nesting one encoded snapshot (e.g. a chip state
    /// captured at a sampling-window boundary) inside another stream.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Sequential snapshot decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a length written by [`Enc::len`]. Rejects lengths that cannot
    /// possibly fit in the remaining buffer, so corrupt snapshots fail
    /// fast instead of triggering huge allocations.
    // Not a container-length getter — it consumes a length *field* from
    // the stream — so `is_empty` would be meaningless here.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| SnapError::Truncated)?;
        if v > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        Ok(v)
    }

    /// Reads a bool byte; anything other than 0/1 is a [`SnapError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag(t)),
        }
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(SnapError::BadTag(t)),
        }
    }

    /// Reads an `Option<u8>`.
    pub fn opt_u8(&mut self) -> Result<Option<u8>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u8()?)),
            t => Err(SnapError::BadTag(t)),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadTag(0xFF))
    }

    /// Reads a length-prefixed opaque byte blob written by [`Enc::bytes`].
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Asserts that every byte has been consumed — a decoded struct that
    /// leaves trailing garbage means the writer and reader disagree.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Mismatch(format!("{} trailing bytes after decode", self.remaining())))
        }
    }
}

// ---------------------------------------------------------------------
// Trace-type codecs
// ---------------------------------------------------------------------

/// Encodes a [`Privilege`].
pub fn encode_privilege(e: &mut Enc, p: Privilege) {
    e.u8(match p {
        Privilege::User => 0,
        Privilege::Kernel => 1,
    });
}

/// Decodes a [`Privilege`].
pub fn decode_privilege(d: &mut Dec<'_>) -> Result<Privilege, SnapError> {
    match d.u8()? {
        0 => Ok(Privilege::User),
        1 => Ok(Privilege::Kernel),
        t => Err(SnapError::BadTag(t)),
    }
}

/// Encodes an [`OpKind`].
pub fn encode_op_kind(e: &mut Enc, k: OpKind) {
    e.u8(match k {
        OpKind::IntAlu => 0,
        OpKind::IntMul => 1,
        OpKind::IntDiv => 2,
        OpKind::Fp => 3,
        OpKind::Load => 4,
        OpKind::Store => 5,
        OpKind::Branch { mispredict: false } => 6,
        OpKind::Branch { mispredict: true } => 7,
    });
}

/// Decodes an [`OpKind`].
pub fn decode_op_kind(d: &mut Dec<'_>) -> Result<OpKind, SnapError> {
    match d.u8()? {
        0 => Ok(OpKind::IntAlu),
        1 => Ok(OpKind::IntMul),
        2 => Ok(OpKind::IntDiv),
        3 => Ok(OpKind::Fp),
        4 => Ok(OpKind::Load),
        5 => Ok(OpKind::Store),
        6 => Ok(OpKind::Branch { mispredict: false }),
        7 => Ok(OpKind::Branch { mispredict: true }),
        t => Err(SnapError::BadTag(t)),
    }
}

/// Encodes a full [`MicroOp`].
pub fn encode_op(e: &mut Enc, op: &MicroOp) {
    e.u64(op.pc);
    encode_op_kind(e, op.kind);
    match op.mem {
        None => e.u8(0),
        Some(MemRef { addr, size }) => {
            e.u8(1);
            e.u64(addr);
            e.u8(size);
        }
    }
    encode_privilege(e, op.privilege);
    e.u8(op.dep1);
    e.u8(op.dep2);
}

/// Decodes a full [`MicroOp`].
pub fn decode_op(d: &mut Dec<'_>) -> Result<MicroOp, SnapError> {
    let pc = d.u64()?;
    let kind = decode_op_kind(d)?;
    let mem = match d.u8()? {
        0 => None,
        1 => {
            let addr = d.u64()?;
            let size = d.u8()?;
            if !(1..=64).contains(&size) {
                return Err(SnapError::BadTag(size));
            }
            Some(MemRef { addr, size })
        }
        t => return Err(SnapError::BadTag(t)),
    };
    let privilege = decode_privilege(d)?;
    let dep1 = d.u8()?;
    let dep2 = d.u8()?;
    Ok(MicroOp { pc, kind, mem, privilege, dep1, dep2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.bool(true);
        e.bool(false);
        e.f64(3.5);
        e.f64(f64::NEG_INFINITY);
        e.opt_u64(None);
        e.opt_u64(Some(7));
        e.opt_u8(Some(9));
        e.str("checkpoint");
        let mut d = Dec::new(&e.buf);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.f64().unwrap(), 3.5);
        assert_eq!(d.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_u64().unwrap(), Some(7));
        assert_eq!(d.opt_u8().unwrap(), Some(9));
        assert_eq!(d.str().unwrap(), "checkpoint");
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut e = Enc::new();
        e.u64(1234);
        let mut d = Dec::new(&e.buf[..5]);
        assert_eq!(d.u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_bool_and_option_tags_are_rejected() {
        let buf = [2u8];
        assert_eq!(Dec::new(&buf).bool(), Err(SnapError::BadTag(2)));
        assert_eq!(Dec::new(&buf).opt_u64(), Err(SnapError::BadTag(2)));
    }

    #[test]
    fn oversized_length_fails_fast() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        assert_eq!(Dec::new(&e.buf).len(), Err(SnapError::Truncated));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let buf = [0u8; 3];
        let mut d = Dec::new(&buf);
        d.u8().unwrap();
        assert!(matches!(d.finish(), Err(SnapError::Mismatch(_))));
    }

    #[test]
    fn micro_ops_roundtrip_exactly() {
        let ops = [
            MicroOp::alu(0x400000).with_deps(3, 250),
            MicroOp::load(0x400004, 0x1000, 8).with_privilege(Privilege::Kernel),
            MicroOp::store(0x400008, 0x2040, 64),
            MicroOp::branch(0x40000C, true),
            MicroOp::branch(0x400010, false),
            MicroOp::of_kind(0x400014, OpKind::IntDiv),
            MicroOp::of_kind(0x400018, OpKind::Fp),
            MicroOp::of_kind(0x40001C, OpKind::IntMul),
        ];
        let mut e = Enc::new();
        for op in &ops {
            encode_op(&mut e, op);
        }
        let mut d = Dec::new(&e.buf);
        for op in &ops {
            assert_eq!(&decode_op(&mut d).unwrap(), op);
        }
        d.finish().unwrap();
    }

    #[test]
    fn memref_size_is_validated() {
        let mut e = Enc::new();
        e.u64(0); // pc
        e.u8(4); // Load
        e.u8(1); // Some(mem)
        e.u64(0x1000);
        e.u8(0); // invalid size
        assert!(matches!(decode_op(&mut Dec::new(&e.buf)), Err(SnapError::BadTag(0))));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a64_detects_single_bit_flips() {
        let data = b"snapshot payload bytes".to_vec();
        let h = fnv1a64(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a64(&flipped), h);
        }
    }
}
