//! Deterministic random sampling helpers.
//!
//! All randomness in the suite flows through seeded [`SmallRng`] instances so
//! that a (workload, seed) pair always produces bit-identical traces and
//! therefore bit-identical counters — the property the determinism
//! integration test locks down.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a deterministic RNG from a `(seed, stream)` pair.
///
/// Distinct streams (e.g. one per hardware thread) built from the same base
/// seed are decorrelated by mixing the stream index with a SplitMix64 step.
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
}

/// One round of SplitMix64; used to derive independent seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Samples a geometric distribution over `1, 2, 3, ...` with mean `mean`.
///
/// Used for dependency distances (instruction-level parallelism model) and
/// for burst lengths in the OS overlay.
///
/// # Panics
///
/// Panics if `mean < 1`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 1.0, "geometric mean must be >= 1");
    if mean == 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let k = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
    k.max(1)
}

/// A presampled geometric distribution for hot paths.
///
/// Trace generation draws a dependency distance per micro-op; sampling a
/// fresh geometric variate costs a logarithm each time. This table
/// presamples 256 variates at construction and then serves draws with one
/// cheap RNG byte, preserving the marginal distribution to table
/// resolution.
#[derive(Debug, Clone)]
pub struct GeometricTable {
    table: [u16; 256],
}

impl GeometricTable {
    /// Builds a table for the given mean, seeded deterministically from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `mean < 1`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> Self {
        let mut table = [0u16; 256];
        for slot in table.iter_mut() {
            *slot = geometric(rng, mean).min(u16::MAX as u64) as u16;
        }
        Self { table }
    }

    /// Draws one variate.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.table[rng.gen::<u8>() as usize] as u64
    }
}

/// Returns `true` with probability `p`.
#[inline]
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    p > 0.0 && rng.gen::<f64>() < p
}

/// Picks an index from a slice of weights, proportionally.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(!weights.is_empty() && total > 0.0, "weights must be non-empty with positive sum");
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rngs_are_reproducible_and_decorrelated() {
        let mut a1 = stream_rng(42, 0);
        let mut a2 = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let xs1: Vec<u64> = (0..8).map(|_| a1.gen()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = stream_rng(7, 0);
        for &mean in &[1.5, 3.0, 10.0, 100.0] {
            let n = 200_000;
            let sum: u64 = (0..n).map(|_| geometric(&mut rng, mean)).sum();
            let got = sum as f64 / n as f64;
            assert!((got - mean).abs() < 0.05 * mean, "mean {mean}: got {got}");
        }
    }

    #[test]
    fn geometric_mean_one_is_constant() {
        let mut rng = stream_rng(7, 0);
        for _ in 0..100 {
            assert_eq!(geometric(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = stream_rng(9, 0);
        assert!(!chance(&mut rng, 0.0));
        assert!(chance(&mut rng, 1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = stream_rng(11, 0);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u64; 3];
        for _ in 0..100_000 {
            counts[weighted_index(&mut rng, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_index_rejects_zero_sum() {
        let mut rng = stream_rng(1, 0);
        let _ = weighted_index(&mut rng, &[0.0, 0.0]);
    }
}
