//! Instruction-footprint model.
//!
//! The paper's central frontend finding (§4.1) is that scale-out workloads
//! have *multi-megabyte instruction working sets* — an order of magnitude
//! beyond the 32 KB L1-I — with complex, non-sequential control flow that
//! defeats next-line prefetchers. This module synthesizes instruction-fetch
//! streams with exactly those controllable properties.
//!
//! The model: a code region of `footprint_bytes` is divided into fixed-size
//! functions (default 256 bytes ≈ 64 x86 instructions ≈ 4 cache lines).
//! Execution walks one function sequentially (giving next-line prefetchers
//! their fair chance), emitting a conditional branch every `branch_every`
//! instructions, then transfers to a new function drawn from a Zipf
//! popularity distribution over the whole footprint. The Zipf exponent
//! controls how concentrated the instruction working set is; the footprint
//! controls how large it is.

use crate::layout::LINE_BYTES;
use crate::zipf::Zipf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Average encoded instruction size assumed by the model (x86-64 average).
pub const INSTR_BYTES: u64 = 4;

/// Static parameters of a code region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeProfile {
    /// Total bytes of code that the workload can touch.
    pub footprint_bytes: u64,
    /// Zipf exponent of the function popularity distribution. Smaller values
    /// flatten reuse and grow the effective working set.
    pub zipf_s: f64,
    /// Bytes per function (contiguous, sequentially executed).
    pub func_bytes: u64,
    /// One conditional branch is emitted every this many instructions.
    pub branch_every: u32,
    /// Probability that a conditional branch mispredicts.
    pub mispredict_rate: f64,
    /// Probability that the function-to-function transfer mispredicts
    /// (indirect calls / returns are harder to predict).
    pub call_mispredict_rate: f64,
}

impl CodeProfile {
    /// A profile with conventional structural constants and the given
    /// footprint, reuse skew and conditional-branch mispredict rate.
    pub fn new(footprint_bytes: u64, zipf_s: f64, mispredict_rate: f64) -> Self {
        Self {
            footprint_bytes,
            zipf_s,
            func_bytes: 256,
            branch_every: 6,
            mispredict_rate,
            call_mispredict_rate: (mispredict_rate * 2.0).min(0.5),
        }
    }

    /// Number of functions in the footprint (at least 1).
    pub fn n_funcs(&self) -> u64 {
        (self.footprint_bytes / self.func_bytes).max(1)
    }

    /// Instructions per function.
    pub fn instrs_per_func(&self) -> u32 {
        (self.func_bytes / INSTR_BYTES).max(1) as u32
    }
}

/// One step of the instruction-fetch walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcStep {
    /// Program counter for the instruction.
    pub pc: u64,
    /// Whether this slot is a control-transfer instruction.
    pub is_branch: bool,
    /// Whether the branch mispredicts (only meaningful when `is_branch`).
    pub mispredict: bool,
}

/// Stateful walker producing a PC stream over a code region.
#[derive(Debug, Clone)]
pub struct CodeWalker {
    base: u64,
    profile: CodeProfile,
    zipf: Zipf,
    cur_func: u64,
    instr_in_func: u32,
    instrs_per_func: u32,
}

impl CodeWalker {
    /// Creates a walker over a code region starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the profile has a zero footprint or zero-size functions.
    pub fn new(base: u64, profile: CodeProfile) -> Self {
        assert!(profile.footprint_bytes > 0, "code footprint must be positive");
        assert!(profile.func_bytes >= INSTR_BYTES, "functions must hold at least one instruction");
        let zipf = Zipf::new(profile.n_funcs(), profile.zipf_s);
        let instrs_per_func = profile.instrs_per_func();
        Self { base, profile, zipf, cur_func: 0, instr_in_func: 0, instrs_per_func }
    }

    /// The profile this walker was built from.
    pub fn profile(&self) -> &CodeProfile {
        &self.profile
    }

    /// Advances by one instruction and returns its PC and branch behaviour.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> PcStep {
        let pc = self.base
            + self.cur_func * self.profile.func_bytes
            + self.instr_in_func as u64 * INSTR_BYTES;
        self.instr_in_func += 1;

        let at_func_end = self.instr_in_func >= self.instrs_per_func;
        let at_branch_slot = self.instr_in_func.is_multiple_of(self.profile.branch_every);

        if at_func_end {
            // Transfer to the next function: Zipf-popular target. The rank is
            // scattered over the footprint by a fixed multiplicative hash so
            // popular functions are not physically adjacent (no accidental
            // spatial locality between hot functions).
            let rank = self.zipf.sample(rng) - 1;
            let n = self.profile.n_funcs();
            self.cur_func = scatter(rank, n);
            self.instr_in_func = 0;
            let mispredict = rng.gen::<f64>() < self.profile.call_mispredict_rate;
            PcStep { pc, is_branch: true, mispredict }
        } else if at_branch_slot {
            let mispredict = rng.gen::<f64>() < self.profile.mispredict_rate;
            PcStep { pc, is_branch: true, mispredict }
        } else {
            PcStep { pc, is_branch: false, mispredict: false }
        }
    }

    /// Distinct cache lines spanned by the footprint.
    pub fn footprint_lines(&self) -> u64 {
        self.profile.footprint_bytes / LINE_BYTES
    }
}

/// Maps a popularity rank to a function index, scattering hot ranks across
/// the footprint (Fibonacci hashing, then reduced modulo `n`).
fn scatter(rank: u64, n: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use std::collections::HashSet;

    fn profile(footprint: u64) -> CodeProfile {
        CodeProfile::new(footprint, 0.8, 0.01)
    }

    #[test]
    fn pcs_stay_in_footprint() {
        let p = profile(64 * 1024);
        let mut w = CodeWalker::new(0x40_0000, p.clone());
        let mut rng = stream_rng(1, 0);
        for _ in 0..100_000 {
            let s = w.step(&mut rng);
            assert!(s.pc >= 0x40_0000);
            assert!(s.pc < 0x40_0000 + p.footprint_bytes);
        }
    }

    #[test]
    fn sequential_within_function() {
        let p = profile(1 << 20);
        let mut w = CodeWalker::new(0, p.clone());
        let mut rng = stream_rng(2, 0);
        let mut last_pc = None;
        let mut sequential = 0u64;
        let mut total = 0u64;
        for _ in 0..10_000 {
            let s = w.step(&mut rng);
            if let Some(prev) = last_pc {
                total += 1;
                if s.pc == prev + INSTR_BYTES {
                    sequential += 1;
                }
            }
            last_pc = Some(s.pc);
        }
        // With 64-instruction functions, ~63/64 of steps are sequential.
        assert!(sequential as f64 / total as f64 > 0.9);
    }

    #[test]
    fn branch_density_matches_profile() {
        let p = profile(1 << 20);
        let mut w = CodeWalker::new(0, p.clone());
        let mut rng = stream_rng(3, 0);
        let n = 120_000;
        let branches = (0..n).filter(|_| w.step(&mut rng).is_branch).count();
        let expect = n as f64 / p.branch_every as f64;
        assert!(
            (branches as f64 - expect).abs() < 0.1 * expect,
            "branches {branches} vs expected {expect}"
        );
    }

    #[test]
    fn larger_footprints_touch_more_lines() {
        let mut rng = stream_rng(4, 0);
        let mut touched = |bytes: u64| {
            let mut w = CodeWalker::new(0, profile(bytes));
            let mut lines = HashSet::new();
            for _ in 0..200_000 {
                lines.insert(w.step(&mut rng).pc / LINE_BYTES);
            }
            lines.len()
        };
        let small = touched(16 * 1024);
        let large = touched(2 << 20);
        assert!(small <= 16 * 1024 / 64);
        assert!(large > 4 * small, "large {large} small {small}");
    }

    #[test]
    fn tiny_footprint_is_l1_resident() {
        // A SPEC-cpu-like 8 KB footprint touches at most 128 lines.
        let mut w = CodeWalker::new(0, profile(8 * 1024));
        let mut rng = stream_rng(5, 0);
        let mut lines = HashSet::new();
        for _ in 0..50_000 {
            lines.insert(w.step(&mut rng).pc / LINE_BYTES);
        }
        assert!(lines.len() <= 128);
    }

    #[test]
    fn scatter_is_a_permutation_mod_small_n() {
        let n = 257;
        let mut seen = HashSet::new();
        for r in 0..n {
            seen.insert(scatter(r, n));
        }
        // Multiplicative scatter by an odd constant modulo n is not a
        // permutation in general, but collisions must be rare enough to keep
        // the popularity mass spread out.
        assert!(seen.len() as f64 > 0.6 * n as f64);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn rejects_zero_footprint() {
        let _ = CodeWalker::new(0, CodeProfile::new(0, 0.8, 0.0));
    }
}
