//! Simulated virtual address-space layout.
//!
//! Every workload instance lives in one shared address space (matching the
//! paper's setup where one server application owns the machine under test).
//! Regions are placed far apart so that code, per-thread stacks, application
//! heap, application shared structures, kernel code, kernel data and kernel
//! network buffers never alias in the caches.

/// Cache-line size in bytes, fixed across the suite (Table 1 hardware).
pub const LINE_BYTES: u64 = 64;

/// Page size used by the TLB models.
pub const PAGE_BYTES: u64 = 4096;

/// Base of the application code region.
pub const APP_CODE_BASE: u64 = 0x0000_0000_0040_0000;

/// Base of the application heap (the workload dataset).
pub const APP_HEAP_BASE: u64 = 0x0000_1000_0000_0000;

/// Base of application-level shared structures (global counters, GC
/// metadata): the source of the small application-level read-write sharing
/// the paper observes in Figure 6.
pub const APP_SHARED_BASE: u64 = 0x0000_2000_0000_0000;

/// Base of the per-thread stack/TLS region.
pub const STACK_REGION_BASE: u64 = 0x0000_7F00_0000_0000;

/// Bytes reserved per thread inside the stack region.
pub const STACK_STRIDE: u64 = 16 << 20;

/// Base of kernel code.
pub const KERNEL_CODE_BASE: u64 = 0xFFFF_8000_0000_0000;

/// Base of kernel private data.
pub const KERNEL_DATA_BASE: u64 = 0xFFFF_9000_0000_0000;

/// Base of the kernel network buffer pool, shared between cores. The paper
/// finds OS-level read-write sharing "dominated by the network subsystem"
/// (§4.4); this region models those buffers.
pub const NET_BUF_BASE: u64 = 0xFFFF_A000_0000_0000;

/// Returns the stack base address for a hardware thread.
pub fn stack_base(thread: usize) -> u64 {
    STACK_REGION_BASE + thread as u64 * STACK_STRIDE
}

/// Returns the cache-line index of a byte address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}

/// Returns the page number of a byte address.
#[inline]
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_BYTES
}

/// Returns `true` if the address lies in a kernel region.
#[inline]
pub fn is_kernel_addr(addr: u64) -> bool {
    addr >= KERNEL_CODE_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut bases =
            [APP_CODE_BASE, APP_HEAP_BASE, APP_SHARED_BASE, STACK_REGION_BASE, KERNEL_CODE_BASE, KERNEL_DATA_BASE, NET_BUF_BASE];
        bases.sort_unstable();
        for w in bases.windows(2) {
            // At least 64 GiB apart: far larger than any modeled footprint.
            assert!(w[1] - w[0] >= (64 << 30), "regions too close: {:x} {:x}", w[0], w[1]);
        }
    }

    #[test]
    fn stacks_are_disjoint() {
        assert_eq!(stack_base(0), STACK_REGION_BASE);
        assert!(stack_base(1) - stack_base(0) >= STACK_STRIDE);
        assert!(stack_base(11) > stack_base(10));
    }

    #[test]
    fn kernel_addresses_classify() {
        assert!(is_kernel_addr(KERNEL_CODE_BASE));
        assert!(is_kernel_addr(NET_BUF_BASE + 128));
        assert!(!is_kernel_addr(APP_HEAP_BASE));
        assert!(!is_kernel_addr(stack_base(3)));
    }

    #[test]
    fn line_and_page_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(LINE_BYTES), 1);
        assert_eq!(page_of(PAGE_BYTES * 3 + 17), 3);
    }
}
