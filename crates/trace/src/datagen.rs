//! Data-access pattern generators.
//!
//! The data side of a workload is modeled as a weighted mixture of access
//! patterns, each capturing one behaviour the paper attributes to scale-out
//! workloads (§2.2, §4.3):
//!
//! - [`PatternSpec::Zipf`] — popularity-skewed object accesses over a dataset
//!   that is orders of magnitude larger than the on-chip caches (YCSB-style
//!   request streams, index lookups);
//! - [`PatternSpec::Stream`] — sequential scans (media packetization,
//!   map-reduce input scans);
//! - [`PatternSpec::Chase`] — dependent pointer chasing over a region
//!   (index traversal, linked structures). The number of concurrent chains is
//!   the workload's memory-level-parallelism knob: each chain's next load
//!   depends on its previous one;
//! - [`PatternSpec::Hot`] — a small per-thread hot region (stack, TLS,
//!   per-request scratch) that lives in the L1;
//! - [`PatternSpec::SharedRw`] — a small pool of slots shared by all cores
//!   with occasional writes; this is what produces the read-write sharing of
//!   Figure 6 (application-level: global counters, GC structures;
//!   OS-level: network buffer pools).

use crate::rng::splitmix64;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single generated data access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataAccess {
    /// Virtual byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// When `true`, this access's address depends on the value returned by
    /// this pattern's previous load *on the same chain* (pointer chase): the
    /// trace layer must emit a register dependency on that load.
    pub chained: bool,
    /// Chain index for chained accesses; 0 for unchained patterns. Distinct
    /// chains are independent, which is what exposes memory-level
    /// parallelism.
    pub chain_id: u32,
    /// When `Some(p)`, the pattern requests that this access be a store with
    /// probability `p`, overriding the workload's global store fraction
    /// (used by [`PatternSpec::SharedRw`] to control sharing intensity).
    pub write_bias: Option<f64>,
}

/// Declarative description of one access pattern in a workload mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternSpec {
    /// Zipf-popular object accesses over a large dataset.
    Zipf {
        /// Total dataset bytes (may far exceed cache capacity).
        dataset_bytes: u64,
        /// Zipf exponent of object popularity.
        s: f64,
        /// Bytes per object.
        object_bytes: u64,
        /// Consecutive accesses issued within an object before picking the
        /// next one (spatial locality within a row/record).
        burst: u32,
        /// Probability that an access to this dataset is a store (in-place
        /// updates are rare in most server datasets; the bulk of stores go
        /// to private scratch memory).
        write_frac: f64,
    },
    /// Sequential streaming through a region with a fixed stride.
    Stream {
        /// Region size in bytes.
        region_bytes: u64,
        /// Byte stride between accesses.
        stride: u64,
        /// Probability that a stream access is a store (output streams).
        write_frac: f64,
    },
    /// Dependent pointer chasing over `region_bytes` of nodes.
    Chase {
        /// Region size in bytes.
        region_bytes: u64,
        /// Bytes per node.
        node_bytes: u64,
        /// Number of independent chains walked round-robin. One chain
        /// serializes all its loads; more chains expose more MLP.
        chains: u32,
        /// Probability that a chase access is a store (node updates).
        write_frac: f64,
    },
    /// Small per-thread hot region (uniform random within it).
    Hot {
        /// Region size in bytes.
        bytes: u64,
    },
    /// Shared read-write slot pool across all cores.
    SharedRw {
        /// Number of slots in the pool.
        slots: u64,
        /// Bytes per slot.
        slot_bytes: u64,
        /// Probability that a pool access is a write.
        write_frac: f64,
    },
}

impl PatternSpec {
    /// Bytes of address space this pattern needs.
    pub fn region_bytes(&self) -> u64 {
        match *self {
            PatternSpec::Zipf { dataset_bytes, .. } => dataset_bytes,
            PatternSpec::Stream { region_bytes, .. } => region_bytes,
            PatternSpec::Chase { region_bytes, .. } => region_bytes,
            PatternSpec::Hot { bytes } => bytes,
            PatternSpec::SharedRw { slots, slot_bytes, .. } => slots * slot_bytes,
        }
    }

    /// Instantiates the pattern at `base` for hardware thread `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero-sized regions, objects, nodes
    /// or slots, or a `Chase` with zero chains).
    pub fn build(&self, base: u64, thread: usize) -> Pattern {
        match *self {
            PatternSpec::Zipf { dataset_bytes, s, object_bytes, burst, write_frac } => {
                assert!(object_bytes > 0 && dataset_bytes >= object_bytes, "degenerate zipf spec");
                let n_objects = dataset_bytes / object_bytes;
                Pattern::Zipf(ZipfPattern {
                    base,
                    object_bytes,
                    n_objects,
                    zipf: Zipf::new(n_objects, s),
                    burst: burst.max(1),
                    cur_object: 0,
                    burst_left: 0,
                    write_frac,
                })
            }
            PatternSpec::Stream { region_bytes, stride, write_frac } => {
                assert!(stride > 0 && region_bytes >= stride, "degenerate stream spec");
                let start = splitmix64(thread as u64 ^ 0x5EED_5A17) % region_bytes;
                Pattern::Stream(StreamPattern {
                    base,
                    region_bytes,
                    stride,
                    offset: start / stride * stride,
                    write_frac,
                })
            }
            PatternSpec::Chase { region_bytes, node_bytes, chains, write_frac } => {
                assert!(node_bytes > 0 && region_bytes >= node_bytes, "degenerate chase spec");
                assert!(chains > 0, "chase needs at least one chain");
                let n_nodes = region_bytes / node_bytes;
                let salts =
                    (0..chains as u64).map(|c| splitmix64(c ^ ((thread as u64) << 32))).collect();
                Pattern::Chase(ChasePattern {
                    base,
                    node_bytes,
                    n_nodes,
                    counters: vec![0; chains as usize],
                    salts,
                    next_chain: 0,
                    write_frac,
                })
            }
            PatternSpec::Hot { bytes } => {
                assert!(bytes >= 8, "hot region too small");
                Pattern::Hot(HotPattern { base, bytes })
            }
            PatternSpec::SharedRw { slots, slot_bytes, write_frac } => {
                assert!(slots > 0 && slot_bytes > 0, "degenerate shared pool");
                Pattern::SharedRw(SharedRwPattern { base, slots, slot_bytes, write_frac })
            }
        }
    }
}

/// Instantiated, stateful access-pattern generator.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// See [`PatternSpec::Zipf`].
    Zipf(ZipfPattern),
    /// See [`PatternSpec::Stream`].
    Stream(StreamPattern),
    /// See [`PatternSpec::Chase`].
    Chase(ChasePattern),
    /// See [`PatternSpec::Hot`].
    Hot(HotPattern),
    /// See [`PatternSpec::SharedRw`].
    SharedRw(SharedRwPattern),
}

impl Pattern {
    /// Generates the next access of this pattern.
    pub fn next(&mut self, rng: &mut SmallRng) -> DataAccess {
        match self {
            Pattern::Zipf(p) => p.next(rng),
            Pattern::Stream(p) => p.next(),
            Pattern::Chase(p) => p.next(),
            Pattern::Hot(p) => p.next(rng),
            Pattern::SharedRw(p) => p.next(rng),
        }
    }
}

/// Zipf-popular object accesses. See [`PatternSpec::Zipf`].
#[derive(Debug, Clone)]
pub struct ZipfPattern {
    base: u64,
    object_bytes: u64,
    n_objects: u64,
    zipf: Zipf,
    burst: u32,
    cur_object: u64,
    burst_left: u32,
    write_frac: f64,
}

impl ZipfPattern {
    fn next(&mut self, rng: &mut SmallRng) -> DataAccess {
        if self.burst_left == 0 {
            // Scatter the rank so hot objects are not physically adjacent.
            let rank = self.zipf.sample(rng) - 1;
            self.cur_object = splitmix64(rank) % self.n_objects;
            self.burst_left = self.burst;
        }
        let pos_in_burst = (self.burst - self.burst_left) as u64;
        self.burst_left -= 1;
        // Walk the object 8 bytes at a time, wrapping inside the object.
        let offset = (pos_in_burst * 8) % self.object_bytes;
        DataAccess {
            addr: self.base + self.cur_object * self.object_bytes + offset,
            size: 8,
            chained: false,
            chain_id: 0,
            write_bias: Some(self.write_frac),
        }
    }
}

/// Sequential streaming. See [`PatternSpec::Stream`].
#[derive(Debug, Clone)]
pub struct StreamPattern {
    base: u64,
    region_bytes: u64,
    stride: u64,
    offset: u64,
    write_frac: f64,
}

impl StreamPattern {
    fn next(&mut self) -> DataAccess {
        let addr = self.base + self.offset;
        self.offset = (self.offset + self.stride) % self.region_bytes;
        DataAccess { addr, size: 8, chained: false, chain_id: 0, write_bias: Some(self.write_frac) }
    }
}

/// Dependent pointer chasing. See [`PatternSpec::Chase`].
#[derive(Debug, Clone)]
pub struct ChasePattern {
    base: u64,
    node_bytes: u64,
    n_nodes: u64,
    /// Per-chain walk positions. The node visited at step `i` of a chain
    /// is `hash(i ^ salt) % n_nodes`: a non-repeating pseudo-random walk.
    /// (Iterating a fixed hash of the *node* instead would collapse into a
    /// ~sqrt(n)-length attractor cycle that fits in the L1.)
    counters: Vec<u64>,
    salts: Vec<u64>,
    next_chain: usize,
    write_frac: f64,
}

impl ChasePattern {
    fn next(&mut self) -> DataAccess {
        let chain = self.next_chain;
        self.next_chain = (self.next_chain + 1) % self.counters.len();
        let i = self.counters[chain];
        self.counters[chain] += 1;
        let node = splitmix64(i ^ self.salts[chain]) % self.n_nodes;
        DataAccess {
            addr: self.base + node * self.node_bytes,
            size: 8,
            chained: true,
            chain_id: chain as u32,
            write_bias: Some(self.write_frac),
        }
    }

    /// Number of independent chains (the MLP knob).
    pub fn chains(&self) -> usize {
        self.counters.len()
    }
}

/// Small per-thread hot region. See [`PatternSpec::Hot`].
#[derive(Debug, Clone)]
pub struct HotPattern {
    base: u64,
    bytes: u64,
}

impl HotPattern {
    fn next(&mut self, rng: &mut SmallRng) -> DataAccess {
        let slot = rng.gen_range(0..self.bytes / 8);
        DataAccess { addr: self.base + slot * 8, size: 8, chained: false, chain_id: 0, write_bias: None }
    }
}

/// Shared read-write slot pool. See [`PatternSpec::SharedRw`].
#[derive(Debug, Clone)]
pub struct SharedRwPattern {
    base: u64,
    slots: u64,
    slot_bytes: u64,
    write_frac: f64,
}

impl SharedRwPattern {
    fn next(&mut self, rng: &mut SmallRng) -> DataAccess {
        let slot = rng.gen_range(0..self.slots);
        let offset = rng.gen_range(0..self.slot_bytes / 8) * 8;
        DataAccess {
            addr: self.base + slot * self.slot_bytes + offset,
            size: 8,
            chained: false,
            chain_id: 0,
            write_bias: Some(self.write_frac),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use std::collections::HashSet;

    #[test]
    fn zipf_pattern_stays_in_region_and_bursts() {
        let spec =
            PatternSpec::Zipf { dataset_bytes: 1 << 24, s: 0.99, object_bytes: 256, burst: 4, write_frac: 0.0 };
        let mut p = spec.build(0x1000_0000, 0);
        let mut rng = stream_rng(1, 0);
        let mut last_obj = None;
        let mut same_obj_runs = 0;
        for i in 0..4000 {
            let a = p.next(&mut rng);
            assert!(a.addr >= 0x1000_0000 && a.addr < 0x1000_0000 + (1 << 24));
            let obj = (a.addr - 0x1000_0000) / 256;
            if i % 4 != 0
                && last_obj == Some(obj) {
                    same_obj_runs += 1;
                }
            last_obj = Some(obj);
        }
        // Within a burst of 4, accesses stay in the object.
        assert!(same_obj_runs > 2500, "bursts not coherent: {same_obj_runs}");
    }

    #[test]
    fn stream_pattern_is_sequential_and_wraps() {
        let spec = PatternSpec::Stream { region_bytes: 4096, stride: 64, write_frac: 0.0 };
        let mut p = spec.build(0, 0);
        let mut rng = stream_rng(2, 0);
        let first = p.next(&mut rng).addr;
        let second = p.next(&mut rng).addr;
        assert_eq!(second, (first + 64) % 4096);
        let mut seen = HashSet::new();
        for _ in 0..64 {
            seen.insert(p.next(&mut rng).addr);
        }
        assert_eq!(seen.len(), 64, "one full lap visits every slot");
    }

    #[test]
    fn chase_pattern_marks_chained_and_round_robins() {
        let spec = PatternSpec::Chase { region_bytes: 1 << 20, node_bytes: 64, chains: 3, write_frac: 0.0 };
        let mut p = spec.build(0, 0);
        let mut rng = stream_rng(3, 0);
        match &p {
            Pattern::Chase(c) => assert_eq!(c.chains(), 3),
            _ => unreachable!(),
        }
        for _ in 0..100 {
            assert!(p.next(&mut rng).chained);
        }
    }

    #[test]
    fn chase_walk_covers_the_region_without_short_cycles() {
        let spec =
            PatternSpec::Chase { region_bytes: 1 << 20, node_bytes: 64, chains: 1, write_frac: 0.0 };
        let mut p = spec.build(0, 0);
        let mut rng = stream_rng(8, 0);
        let mut seen = HashSet::new();
        let draws = 8000;
        for _ in 0..draws {
            seen.insert(p.next(&mut rng).addr);
        }
        // 16384 nodes; 8000 draws must visit thousands of distinct nodes
        // (a functional-graph walk would cycle within ~sqrt(n) ≈ 128).
        assert!(seen.len() > 5000, "chase revisits too much: {} distinct", seen.len());
    }

    #[test]
    fn chase_walk_is_deterministic() {
        let spec = PatternSpec::Chase { region_bytes: 1 << 16, node_bytes: 64, chains: 1, write_frac: 0.0 };
        let mut p1 = spec.build(0, 0);
        let mut p2 = spec.build(0, 0);
        let mut rng = stream_rng(4, 0);
        for _ in 0..100 {
            assert_eq!(p1.next(&mut rng).addr, p2.next(&mut rng).addr);
        }
    }

    #[test]
    fn hot_pattern_stays_small() {
        let spec = PatternSpec::Hot { bytes: 4096 };
        let mut p = spec.build(0x7000_0000, 5);
        let mut rng = stream_rng(5, 0);
        let mut lines = HashSet::new();
        for _ in 0..10_000 {
            lines.insert(p.next(&mut rng).addr / 64);
        }
        assert!(lines.len() <= 64);
    }

    #[test]
    fn shared_rw_pattern_carries_write_bias() {
        let spec = PatternSpec::SharedRw { slots: 16, slot_bytes: 64, write_frac: 0.3 };
        let mut p = spec.build(0x9000_0000, 0);
        let mut rng = stream_rng(6, 0);
        let a = p.next(&mut rng);
        assert_eq!(a.write_bias, Some(0.3));
        assert!(a.addr >= 0x9000_0000 && a.addr < 0x9000_0000 + 16 * 64);
    }

    #[test]
    fn region_bytes_reports_span() {
        assert_eq!(
            PatternSpec::SharedRw { slots: 8, slot_bytes: 64, write_frac: 0.5 }.region_bytes(),
            512
        );
        assert_eq!(PatternSpec::Hot { bytes: 4096 }.region_bytes(), 4096);
    }

    #[test]
    fn different_threads_start_streams_at_different_offsets() {
        let spec = PatternSpec::Stream { region_bytes: 1 << 20, stride: 64, write_frac: 0.0 };
        let mut a = spec.build(0, 0);
        let mut b = spec.build(0, 1);
        let mut rng = stream_rng(7, 0);
        assert_ne!(a.next(&mut rng).addr, b.next(&mut rng).addr);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn chase_rejects_zero_chains() {
        let _ = PatternSpec::Chase { region_bytes: 1024, node_bytes: 64, chains: 0, write_frac: 0.0 }.build(0, 0);
    }
}
