//! Trace capture and replay.
//!
//! Records a window of any [`TraceSource`] into a compact binary format
//! (21 bytes per micro-op) that can be written to disk and replayed later.
//! This is how the suite supports the paper's §3.1 practice of "re-using
//! input traces" for run-to-run comparability, and it makes captured
//! workload windows portable between machines and simulator versions.

use crate::op::{MemRef, MicroOp, OpKind, Privilege};
use crate::source::TraceSource;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"CSTRACE1";

/// A recorded window of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    label: String,
    ops: Vec<MicroOp>,
}

impl RecordedTrace {
    /// Records the next `n` micro-ops of `src` (fewer if it ends).
    pub fn record<S: TraceSource>(src: &mut S, n: usize) -> Self {
        let label = src.label().to_owned();
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            match src.next_op() {
                Some(op) => ops.push(op),
                None => break,
            }
        }
        Self { label, ops }
    }

    /// Builds a trace from raw ops.
    pub fn from_ops(label: impl Into<String>, ops: Vec<MicroOp>) -> Self {
        Self { label: label.into(), ops }
    }

    /// The recorded ops.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// The source's label at record time.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serializes the trace to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        let label = self.label.as_bytes();
        w.write_all(&(label.len() as u32).to_le_bytes())?;
        w.write_all(label)?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            let (kind, flag) = encode_kind(op.kind);
            w.write_all(&op.pc.to_le_bytes())?;
            w.write_all(&[kind, flag])?;
            let (addr, size) = match op.mem {
                Some(m) => (m.addr, m.size),
                None => (0, 0),
            };
            w.write_all(&addr.to_le_bytes())?;
            w.write_all(&[size, u8::from(op.privilege.is_kernel()), op.dep1, op.dep2])?;
        }
        Ok(())
    }

    /// Deserializes a trace from a reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic number or malformed records,
    /// and propagates I/O errors from `r`.
    pub fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CSTRACE1 file"));
        }
        let mut len4 = [0u8; 4];
        r.read_exact(&mut len4)?;
        let label_len = u32::from_le_bytes(len4) as usize;
        if label_len > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "label too long"));
        }
        let mut label = vec![0u8; label_len];
        r.read_exact(&mut label)?;
        let label = String::from_utf8(label)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "label not UTF-8"))?;
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let count = u64::from_le_bytes(len8) as usize;
        let mut ops = Vec::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let mut rec = [0u8; 22];
            r.read_exact(&mut rec)?;
            let pc = u64::from_le_bytes(rec[0..8].try_into().expect("slice of 8"));
            let kind = decode_kind(rec[8], rec[9])?;
            let addr = u64::from_le_bytes(rec[10..18].try_into().expect("slice of 8"));
            let size = rec[18];
            let privilege = if rec[19] != 0 { Privilege::Kernel } else { Privilege::User };
            let mem = if kind.is_mem() {
                if size == 0 || size > 64 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "bad access size"));
                }
                Some(MemRef::new(addr, size))
            } else {
                None
            };
            ops.push(MicroOp { pc, kind, mem, privilege, dep1: rec[20], dep2: rec[21] });
        }
        Ok(Self { label, ops })
    }

    /// Consumes the trace into a replaying source that loops forever.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn into_loop_source(self) -> crate::source::LoopSource {
        crate::source::LoopSource::new(self.ops)
    }

    /// Consumes the trace into a replaying source that plays once.
    pub fn into_source(self) -> crate::source::VecSource {
        crate::source::VecSource::with_label(self.ops, self.label)
    }
}

fn encode_kind(kind: OpKind) -> (u8, u8) {
    match kind {
        OpKind::IntAlu => (0, 0),
        OpKind::IntMul => (1, 0),
        OpKind::IntDiv => (2, 0),
        OpKind::Fp => (3, 0),
        OpKind::Load => (4, 0),
        OpKind::Store => (5, 0),
        OpKind::Branch { mispredict } => (6, u8::from(mispredict)),
    }
}

fn decode_kind(kind: u8, flag: u8) -> io::Result<OpKind> {
    Ok(match kind {
        0 => OpKind::IntAlu,
        1 => OpKind::IntMul,
        2 => OpKind::IntDiv,
        3 => OpKind::Fp,
        4 => OpKind::Load,
        5 => OpKind::Store,
        6 => OpKind::Branch { mispredict: flag != 0 },
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "unknown op kind")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    #[test]
    fn roundtrip_preserves_every_op() {
        let mut src = WorkloadProfile::data_serving().build_source(0, 99);
        let trace = RecordedTrace::record(&mut src, 5_000);
        assert_eq!(trace.len(), 5_000);
        let mut buf = Vec::new();
        trace.save(&mut buf).expect("in-memory write");
        let back = RecordedTrace::load(&mut buf.as_slice()).expect("parse");
        assert_eq!(back, trace);
        assert_eq!(back.label(), "Data Serving");
    }

    #[test]
    fn replay_matches_the_live_source() {
        let mut live = WorkloadProfile::mcf().build_source(1, 7);
        let trace = RecordedTrace::record(&mut live, 1_000);
        let mut fresh = WorkloadProfile::mcf().build_source(1, 7);
        let mut replay = trace.into_source();
        for _ in 0..1_000 {
            assert_eq!(replay.next_op(), fresh.next_op());
        }
        assert!(replay.next_op().is_none(), "replay window ends");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = RecordedTrace::load(&mut &b"NOTATRACE......"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let mut src = WorkloadProfile::mcf().build_source(0, 1);
        let trace = RecordedTrace::record(&mut src, 100);
        let mut buf = Vec::new();
        trace.save(&mut buf).expect("write");
        buf.truncate(buf.len() - 7);
        assert!(RecordedTrace::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn loop_replay_wraps() {
        let trace = RecordedTrace::from_ops(
            "t",
            vec![MicroOp::alu(0x40_0000), MicroOp::load(0x40_0004, 0x1000, 8)],
        );
        let mut src = trace.into_loop_source();
        let a = src.next_op().unwrap();
        src.next_op().unwrap();
        assert_eq!(src.next_op().unwrap(), a);
    }
}
