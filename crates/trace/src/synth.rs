//! The synthetic trace source: compiles a [`WorkloadProfile`] into an
//! endless micro-op stream for one hardware thread.
//!
//! The source runs two interleaved execution modes — application and
//! operating system — matching the paper's methodology, where every counter
//! is attributed to one of the two. Kernel time arrives in bursts (syscalls,
//! softirq work) whose frequency and length are set by the profile's
//! [`crate::profile::OsProfile`].

use crate::datagen::Pattern;
use crate::ifoot::CodeWalker;
use crate::layout;
use crate::op::{MicroOp, OpKind, Privilege};
use crate::profile::{IlpModel, InstrMix, OsProfile, WorkloadProfile};
use crate::rng::{chance, geometric, stream_rng, weighted_index, GeometricTable};
use crate::source::TraceSource;
use crate::datagen::PatternSpec;
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// Generator state for one execution mode (application or kernel).
#[derive(Debug)]
struct ModeState {
    walker: CodeWalker,
    patterns: Vec<Pattern>,
    weights: Vec<f64>,
    mix: InstrMix,
    privilege: Privilege,
}

impl ModeState {
    fn build(
        code_base: u64,
        code: &crate::ifoot::CodeProfile,
        data: &[(f64, PatternSpec)],
        mix: InstrMix,
        privilege: Privilege,
        thread: usize,
        shared_data: bool,
    ) -> Self {
        let mut patterns = Vec::with_capacity(data.len());
        let mut weights = Vec::with_capacity(data.len());
        for (i, (w, spec)) in data.iter().enumerate() {
            let base = region_base(spec, privilege, i, thread, shared_data);
            patterns.push(spec.build(base, thread));
            weights.push(*w);
        }
        Self {
            walker: CodeWalker::new(code_base, code.clone()),
            patterns,
            weights,
            mix,
            privilege,
        }
    }
}

/// Assigns a pattern its address-space region.
///
/// Private patterns ([`PatternSpec::Hot`]) go to the per-thread stack area;
/// shared pools go to the dedicated shared regions (application shared
/// structures or kernel network buffers); everything else receives a
/// disjoint 1 TiB slot in the heap (application) or kernel data area — the
/// same slot for every thread when the profile shares its dataset
/// (server-style), or a per-thread sub-slot when it does not (independent
/// SPEC/PARSEC-style processes).
fn region_base(
    spec: &PatternSpec,
    privilege: Privilege,
    index: usize,
    thread: usize,
    shared_data: bool,
) -> u64 {
    const SLOT: u64 = 1 << 40;
    // 64 GiB per-thread sub-slots inside a pattern's slot.
    let private_off = if shared_data { 0 } else { thread as u64 * (64 << 30) };
    match (spec, privilege) {
        // Multiple Hot patterns per thread get disjoint 1 MiB sub-regions
        // of the thread's stack slot.
        (PatternSpec::Hot { .. }, Privilege::User) => {
            layout::stack_base(thread) + index as u64 * (1 << 20)
        }
        (PatternSpec::Hot { .. }, Privilege::Kernel) => {
            layout::KERNEL_DATA_BASE
                + (layout::stack_base(thread) - layout::STACK_REGION_BASE)
                + index as u64 * (1 << 20)
        }
        (PatternSpec::SharedRw { .. }, Privilege::User) => {
            layout::APP_SHARED_BASE + index as u64 * (1 << 30)
        }
        (PatternSpec::SharedRw { .. }, Privilege::Kernel) => {
            layout::NET_BUF_BASE + index as u64 * (1 << 30)
        }
        (_, Privilege::User) => layout::APP_HEAP_BASE + index as u64 * SLOT + private_off,
        (_, Privilege::Kernel) => layout::KERNEL_DATA_BASE + (1 + index as u64) * SLOT,
    }
}

/// A self-contained micro-op generator for one execution mode: code
/// walker, data patterns, instruction mix, dependency model and chain
/// bookkeeping. [`SyntheticSource`] runs two of these (application and
/// kernel); [`OsInterleaver`] pairs one kernel engine with an arbitrary
/// application source.
#[derive(Debug)]
pub struct ModeEngine {
    state: ModeState,
    ilp: IlpModel,
    dep_table: GeometricTable,
    last_chain_load: HashMap<u64, u64>,
    last_load_seq: Option<u64>,
}

impl ModeEngine {
    /// Builds an engine for one mode.
    #[allow(clippy::too_many_arguments)]
    fn new(
        code_base: u64,
        code: &crate::ifoot::CodeProfile,
        data: &[(f64, PatternSpec)],
        mix: InstrMix,
        privilege: Privilege,
        ilp: IlpModel,
        thread: usize,
        shared_data: bool,
        rng: &mut SmallRng,
    ) -> Self {
        Self {
            state: ModeState::build(code_base, code, data, mix, privilege, thread, shared_data),
            ilp,
            dep_table: GeometricTable::new(rng, ilp.mean_dep_distance),
            last_chain_load: HashMap::new(),
            last_load_seq: None,
        }
    }

    /// Builds a kernel-mode engine from an [`OsProfile`].
    pub fn kernel(os: &OsProfile, ilp: IlpModel, thread: usize, rng: &mut SmallRng) -> Self {
        Self::new(
            layout::KERNEL_CODE_BASE,
            &os.code,
            &os.data,
            os.mix,
            Privilege::Kernel,
            ilp,
            thread,
            true,
            rng,
        )
    }

    fn generic_deps(&self, rng: &mut SmallRng) -> (u64, u64) {
        let dep1 = if chance(rng, self.ilp.dep_prob) { self.dep_table.sample(rng) } else { 0 };
        let dep2 = if dep1 != 0 && chance(rng, self.ilp.second_dep_prob) {
            self.dep_table.sample(rng)
        } else {
            0
        };
        (dep1, dep2)
    }

    /// Generates the next op of this mode; `seq` is the global program
    /// order position of the op in the thread's stream.
    pub fn next_op(&mut self, rng: &mut SmallRng, seq: u64) -> MicroOp {
        let step = self.state.walker.step(rng);
        let privilege = self.state.privilege;

        let op = if step.is_branch {
            let mut op = MicroOp::branch(step.pc, step.mispredict).with_privilege(privilege);
            let dep1 = if chance(rng, self.ilp.dep_prob) { self.dep_table.sample(rng) } else { 0 };
            op = op.with_deps(dep1, 0);
            op
        } else {
            let mix = self.state.mix;
            let r: f64 = rand::Rng::gen(rng);
            let mut kind = if r < mix.load {
                OpKind::Load
            } else if r < mix.load + mix.store {
                OpKind::Store
            } else if r < mix.load + mix.store + mix.fp {
                OpKind::Fp
            } else if r < mix.load + mix.store + mix.fp + mix.mul {
                OpKind::IntMul
            } else if r < mix.total() {
                OpKind::IntDiv
            } else {
                OpKind::IntAlu
            };

            if kind.is_mem() {
                let idx = weighted_index(rng, &self.state.weights);
                let access = self.state.patterns[idx].next(rng);
                if let Some(p) = access.write_bias {
                    kind = if chance(rng, p) { OpKind::Store } else { OpKind::Load };
                }
                let mut op = match kind {
                    OpKind::Store => MicroOp::store(step.pc, access.addr, access.size),
                    _ => MicroOp::load(step.pc, access.addr, access.size),
                };
                op = op.with_privilege(privilege);
                if access.chained {
                    let key = (idx as u64) << 32 | access.chain_id as u64;
                    let dep = match self.last_chain_load.get(&key) {
                        Some(&last) => seq - last,
                        None => 0,
                    };
                    if op.is_load() {
                        self.last_chain_load.insert(key, seq);
                    }
                    op = op.with_deps(dep, 0);
                } else if op.is_load()
                    && chance(rng, self.ilp.load_chain_prob)
                    && self.last_load_seq.is_some()
                {
                    // Request-processing serialization: this load's address
                    // came out of the previous load (hash bucket -> entry ->
                    // field), the paper's "complex data structure
                    // dependencies" limiting MLP.
                    let dep = seq - self.last_load_seq.expect("checked");
                    op = op.with_deps(dep, 0);
                } else {
                    let (d1, d2) = self.generic_deps(rng);
                    op = op.with_deps(d1, d2);
                }
                if op.is_load() {
                    self.last_load_seq = Some(seq);
                }
                op
            } else {
                let mut op = MicroOp::of_kind(step.pc, kind).with_privilege(privilege);
                let (d1, d2) = self.generic_deps(rng);
                op = op.with_deps(d1, d2);
                op
            }
        };
        op
    }
}

/// An endless synthetic micro-op stream for one hardware thread.
///
/// Built by [`WorkloadProfile::build_source`].
#[derive(Debug)]
pub struct SyntheticSource {
    label: String,
    rng: SmallRng,
    app: ModeEngine,
    os: Option<(ModeEngine, f64 /* burst mean */, f64 /* user period mean */)>,
    /// Remaining kernel-mode ops in the current burst (0 = user mode).
    kernel_left: u64,
    /// Remaining user-mode ops until the next syscall.
    until_syscall: u64,
    /// Ops emitted so far (program-order sequence number).
    seq: u64,
}

impl SyntheticSource {
    /// Compiles `profile` into a stream for hardware thread `thread`,
    /// seeding all randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: &WorkloadProfile, thread: usize, seed: u64) -> Self {
        profile.validate();
        let mut rng = stream_rng(seed, thread as u64);
        let app = ModeEngine::new(
            layout::APP_CODE_BASE,
            &profile.code,
            &profile.data,
            profile.mix,
            Privilege::User,
            profile.ilp,
            thread,
            profile.shared_data,
            &mut rng,
        );
        let os = profile.os.as_ref().map(|os: &OsProfile| {
            let engine = ModeEngine::kernel(os, profile.ilp, thread, &mut rng);
            let user_period = if os.fraction > 0.0 {
                os.burst_mean * (1.0 - os.fraction) / os.fraction
            } else {
                f64::INFINITY
            };
            (engine, os.burst_mean, user_period)
        });
        let until_syscall = match &os {
            Some((_, _, period)) if period.is_finite() => geometric(&mut rng, period.max(1.0)),
            _ => u64::MAX,
        };
        Self { label: profile.name.clone(), rng, app, os, kernel_left: 0, until_syscall, seq: 0 }
    }

    /// Advances mode bookkeeping and returns whether the next op is
    /// kernel-mode.
    fn advance_mode(&mut self) -> bool {
        if self.os.is_none() {
            return false;
        }
        if self.kernel_left > 0 {
            self.kernel_left -= 1;
            return true;
        }
        if self.until_syscall == 0 {
            let (_, burst_mean, period) = self.os.as_ref().expect("checked above");
            let (burst_mean, period) = (*burst_mean, *period);
            let burst = geometric(&mut self.rng, burst_mean.max(1.0));
            self.kernel_left = burst.saturating_sub(1);
            self.until_syscall = geometric(&mut self.rng, period.max(1.0));
            return true;
        }
        self.until_syscall -= 1;
        false
    }
}

impl TraceSource for SyntheticSource {
    fn next_op(&mut self) -> Option<MicroOp> {
        let kernel = self.advance_mode();
        let engine =
            if kernel { &mut self.os.as_mut().expect("kernel mode requires os").0 } else { &mut self.app };
        let op = engine.next_op(&mut self.rng, self.seq);
        self.seq += 1;
        Some(op)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Interleaves kernel-mode bursts into an arbitrary application-level
/// source — the OS overlay used by the mini applications in
/// `cs-workloads`, mirroring how the paper's workloads spend part of their
/// time in the operating system.
#[derive(Debug)]
pub struct OsInterleaver<S> {
    inner: S,
    rng: SmallRng,
    kernel: ModeEngine,
    burst_mean: f64,
    user_period: f64,
    kernel_left: u64,
    until_syscall: u64,
    seq: u64,
}

impl<S: TraceSource> OsInterleaver<S> {
    /// Wraps `inner` with kernel bursts described by `os`; `ilp` shapes the
    /// kernel ops' dependencies.
    pub fn new(inner: S, os: &OsProfile, ilp: IlpModel, thread: usize, seed: u64) -> Self {
        let mut rng = stream_rng(seed ^ 0xC0FE, thread as u64);
        let kernel = ModeEngine::kernel(os, ilp, thread, &mut rng);
        let user_period = if os.fraction > 0.0 {
            os.burst_mean * (1.0 - os.fraction) / os.fraction
        } else {
            f64::INFINITY
        };
        let until_syscall =
            if user_period.is_finite() { geometric(&mut rng, user_period.max(1.0)) } else { u64::MAX };
        Self {
            inner,
            rng,
            kernel,
            burst_mean: os.burst_mean,
            user_period,
            kernel_left: 0,
            until_syscall,
            seq: 0,
        }
    }

    /// The wrapped application source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSource> TraceSource for OsInterleaver<S> {
    fn next_op(&mut self) -> Option<MicroOp> {
        let kernel = if self.kernel_left > 0 {
            self.kernel_left -= 1;
            true
        } else if self.until_syscall == 0 && self.user_period.is_finite() {
            let burst = geometric(&mut self.rng, self.burst_mean.max(1.0));
            self.kernel_left = burst.saturating_sub(1);
            self.until_syscall = geometric(&mut self.rng, self.user_period.max(1.0));
            true
        } else {
            self.until_syscall = self.until_syscall.saturating_sub(1);
            false
        };
        let op = if kernel {
            Some(self.kernel.next_op(&mut self.rng, self.seq))
        } else {
            self.inner.next_op()
        };
        if op.is_some() {
            self.seq += 1;
        }
        op
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn pull(profile: &WorkloadProfile, n: usize) -> Vec<MicroOp> {
        let mut src = profile.build_source(0, 1234);
        (0..n).map(|_| src.next_op().expect("endless")).collect()
    }

    #[test]
    fn stream_is_endless_and_deterministic() {
        let p = WorkloadProfile::data_serving();
        let a = pull(&p, 5000);
        let b = pull(&p, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_threads_differ() {
        let p = WorkloadProfile::web_search();
        let mut s0 = p.build_source(0, 7);
        let mut s1 = p.build_source(1, 7);
        let a: Vec<_> = (0..200).map(|_| s0.next_op().unwrap()).collect();
        let b: Vec<_> = (0..200).map(|_| s1.next_op().unwrap()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn os_fraction_is_respected() {
        let p = WorkloadProfile::media_streaming();
        let target = p.os.as_ref().unwrap().fraction;
        let ops = pull(&p, 400_000);
        let kernel = ops.iter().filter(|o| o.is_kernel()).count() as f64 / ops.len() as f64;
        assert!(
            (kernel - target).abs() < 0.05,
            "kernel fraction {kernel:.3} vs target {target:.3}"
        );
    }

    #[test]
    fn no_os_profile_means_no_kernel_ops() {
        let ops = pull(&WorkloadProfile::specint_cpu(), 100_000);
        assert!(ops.iter().all(|o| !o.is_kernel()));
    }

    #[test]
    fn load_store_fractions_track_mix() {
        let p = WorkloadProfile::specint_cpu();
        let ops = pull(&p, 300_000);
        let loads = ops.iter().filter(|o| o.is_load()).count() as f64 / ops.len() as f64;
        // Branch slots dilute the mix slightly; allow a generous band.
        assert!((0.15..0.32).contains(&loads), "load fraction {loads}");
    }

    #[test]
    fn kernel_ops_fetch_kernel_code_and_touch_kernel_data() {
        let ops = pull(&WorkloadProfile::tpcc(), 300_000);
        for op in ops.iter().filter(|o| o.is_kernel()) {
            assert!(layout::is_kernel_addr(op.pc), "kernel op with user pc {:x}", op.pc);
            if let Some(m) = op.mem {
                assert!(layout::is_kernel_addr(m.addr), "kernel op with user data {:x}", m.addr);
            }
        }
        for op in ops.iter().filter(|o| !o.is_kernel()) {
            assert!(!layout::is_kernel_addr(op.pc), "user op with kernel pc {:x}", op.pc);
        }
    }

    #[test]
    fn chained_loads_carry_dependencies() {
        // The polluter is a pure chase workload: after warmup, most loads
        // must carry a chained dependency.
        let ops = pull(&WorkloadProfile::polluter(1 << 20), 50_000);
        let loads: Vec<_> = ops.iter().filter(|o| o.is_load()).collect();
        let with_dep = loads.iter().filter(|o| o.dep1 != 0).count();
        assert!(
            with_dep as f64 / loads.len() as f64 > 0.9,
            "only {with_dep}/{} chase loads have deps",
            loads.len()
        );
    }

    #[test]
    fn mem_ops_always_carry_refs() {
        let ops = pull(&WorkloadProfile::web_frontend(), 100_000);
        for op in &ops {
            assert_eq!(op.is_mem(), op.mem.is_some());
        }
    }
}
