//! The synthetic trace source: compiles a [`WorkloadProfile`] into an
//! endless micro-op stream for one hardware thread.
//!
//! The source runs two interleaved execution modes — application and
//! operating system — matching the paper's methodology, where every counter
//! is attributed to one of the two. Kernel time arrives in bursts (syscalls,
//! softirq work) whose frequency and length are set by the profile's
//! [`crate::profile::OsProfile`].

use crate::datagen::Pattern;
use crate::ifoot::CodeWalker;
use crate::layout;
use crate::op::{MicroOp, OpKind, Privilege};
use crate::profile::{IlpModel, InstrMix, OsProfile, WorkloadProfile};
use crate::rng::{chance, geometric, stream_rng, weighted_index, GeometricTable};
use crate::source::TraceSource;
use crate::datagen::PatternSpec;
use rand::rngs::SmallRng;

/// Generator state for one execution mode (application or kernel).
#[derive(Debug)]
struct ModeState {
    walker: CodeWalker,
    patterns: Vec<Pattern>,
    weights: Vec<f64>,
    mix: InstrMix,
    privilege: Privilege,
}

impl ModeState {
    fn build(
        code_base: u64,
        code: &crate::ifoot::CodeProfile,
        data: &[(f64, PatternSpec)],
        mix: InstrMix,
        privilege: Privilege,
        thread: usize,
        shared_data: bool,
    ) -> Self {
        let mut patterns = Vec::with_capacity(data.len());
        let mut weights = Vec::with_capacity(data.len());
        for (i, (w, spec)) in data.iter().enumerate() {
            let base = region_base(spec, privilege, i, thread, shared_data);
            patterns.push(spec.build(base, thread));
            weights.push(*w);
        }
        Self {
            walker: CodeWalker::new(code_base, code.clone()),
            patterns,
            weights,
            mix,
            privilege,
        }
    }
}

/// Assigns a pattern its address-space region.
///
/// Private patterns ([`PatternSpec::Hot`]) go to the per-thread stack area;
/// shared pools go to the dedicated shared regions (application shared
/// structures or kernel network buffers); everything else receives a
/// disjoint 1 TiB slot in the heap (application) or kernel data area — the
/// same slot for every thread when the profile shares its dataset
/// (server-style), or a per-thread sub-slot when it does not (independent
/// SPEC/PARSEC-style processes).
fn region_base(
    spec: &PatternSpec,
    privilege: Privilege,
    index: usize,
    thread: usize,
    shared_data: bool,
) -> u64 {
    const SLOT: u64 = 1 << 40;
    // 64 GiB per-thread sub-slots inside a pattern's slot.
    let private_off = if shared_data { 0 } else { thread as u64 * (64 << 30) };
    match (spec, privilege) {
        // Multiple Hot patterns per thread get disjoint 1 MiB sub-regions
        // of the thread's stack slot.
        (PatternSpec::Hot { .. }, Privilege::User) => {
            layout::stack_base(thread) + index as u64 * (1 << 20)
        }
        (PatternSpec::Hot { .. }, Privilege::Kernel) => {
            layout::KERNEL_DATA_BASE
                + (layout::stack_base(thread) - layout::STACK_REGION_BASE)
                + index as u64 * (1 << 20)
        }
        (PatternSpec::SharedRw { .. }, Privilege::User) => {
            layout::APP_SHARED_BASE + index as u64 * (1 << 30)
        }
        (PatternSpec::SharedRw { .. }, Privilege::Kernel) => {
            layout::NET_BUF_BASE + index as u64 * (1 << 30)
        }
        (_, Privilege::User) => layout::APP_HEAP_BASE + index as u64 * SLOT + private_off,
        (_, Privilege::Kernel) => layout::KERNEL_DATA_BASE + (1 + index as u64) * SLOT,
    }
}

/// Sentinel marking an empty [`ChainTable`] slot. Real keys are
/// `(pattern index << 32) | chain id` with both halves tiny, so the
/// all-ones key can never occur.
const CHAIN_EMPTY: u64 = u64::MAX;

/// Fixed-size open-addressed map from chain key to the sequence number
/// of that chain's last load.
///
/// This sits on the hottest line of the generator — every chained memory
/// op does one lookup and one store — and replaces a `HashMap<u64, u64>`
/// whose SipHash plus control-byte probing dominated the profile. The
/// key universe is known exactly at build time (one key per
/// (pattern, chain) pair), so the table is sized once to stay at most
/// half full: it never grows, never evicts, and linear probes terminate
/// quickly.
#[derive(Debug)]
struct ChainTable {
    keys: Box<[u64]>,
    vals: Box<[u64]>,
    mask: usize,
}

impl ChainTable {
    /// A table for at most `chain_keys` distinct keys: capacity is the
    /// next power of two past twice the key count (load factor ≤ 0.5),
    /// at least 4 so chain-free engines still get a valid (if unused)
    /// table.
    fn with_chains(chain_keys: usize) -> Self {
        let cap = (chain_keys * 2).next_power_of_two().max(4);
        Self {
            keys: vec![CHAIN_EMPTY; cap].into_boxed_slice(),
            vals: vec![0; cap].into_boxed_slice(),
            mask: cap - 1,
        }
    }

    /// Home slot: a Fibonacci multiply scrambles the low-entropy
    /// (index, chain) keys before masking.
    #[inline]
    fn slot(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, CHAIN_EMPTY);
        let mut i = self.slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == CHAIN_EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, val: u64) {
        debug_assert_ne!(key, CHAIN_EMPTY);
        let mut i = self.slot(key);
        loop {
            let k = self.keys[i];
            if k == key || k == CHAIN_EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// A self-contained micro-op generator for one execution mode: code
/// walker, data patterns, instruction mix, dependency model and chain
/// bookkeeping. [`SyntheticSource`] runs two of these (application and
/// kernel); [`OsInterleaver`] pairs one kernel engine with an arbitrary
/// application source.
#[derive(Debug)]
pub struct ModeEngine {
    state: ModeState,
    ilp: IlpModel,
    dep_table: GeometricTable,
    last_chain_load: ChainTable,
    last_load_seq: Option<u64>,
}

impl ModeEngine {
    /// Builds an engine for one mode.
    #[allow(clippy::too_many_arguments)]
    fn new(
        code_base: u64,
        code: &crate::ifoot::CodeProfile,
        data: &[(f64, PatternSpec)],
        mix: InstrMix,
        privilege: Privilege,
        ilp: IlpModel,
        thread: usize,
        shared_data: bool,
        rng: &mut SmallRng,
    ) -> Self {
        let state = ModeState::build(code_base, code, data, mix, privilege, thread, shared_data);
        let chain_keys: usize = state
            .patterns
            .iter()
            .map(|p| match p {
                Pattern::Chase(c) => c.chains(),
                _ => 0,
            })
            .sum();
        Self {
            state,
            ilp,
            dep_table: GeometricTable::new(rng, ilp.mean_dep_distance),
            last_chain_load: ChainTable::with_chains(chain_keys),
            last_load_seq: None,
        }
    }

    /// Builds a kernel-mode engine from an [`OsProfile`].
    pub fn kernel(os: &OsProfile, ilp: IlpModel, thread: usize, rng: &mut SmallRng) -> Self {
        Self::new(
            layout::KERNEL_CODE_BASE,
            &os.code,
            &os.data,
            os.mix,
            Privilege::Kernel,
            ilp,
            thread,
            true,
            rng,
        )
    }

    fn generic_deps(&self, rng: &mut SmallRng) -> (u64, u64) {
        let dep1 = if chance(rng, self.ilp.dep_prob) { self.dep_table.sample(rng) } else { 0 };
        let dep2 = if dep1 != 0 && chance(rng, self.ilp.second_dep_prob) {
            self.dep_table.sample(rng)
        } else {
            0
        };
        (dep1, dep2)
    }

    /// Generates the next op of this mode; `seq` is the global program
    /// order position of the op in the thread's stream.
    pub fn next_op(&mut self, rng: &mut SmallRng, seq: u64) -> MicroOp {
        let step = self.state.walker.step(rng);
        let privilege = self.state.privilege;

        if step.is_branch {
            let dep1 = if chance(rng, self.ilp.dep_prob) { self.dep_table.sample(rng) } else { 0 };
            MicroOp::branch(step.pc, step.mispredict).with_privilege(privilege).with_deps(dep1, 0)
        } else {
            let mix = self.state.mix;
            let r: f64 = rand::Rng::gen(rng);
            let mut kind = if r < mix.load {
                OpKind::Load
            } else if r < mix.load + mix.store {
                OpKind::Store
            } else if r < mix.load + mix.store + mix.fp {
                OpKind::Fp
            } else if r < mix.load + mix.store + mix.fp + mix.mul {
                OpKind::IntMul
            } else if r < mix.total() {
                OpKind::IntDiv
            } else {
                OpKind::IntAlu
            };

            if kind.is_mem() {
                let idx = weighted_index(rng, &self.state.weights);
                let access = self.state.patterns[idx].next(rng);
                if let Some(p) = access.write_bias {
                    kind = if chance(rng, p) { OpKind::Store } else { OpKind::Load };
                }
                let mut op = match kind {
                    OpKind::Store => MicroOp::store(step.pc, access.addr, access.size),
                    _ => MicroOp::load(step.pc, access.addr, access.size),
                };
                op = op.with_privilege(privilege);
                if access.chained {
                    let key = (idx as u64) << 32 | access.chain_id as u64;
                    let dep = match self.last_chain_load.get(key) {
                        Some(last) => seq - last,
                        None => 0,
                    };
                    if op.is_load() {
                        self.last_chain_load.insert(key, seq);
                    }
                    op = op.with_deps(dep, 0);
                } else if op.is_load()
                    && chance(rng, self.ilp.load_chain_prob)
                    && self.last_load_seq.is_some()
                {
                    // Request-processing serialization: this load's address
                    // came out of the previous load (hash bucket -> entry ->
                    // field), the paper's "complex data structure
                    // dependencies" limiting MLP.
                    let dep = seq - self.last_load_seq.expect("checked");
                    op = op.with_deps(dep, 0);
                } else {
                    let (d1, d2) = self.generic_deps(rng);
                    op = op.with_deps(d1, d2);
                }
                if op.is_load() {
                    self.last_load_seq = Some(seq);
                }
                op
            } else {
                let (d1, d2) = self.generic_deps(rng);
                MicroOp::of_kind(step.pc, kind).with_privilege(privilege).with_deps(d1, d2)
            }
        }
    }
}

/// An endless synthetic micro-op stream for one hardware thread.
///
/// Built by [`WorkloadProfile::build_source`].
#[derive(Debug)]
pub struct SyntheticSource {
    label: String,
    rng: SmallRng,
    app: ModeEngine,
    os: Option<(ModeEngine, f64 /* burst mean */, f64 /* user period mean */)>,
    /// Remaining kernel-mode ops in the current burst (0 = user mode).
    kernel_left: u64,
    /// Remaining user-mode ops until the next syscall.
    until_syscall: u64,
    /// Ops emitted so far (program-order sequence number).
    seq: u64,
}

impl SyntheticSource {
    /// Compiles `profile` into a stream for hardware thread `thread`,
    /// seeding all randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: &WorkloadProfile, thread: usize, seed: u64) -> Self {
        profile.validate();
        let mut rng = stream_rng(seed, thread as u64);
        let app = ModeEngine::new(
            layout::APP_CODE_BASE,
            &profile.code,
            &profile.data,
            profile.mix,
            Privilege::User,
            profile.ilp,
            thread,
            profile.shared_data,
            &mut rng,
        );
        let os = profile.os.as_ref().map(|os: &OsProfile| {
            let engine = ModeEngine::kernel(os, profile.ilp, thread, &mut rng);
            let user_period = if os.fraction > 0.0 {
                os.burst_mean * (1.0 - os.fraction) / os.fraction
            } else {
                f64::INFINITY
            };
            (engine, os.burst_mean, user_period)
        });
        let until_syscall = match &os {
            Some((_, _, period)) if period.is_finite() => geometric(&mut rng, period.max(1.0)),
            _ => u64::MAX,
        };
        Self { label: profile.name.clone(), rng, app, os, kernel_left: 0, until_syscall, seq: 0 }
    }

    /// Advances mode bookkeeping and returns whether the next op is
    /// kernel-mode.
    fn advance_mode(&mut self) -> bool {
        if self.os.is_none() {
            return false;
        }
        if self.kernel_left > 0 {
            self.kernel_left -= 1;
            return true;
        }
        if self.until_syscall == 0 {
            let (_, burst_mean, period) = self.os.as_ref().expect("checked above");
            let (burst_mean, period) = (*burst_mean, *period);
            let burst = geometric(&mut self.rng, burst_mean.max(1.0));
            self.kernel_left = burst.saturating_sub(1);
            self.until_syscall = geometric(&mut self.rng, period.max(1.0));
            return true;
        }
        self.until_syscall -= 1;
        false
    }
}

impl TraceSource for SyntheticSource {
    fn next_op(&mut self) -> Option<MicroOp> {
        let kernel = self.advance_mode();
        let engine =
            if kernel { &mut self.os.as_mut().expect("kernel mode requires os").0 } else { &mut self.app };
        let op = engine.next_op(&mut self.rng, self.seq);
        self.seq += 1;
        Some(op)
    }

    /// The stream is endless, so a block is always full: a tight
    /// monomorphic loop the core model pulls instead of `max` virtual
    /// `next_op` calls.
    fn next_block(&mut self, out: &mut Vec<MicroOp>, max: usize) -> usize {
        out.reserve(max);
        for _ in 0..max {
            let kernel = self.advance_mode();
            let engine = if kernel {
                &mut self.os.as_mut().expect("kernel mode requires os").0
            } else {
                &mut self.app
            };
            let op = engine.next_op(&mut self.rng, self.seq);
            self.seq += 1;
            out.push(op);
        }
        max
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Interleaves kernel-mode bursts into an arbitrary application-level
/// source — the OS overlay used by the mini applications in
/// `cs-workloads`, mirroring how the paper's workloads spend part of their
/// time in the operating system.
#[derive(Debug)]
pub struct OsInterleaver<S> {
    inner: S,
    rng: SmallRng,
    kernel: ModeEngine,
    burst_mean: f64,
    user_period: f64,
    kernel_left: u64,
    until_syscall: u64,
    seq: u64,
}

impl<S: TraceSource> OsInterleaver<S> {
    /// Wraps `inner` with kernel bursts described by `os`; `ilp` shapes the
    /// kernel ops' dependencies.
    pub fn new(inner: S, os: &OsProfile, ilp: IlpModel, thread: usize, seed: u64) -> Self {
        let mut rng = stream_rng(seed ^ 0xC0FE, thread as u64);
        let kernel = ModeEngine::kernel(os, ilp, thread, &mut rng);
        let user_period = if os.fraction > 0.0 {
            os.burst_mean * (1.0 - os.fraction) / os.fraction
        } else {
            f64::INFINITY
        };
        let until_syscall =
            if user_period.is_finite() { geometric(&mut rng, user_period.max(1.0)) } else { u64::MAX };
        Self {
            inner,
            rng,
            kernel,
            burst_mean: os.burst_mean,
            user_period,
            kernel_left: 0,
            until_syscall,
            seq: 0,
        }
    }

    /// The wrapped application source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSource> TraceSource for OsInterleaver<S> {
    fn next_op(&mut self) -> Option<MicroOp> {
        let kernel = if self.kernel_left > 0 {
            self.kernel_left -= 1;
            true
        } else if self.until_syscall == 0 && self.user_period.is_finite() {
            let burst = geometric(&mut self.rng, self.burst_mean.max(1.0));
            self.kernel_left = burst.saturating_sub(1);
            self.until_syscall = geometric(&mut self.rng, self.user_period.max(1.0));
            true
        } else {
            self.until_syscall = self.until_syscall.saturating_sub(1);
            false
        };
        let op = if kernel {
            Some(self.kernel.next_op(&mut self.rng, self.seq))
        } else {
            self.inner.next_op()
        };
        if op.is_some() {
            self.seq += 1;
        }
        op
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn pull(profile: &WorkloadProfile, n: usize) -> Vec<MicroOp> {
        let mut src = profile.build_source(0, 1234);
        (0..n).map(|_| src.next_op().expect("endless")).collect()
    }

    #[test]
    fn stream_is_endless_and_deterministic() {
        let p = WorkloadProfile::data_serving();
        let a = pull(&p, 5000);
        let b = pull(&p, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_threads_differ() {
        let p = WorkloadProfile::web_search();
        let mut s0 = p.build_source(0, 7);
        let mut s1 = p.build_source(1, 7);
        let a: Vec<_> = (0..200).map(|_| s0.next_op().unwrap()).collect();
        let b: Vec<_> = (0..200).map(|_| s1.next_op().unwrap()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn os_fraction_is_respected() {
        let p = WorkloadProfile::media_streaming();
        let target = p.os.as_ref().unwrap().fraction;
        let ops = pull(&p, 400_000);
        let kernel = ops.iter().filter(|o| o.is_kernel()).count() as f64 / ops.len() as f64;
        assert!(
            (kernel - target).abs() < 0.05,
            "kernel fraction {kernel:.3} vs target {target:.3}"
        );
    }

    #[test]
    fn no_os_profile_means_no_kernel_ops() {
        let ops = pull(&WorkloadProfile::specint_cpu(), 100_000);
        assert!(ops.iter().all(|o| !o.is_kernel()));
    }

    #[test]
    fn load_store_fractions_track_mix() {
        let p = WorkloadProfile::specint_cpu();
        let ops = pull(&p, 300_000);
        let loads = ops.iter().filter(|o| o.is_load()).count() as f64 / ops.len() as f64;
        // Branch slots dilute the mix slightly; allow a generous band.
        assert!((0.15..0.32).contains(&loads), "load fraction {loads}");
    }

    #[test]
    fn kernel_ops_fetch_kernel_code_and_touch_kernel_data() {
        let ops = pull(&WorkloadProfile::tpcc(), 300_000);
        for op in ops.iter().filter(|o| o.is_kernel()) {
            assert!(layout::is_kernel_addr(op.pc), "kernel op with user pc {:x}", op.pc);
            if let Some(m) = op.mem {
                assert!(layout::is_kernel_addr(m.addr), "kernel op with user data {:x}", m.addr);
            }
        }
        for op in ops.iter().filter(|o| !o.is_kernel()) {
            assert!(!layout::is_kernel_addr(op.pc), "user op with kernel pc {:x}", op.pc);
        }
    }

    #[test]
    fn chained_loads_carry_dependencies() {
        // The polluter is a pure chase workload: after warmup, most loads
        // must carry a chained dependency.
        let ops = pull(&WorkloadProfile::polluter(1 << 20), 50_000);
        let loads: Vec<_> = ops.iter().filter(|o| o.is_load()).collect();
        let with_dep = loads.iter().filter(|o| o.dep1 != 0).count();
        assert!(
            with_dep as f64 / loads.len() as f64 > 0.9,
            "only {with_dep}/{} chase loads have deps",
            loads.len()
        );
    }

    #[test]
    fn next_block_matches_per_op_pulls() {
        let p = WorkloadProfile::data_serving();
        let mut per_op = p.build_source(0, 77);
        let mut blocked = p.build_source(0, 77);
        let expect: Vec<_> = (0..4096).map(|_| per_op.next_op().expect("endless")).collect();
        let mut got = Vec::new();
        while got.len() < 4096 {
            // An odd block size keeps block edges crossing kernel-burst
            // boundaries.
            let want = (4096 - got.len()).min(33);
            assert_eq!(blocked.next_block(&mut got, want), want);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn chain_table_replays_like_a_hashmap() {
        use rand::Rng;
        use std::collections::HashMap;
        // The realistic key universe: a handful of patterns, each with a
        // small number of chains.
        let keys: Vec<u64> =
            (0..6u64).flat_map(|idx| (0..24u64).map(move |c| idx << 32 | c)).collect();
        let mut table = ChainTable::with_chains(keys.len());
        let mut map: HashMap<u64, u64> = HashMap::new();
        let mut rng = stream_rng(99, 0);
        for seq in 0..20_000u64 {
            let key = keys[rng.gen_range(0..keys.len())];
            assert_eq!(
                table.get(key),
                map.get(&key).copied(),
                "replay divergence at seq {seq}, key {key:#x}"
            );
            if chance(&mut rng, 0.7) {
                table.insert(key, seq);
                map.insert(key, seq);
            }
        }
        // Every key was eventually written; the full universe must agree.
        for &key in &keys {
            assert_eq!(table.get(key), map.get(&key).copied());
        }
    }

    #[test]
    fn mem_ops_always_carry_refs() {
        let ops = pull(&WorkloadProfile::web_frontend(), 100_000);
        for op in &ops {
            assert_eq!(op.is_mem(), op.mem.is_some());
        }
    }
}
