//! Property-based tests of the trace substrate invariants.

use cs_trace::profile::WorkloadProfile;
use cs_trace::rng::{geometric, stream_rng, GeometricTable};
use cs_trace::source::TraceSource;
use cs_trace::zipf::Zipf;
use cs_trace::{layout, MicroOp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf samples always land in `1..=n`, for any domain and exponent.
    #[test]
    fn zipf_stays_in_domain(n in 1u64..1_000_000, s in 0.05f64..3.0, seed in any::<u64>()) {
        let zipf = Zipf::new(n, s);
        let mut rng = stream_rng(seed, 0);
        for _ in 0..200 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Geometric samples are always at least 1.
    #[test]
    fn geometric_is_positive(mean in 1.0f64..500.0, seed in any::<u64>()) {
        let mut rng = stream_rng(seed, 0);
        for _ in 0..100 {
            prop_assert!(geometric(&mut rng, mean) >= 1);
        }
    }

    /// The presampled table draws from the same support.
    #[test]
    fn geometric_table_is_positive(mean in 1.0f64..500.0, seed in any::<u64>()) {
        let mut rng = stream_rng(seed, 0);
        let table = GeometricTable::new(&mut rng, mean);
        for _ in 0..100 {
            prop_assert!(table.sample(&mut rng) >= 1);
        }
    }

    /// Every synthetic stream, for any seed and thread, satisfies the
    /// structural invariants the core model relies on: memory ops carry
    /// references, privilege and address spaces agree, and dependencies
    /// never reference the future.
    #[test]
    fn synthetic_streams_are_well_formed(seed in any::<u64>(), thread in 0usize..8) {
        let profile = WorkloadProfile::data_serving();
        let mut src = profile.build_source(thread, seed);
        for i in 0..2_000u64 {
            let op: MicroOp = src.next_op().expect("endless");
            prop_assert_eq!(op.is_mem(), op.mem.is_some());
            prop_assert_eq!(layout::is_kernel_addr(op.pc), op.is_kernel());
            if let Some(m) = op.mem {
                prop_assert_eq!(layout::is_kernel_addr(m.addr), op.is_kernel());
            }
            // Dependencies point backwards at most `i` ops.
            prop_assert!(op.dep1 as u64 <= i.max(255));
        }
    }

    /// Identical (seed, thread) pairs give identical streams for every
    /// stock profile.
    #[test]
    fn streams_are_reproducible(seed in any::<u64>()) {
        for profile in [WorkloadProfile::web_search(), WorkloadProfile::tpcc()] {
            let mut a = profile.build_source(0, seed);
            let mut b = profile.build_source(0, seed);
            for _ in 0..500 {
                prop_assert_eq!(a.next_op(), b.next_op());
            }
        }
    }
}
