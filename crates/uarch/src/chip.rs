//! Multi-core chip assembly.
//!
//! A [`Chip`] owns a set of [`OooCore`]s and the shared
//! [`MemorySystem`], advancing everything in lock-step, one cycle at a
//! time. This is the unit the experiment harness drives: workload threads
//! (and, for the Figure 4 methodology, cache-polluter threads) are attached
//! to specific cores, mirroring the paper's practice of pinning workloads
//! to cores and disabling the rest.

use crate::config::CoreConfig;
use crate::core::OooCore;
use cs_memsys::{MemSysConfig, MemorySystem};
use cs_trace::TraceSource;

/// How a watched measurement window ended (other than by stalling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOutcome {
    /// Cycles simulated in this window.
    pub cycles: u64,
    /// Instructions the measured cores committed in this window.
    pub committed: u64,
    /// Whether the instruction target was reached (`false` means the
    /// window was truncated by `max_cycles` or by source exhaustion).
    pub reached_target: bool,
}

/// Diagnosis produced when the forward-progress watchdog fires: a measured
/// core has an attached, unfinished workload but has not committed a single
/// instruction for a full grace period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallDiagnosis {
    /// The first measured core found to be livelocked.
    pub core: usize,
    /// How long it has gone without committing, in cycles.
    pub cycles_without_commit: u64,
}

/// A chip: cores plus the shared memory system.
#[derive(Debug)]
pub struct Chip {
    cores: Vec<OooCore>,
    mem: MemorySystem,
    cycle: u64,
}

impl Chip {
    /// Builds a chip with `n_cores` identical cores.
    pub fn new(core_cfg: CoreConfig, mem_cfg: MemSysConfig, n_cores: usize) -> Self {
        Self {
            cores: (0..n_cores).map(|_| OooCore::new(core_cfg)).collect(),
            mem: MemorySystem::new(mem_cfg, n_cores),
            cycle: 0,
        }
    }

    /// Attaches a trace source to a hardware context of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or its contexts are full.
    pub fn attach(&mut self, core: usize, source: Box<dyn TraceSource>) {
        self.cores[core].attach(source);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The cores.
    pub fn cores(&self) -> &[OooCore] {
        &self.cores
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Advances every core by `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.cycle + n;
        while self.cycle < end {
            for (id, core) in self.cores.iter_mut().enumerate() {
                core.step(id, &mut self.mem, self.cycle);
            }
            self.cycle += 1;
        }
    }

    /// Runs until the cores listed in `measured` have together committed
    /// `instructions` more instructions, or `max_cycles` elapse. Returns
    /// the number of cycles simulated.
    ///
    /// This is the unwatched variant: it cannot distinguish a livelocked
    /// core from a slow one and will burn the whole `max_cycles` budget on
    /// either. Prefer [`Chip::run_until_committed_watched`].
    pub fn run_until_committed(
        &mut self,
        measured: &[usize],
        instructions: u64,
        max_cycles: u64,
    ) -> u64 {
        match self.run_until_committed_watched(measured, instructions, max_cycles, 0) {
            Ok(w) => w.cycles,
            Err(_) => unreachable!("watchdog is disabled when stall_grace is 0"),
        }
    }

    /// Runs until the cores listed in `measured` have together committed
    /// `instructions` more instructions, `max_cycles` elapse, or the
    /// forward-progress watchdog fires.
    ///
    /// The watchdog tracks each measured core's committed-instruction count
    /// at every check interval. If a core whose workload is still attached
    /// and unfinished commits nothing for `stall_grace` consecutive cycles,
    /// the run is cut short with a [`StallDiagnosis`] instead of burning
    /// the rest of the `max_cycles` budget on a livelocked source. A
    /// `stall_grace` of `0` disables the watchdog.
    pub fn run_until_committed_watched(
        &mut self,
        measured: &[usize],
        instructions: u64,
        max_cycles: u64,
        stall_grace: u64,
    ) -> Result<WindowOutcome, StallDiagnosis> {
        let start_cycle = self.cycle;
        let start: u64 = measured.iter().map(|&c| self.cores[c].stats().instructions()).sum();
        let target = start + instructions;
        let mut last_count: Vec<u64> =
            measured.iter().map(|&c| self.cores[c].stats().instructions()).collect();
        let mut last_progress: Vec<u64> = vec![self.cycle; measured.len()];
        // Check in strides to amortize the aggregation.
        const STRIDE: u64 = 1024;
        let mut done = start;
        while self.cycle - start_cycle < max_cycles && done < target {
            self.run_cycles(STRIDE.min(max_cycles - (self.cycle - start_cycle)));
            done = measured.iter().map(|&c| self.cores[c].stats().instructions()).sum();
            if done >= target {
                break;
            }
            if self.cores.iter().all(|c| c.is_done()) {
                break;
            }
            if stall_grace > 0 {
                for (i, &c) in measured.iter().enumerate() {
                    let count = self.cores[c].stats().instructions();
                    if count != last_count[i] {
                        last_count[i] = count;
                        last_progress[i] = self.cycle;
                    } else if !self.cores[c].is_done()
                        && self.cycle - last_progress[i] >= stall_grace
                    {
                        return Err(StallDiagnosis {
                            core: c,
                            cycles_without_commit: self.cycle - last_progress[i],
                        });
                    }
                }
            }
        }
        Ok(WindowOutcome {
            cycles: self.cycle - start_cycle,
            committed: done - start,
            reached_target: done >= target,
        })
    }

    /// Zeroes all core and memory statistics while preserving
    /// micro-architectural state (end of the warmup window).
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
        self.mem.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_memsys::PrefetchConfig;
    use cs_trace::source::{LoopSource, VecSource};
    use cs_trace::MicroOp;

    fn mem_cfg() -> MemSysConfig {
        MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() }
    }

    fn alu_ops(n: usize) -> Vec<MicroOp> {
        (0..n).map(|i| MicroOp::alu(0x40_0000 + 4 * (i % 256) as u64)).collect()
    }

    #[test]
    fn two_cores_run_independently() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
        chip.attach(0, Box::new(VecSource::new(alu_ops(1000))));
        chip.attach(1, Box::new(VecSource::new(alu_ops(500))));
        chip.run_cycles(10_000);
        assert_eq!(chip.cores()[0].stats().instructions(), 1000);
        assert_eq!(chip.cores()[1].stats().instructions(), 500);
    }

    #[test]
    fn run_until_committed_stops_near_target() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        let cycles = chip.run_until_committed(&[0], 50_000, 1_000_000);
        let done = chip.cores()[0].stats().instructions();
        assert!(done >= 50_000);
        assert!(done < 80_000, "overshoot too large: {done}");
        assert!(cycles > 0);
    }

    #[test]
    fn reset_stats_preserves_cache_state() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        let ops: Vec<MicroOp> =
            (0..64u64).map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + i * 64, 8)).collect();
        let mut warm = ops.clone();
        warm.extend(ops.clone());
        chip.attach(0, Box::new(VecSource::new(warm)));
        chip.run_cycles(20_000);
        chip.reset_stats();
        assert_eq!(chip.cores()[0].stats().instructions(), 0);
        assert_eq!(chip.mem().stats().per_core[0].l1d.total_accesses(), 0);
    }

    #[test]
    fn idle_cores_are_harmless() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 4);
        chip.attach(0, Box::new(VecSource::new(alu_ops(100))));
        chip.run_cycles(30_000);
        assert_eq!(chip.cores()[0].stats().instructions(), 100);
        assert_eq!(chip.cores()[3].stats().instructions(), 0);
    }

    #[test]
    fn cycle_counter_advances() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.run_cycles(123);
        assert_eq!(chip.cycle(), 123);
    }

    #[test]
    fn watchdog_cuts_livelocked_run_short() {
        use cs_memsys::FaultPlan;
        let cfg = MemSysConfig { fault: Some(FaultPlan::stall(1)), ..mem_cfg() };
        let mut chip = Chip::new(CoreConfig::x5670(), cfg, 1);
        let loads: Vec<MicroOp> =
            (0..64u64).map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + i * 64, 8)).collect();
        chip.attach(0, Box::new(VecSource::new(loads)));
        let grace = 10_000;
        let max_cycles = 5_000_000;
        let diag = chip
            .run_until_committed_watched(&[0], 1_000, max_cycles, grace)
            .expect_err("a stalled DRAM must trip the watchdog");
        assert_eq!(diag.core, 0);
        assert!(diag.cycles_without_commit >= grace);
        assert!(
            chip.cycle() < max_cycles / 100,
            "watchdog must fire well before max_cycles; ran {} cycles",
            chip.cycle()
        );
    }

    #[test]
    fn watchdog_leaves_healthy_runs_alone() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        let w = chip
            .run_until_committed_watched(&[0], 50_000, 1_000_000, 5_000)
            .expect("healthy run must not trip the watchdog");
        assert!(w.reached_target);
        assert!(w.committed >= 50_000);
        assert_eq!(chip.cycle(), w.cycles);
    }

    #[test]
    fn truncated_window_is_reported_not_silent() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        let w = chip
            .run_until_committed_watched(&[0], u64::MAX / 2, 10_000, 0)
            .expect("watchdog disabled");
        assert!(!w.reached_target, "cycle-capped window must be flagged");
        assert_eq!(w.cycles, 10_000);
        assert!(w.committed > 0);
    }

    #[test]
    fn watchdog_skips_exhausted_cores() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        chip.attach(1, Box::new(VecSource::new(alu_ops(32))));
        // Core 1 drains almost immediately; only core 0 keeps committing.
        // The watchdog must not misdiagnose the finished core as stalled.
        let w = chip
            .run_until_committed_watched(&[0, 1], 40_000, 1_000_000, 2_000)
            .expect("an exhausted source is completion, not a stall");
        assert!(w.reached_target);
    }
}
