//! Multi-core chip assembly.
//!
//! A [`Chip`] owns a set of [`OooCore`]s and the shared
//! [`MemorySystem`], advancing everything in lock-step, one cycle at a
//! time. This is the unit the experiment harness drives: workload threads
//! (and, for the Figure 4 methodology, cache-polluter threads) are attached
//! to specific cores, mirroring the paper's practice of pinning workloads
//! to cores and disabling the rest.

use crate::config::CoreConfig;
use crate::core::{Fidelity, OooCore};
use cs_memsys::{MemSysConfig, MemorySystem};
use cs_trace::TraceSource;

/// How a watched measurement window ended (other than by stalling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOutcome {
    /// Cycles simulated in this window.
    pub cycles: u64,
    /// Instructions the measured cores committed in this window.
    pub committed: u64,
    /// Whether the instruction target was reached (`false` means the
    /// window was truncated by `max_cycles` or by source exhaustion).
    pub reached_target: bool,
}

/// Diagnosis produced when the forward-progress watchdog fires: a measured
/// core has an attached, unfinished workload but has not committed a single
/// instruction for a full grace period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallDiagnosis {
    /// The first measured core found to be livelocked.
    pub core: usize,
    /// How long it has gone without committing, in cycles.
    pub cycles_without_commit: u64,
}

/// Resumable state of a watched measurement window.
///
/// [`Chip::run_until_committed_watched`] used to hold this state in local
/// variables, which made a half-finished window impossible to checkpoint.
/// Splitting it out lets the harness drive the window in budgeted slices
/// via [`Chip::step_watched`], snapshot between slices, and resume a
/// restored window with the *same* watchdog bookkeeping — so a killed and
/// resumed run takes every decision (including a watchdog trip) at exactly
/// the cycle the uninterrupted run would have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchedWindow {
    measured: Vec<usize>,
    target: u64,
    start: u64,
    start_cycle: u64,
    max_cycles: u64,
    stall_grace: u64,
    last_count: Vec<u64>,
    last_progress: Vec<u64>,
}

impl WatchedWindow {
    /// Serializes the window cursor into `e`.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.len(self.measured.len());
        for &c in &self.measured {
            e.len(c);
        }
        e.u64(self.target);
        e.u64(self.start);
        e.u64(self.start_cycle);
        e.u64(self.max_cycles);
        e.u64(self.stall_grace);
        for &v in &self.last_count {
            e.u64(v);
        }
        for &v in &self.last_progress {
            e.u64(v);
        }
    }

    /// Reads a window cursor written by [`WatchedWindow::encode_snap`].
    pub fn decode_snap(
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<Self, cs_trace::snap::SnapError> {
        let n = d.len()?;
        let mut measured = Vec::with_capacity(n);
        for _ in 0..n {
            measured.push(d.len()?);
        }
        let target = d.u64()?;
        let start = d.u64()?;
        let start_cycle = d.u64()?;
        let max_cycles = d.u64()?;
        let stall_grace = d.u64()?;
        let mut last_count = Vec::with_capacity(n);
        for _ in 0..n {
            last_count.push(d.u64()?);
        }
        let mut last_progress = Vec::with_capacity(n);
        for _ in 0..n {
            last_progress.push(d.u64()?);
        }
        Ok(Self { measured, target, start, start_cycle, max_cycles, stall_grace, last_count, last_progress })
    }
}

/// A chip: cores plus the shared memory system.
#[derive(Debug)]
pub struct Chip {
    cores: Vec<OooCore>,
    mem: MemorySystem,
    cycle: u64,
    /// Event-driven fast path: jump over certified-dead cycles instead of
    /// stepping them (on by default; results are byte-identical either
    /// way, so disabling it only costs wall-clock time).
    cycle_skip: bool,
    /// Cycles covered by jumps rather than stepped individually.
    skipped_cycles: u64,
    /// Per-core next-event certificates, reused across `run_cycles`
    /// iterations within one call (reset at entry: cores may be mutated
    /// between calls). `<= now` means expired.
    skip_next: Vec<u64>,
    /// Per-core start of the current certified-idle span, bulk-accounted
    /// lazily when the certificate expires or the window ends.
    skip_idle: Vec<Option<u64>>,
}

impl Chip {
    /// Builds a chip with `n_cores` identical cores.
    pub fn new(core_cfg: CoreConfig, mem_cfg: MemSysConfig, n_cores: usize) -> Self {
        Self {
            cores: (0..n_cores).map(|_| OooCore::new(core_cfg)).collect(),
            mem: MemorySystem::new(mem_cfg, n_cores),
            cycle: 0,
            cycle_skip: true,
            skipped_cycles: 0,
            skip_next: vec![0; n_cores],
            skip_idle: vec![None; n_cores],
        }
    }

    /// Enables or disables the event-driven cycle-skipping fast path.
    /// Results are byte-identical either way; the switch exists so any
    /// suspected divergence is immediately bisectable (`--no-skip`).
    pub fn set_cycle_skip(&mut self, on: bool) {
        self.cycle_skip = on;
    }

    /// Whether the cycle-skipping fast path is enabled.
    pub fn cycle_skip(&self) -> bool {
        self.cycle_skip
    }

    /// Cycles jumped over by the fast path so far (never reset; compare
    /// against [`Chip::cycle`] for the skipped fraction of a whole run).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Switches every core's fidelity level (see [`Fidelity`] and
    /// [`OooCore::set_fidelity`] for the drain semantics). Safe between
    /// [`Chip::run_cycles`] windows: the skip certificates are reset at
    /// entry, so the change takes effect on the next cycle stepped.
    pub fn set_fidelity(&mut self, fidelity: Fidelity) {
        for core in &mut self.cores {
            core.set_fidelity(fidelity);
        }
    }

    /// The fidelity level the cores are running at. All cores switch
    /// together; a coreless chip reports `Detailed`.
    pub fn fidelity(&self) -> Fidelity {
        self.cores.first().map_or(Fidelity::Detailed, OooCore::fidelity)
    }

    /// Attaches a trace source to a hardware context of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or its contexts are full.
    pub fn attach(&mut self, core: usize, source: Box<dyn TraceSource>) {
        self.cores[core].attach(source);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The cores.
    pub fn cores(&self) -> &[OooCore] {
        &self.cores
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Assigns `core` to `tenant` for co-location studies: the memory
    /// system tags every line the core fills and books its DRAM traffic
    /// against that tenant's QoS budgets. Tenant assignment is
    /// configuration (like the core→workload map), not simulated state,
    /// so the harness re-applies it on both fresh and restored runs.
    pub fn set_tenant(&mut self, core: usize, tenant: u8) {
        self.mem.set_tenant(core, tenant);
    }

    /// Advances every core by `n` cycles.
    ///
    /// With cycle skipping enabled, each core carries a *certificate*
    /// ([`OooCore::next_event_cycle`]): the earliest future cycle at which
    /// stepping it could change anything beyond the bulk-accountable idle
    /// pattern. A certificate issued at cycle `t` stays valid until it
    /// expires — a certified-dead core's step is inert by construction, so
    /// neither its own (skipped) steps nor other cores' activity can
    /// invalidate it early. That makes two savings sound:
    ///
    /// - **Per-core skips:** a certified-idle core is not stepped at all
    ///   while other cores run; its idle span is accumulated and
    ///   bulk-accounted when the certificate expires or the window ends.
    ///   (Bulk accounting distributes over any partition of a span — every
    ///   term is additive, including the fetch-stall clamp — so the split
    ///   points cannot show through in the counters.)
    /// - **Chip jumps:** when every certificate (and every memory-system
    ///   timer) lies in the future, the clock jumps straight to the
    ///   earliest one.
    ///
    /// Jumps are clamped to the end of this call's window and all pending
    /// idle spans are flushed before returning, so the chip always lands on
    /// exactly `cycle + n` with fully up-to-date counters — callers that
    /// interleave `run_cycles` with inspection (the watchdog in
    /// [`Chip::run_until_committed_watched`] checks every stride) observe
    /// the same cycle boundaries, and therefore the same diagnoses, in
    /// both modes. Certificates are reset at entry: between calls the
    /// cores may be mutated (sources attached, stats exported) without
    /// this loop noticing.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.cycle + n;
        if !self.cycle_skip {
            while self.cycle < end {
                for (id, core) in self.cores.iter_mut().enumerate() {
                    core.step(id, &mut self.mem, self.cycle);
                }
                self.cycle += 1;
            }
            return;
        }
        self.skip_next.iter_mut().for_each(|c| *c = 0);
        self.skip_idle.iter_mut().for_each(|s| *s = None);
        while self.cycle < end {
            let now = self.cycle;
            let mut chip_next = self.mem.next_event_cycle(now);
            for (i, core) in self.cores.iter_mut().enumerate() {
                if self.skip_next[i] <= now {
                    if let Some(s) = self.skip_idle[i].take() {
                        core.account_idle_cycles(s, now - s);
                    }
                    let cert = core.next_event_cycle(now);
                    self.skip_next[i] = cert;
                    if cert > now {
                        self.skip_idle[i] = Some(now);
                    }
                }
                chip_next = chip_next.min(self.skip_next[i]);
            }
            if chip_next > now {
                let to = chip_next.min(end);
                self.skipped_cycles += to - now;
                self.cycle = to;
                continue;
            }
            for (i, core) in self.cores.iter_mut().enumerate() {
                if self.skip_next[i] <= now {
                    core.step(i, &mut self.mem, now);
                }
            }
            self.cycle += 1;
        }
        for (i, core) in self.cores.iter_mut().enumerate() {
            if let Some(s) = self.skip_idle[i].take() {
                core.account_idle_cycles(s, end - s);
            }
        }
    }

    /// Runs until the cores listed in `measured` have together committed
    /// `instructions` more instructions, or `max_cycles` elapse. Returns
    /// the number of cycles simulated.
    ///
    /// This is the unwatched variant: it cannot distinguish a livelocked
    /// core from a slow one and will burn the whole `max_cycles` budget on
    /// either. Prefer [`Chip::run_until_committed_watched`].
    pub fn run_until_committed(
        &mut self,
        measured: &[usize],
        instructions: u64,
        max_cycles: u64,
    ) -> u64 {
        match self.run_until_committed_watched(measured, instructions, max_cycles, 0) {
            Ok(w) => w.cycles,
            Err(_) => unreachable!("watchdog is disabled when stall_grace is 0"),
        }
    }

    /// Runs until the cores listed in `measured` have together committed
    /// `instructions` more instructions, `max_cycles` elapse, or the
    /// forward-progress watchdog fires.
    ///
    /// The watchdog tracks each measured core's committed-instruction count
    /// at every check interval. If a core whose workload is still attached
    /// and unfinished commits nothing for `stall_grace` consecutive cycles,
    /// the run is cut short with a [`StallDiagnosis`] instead of burning
    /// the rest of the `max_cycles` budget on a livelocked source. A
    /// `stall_grace` of `0` disables the watchdog.
    pub fn run_until_committed_watched(
        &mut self,
        measured: &[usize],
        instructions: u64,
        max_cycles: u64,
        stall_grace: u64,
    ) -> Result<WindowOutcome, StallDiagnosis> {
        let mut w = self.begin_watched(measured, instructions, max_cycles, stall_grace);
        loop {
            if let Some(out) = self.step_watched(&mut w, u64::MAX)? {
                return Ok(out);
            }
        }
    }

    /// Opens a watched window at the current cycle. Drive it with
    /// [`Chip::step_watched`].
    pub fn begin_watched(
        &self,
        measured: &[usize],
        instructions: u64,
        max_cycles: u64,
        stall_grace: u64,
    ) -> WatchedWindow {
        let start: u64 = measured.iter().map(|&c| self.cores[c].stats().instructions()).sum();
        WatchedWindow {
            measured: measured.to_vec(),
            target: start + instructions,
            start,
            start_cycle: self.cycle,
            max_cycles,
            stall_grace,
            last_count: measured.iter().map(|&c| self.cores[c].stats().instructions()).collect(),
            last_progress: vec![self.cycle; measured.len()],
        }
    }

    /// Advances the window by up to `budget` cycles and reports whether it
    /// finished: `Ok(Some(outcome))` when the window ended (target reached,
    /// `max_cycles` spent, or every source exhausted), `Ok(None)` when only
    /// the budget ran out, `Err` when the watchdog fired.
    ///
    /// Progress is made in fixed strides whose lengths depend only on the
    /// window state — never on `budget`, which is consulted purely *between*
    /// strides. The sequence of [`Chip::run_cycles`] calls (and therefore
    /// every cycle boundary the watchdog observes) is identical for any
    /// slicing of the same window, which is what makes a checkpointed run
    /// byte-identical to an uninterrupted one.
    pub fn step_watched(
        &mut self,
        w: &mut WatchedWindow,
        budget: u64,
    ) -> Result<Option<WindowOutcome>, StallDiagnosis> {
        // Check in strides to amortize the aggregation.
        const STRIDE: u64 = 1024;
        let mut spent: u64 = 0;
        loop {
            let elapsed = self.cycle - w.start_cycle;
            let done: u64 =
                w.measured.iter().map(|&c| self.cores[c].stats().instructions()).sum();
            if elapsed >= w.max_cycles || done >= w.target {
                return Ok(Some(self.close_watched(w, done)));
            }
            if spent >= budget {
                return Ok(None);
            }
            self.run_cycles(STRIDE.min(w.max_cycles - elapsed));
            spent = spent.saturating_add(STRIDE);
            let done: u64 =
                w.measured.iter().map(|&c| self.cores[c].stats().instructions()).sum();
            if done >= w.target {
                return Ok(Some(self.close_watched(w, done)));
            }
            if self.cores.iter().all(|c| c.is_done()) {
                return Ok(Some(self.close_watched(w, done)));
            }
            if w.stall_grace > 0 {
                for (i, &c) in w.measured.iter().enumerate() {
                    let count = self.cores[c].stats().instructions();
                    if count != w.last_count[i] {
                        w.last_count[i] = count;
                        w.last_progress[i] = self.cycle;
                    } else if !self.cores[c].is_done()
                        && self.cycle - w.last_progress[i] >= w.stall_grace
                    {
                        return Err(StallDiagnosis {
                            core: c,
                            cycles_without_commit: self.cycle - w.last_progress[i],
                        });
                    }
                }
            }
        }
    }

    fn close_watched(&self, w: &WatchedWindow, done: u64) -> WindowOutcome {
        WindowOutcome {
            cycles: self.cycle - w.start_cycle,
            committed: done - w.start,
            reached_target: done >= w.target,
        }
    }

    /// Zeroes all core and memory statistics while preserving
    /// micro-architectural state (end of the warmup window).
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
        self.mem.reset_stats();
    }

    /// Serializes the chip's complete deterministic state into `e`: the
    /// cycle counter, the skipped-cycle tally, every core (pipeline,
    /// threads, predictor, statistics) and the shared memory system.
    ///
    /// Not serialized: `cycle_skip` (configuration, chosen by the run, and
    /// byte-identical either way) and the `skip_next` / `skip_idle`
    /// scratch, which [`Chip::run_cycles`] resets at entry precisely so
    /// cores may be mutated — or snapshotted and restored — between calls.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.u64(self.cycle);
        e.u64(self.skipped_cycles);
        e.len(self.cores.len());
        for core in &self.cores {
            core.encode_snap(e);
        }
        self.mem.encode_snap(e);
    }

    /// Restores state written by [`Chip::encode_snap`] into a chip built
    /// from the same configuration, with the same trace sources already
    /// attached in the same order.
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        self.cycle = d.u64()?;
        self.skipped_cycles = d.u64()?;
        let n = d.len()?;
        if n != self.cores.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {n} cores, chip has {}",
                self.cores.len()
            )));
        }
        for core in &mut self.cores {
            core.restore_snap(d)?;
        }
        self.mem.restore_snap(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_memsys::PrefetchConfig;
    use cs_trace::source::{LoopSource, VecSource};
    use cs_trace::MicroOp;

    fn mem_cfg() -> MemSysConfig {
        MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() }
    }

    fn alu_ops(n: usize) -> Vec<MicroOp> {
        (0..n).map(|i| MicroOp::alu(0x40_0000 + 4 * (i % 256) as u64)).collect()
    }

    #[test]
    fn two_cores_run_independently() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
        chip.attach(0, Box::new(VecSource::new(alu_ops(1000))));
        chip.attach(1, Box::new(VecSource::new(alu_ops(500))));
        chip.run_cycles(10_000);
        assert_eq!(chip.cores()[0].stats().instructions(), 1000);
        assert_eq!(chip.cores()[1].stats().instructions(), 500);
    }

    #[test]
    fn run_until_committed_stops_near_target() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        let cycles = chip.run_until_committed(&[0], 50_000, 1_000_000);
        let done = chip.cores()[0].stats().instructions();
        assert!(done >= 50_000);
        assert!(done < 80_000, "overshoot too large: {done}");
        assert!(cycles > 0);
    }

    #[test]
    fn reset_stats_preserves_cache_state() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        let ops: Vec<MicroOp> =
            (0..64u64).map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + i * 64, 8)).collect();
        let mut warm = ops.clone();
        warm.extend(ops.clone());
        chip.attach(0, Box::new(VecSource::new(warm)));
        chip.run_cycles(20_000);
        chip.reset_stats();
        assert_eq!(chip.cores()[0].stats().instructions(), 0);
        assert_eq!(chip.mem().stats().per_core[0].l1d.total_accesses(), 0);
    }

    #[test]
    fn idle_cores_are_harmless() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 4);
        chip.attach(0, Box::new(VecSource::new(alu_ops(100))));
        chip.run_cycles(30_000);
        assert_eq!(chip.cores()[0].stats().instructions(), 100);
        assert_eq!(chip.cores()[3].stats().instructions(), 0);
    }

    #[test]
    fn cycle_counter_advances() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.run_cycles(123);
        assert_eq!(chip.cycle(), 123);
    }

    #[test]
    fn watchdog_cuts_livelocked_run_short() {
        use cs_memsys::FaultPlan;
        let cfg = MemSysConfig { fault: Some(FaultPlan::stall(1)), ..mem_cfg() };
        let mut chip = Chip::new(CoreConfig::x5670(), cfg, 1);
        let loads: Vec<MicroOp> =
            (0..64u64).map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + i * 64, 8)).collect();
        chip.attach(0, Box::new(VecSource::new(loads)));
        let grace = 10_000;
        let max_cycles = 5_000_000;
        let diag = chip
            .run_until_committed_watched(&[0], 1_000, max_cycles, grace)
            .expect_err("a stalled DRAM must trip the watchdog");
        assert_eq!(diag.core, 0);
        assert!(diag.cycles_without_commit >= grace);
        assert!(
            chip.cycle() < max_cycles / 100,
            "watchdog must fire well before max_cycles; ran {} cycles",
            chip.cycle()
        );
    }

    #[test]
    fn watchdog_leaves_healthy_runs_alone() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        let w = chip
            .run_until_committed_watched(&[0], 50_000, 1_000_000, 5_000)
            .expect("healthy run must not trip the watchdog");
        assert!(w.reached_target);
        assert!(w.committed >= 50_000);
        assert_eq!(chip.cycle(), w.cycles);
    }

    #[test]
    fn truncated_window_is_reported_not_silent() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        let w = chip
            .run_until_committed_watched(&[0], u64::MAX / 2, 10_000, 0)
            .expect("watchdog disabled");
        assert!(!w.reached_target, "cycle-capped window must be flagged");
        assert_eq!(w.cycles, 10_000);
        assert!(w.committed > 0);
    }

    /// Asserts two chips are in byte-identical observable state: cycle,
    /// every core's statistics, and the shared memory system's counters.
    fn assert_identical(fast: &Chip, slow: &Chip) {
        assert_eq!(fast.cycle(), slow.cycle(), "cycle counters diverged");
        for (i, (a, b)) in fast.cores().iter().zip(slow.cores()).enumerate() {
            assert_eq!(a.stats(), b.stats(), "core {i} stats diverged");
        }
        assert_eq!(fast.mem().stats(), slow.mem().stats(), "memory stats diverged");
        assert_eq!(fast.mem().dram_stats(), slow.mem().dram_stats(), "dram stats diverged");
    }

    /// Runs two identically-built chips — one with cycle skipping, one
    /// without — through the same deliberately awkward sequence of
    /// `run_cycles` windows, so jumps keep colliding with window clamps.
    /// Returns `(skipping, naive)`.
    fn run_both(mk: impl Fn() -> Chip, total: u64) -> (Chip, Chip) {
        let mut fast = mk();
        fast.set_cycle_skip(true);
        let mut slow = mk();
        slow.set_cycle_skip(false);
        for chip in [&mut fast, &mut slow] {
            let mut remaining = total;
            let mut chunk: u64 = 1;
            while remaining > 0 {
                let n = chunk.min(remaining);
                chip.run_cycles(n);
                remaining -= n;
                chunk = chunk * 7 % 9973 + 1;
            }
        }
        (fast, slow)
    }

    fn far_load_chain(n: u64, stride: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| MicroOp::load(0x40_0000, 0x8000_0000 + i * stride * 64, 8).with_deps(1, 0))
            .collect()
    }

    #[test]
    fn cycle_skip_is_identical_on_stall_heavy_trace() {
        // Dependent far loads: the skip-friendliest pattern, with long
        // certified-dead spans between DRAM returns.
        let mk = || {
            let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
            chip.attach(0, Box::new(VecSource::new(far_load_chain(300, 1009))));
            chip.attach(1, Box::new(VecSource::new(alu_ops(500))));
            chip
        };
        let (fast, slow) = run_both(mk, 300_000);
        assert_identical(&fast, &slow);
        assert_eq!(slow.skipped_cycles(), 0);
        assert!(
            fast.skipped_cycles() > fast.cycle() / 2,
            "a load-latency-bound trace must be mostly skippable, skipped {} of {}",
            fast.skipped_cycles(),
            fast.cycle()
        );
    }

    #[test]
    fn cycle_skip_is_identical_under_smt_round_robin_and_icount() {
        use crate::config::SmtFetchPolicy;
        for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::Icount] {
            let mk = move || {
                let cfg = CoreConfig {
                    smt_threads: 2,
                    smt_fetch: policy,
                    ..CoreConfig::x5670()
                };
                let mut chip = Chip::new(cfg, mem_cfg(), 1);
                chip.attach(0, Box::new(VecSource::new(far_load_chain(200, 997))));
                chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
                chip
            };
            let (fast, slow) = run_both(mk, 200_000);
            assert_identical(&fast, &slow);
            assert!(fast.skipped_cycles() > 0, "{policy:?} must still skip");
        }
    }

    #[test]
    fn cycle_skip_is_identical_with_gshare_and_prefetchers() {
        use crate::branch::BranchModel;
        let mk = || {
            let cfg = CoreConfig {
                branch_model: BranchModel::Gshare { bits: 10 },
                ..CoreConfig::x5670()
            };
            // Default memory config: all prefetchers enabled.
            let mut chip = Chip::new(cfg, MemSysConfig::default(), 1);
            let mut ops = Vec::new();
            for i in 0..150u64 {
                ops.push(MicroOp::load(0x40_0000, 0x9000_0000 + i * 771 * 64, 8).with_deps(1, 0));
                ops.push(MicroOp::branch(0x40_0010 + 8 * (i % 32), false));
                ops.push(MicroOp::alu(0x40_0014 + 8 * (i % 32)));
            }
            chip.attach(0, Box::new(VecSource::new(ops)));
            chip
        };
        let (fast, slow) = run_both(mk, 250_000);
        assert_identical(&fast, &slow);
        assert!(fast.skipped_cycles() > 0);
    }

    #[test]
    fn cycle_skip_is_identical_under_fault_injection() {
        use cs_memsys::FaultPlan;
        // DRAM jitter plus prefetch drops: the fault stream is
        // event-indexed, so skipping dead cycles must not change which
        // accesses are perturbed.
        let plan = FaultPlan {
            dram_extra_latency: 180,
            dram_perturb_rate: 0.3,
            prefetch_drop_rate: 0.2,
            seed: 0xFEED,
        };
        let mk = move || {
            let cfg = MemSysConfig { fault: Some(plan), ..MemSysConfig::default() };
            let mut chip = Chip::new(CoreConfig::x5670(), cfg, 1);
            chip.attach(0, Box::new(VecSource::new(far_load_chain(250, 1013))));
            chip
        };
        let (fast, slow) = run_both(mk, 300_000);
        assert_identical(&fast, &slow);
        assert_eq!(fast.mem().fault_counters(), slow.mem().fault_counters());
        assert!(fast.skipped_cycles() > 0);
    }

    #[test]
    fn cycle_skip_bulk_accounts_the_drained_tail() {
        // Run far past source exhaustion: the drained tail is one giant
        // dead span, and its bulk accounting must match naive stepping.
        let mk = || {
            let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
            chip.attach(0, Box::new(VecSource::new(alu_ops(100))));
            chip
        };
        let (fast, slow) = run_both(mk, 50_000);
        assert_identical(&fast, &slow);
        let s = fast.cores()[0].stats();
        let classified: u64 =
            s.committing_cycles.iter().sum::<u64>() + s.stalled_cycles.iter().sum::<u64>();
        assert_eq!(classified, s.cycles);
        assert!(fast.skipped_cycles() > 40_000, "the drained tail must be skipped");
    }

    #[test]
    fn cycle_skip_handles_threadless_cores() {
        // Cores with no attached sources accumulate cycles but are never
        // classified — the bulk path must reproduce that exactly.
        let mk = || {
            let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 3);
            chip.attach(0, Box::new(VecSource::new(alu_ops(200))));
            chip
        };
        let (fast, slow) = run_both(mk, 20_000);
        assert_identical(&fast, &slow);
        let idle = fast.cores()[2].stats();
        assert_eq!(idle.cycles, 20_000);
        assert_eq!(idle.stalled_cycles, [0, 0]);
        assert_eq!(idle.committing_cycles, [0, 0]);
    }

    #[test]
    fn watchdog_diagnosis_is_identical_under_cycle_skip() {
        use cs_memsys::FaultPlan;
        // A stalled DRAM livelocks the workload; the watchdog must fire
        // at the same cycle with the same diagnosis in both modes, since
        // jumps are clamped to each watchdog stride.
        let run_mode = |skip: bool| {
            let cfg = MemSysConfig { fault: Some(FaultPlan::stall(1)), ..mem_cfg() };
            let mut chip = Chip::new(CoreConfig::x5670(), cfg, 1);
            let loads: Vec<MicroOp> = (0..64u64)
                .map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + i * 64, 8))
                .collect();
            chip.attach(0, Box::new(VecSource::new(loads)));
            chip.set_cycle_skip(skip);
            let diag = chip
                .run_until_committed_watched(&[0], 1_000, 5_000_000, 10_000)
                .expect_err("a stalled DRAM must trip the watchdog");
            (diag, chip.cycle())
        };
        let (diag_fast, cycle_fast) = run_mode(true);
        let (diag_slow, cycle_slow) = run_mode(false);
        assert_eq!(diag_fast, diag_slow);
        assert_eq!(cycle_fast, cycle_slow);
    }

    #[test]
    fn run_until_committed_is_identical_under_cycle_skip() {
        let run_mode = |skip: bool| {
            let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 1);
            chip.attach(0, Box::new(VecSource::new(far_load_chain(400, 883))));
            chip.set_cycle_skip(skip);
            let w = chip
                .run_until_committed_watched(&[0], 300, 10_000_000, 50_000)
                .expect("healthy run");
            (w, chip.cycle(), chip.cores()[0].stats().clone())
        };
        let (w_fast, cycle_fast, stats_fast) = run_mode(true);
        let (w_slow, cycle_slow, stats_slow) = run_mode(false);
        assert_eq!(w_fast, w_slow);
        assert_eq!(cycle_fast, cycle_slow);
        assert_eq!(stats_fast, stats_slow);
    }

    #[test]
    fn step_watched_slicing_is_invisible() {
        // The same window driven in budgeted slices must produce the same
        // outcome, final cycle and stats as one unsliced call, because the
        // run_cycles sequence is budget-independent.
        let mk = || {
            let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
            chip.attach(0, Box::new(VecSource::new(far_load_chain(300, 991))));
            chip.attach(1, Box::new(LoopSource::new(alu_ops(64))));
            chip
        };
        let mut whole = mk();
        let w_whole = whole
            .run_until_committed_watched(&[0, 1], 20_000, 2_000_000, 50_000)
            .expect("healthy");
        let mut sliced = mk();
        let mut w = sliced.begin_watched(&[0, 1], 20_000, 2_000_000, 50_000);
        let mut budgets = [1u64, 3000, 700, 12_000, 1, 250_000].iter().cycle();
        let outcome = loop {
            match sliced.step_watched(&mut w, *budgets.next().unwrap()).expect("healthy") {
                Some(out) => break out,
                None => continue,
            }
        };
        assert_eq!(outcome, w_whole);
        assert_eq!(sliced.cycle(), whole.cycle());
        assert_identical(&sliced, &whole);
    }

    #[test]
    fn chip_snapshot_resumes_byte_identically_mid_window() {
        let attach_all = |chip: &mut Chip| {
            chip.attach(0, Box::new(VecSource::new(far_load_chain(400, 883))));
            chip.attach(1, Box::new(LoopSource::new(alu_ops(64))));
        };
        for skip in [true, false] {
            // Reference: uninterrupted run.
            let mut straight = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
            attach_all(&mut straight);
            straight.set_cycle_skip(skip);
            let w_ref = straight
                .run_until_committed_watched(&[0, 1], 30_000, 3_000_000, 50_000)
                .expect("healthy");

            // Interrupted run: stop mid-window, snapshot, throw the chip
            // away, rebuild, restore, finish.
            let mut first = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
            attach_all(&mut first);
            first.set_cycle_skip(skip);
            let mut w = first.begin_watched(&[0, 1], 30_000, 3_000_000, 50_000);
            assert!(
                first.step_watched(&mut w, 2_000).expect("healthy").is_none(),
                "window must not finish in 2000 cycles"
            );
            let mut enc = cs_trace::snap::Enc::new();
            first.encode_snap(&mut enc);
            w.encode_snap(&mut enc);
            drop(first);

            let mut resumed = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
            attach_all(&mut resumed);
            resumed.set_cycle_skip(skip);
            let mut dec = cs_trace::snap::Dec::new(&enc.buf);
            resumed.restore_snap(&mut dec).expect("restore");
            let mut w2 = WatchedWindow::decode_snap(&mut dec).expect("window");
            dec.finish().expect("no trailing bytes");
            assert_eq!(w2, w);
            let outcome = loop {
                if let Some(out) = resumed.step_watched(&mut w2, 7_777).expect("healthy") {
                    break out;
                }
            };
            assert_eq!(outcome, w_ref, "skip={skip}");
            assert_identical(&resumed, &straight);
            assert_eq!(resumed.skipped_cycles(), straight.skipped_cycles(), "skip={skip}");
        }
    }

    #[test]
    fn functional_mode_is_identical_under_cycle_skip() {
        // A detailed → functional → detailed round trip must land on the
        // same state regardless of the skip mode, because functional
        // cores certify "now" (never skipped) while live and the drain at
        // the switch point is cycle-independent.
        let run_mode = |skip: bool| {
            let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
            chip.attach(0, Box::new(VecSource::new(far_load_chain(300, 1009))));
            chip.attach(1, Box::new(LoopSource::new(alu_ops(64))));
            chip.set_cycle_skip(skip);
            chip.run_cycles(10_000);
            chip.set_fidelity(Fidelity::Functional);
            assert_eq!(chip.fidelity(), Fidelity::Functional);
            chip.run_cycles(5_000);
            chip.set_fidelity(Fidelity::Detailed);
            chip.run_cycles(20_000);
            chip
        };
        let fast = run_mode(true);
        let slow = run_mode(false);
        assert_identical(&fast, &slow);
    }

    #[test]
    fn watchdog_skips_exhausted_cores() {
        let mut chip = Chip::new(CoreConfig::x5670(), mem_cfg(), 2);
        chip.attach(0, Box::new(LoopSource::new(alu_ops(64))));
        chip.attach(1, Box::new(VecSource::new(alu_ops(32))));
        // Core 1 drains almost immediately; only core 0 keeps committing.
        // The watchdog must not misdiagnose the finished core as stalled.
        let w = chip
            .run_until_committed_watched(&[0, 1], 40_000, 1_000_000, 2_000)
            .expect("an exhausted source is completion, not a stall");
        assert!(w.reached_target);
    }
}
