//! Core-level statistics and the §3.1 attribution methodology.
//!
//! The paper classifies every cycle as *Committing* (at least one
//! instruction retired) or *Stalled*, attributes each to application or OS
//! execution, and overlays a *Memory cycles* bar computed from super-queue
//! occupancy plus frontend components. This module holds exactly those
//! counters, per core.

use cs_perf::{CounterSet, Histogram};
use serde::{Deserialize, Serialize};

/// Counters for one core (aggregated over its hardware threads).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed, indexed `[user, kernel]`.
    pub committed: [u64; 2],
    /// Cycles in which ≥1 instruction committed, attributed to the
    /// privilege of the first retiring instruction, `[user, kernel]`.
    pub committing_cycles: [u64; 2],
    /// Cycles in which nothing committed, attributed to the privilege of
    /// the oldest in-flight (or being-fetched) instruction, `[user,
    /// kernel]`.
    pub stalled_cycles: [u64; 2],
    /// Cycles with at least one off-core demand *data* request (load or
    /// store RFO) outstanding — the super-queue occupancy component of the
    /// paper's memory cycles.
    pub offcore_outstanding_cycles: u64,
    /// Cycles the paper's Figure 1 classifies as memory cycles: an
    /// off-core data request outstanding, or the frontend stalled on the
    /// memory system (L1-I miss service beyond the L1, instruction TLB
    /// misses). Computed per cycle, so it never exceeds `cycles` — the
    /// non-overlap property §3.1 requires.
    pub memory_cycles: u64,
    /// Extra instruction-fetch stall cycles spent on L1-I misses that hit
    /// in the L2 (an explicit component of the §3.1 memory-cycle formula).
    pub l2_ifetch_stall_cycles: u64,
    /// Histogram of outstanding off-core demand *loads* per cycle; its
    /// nonzero mean is the paper's MLP metric.
    pub offcore_load_occupancy: Histogram,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches executed.
    pub mispredicts: u64,
    /// Sum of ROB occupancy over cycles (for average occupancy).
    pub rob_occupancy_sum: u64,
    /// Instructions committed per hardware thread.
    pub per_thread_committed: Vec<u64>,
}

impl CoreStats {
    /// Creates zeroed statistics for a core with `threads` hardware
    /// threads and `mshrs` outstanding-miss capacity.
    pub fn new(threads: usize, mshrs: u32) -> Self {
        Self {
            cycles: 0,
            committed: [0; 2],
            committing_cycles: [0; 2],
            stalled_cycles: [0; 2],
            offcore_outstanding_cycles: 0,
            memory_cycles: 0,
            l2_ifetch_stall_cycles: 0,
            offcore_load_occupancy: Histogram::new(mshrs as usize + 1),
            branches: 0,
            mispredicts: 0,
            rob_occupancy_sum: 0,
            per_thread_committed: vec![0; threads],
        }
    }

    /// Total instructions committed.
    pub fn instructions(&self) -> u64 {
        self.committed[0] + self.committed[1]
    }

    /// Total IPC over the window.
    pub fn ipc(&self) -> f64 {
        cs_perf::ratio(self.instructions(), self.cycles)
    }

    /// Application (user-mode) IPC — the paper's Figure 3 metric.
    pub fn app_ipc(&self) -> f64 {
        cs_perf::ratio(self.committed[0], self.cycles)
    }

    /// MLP: average outstanding off-core loads over cycles with at least
    /// one outstanding (the paper's §3.1 MLP methodology).
    pub fn mlp(&self) -> f64 {
        self.offcore_load_occupancy.mean_nonzero()
    }

    /// Fraction of cycles stalled (user + kernel).
    pub fn stall_fraction(&self) -> f64 {
        cs_perf::ratio(self.stalled_cycles[0] + self.stalled_cycles[1], self.cycles)
    }

    /// Fraction of cycles classified as memory cycles (Figure 1's
    /// overlapped bar).
    pub fn memory_fraction(&self) -> f64 {
        cs_perf::ratio(self.memory_cycles, self.cycles)
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        cs_perf::ratio(self.mispredicts, self.branches)
    }

    /// Average ROB occupancy.
    pub fn avg_rob_occupancy(&self) -> f64 {
        cs_perf::ratio(self.rob_occupancy_sum, self.cycles)
    }

    /// Bulk-accounts a span of `span` certified-idle cycles, producing the
    /// exact counter deltas the per-cycle path (`commit` stall attribution
    /// plus `per_cycle_stats`) would have produced had each cycle been
    /// stepped individually. Used by the chip's event-driven fast path to
    /// jump over dead cycles with byte-identical statistics.
    ///
    /// All inputs are frozen core state for the whole span (that is what
    /// *certified idle* means): `rob_total` ROB entries across threads,
    /// `outstanding_loads` off-core demand loads, `data_outstanding` when
    /// a demand load or store RFO is in flight, `mem_stall_cycles` cycles
    /// of the span spent under a frontend memory stall (already clamped to
    /// the span by the caller), and `stall_priv` the `[user, kernel]`
    /// index of the stall attribution — `None` for a threadless core,
    /// whose cycles are never classified.
    #[allow(clippy::too_many_arguments)]
    pub fn record_idle_span(
        &mut self,
        span: u64,
        rob_total: u64,
        outstanding_loads: u64,
        data_outstanding: bool,
        mem_stall_cycles: u64,
        stall_priv: Option<usize>,
    ) {
        self.cycles += span;
        self.rob_occupancy_sum += rob_total * span;
        self.offcore_load_occupancy.record_n(outstanding_loads, span);
        if data_outstanding {
            self.offcore_outstanding_cycles += span;
            self.memory_cycles += span;
        } else {
            self.memory_cycles += mem_stall_cycles;
        }
        if let Some(idx) = stall_priv {
            self.stalled_cycles[idx] += span;
        }
    }

    /// Adds every counter of `other` into `self` — used by the sampling
    /// harness to merge per-window statistics into run totals. Both sides
    /// must come from the same core configuration (same thread count and
    /// MSHR capacity).
    ///
    /// # Panics
    ///
    /// Panics if the per-thread vectors or occupancy-histogram capacities
    /// differ — merging windows measured on differently-shaped cores is a
    /// harness bug.
    pub fn absorb(&mut self, other: &CoreStats) {
        assert_eq!(
            self.per_thread_committed.len(),
            other.per_thread_committed.len(),
            "thread-count mismatch in stats merge"
        );
        self.cycles += other.cycles;
        for i in 0..2 {
            self.committed[i] += other.committed[i];
            self.committing_cycles[i] += other.committing_cycles[i];
            self.stalled_cycles[i] += other.stalled_cycles[i];
        }
        self.offcore_outstanding_cycles += other.offcore_outstanding_cycles;
        self.memory_cycles += other.memory_cycles;
        self.l2_ifetch_stall_cycles += other.l2_ifetch_stall_cycles;
        self.offcore_load_occupancy.merge_from(&other.offcore_load_occupancy);
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.rob_occupancy_sum += other.rob_occupancy_sum;
        for (a, b) in self.per_thread_committed.iter_mut().zip(&other.per_thread_committed) {
            *a += *b;
        }
    }

    /// Serializes every counter — including the full occupancy histogram —
    /// into `e` for checkpointing.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.u64(self.cycles);
        for v in self.committed.iter().chain(&self.committing_cycles).chain(&self.stalled_cycles) {
            e.u64(*v);
        }
        e.u64(self.offcore_outstanding_cycles);
        e.u64(self.memory_cycles);
        e.u64(self.l2_ifetch_stall_cycles);
        let cap = self.offcore_load_occupancy.capacity();
        e.len(cap);
        for i in 0..cap {
            e.u64(self.offcore_load_occupancy.count_at(i as u64));
        }
        e.u64(self.offcore_load_occupancy.overflow());
        e.u64(self.branches);
        e.u64(self.mispredicts);
        e.u64(self.rob_occupancy_sum);
        e.len(self.per_thread_committed.len());
        for v in &self.per_thread_committed {
            e.u64(*v);
        }
    }

    /// Rebuilds counters from [`CoreStats::encode_snap`] bytes.
    pub fn decode_snap(
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<Self, cs_trace::snap::SnapError> {
        let read2 = |d: &mut cs_trace::snap::Dec<'_>| -> Result<[u64; 2], _> {
            Ok([d.u64()?, d.u64()?])
        };
        let cycles = d.u64()?;
        let committed = read2(d)?;
        let committing_cycles = read2(d)?;
        let stalled_cycles = read2(d)?;
        let offcore_outstanding_cycles = d.u64()?;
        let memory_cycles = d.u64()?;
        let l2_ifetch_stall_cycles = d.u64()?;
        let cap = d.len()?;
        if cap == 0 {
            return Err(cs_trace::snap::SnapError::Mismatch("empty histogram".into()));
        }
        let mut offcore_load_occupancy = Histogram::new(cap);
        for i in 0..cap {
            offcore_load_occupancy.record_n(i as u64, d.u64()?);
        }
        // Out-of-range values land in the overflow bucket by construction.
        offcore_load_occupancy.record_n(cap as u64, d.u64()?);
        let branches = d.u64()?;
        let mispredicts = d.u64()?;
        let rob_occupancy_sum = d.u64()?;
        let n_threads = d.len()?;
        let mut per_thread_committed = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            per_thread_committed.push(d.u64()?);
        }
        Ok(Self {
            cycles,
            committed,
            committing_cycles,
            stalled_cycles,
            offcore_outstanding_cycles,
            memory_cycles,
            l2_ifetch_stall_cycles,
            offcore_load_occupancy,
            branches,
            mispredicts,
            rob_occupancy_sum,
            per_thread_committed,
        })
    }

    /// Exports the counters into a flat [`CounterSet`].
    pub fn to_counters(&self, prefix: &str) -> CounterSet {
        let mut c = CounterSet::new();
        let p = |n: &str| format!("{prefix}.{n}");
        c.set(p("cycles"), self.cycles);
        c.set(p("committed.user"), self.committed[0]);
        c.set(p("committed.kernel"), self.committed[1]);
        c.set(p("committing_cycles.user"), self.committing_cycles[0]);
        c.set(p("committing_cycles.kernel"), self.committing_cycles[1]);
        c.set(p("stalled_cycles.user"), self.stalled_cycles[0]);
        c.set(p("stalled_cycles.kernel"), self.stalled_cycles[1]);
        c.set(p("offcore_cycles"), self.offcore_outstanding_cycles);
        c.set(p("memory_cycles"), self.memory_cycles);
        c.set(p("l2_ifetch_stall_cycles"), self.l2_ifetch_stall_cycles);
        c.set(p("branches"), self.branches);
        c.set(p("mispredicts"), self.mispredicts);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_classes_partition_time() {
        let mut s = CoreStats::new(1, 16);
        s.cycles = 10;
        s.committing_cycles = [4, 2];
        s.stalled_cycles = [3, 1];
        let total: u64 = s.committing_cycles.iter().chain(s.stalled_cycles.iter()).sum();
        assert_eq!(total, s.cycles);
        assert!((s.stall_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ipc_metrics() {
        let mut s = CoreStats::new(1, 16);
        s.cycles = 100;
        s.committed = [80, 20];
        assert!((s.ipc() - 1.0).abs() < 1e-12);
        assert!((s.app_ipc() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mlp_uses_nonzero_mean() {
        let mut s = CoreStats::new(1, 16);
        s.offcore_load_occupancy.record_n(0, 90);
        s.offcore_load_occupancy.record_n(2, 5);
        s.offcore_load_occupancy.record_n(4, 5);
        assert_eq!(s.mlp(), 3.0);
    }

    #[test]
    fn counters_roundtrip_names() {
        let mut s = CoreStats::new(2, 16);
        s.cycles = 7;
        s.mispredicts = 3;
        let c = s.to_counters("core0");
        assert_eq!(c.get("core0.cycles"), 7);
        assert_eq!(c.get("core0.mispredicts"), 3);
    }

    #[test]
    fn snapshot_roundtrips_every_counter() {
        let mut s = CoreStats::new(2, 4);
        s.cycles = 1000;
        s.committed = [800, 150];
        s.committing_cycles = [500, 100];
        s.stalled_cycles = [350, 50];
        s.offcore_outstanding_cycles = 77;
        s.memory_cycles = 123;
        s.l2_ifetch_stall_cycles = 9;
        s.offcore_load_occupancy.record_n(0, 900);
        s.offcore_load_occupancy.record_n(3, 60);
        s.offcore_load_occupancy.record_n(99, 40); // overflow
        s.branches = 33;
        s.mispredicts = 4;
        s.rob_occupancy_sum = 42_000;
        s.per_thread_committed = vec![700, 250];
        let mut e = cs_trace::snap::Enc::new();
        s.encode_snap(&mut e);
        let mut d = cs_trace::snap::Dec::new(&e.buf);
        let back = CoreStats::decode_snap(&mut d).expect("decode");
        d.finish().expect("no trailing bytes");
        assert_eq!(back, s);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = CoreStats::new(2, 4);
        a.cycles = 10;
        a.committed = [6, 1];
        a.committing_cycles = [5, 1];
        a.stalled_cycles = [3, 1];
        a.memory_cycles = 4;
        a.offcore_load_occupancy.record_n(1, 3);
        a.branches = 2;
        a.per_thread_committed = vec![4, 3];
        let mut b = CoreStats::new(2, 4);
        b.cycles = 20;
        b.committed = [10, 3];
        b.committing_cycles = [8, 2];
        b.stalled_cycles = [9, 1];
        b.memory_cycles = 7;
        b.offcore_load_occupancy.record_n(1, 5);
        b.offcore_load_occupancy.record_n(99, 2);
        b.branches = 4;
        b.mispredicts = 1;
        b.per_thread_committed = vec![9, 4];
        a.absorb(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.committed, [16, 4]);
        assert_eq!(a.instructions(), 20);
        assert_eq!(a.committing_cycles, [13, 3]);
        assert_eq!(a.stalled_cycles, [12, 2]);
        assert_eq!(a.memory_cycles, 11);
        assert_eq!(a.offcore_load_occupancy.count_at(1), 8);
        assert_eq!(a.offcore_load_occupancy.overflow(), 2);
        assert_eq!(a.branches, 6);
        assert_eq!(a.per_thread_committed, vec![13, 7]);
        // The partition invariant survives the merge.
        let classified: u64 =
            a.committing_cycles.iter().chain(a.stalled_cycles.iter()).sum();
        assert_eq!(classified, a.cycles);
    }

    #[test]
    #[should_panic(expected = "thread-count mismatch")]
    fn absorb_rejects_shape_mismatch() {
        let mut a = CoreStats::new(1, 4);
        a.absorb(&CoreStats::new(2, 4));
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = CoreStats::new(1, 8);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mlp(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.avg_rob_occupancy(), 0.0);
    }
}
