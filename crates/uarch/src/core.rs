//! Cycle-level out-of-order core model.
//!
//! The pipeline advances one cycle at a time through five stages:
//!
//! 1. **complete** — instructions whose execution latency has elapsed are
//!    marked done (a completion heap avoids scanning the window);
//!    mispredicted branches redirect fetch with a refill penalty;
//! 2. **fetch** — one hardware thread per cycle (round-robin under SMT)
//!    pulls micro-ops from its trace source; crossing into a new cache
//!    line performs an instruction fetch through the memory system, and
//!    any latency beyond the L1-I stalls the thread's frontend — the
//!    mechanism behind the paper's frontend-stall findings (§4.1);
//! 3. **dispatch** — up to `width` ops enter the reorder buffer, gated by
//!    the per-thread ROB partition, the shared reservation stations and
//!    the load/store queues (Table 1 sizes);
//! 4. **issue** — up to `width` ready ops begin execution, oldest first,
//!    limited by memory/FP/divide ports; loads walk the cache hierarchy
//!    and, when they leave the core, occupy one of the 16 MSHRs — the
//!    structural limit on memory-level parallelism (§4.3);
//! 5. **commit** — up to `width` done ops retire in per-thread program
//!    order. Each cycle is classified *Committing* or *Stalled* and
//!    attributed to application or OS execution, the paper's Figure 1
//!    methodology.

use crate::branch::{BranchModel, Gshare};
use crate::config::{CoreConfig, SmtFetchPolicy};
use crate::stats::CoreStats;
use cs_memsys::MemorySystem;
use cs_trace::{MicroOp, OpKind, Privilege, TraceSource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation fidelity level of a core.
///
/// `Detailed` is the full cycle-level out-of-order pipeline. `Functional`
/// retires instructions at commit width with no pipeline modeling, but
/// still drives every instruction and data reference through the memory
/// system's warming path so caches, TLBs, prefetcher tables and the
/// branch predictor keep evolving exactly as their contents would under
/// detailed execution of the same instruction stream — the
/// functional-warming fast-forward of SMARTS-style sampled simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Full out-of-order timing model.
    #[default]
    Detailed,
    /// Warming-only fast path: no timing, full state updates.
    Functional,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued,
    Done,
}

#[derive(Debug)]
struct RobEntry {
    op: MicroOp,
    seq: u64,
    state: EntryState,
    offcore_load: bool,
}

/// Ops pulled from the trace source per refill. Large enough to amortize
/// the virtual `next_block` dispatch, small enough that the buffered
/// run-ahead past the fetch point stays negligible.
const FETCH_BLOCK: usize = 32;

struct Thread {
    source: Box<dyn TraceSource>,
    /// Total ops ever pulled from `source`. Snapshots store this instead
    /// of the source's internal state: synthetic sources are pure
    /// functions of `(profile, thread, seed)` with no feedback from the
    /// simulation, so restore rebuilds the source from the same factory
    /// and fast-forwards it by re-pulling exactly this many ops.
    ops_pulled: u64,
    /// Block buffer refilled from `source` ([`FETCH_BLOCK`] ops at a
    /// time); `block_pos` is the next unconsumed op.
    block: Vec<MicroOp>,
    block_pos: usize,
    rob: VecDeque<RobEntry>,
    fetch_buf: VecDeque<MicroOp>,
    pending: Option<MicroOp>,
    next_seq: u64,
    fetch_stall_until: u64,
    /// Portion of the fetch stall caused by the memory system (L1-I miss
    /// service, instruction TLB); feeds the paper's memory-cycles bar.
    mem_fetch_stall_until: u64,
    cur_fetch_line: u64,
    flush_pending: bool,
    last_fetch_priv: Privilege,
    exhausted: bool,
    /// Sequence numbers of dispatched-but-not-issued entries, in program
    /// order (bounded by the reservation stations).
    waiting: Vec<u64>,
    /// A fetched branch awaiting its outcome (gshare mode): resolved by
    /// the next fetched instruction's PC.
    held_branch: Option<MicroOp>,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("label", &self.source.label())
            .field("rob_len", &self.rob.len())
            .field("next_seq", &self.next_seq)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl Thread {
    fn new(source: Box<dyn TraceSource>) -> Self {
        Self {
            source,
            ops_pulled: 0,
            block: Vec::with_capacity(FETCH_BLOCK),
            block_pos: 0,
            rob: VecDeque::new(),
            fetch_buf: VecDeque::new(),
            pending: None,
            next_seq: 0,
            fetch_stall_until: 0,
            mem_fetch_stall_until: 0,
            cur_fetch_line: u64::MAX,
            flush_pending: false,
            last_fetch_priv: Privilege::User,
            exhausted: false,
            waiting: Vec::new(),
            held_branch: None,
        }
    }

    /// Next op from the block buffer, refilling from the source when the
    /// buffer runs dry. Sets `exhausted` when a refill yields nothing, so
    /// `exhausted` always implies an empty buffer.
    #[inline]
    fn next_from_block(&mut self) -> Option<MicroOp> {
        if self.block_pos == self.block.len() {
            if self.exhausted {
                return None;
            }
            self.block.clear();
            self.block_pos = 0;
            let pulled = self.source.next_block(&mut self.block, FETCH_BLOCK);
            self.ops_pulled += pulled as u64;
            if pulled == 0 {
                self.exhausted = true;
                return None;
            }
        }
        let op = self.block[self.block_pos];
        self.block_pos += 1;
        Some(op)
    }

    /// Serializes everything except the trace source itself (see
    /// `ops_pulled` for how the source is reconstructed).
    fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        use cs_trace::snap::encode_op;
        e.u64(self.ops_pulled);
        e.len(self.block.len());
        for op in &self.block {
            encode_op(e, op);
        }
        e.len(self.block_pos);
        e.len(self.rob.len());
        for entry in &self.rob {
            encode_op(e, &entry.op);
            e.u64(entry.seq);
            e.u8(match entry.state {
                EntryState::Waiting => 0,
                EntryState::Issued => 1,
                EntryState::Done => 2,
            });
            e.bool(entry.offcore_load);
        }
        e.len(self.fetch_buf.len());
        for op in &self.fetch_buf {
            encode_op(e, op);
        }
        match &self.pending {
            None => e.u8(0),
            Some(op) => {
                e.u8(1);
                encode_op(e, op);
            }
        }
        e.u64(self.next_seq);
        e.u64(self.fetch_stall_until);
        e.u64(self.mem_fetch_stall_until);
        e.u64(self.cur_fetch_line);
        e.bool(self.flush_pending);
        cs_trace::snap::encode_privilege(e, self.last_fetch_priv);
        e.bool(self.exhausted);
        e.len(self.waiting.len());
        for &seq in &self.waiting {
            e.u64(seq);
        }
        match &self.held_branch {
            None => e.u8(0),
            Some(op) => {
                e.u8(1);
                encode_op(e, op);
            }
        }
    }

    /// Restores a snapshot written by [`Thread::encode_snap`] into this
    /// thread, whose `source` must be a *fresh* copy of the snapshotted
    /// one (same factory, same seed). The source is fast-forwarded by
    /// re-pulling the snapshotted number of ops before the buffered state
    /// is installed, so its internal RNG/synth cursors land exactly where
    /// they were when the snapshot was taken.
    fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::{decode_op, SnapError};
        let ops_pulled = d.u64()?;
        // Fast-forward the fresh source. A source that dries up early is
        // not the source the snapshot was taken from.
        let mut remaining = ops_pulled;
        let mut scratch: Vec<MicroOp> = Vec::with_capacity(4096);
        while remaining > 0 {
            scratch.clear();
            let want = remaining.min(4096) as usize;
            let got = self.source.next_block(&mut scratch, want);
            if got == 0 {
                return Err(SnapError::Mismatch(format!(
                    "trace source dried up {remaining} ops before the snapshot point"
                )));
            }
            remaining -= got as u64;
        }
        self.ops_pulled = ops_pulled;
        let n = d.len()?;
        self.block.clear();
        for _ in 0..n {
            self.block.push(decode_op(d)?);
        }
        self.block_pos = d.len()?;
        if self.block_pos > self.block.len() {
            return Err(SnapError::Mismatch("block cursor past buffer end".into()));
        }
        let n = d.len()?;
        self.rob.clear();
        for _ in 0..n {
            let op = decode_op(d)?;
            let seq = d.u64()?;
            let state = match d.u8()? {
                0 => EntryState::Waiting,
                1 => EntryState::Issued,
                2 => EntryState::Done,
                t => return Err(SnapError::BadTag(t)),
            };
            let offcore_load = d.bool()?;
            self.rob.push_back(RobEntry { op, seq, state, offcore_load });
        }
        let n = d.len()?;
        self.fetch_buf.clear();
        for _ in 0..n {
            self.fetch_buf.push_back(decode_op(d)?);
        }
        self.pending = match d.u8()? {
            0 => None,
            1 => Some(decode_op(d)?),
            t => return Err(SnapError::BadTag(t)),
        };
        self.next_seq = d.u64()?;
        self.fetch_stall_until = d.u64()?;
        self.mem_fetch_stall_until = d.u64()?;
        self.cur_fetch_line = d.u64()?;
        self.flush_pending = d.bool()?;
        self.last_fetch_priv = cs_trace::snap::decode_privilege(d)?;
        self.exhausted = d.bool()?;
        let n = d.len()?;
        self.waiting.clear();
        for _ in 0..n {
            self.waiting.push(d.u64()?);
        }
        self.held_branch = match d.u8()? {
            0 => None,
            1 => Some(decode_op(d)?),
            t => return Err(SnapError::BadTag(t)),
        };
        Ok(())
    }

    /// Are all dependencies of the entry at `idx` satisfied?
    fn deps_ready(&self, idx: usize) -> bool {
        let e = &self.rob[idx];
        let front_seq = self.rob.front().expect("idx in range").seq;
        for dist in [e.op.dep1 as u64, e.op.dep2 as u64] {
            if dist == 0 {
                continue;
            }
            let Some(dep_seq) = e.seq.checked_sub(dist) else { continue };
            if dep_seq < front_seq {
                continue; // already retired
            }
            if self.rob[(dep_seq - front_seq) as usize].state != EntryState::Done {
                return false;
            }
        }
        true
    }
}

/// One out-of-order core with up to two SMT hardware threads.
#[derive(Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    threads: Vec<Thread>,
    stats: CoreStats,
    rs_used: usize,
    loads_in_rob: usize,
    stores_in_rob: usize,
    outstanding_offcore_loads: u32,
    store_drain: VecDeque<u64>,
    completion_heap: BinaryHeap<Reverse<(u64, usize, u64)>>,
    ready_dirty: bool,
    /// Shared gshare predictor (as on real SMT cores), when enabled.
    gshare: Option<Gshare>,
    /// Current fidelity level; see [`Fidelity`] and
    /// [`OooCore::set_fidelity`].
    fidelity: Fidelity,
}

impl OooCore {
    /// Creates a core with no attached threads.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(cfg: CoreConfig) -> Self {
        cfg.validate();
        let gshare = match cfg.branch_model {
            BranchModel::Trace => None,
            BranchModel::Gshare { bits } => Some(Gshare::new(bits)),
        };
        Self {
            threads: Vec::new(),
            stats: CoreStats::new(cfg.smt_threads, cfg.mshrs),
            rs_used: 0,
            loads_in_rob: 0,
            stores_in_rob: 0,
            outstanding_offcore_loads: 0,
            store_drain: VecDeque::new(),
            completion_heap: BinaryHeap::new(),
            ready_dirty: false,
            gshare,
            fidelity: Fidelity::Detailed,
            cfg,
        }
    }

    /// The gshare predictor's observed misprediction rate, when the core
    /// runs one.
    pub fn gshare_mispredict_rate(&self) -> Option<f64> {
        self.gshare.as_ref().map(|g| g.mispredict_rate())
    }

    /// Attaches a hardware thread's trace source.
    ///
    /// # Panics
    ///
    /// Panics if all `smt_threads` contexts are already occupied.
    pub fn attach(&mut self, source: Box<dyn TraceSource>) {
        assert!(self.threads.len() < self.cfg.smt_threads, "all hardware contexts occupied");
        self.threads.push(Thread::new(source));
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Zeroes statistics while preserving pipeline state (end-of-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::new(self.cfg.smt_threads, self.cfg.mshrs);
    }

    /// True when every attached thread has exhausted its trace and drained
    /// its pipeline.
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|t| {
            t.exhausted && t.rob.is_empty() && t.fetch_buf.is_empty() && t.pending.is_none()
        }) || self.threads.is_empty()
    }

    /// The fidelity level the core is currently running at.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Switches the core's fidelity level.
    ///
    /// Entering `Functional` first *drains* the pipeline: every in-flight
    /// instruction (ROB, then fetch buffer, in per-thread program order)
    /// retires immediately with no further memory traffic or timing, and
    /// all structural bookkeeping (reservation stations, load/store
    /// queues, MSHR occupancy, completion/store-drain timers) is cleared.
    /// Drained instructions count toward the committed-instruction
    /// meters, and branches that had not yet been issue-counted are
    /// counted here, so the meters stay monotone and deterministic. A
    /// gshare-held branch and a fetch-stalled `pending` op are *not*
    /// drained — the functional path consumes them first, preserving the
    /// exact resolution order the detailed path would have used.
    ///
    /// Switching back to `Detailed` is trivial: the functional path keeps
    /// the pipeline empty, so the detailed model simply starts fetching.
    pub fn set_fidelity(&mut self, fidelity: Fidelity) {
        if fidelity == self.fidelity {
            return;
        }
        if fidelity == Fidelity::Functional {
            self.drain_pipeline();
        }
        self.fidelity = fidelity;
    }

    fn drain_pipeline(&mut self) {
        for tid in 0..self.threads.len() {
            while let Some(e) = self.threads[tid].rob.pop_front() {
                // Waiting entries never reached issue, where branches are
                // normally counted; count them now.
                if e.state == EntryState::Waiting {
                    if let OpKind::Branch { mispredict } = e.op.kind {
                        self.stats.branches += 1;
                        if mispredict {
                            self.stats.mispredicts += 1;
                        }
                    }
                }
                self.stats.committed[usize::from(e.op.is_kernel())] += 1;
                self.stats.per_thread_committed[tid] += 1;
            }
            while let Some(op) = self.threads[tid].fetch_buf.pop_front() {
                if let OpKind::Branch { mispredict } = op.kind {
                    self.stats.branches += 1;
                    if mispredict {
                        self.stats.mispredicts += 1;
                    }
                }
                self.stats.committed[usize::from(op.is_kernel())] += 1;
                self.stats.per_thread_committed[tid] += 1;
            }
            self.threads[tid].waiting.clear();
            self.threads[tid].flush_pending = false;
        }
        self.completion_heap.clear();
        self.store_drain.clear();
        self.rs_used = 0;
        self.loads_in_rob = 0;
        self.stores_in_rob = 0;
        self.outstanding_offcore_loads = 0;
        self.ready_dirty = false;
    }

    /// Advances the core by one cycle at time `now`, using `mem` for all
    /// instruction and data accesses. `core_id` is this core's global id
    /// within `mem`.
    pub fn step(&mut self, core_id: usize, mem: &mut MemorySystem, now: u64) {
        match self.fidelity {
            Fidelity::Detailed => {
                self.complete(now);
                self.fetch(core_id, mem, now);
                self.dispatch();
                self.issue(core_id, mem, now);
                self.commit(now);
                self.per_cycle_stats(now);
            }
            Fidelity::Functional => self.step_functional(core_id, mem, now),
        }
    }

    /// One functional-mode cycle: retire up to `width` instructions (one
    /// per thread per round-robin round, starting at `now % threads` like
    /// the detailed commit stage) while driving every instruction-line
    /// crossing and data reference through the memory system's warming
    /// path. Gshare branches are held and resolved against the next
    /// fetched PC exactly as the detailed frontend does, so the predictor
    /// sees the identical training sequence. Cycles still classify as
    /// committing/stalled and flow into the same per-cycle statistics, so
    /// the audit partition (`committing + stalled == cycles`) holds in
    /// both fidelity levels.
    fn step_functional(&mut self, core_id: usize, mem: &mut MemorySystem, now: u64) {
        let n = self.threads.len();
        // The dominant warming shape — one hardware thread, trace-carried
        // branch outcomes — takes a batched fast path that consumes the
        // block buffer in runs instead of op-at-a-time rounds.
        if n == 1 && self.gshare.is_none() {
            self.step_functional_single(core_id, mem, now);
            return;
        }
        let mut first_priv: Option<Privilege> = None;
        if n > 0 {
            let mut budget = self.cfg.width;
            let start = (now % n as u64) as usize;
            'rounds: loop {
                let mut progressed = false;
                for k in 0..n {
                    if budget == 0 {
                        break 'rounds;
                    }
                    let tid = (start + k) % n;
                    let thread = &mut self.threads[tid];
                    let Some(op) = thread.pending.take().or_else(|| thread.next_from_block())
                    else {
                        continue;
                    };
                    progressed = true;
                    let line = op.pc >> 6;
                    if line != thread.cur_fetch_line {
                        mem.ifetch_warm(core_id, op.privilege, op.pc, now);
                        thread.cur_fetch_line = line;
                    }
                    thread.last_fetch_priv = op.privilege;
                    if let Some(g) = self.gshare.as_mut() {
                        if let Some(held) = thread.held_branch.take() {
                            let taken = op.pc != held.pc + 4;
                            let mispredict = g.predict_and_update(held.pc, taken);
                            self.stats.branches += 1;
                            if mispredict {
                                self.stats.mispredicts += 1;
                            }
                            self.stats.committed[usize::from(held.is_kernel())] += 1;
                            self.stats.per_thread_committed[tid] += 1;
                            if first_priv.is_none() {
                                first_priv = Some(held.privilege);
                            }
                            budget -= 1;
                            if budget == 0 {
                                // The resolving op is not lost: it waits
                                // in `pending` for the next cycle.
                                self.threads[tid].pending = Some(op);
                                break 'rounds;
                            }
                        }
                        if op.kind.is_branch() {
                            self.threads[tid].held_branch = Some(op);
                            continue;
                        }
                    }
                    match op.kind {
                        OpKind::Branch { mispredict } => {
                            self.stats.branches += 1;
                            if mispredict {
                                self.stats.mispredicts += 1;
                            }
                        }
                        OpKind::Load | OpKind::Store => {
                            let mref = op.mem.expect("memory ops carry refs");
                            mem.data_access_warm(
                                core_id,
                                op.privilege,
                                mref.addr,
                                matches!(op.kind, OpKind::Store),
                                op.pc,
                                now,
                            );
                        }
                        _ => {}
                    }
                    self.stats.committed[usize::from(op.is_kernel())] += 1;
                    self.stats.per_thread_committed[tid] += 1;
                    if first_priv.is_none() {
                        first_priv = Some(op.privilege);
                    }
                    budget -= 1;
                }
                if !progressed {
                    break;
                }
            }
        }
        if let Some(p) = first_priv {
            self.stats.committing_cycles[usize::from(p.is_kernel())] += 1;
        } else if n > 0 {
            self.stats.stalled_cycles[usize::from(self.stall_privilege().is_kernel())] += 1;
        }
        self.per_cycle_stats(now);
    }

    /// The single-thread, trace-branch specialization of
    /// [`OooCore::step_functional`]: byte-identical retirement order and
    /// statistics, restructured for throughput. The round-robin scaffolding
    /// collapses (one thread always wins every round), the per-op stats
    /// stores are batched into local counters flushed once per cycle, and
    /// the hot per-thread fields (fetch line, privilege) live in locals so
    /// the inner loop carries no redundant loads or round bookkeeping.
    fn step_functional_single(&mut self, core_id: usize, mem: &mut MemorySystem, now: u64) {
        let thread = &mut self.threads[0];
        let mut budget = self.cfg.width;
        let mut committed = [0u64; 2];
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        let mut first_priv: Option<Privilege> = None;
        // Local mirrors of the hot per-thread fields keep the inner loop
        // free of repeated field loads/stores; written back once below.
        let mut cur_line = thread.cur_fetch_line;
        let mut last_priv = thread.last_fetch_priv;
        // A fetch-stalled op parked by a previous detailed phase retires
        // first, exactly as the generic path's `pending.take()` would.
        let mut pending = thread.pending.take();
        'cycle: while budget > 0 {
            let op = if let Some(op) = pending.take() {
                op
            } else {
                if thread.block_pos == thread.block.len() {
                    if thread.exhausted {
                        break 'cycle;
                    }
                    thread.block.clear();
                    thread.block_pos = 0;
                    let pulled = thread.source.next_block(&mut thread.block, FETCH_BLOCK);
                    thread.ops_pulled += pulled as u64;
                    if pulled == 0 {
                        thread.exhausted = true;
                        break 'cycle;
                    }
                }
                let op = thread.block[thread.block_pos];
                thread.block_pos += 1;
                op
            };
            budget -= 1;
            let line = op.pc >> 6;
            if line != cur_line {
                mem.ifetch_warm(core_id, op.privilege, op.pc, now);
                cur_line = line;
            }
            last_priv = op.privilege;
            match op.kind {
                OpKind::Branch { mispredict } => {
                    branches += 1;
                    mispredicts += u64::from(mispredict);
                }
                OpKind::Load | OpKind::Store => {
                    let mref = op.mem.expect("memory ops carry refs");
                    mem.data_access_warm(
                        core_id,
                        op.privilege,
                        mref.addr,
                        matches!(op.kind, OpKind::Store),
                        op.pc,
                        now,
                    );
                }
                _ => {}
            }
            committed[usize::from(op.is_kernel())] += 1;
            if first_priv.is_none() {
                first_priv = Some(op.privilege);
            }
        }
        thread.cur_fetch_line = cur_line;
        thread.last_fetch_priv = last_priv;
        self.stats.branches += branches;
        self.stats.mispredicts += mispredicts;
        self.stats.committed[0] += committed[0];
        self.stats.committed[1] += committed[1];
        self.stats.per_thread_committed[0] += committed[0] + committed[1];
        if let Some(p) = first_priv {
            self.stats.committing_cycles[usize::from(p.is_kernel())] += 1;
        } else {
            self.stats.stalled_cycles[usize::from(self.stall_privilege().is_kernel())] += 1;
        }
        self.per_cycle_stats(now);
    }

    // ------------------------------------------------------------------

    fn complete(&mut self, now: u64) {
        while let Some(&Reverse((done_at, tid, seq))) = self.completion_heap.peek() {
            if done_at > now {
                break;
            }
            self.completion_heap.pop();
            let thread = &mut self.threads[tid];
            let front_seq = match thread.rob.front() {
                Some(e) => e.seq,
                None => continue,
            };
            if seq < front_seq {
                continue; // already retired (cannot normally happen)
            }
            let idx = (seq - front_seq) as usize;
            let entry = &mut thread.rob[idx];
            entry.state = EntryState::Done;
            if entry.offcore_load {
                self.outstanding_offcore_loads -= 1;
            }
            if let OpKind::Branch { mispredict: true } = entry.op.kind {
                // Redirect: frontend refill penalty from resolution time.
                thread.fetch_stall_until =
                    thread.fetch_stall_until.max(now + self.cfg.mispredict_penalty as u64);
                thread.flush_pending = false;
            }
            self.ready_dirty = true;
        }
        // Drain completed store RFOs.
        while let Some(&t) = self.store_drain.front() {
            if t > now {
                break;
            }
            self.store_drain.pop_front();
        }
    }

    fn fetch(&mut self, core_id: usize, mem: &mut MemorySystem, now: u64) {
        if self.threads.is_empty() {
            return;
        }
        // One thread fetches per cycle: round-robin, or ICOUNT (the thread
        // with the fewest instructions in flight).
        let tid = match self.cfg.smt_fetch {
            SmtFetchPolicy::RoundRobin => (now % self.threads.len() as u64) as usize,
            SmtFetchPolicy::Icount => self
                .threads
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.rob.len() + t.fetch_buf.len())
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        let l1i_lat = mem.config().l1i.latency;
        let thread = &mut self.threads[tid];
        if thread.exhausted && thread.pending.is_none() {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        while budget > 0
            && thread.fetch_buf.len() < self.cfg.fetch_buffer
            && !thread.flush_pending
            && now >= thread.fetch_stall_until
        {
            let op = match thread.pending.take().or_else(|| thread.next_from_block()) {
                Some(op) => op,
                None => break,
            };
            let line = op.pc >> 6;
            if line != thread.cur_fetch_line {
                let outcome = mem.ifetch(core_id, op.privilege, op.pc, now);
                thread.cur_fetch_line = line;
                if outcome.latency > l1i_lat {
                    let mut stall = (outcome.latency - l1i_lat) as u64;
                    if outcome.offcore {
                        // The decoupled frontend queues hide part of an
                        // off-core fetch.
                        stall = stall.saturating_sub(self.cfg.fetch_ahead_credit as u64);
                    }
                    thread.fetch_stall_until = now + stall;
                    thread.mem_fetch_stall_until = now + stall;
                    if outcome.level == cs_memsys::ServiceLevel::L2 {
                        let tlb = (outcome.itlb_stall + outcome.stlb_stall) as u64;
                        self.stats.l2_ifetch_stall_cycles += stall.saturating_sub(tlb);
                    }
                    thread.pending = Some(op);
                    break;
                }
            }
            thread.last_fetch_priv = op.privilege;

            // Gshare mode: a branch's outcome is reconstructed from the
            // next instruction's PC (taken iff not the fall-through), so
            // branches are held one slot and resolved here.
            if let Some(g) = self.gshare.as_mut() {
                if let Some(held) = thread.held_branch.take() {
                    let taken = op.pc != held.pc + 4;
                    let mispredict = g.predict_and_update(held.pc, taken);
                    let resolved = MicroOp::branch(held.pc, mispredict)
                        .with_privilege(held.privilege)
                        .with_deps(held.dep1 as u64, held.dep2 as u64);
                    thread.fetch_buf.push_back(resolved);
                    budget = budget.saturating_sub(1);
                    if mispredict {
                        thread.flush_pending = true;
                        thread.pending = Some(op);
                        break;
                    }
                    if budget == 0 || thread.fetch_buf.len() >= self.cfg.fetch_buffer {
                        thread.pending = Some(op);
                        break;
                    }
                }
                if op.kind.is_branch() {
                    thread.held_branch = Some(op);
                    continue;
                }
            }

            let halts = matches!(op.kind, OpKind::Branch { mispredict: true });
            thread.fetch_buf.push_back(op);
            budget -= 1;
            if halts {
                // Stop fetching down the (unknown) wrong path until the
                // branch resolves.
                thread.flush_pending = true;
                break;
            }
        }
    }

    fn dispatch(&mut self) {
        let mut budget = self.cfg.width;
        let rob_cap = self.cfg.rob_per_thread();
        let n = self.threads.len();
        let mut blocked = [false; 2];
        while budget > 0 {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // `tid` also indexes `self.threads`
            for tid in 0..n {
                if budget == 0 || blocked[tid] {
                    continue;
                }
                let can_rs = self.rs_used < self.cfg.reservation_stations;
                let thread = &mut self.threads[tid];
                let Some(op) = thread.fetch_buf.front() else {
                    blocked[tid] = true;
                    continue;
                };
                let room = thread.rob.len() < rob_cap
                    && can_rs
                    && (!op.is_load() || self.loads_in_rob < self.cfg.load_queue)
                    && (!op.is_store() || self.stores_in_rob < self.cfg.store_queue);
                if !room {
                    blocked[tid] = true;
                    continue;
                }
                let op = thread.fetch_buf.pop_front().expect("checked above");
                let seq = thread.next_seq;
                thread.next_seq += 1;
                if op.is_load() {
                    self.loads_in_rob += 1;
                }
                if op.is_store() {
                    self.stores_in_rob += 1;
                }
                thread
                    .rob
                    .push_back(RobEntry { op, seq, state: EntryState::Waiting, offcore_load: false });
                thread.waiting.push(seq);
                self.rs_used += 1;
                budget -= 1;
                progressed = true;
                self.ready_dirty = true;
            }
            if !progressed {
                break;
            }
        }
    }

    fn issue(&mut self, core_id: usize, mem: &mut MemorySystem, now: u64) {
        if !self.ready_dirty {
            return;
        }
        let mut budget = self.cfg.width;
        let mut mem_ports = self.cfg.mem_ports;
        let mut fp_ports = self.cfg.fp_ports;
        let mut div_ports = 1u32;
        // Entries blocked on ports (or left unscanned when the budget runs
        // out) must be retried next cycle; entries blocked on dependencies
        // or MSHRs wake up via the completion path setting `ready_dirty`.
        let mut structural_block = false;

        let n = self.threads.len();
        let start = (now % n.max(1) as u64) as usize;
        for k in 0..n {
            let tid = (start + k) % n;
            // Walk this thread's waiting list (program order), compacting
            // out the entries that issue.
            let mut waiting = std::mem::take(&mut self.threads[tid].waiting);
            let mut kept = 0;
            let mut stop_issuing = false;
            for w in 0..waiting.len() {
                let seq = waiting[w];
                if budget == 0 || stop_issuing {
                    waiting[kept] = seq;
                    kept += 1;
                    continue;
                }
                if self.cfg.in_order && kept > 0 {
                    // In-order issue: an older op is still waiting.
                    waiting[kept] = seq;
                    kept += 1;
                    continue;
                }
                let front_seq = self.threads[tid].rob.front().expect("waiting implies entries").seq;
                let idx = (seq - front_seq) as usize;
                debug_assert_eq!(self.threads[tid].rob[idx].state, EntryState::Waiting);
                let kind = self.threads[tid].rob[idx].op.kind;
                // Port availability.
                let port_ok = match kind {
                    OpKind::Load | OpKind::Store => mem_ports > 0,
                    OpKind::Fp => fp_ports > 0,
                    OpKind::IntDiv => div_ports > 0,
                    _ => true,
                };
                // Conservative MSHR gate: no loads issue while full
                // (re-checked per issue, since loads issued earlier this
                // cycle may have taken the last slots).
                let mshr_ok =
                    !(kind.is_load() && self.outstanding_offcore_loads >= self.cfg.mshrs);
                if !port_ok {
                    structural_block = true;
                    waiting[kept] = seq;
                    kept += 1;
                    continue;
                }
                if !mshr_ok || !self.threads[tid].deps_ready(idx) {
                    waiting[kept] = seq;
                    kept += 1;
                    continue;
                }

                // Issue the op.
                let op = self.threads[tid].rob[idx].op;
                let done_at = match op.kind {
                    OpKind::IntAlu => now + 1,
                    OpKind::IntMul => now + 3,
                    OpKind::IntDiv => {
                        div_ports -= 1;
                        now + 24
                    }
                    OpKind::Fp => {
                        fp_ports -= 1;
                        now + 4
                    }
                    OpKind::Branch { mispredict } => {
                        self.stats.branches += 1;
                        if mispredict {
                            self.stats.mispredicts += 1;
                        }
                        now + 1
                    }
                    OpKind::Load => {
                        mem_ports -= 1;
                        let mref = op.mem.expect("loads carry memory refs");
                        let out =
                            mem.data_access(core_id, op.privilege, mref.addr, false, op.pc, now);
                        if out.offcore {
                            self.threads[tid].rob[idx].offcore_load = true;
                            self.outstanding_offcore_loads += 1;
                        }
                        now + out.latency as u64
                    }
                    OpKind::Store => {
                        mem_ports -= 1;
                        let mref = op.mem.expect("stores carry memory refs");
                        let out =
                            mem.data_access(core_id, op.privilege, mref.addr, true, op.pc, now);
                        if out.offcore {
                            // Store RFOs occupy the super queue until the
                            // ownership response returns, but do not block
                            // dependents or retirement.
                            let release = now + out.latency as u64;
                            let pos = self.store_drain.partition_point(|&t| t <= release);
                            self.store_drain.insert(pos, release);
                        }
                        now + 1
                    }
                };
                self.threads[tid].rob[idx].state = EntryState::Issued;
                self.completion_heap.push(Reverse((done_at, tid, seq)));
                self.rs_used -= 1;
                budget -= 1;
                if budget == 0 {
                    stop_issuing = true;
                }
            }
            waiting.truncate(kept);
            self.threads[tid].waiting = waiting;
        }
        self.ready_dirty = structural_block || (budget == 0 && self.rs_used > 0);
    }

    fn commit(&mut self, now: u64) {
        let mut budget = self.cfg.width;
        let mut committed_any = false;
        let mut first_priv: Option<Privilege> = None;
        let n = self.threads.len();
        if n == 0 {
            return;
        }
        let start = (now % n as u64) as usize;
        for k in 0..n {
            let tid = (start + k) % n;
            while budget > 0 {
                let thread = &mut self.threads[tid];
                match thread.rob.front() {
                    Some(e) if e.state == EntryState::Done => {
                        let e = thread.rob.pop_front().expect("front exists");
                        let priv_idx = usize::from(e.op.is_kernel());
                        self.stats.committed[priv_idx] += 1;
                        self.stats.per_thread_committed[tid] += 1;
                        if e.op.is_load() {
                            self.loads_in_rob -= 1;
                        }
                        if e.op.is_store() {
                            self.stores_in_rob -= 1;
                        }
                        committed_any = true;
                        if first_priv.is_none() {
                            first_priv = Some(e.op.privilege);
                        }
                        budget -= 1;
                    }
                    _ => break,
                }
            }
        }
        if committed_any {
            let idx = usize::from(first_priv.expect("set when committing").is_kernel());
            self.stats.committing_cycles[idx] += 1;
        } else {
            self.stats.stalled_cycles[usize::from(self.stall_privilege().is_kernel())] += 1;
        }
    }

    /// Privilege a stalled (nothing-committed) cycle is attributed to: the
    /// oldest in-flight instruction, or the instruction being fetched when
    /// the window is empty. Shared between the per-cycle `commit` path and
    /// the bulk idle accounting so the two can never drift apart.
    fn stall_privilege(&self) -> Privilege {
        self.threads
            .iter()
            .filter_map(|t| t.rob.front().map(|e| e.op.privilege))
            .next()
            .or_else(|| {
                self.threads.iter().filter_map(|t| t.fetch_buf.front()).next().map(|o| o.privilege)
            })
            .unwrap_or_else(|| {
                self.threads.first().map(|t| t.last_fetch_priv).unwrap_or(Privilege::User)
            })
    }

    fn per_cycle_stats(&mut self, now: u64) {
        self.stats.cycles += 1;
        let rob_total: usize = self.threads.iter().map(|t| t.rob.len()).sum();
        self.stats.rob_occupancy_sum += rob_total as u64;
        self.stats.offcore_load_occupancy.record(self.outstanding_offcore_loads as u64);
        let data_outstanding =
            self.outstanding_offcore_loads > 0 || !self.store_drain.is_empty();
        if data_outstanding {
            self.stats.offcore_outstanding_cycles += 1;
        }
        let ifetch_mem_stall = self.threads.iter().any(|t| now < t.mem_fetch_stall_until);
        if data_outstanding || ifetch_mem_stall {
            self.stats.memory_cycles += 1;
        }
    }

    // ------------------------------------------------------------------
    // Event-driven stall skipping.
    //
    // A cycle is *dead* when `step` would change nothing beyond the
    // bulk-accountable idle pattern: no completion ripens, nothing can
    // commit, dispatch and fetch are blocked, and the issue scan is known
    // to be a no-op (`ready_dirty` false). `next_event_cycle` certifies
    // the earliest cycle at which that might stop holding; the chip may
    // then jump straight to it, bulk-accounting the skipped span with
    // `account_idle_cycles`. Returning an earlier cycle than necessary is
    // always safe (the skip is merely shorter); returning a later one
    // would break byte-identity, so every bound below is conservative.

    /// Earliest cycle ≥ `now` at which stepping this core could do
    /// anything beyond idle accounting — `now` itself when the core is
    /// not certifiably idle, `u64::MAX` when it is fully drained and no
    /// timer can ever wake it.
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        if self.threads.is_empty() {
            return u64::MAX;
        }
        // Functional mode has no dead cycles while ops remain: every step
        // retires work. Once fully drained, nothing can ever wake it.
        if self.fidelity == Fidelity::Functional {
            return if self.is_done() { u64::MAX } else { now };
        }
        // A pending issue scan must run this cycle: its outcome (issues,
        // or clearing the flag) is state the naive loop would produce.
        if self.ready_dirty {
            return now;
        }
        let mut next = u64::MAX;
        if let Some(&Reverse((done_at, _, _))) = self.completion_heap.peek() {
            if done_at <= now {
                return now;
            }
            next = next.min(done_at);
        }
        if let Some(&t) = self.store_drain.front() {
            if t <= now {
                return now;
            }
            next = next.min(t);
        }
        // Commit: a Done entry at any ROB head retires this cycle.
        if self.threads.iter().any(|t| {
            t.rob.front().is_some_and(|e| e.state == EntryState::Done)
        }) {
            return now;
        }
        // Dispatch: a fetch-buffer head with room moves into the ROB this
        // cycle. Room can otherwise only appear through a completion or
        // commit, which are events in their own right.
        let rob_cap = self.cfg.rob_per_thread();
        for t in &self.threads {
            if let Some(op) = t.fetch_buf.front() {
                let room = t.rob.len() < rob_cap
                    && self.rs_used < self.cfg.reservation_stations
                    && (!op.is_load() || self.loads_in_rob < self.cfg.load_queue)
                    && (!op.is_store() || self.stores_in_rob < self.cfg.store_queue);
                if room {
                    return now;
                }
            }
        }
        next.min(self.next_fetch_cycle(now))
    }

    /// When a thread could fetch, ignoring the SMT fetch-slot rotation:
    /// `Some(fetch_stall_until)` if it has (or may refill) ops and its
    /// frontend is not flush- or buffer-blocked, else `None`. A `None`
    /// thread can only be re-enabled by a completion (flush resolution)
    /// or dispatch (buffer room) — events certified elsewhere. A thread
    /// with an empty block buffer but an unexhausted source counts as
    /// ready: the refill attempt itself mutates the source (and may set
    /// `exhausted`, which `is_done` observes), so it must not be skipped.
    fn thread_fetch_ready(t: &Thread, fetch_buffer: usize) -> Option<u64> {
        if t.flush_pending || t.fetch_buf.len() >= fetch_buffer {
            return None;
        }
        let ops_maybe = t.pending.is_some() || t.block_pos < t.block.len() || !t.exhausted;
        if ops_maybe {
            Some(t.fetch_stall_until)
        } else {
            None
        }
    }

    /// Earliest cycle ≥ `now` at which `fetch` would do real work, given
    /// that per-thread state is frozen until then (the premise of a dead
    /// span). Honors the SMT fetch rotation: under round-robin a thread
    /// only fetches on cycles ≡ its index (mod threads); under ICOUNT the
    /// selection is a pure function of ROB and fetch-buffer occupancy,
    /// which cannot change during a dead span, so only the currently
    /// chosen thread is consulted — including the modeled quirk that a
    /// drained chosen thread starves the others.
    fn next_fetch_cycle(&self, now: u64) -> u64 {
        let n = self.threads.len() as u64;
        match self.cfg.smt_fetch {
            SmtFetchPolicy::RoundRobin => {
                let mut next = u64::MAX;
                for (tid, t) in self.threads.iter().enumerate() {
                    let Some(ready) = Self::thread_fetch_ready(t, self.cfg.fetch_buffer) else {
                        continue;
                    };
                    let at = ready.max(now);
                    let phase = (tid as u64 + n - at % n) % n;
                    next = next.min(at + phase);
                }
                next
            }
            SmtFetchPolicy::Icount => {
                let chosen = self
                    .threads
                    .iter()
                    .min_by_key(|t| t.rob.len() + t.fetch_buf.len())
                    .expect("threads checked non-empty");
                match Self::thread_fetch_ready(chosen, self.cfg.fetch_buffer) {
                    Some(ready) => ready.max(now),
                    None => u64::MAX,
                }
            }
        }
    }

    /// Bulk-accounts `span` certified-dead cycles starting at `start`,
    /// producing byte-identical statistics to stepping each cycle. All
    /// state consulted here is frozen for the whole span — the definition
    /// of a dead span certified by [`OooCore::next_event_cycle`].
    pub fn account_idle_cycles(&mut self, start: u64, span: u64) {
        let rob_total: usize = self.threads.iter().map(|t| t.rob.len()).sum();
        let data_outstanding =
            self.outstanding_offcore_loads > 0 || !self.store_drain.is_empty();
        // Frontend memory stalls may expire mid-span: count exactly the
        // cycles `c` in [start, start+span) with `c < mem_stall_until`,
        // as the per-cycle path would.
        let mem_stall_until =
            self.threads.iter().map(|t| t.mem_fetch_stall_until).max().unwrap_or(0);
        let mem_stall_cycles = mem_stall_until.saturating_sub(start).min(span);
        let stall_priv = if self.threads.is_empty() {
            None // `commit` never classifies cycles of a threadless core.
        } else {
            Some(usize::from(self.stall_privilege().is_kernel()))
        };
        self.stats.record_idle_span(
            span,
            rob_total as u64,
            self.outstanding_offcore_loads as u64,
            data_outstanding,
            mem_stall_cycles,
            stall_priv,
        );
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore.

    /// Serializes the complete core state — pipeline, in-flight timers,
    /// predictor, statistics, and per-thread fast-forward cursors — into
    /// `e`. The attached trace sources are captured by their pull count
    /// only (see `Thread::encode_snap`).
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        self.stats.encode_snap(e);
        e.len(self.rs_used);
        e.len(self.loads_in_rob);
        e.len(self.stores_in_rob);
        e.u32(self.outstanding_offcore_loads);
        e.len(self.store_drain.len());
        for &t in &self.store_drain {
            e.u64(t);
        }
        // BinaryHeap iteration order is unspecified; serialize sorted so
        // identical states produce identical bytes.
        let heap: Vec<_> = self.completion_heap.clone().into_sorted_vec();
        e.len(heap.len());
        for Reverse((done_at, tid, seq)) in heap {
            e.u64(done_at);
            e.len(tid);
            e.u64(seq);
        }
        e.bool(self.ready_dirty);
        e.u8(match self.fidelity {
            Fidelity::Detailed => 0,
            Fidelity::Functional => 1,
        });
        match &self.gshare {
            None => e.u8(0),
            Some(g) => {
                e.u8(1);
                g.encode_snap(e);
            }
        }
        e.len(self.threads.len());
        for t in &self.threads {
            t.encode_snap(e);
        }
    }

    /// Restores a snapshot written by [`OooCore::encode_snap`] into this
    /// core, which must have been built with the same configuration and
    /// have the same number of threads attached (each with a fresh copy
    /// of the snapshotted trace source).
    pub fn restore_snap(
        &mut self,
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<(), cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        self.stats = CoreStats::decode_snap(d)?;
        self.rs_used = d.len()?;
        self.loads_in_rob = d.len()?;
        self.stores_in_rob = d.len()?;
        self.outstanding_offcore_loads = d.u32()?;
        let n = d.len()?;
        self.store_drain.clear();
        for _ in 0..n {
            self.store_drain.push_back(d.u64()?);
        }
        let n = d.len()?;
        self.completion_heap.clear();
        for _ in 0..n {
            let done_at = d.u64()?;
            let tid = d.len()?;
            let seq = d.u64()?;
            self.completion_heap.push(Reverse((done_at, tid, seq)));
        }
        self.ready_dirty = d.bool()?;
        self.fidelity = match d.u8()? {
            0 => Fidelity::Detailed,
            1 => Fidelity::Functional,
            t => return Err(SnapError::BadTag(t)),
        };
        match (d.u8()?, &mut self.gshare) {
            (0, None) => {}
            (1, slot @ Some(_)) => *slot = Some(Gshare::decode_snap(d)?),
            (0 | 1, _) => {
                return Err(SnapError::Mismatch("branch-model mismatch with snapshot".into()))
            }
            (t, _) => return Err(SnapError::BadTag(t)),
        }
        let n = d.len()?;
        if n != self.threads.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {n} threads, core has {}",
                self.threads.len()
            )));
        }
        for t in &mut self.threads {
            t.restore_snap(d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_memsys::{MemSysConfig, MemorySystem, PrefetchConfig};
    use cs_trace::source::VecSource;
    use cs_trace::MicroOp;

    fn mem() -> MemorySystem {
        let cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        MemorySystem::new(cfg, 1)
    }

    fn run(core: &mut OooCore, mem: &mut MemorySystem, max_cycles: u64) -> u64 {
        let mut now = 0;
        while !core.is_done() && now < max_cycles {
            core.step(0, mem, now);
            now += 1;
        }
        now
    }

    fn alu_ops(n: usize) -> Vec<MicroOp> {
        (0..n).map(|i| MicroOp::alu(0x40_0000 + 4 * i as u64)).collect()
    }

    /// Runs `warm` cycles, resets statistics (steady-state measurement as
    /// in the paper's methodology), then runs `measure` cycles more.
    fn warm_run(core: &mut OooCore, m: &mut MemorySystem, warm: u64, measure: u64) {
        for now in 0..warm {
            core.step(0, m, now);
        }
        core.reset_stats();
        for now in warm..warm + measure {
            core.step(0, m, now);
        }
    }

    #[test]
    fn independent_alu_ops_reach_full_width() {
        // A small loop of independent ALU ops, measured after the I-cache
        // is warm: a 4-wide core must sustain IPC close to 4.
        use cs_trace::source::LoopSource;
        let ops: Vec<MicroOp> =
            (0..256).map(|i| MicroOp::alu(0x40_0000 + 4 * (i % 256) as u64)).collect();
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(LoopSource::new(ops)));
        let mut m = mem();
        warm_run(&mut core, &mut m, 20_000, 20_000);
        let s = core.stats();
        assert!(s.ipc() > 3.0, "ipc {}", s.ipc());
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        use cs_trace::source::LoopSource;
        let ops: Vec<MicroOp> = (0..256)
            .map(|i| MicroOp::alu(0x40_0000 + 4 * (i % 256) as u64).with_deps(1, 0))
            .collect();
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(LoopSource::new(ops)));
        let mut m = mem();
        warm_run(&mut core, &mut m, 20_000, 20_000);
        let s = core.stats();
        assert!(s.ipc() <= 1.05, "chained ops cannot exceed IPC 1, got {}", s.ipc());
        assert!(s.ipc() > 0.7, "ipc suspiciously low: {}", s.ipc());
    }

    #[test]
    fn in_order_core_is_slower_on_dependent_loads() {
        // Each iteration: a long-latency load whose value feeds the
        // following ALU chain. An OoO window runs ahead into later
        // iterations; an in-order core cannot issue past the stalled
        // consumer.
        let mk = || {
            let mut ops = Vec::new();
            for i in 0..200u64 {
                ops.push(MicroOp::load(0x40_0000, 0x1000_0000 + i * 131 * 64, 8));
                for j in 0..10u64 {
                    ops.push(MicroOp::alu(0x40_0010 + 4 * j).with_deps(1, 0));
                }
            }
            ops
        };
        let mut ooo = OooCore::new(CoreConfig::x5670());
        ooo.attach(Box::new(VecSource::new(mk())));
        let mut m1 = mem();
        let ooo_cycles = run(&mut ooo, &mut m1, 1_000_000);

        let mut ino = OooCore::new(CoreConfig { in_order: true, ..CoreConfig::x5670() });
        ino.attach(Box::new(VecSource::new(mk())));
        let mut m2 = mem();
        let ino_cycles = run(&mut ino, &mut m2, 1_000_000);
        assert!(
            ooo_cycles * 2 < ino_cycles,
            "OoO ({ooo_cycles}) must beat in-order ({ino_cycles}) decisively"
        );
    }

    #[test]
    fn dependent_loads_serialize_but_independent_loads_overlap() {
        // 64 dependent loads (one chain) vs 64 independent loads.
        let chain: Vec<MicroOp> = (0..64u64)
            .map(|i| MicroOp::load(0x40_0000, 0x2000_0000 + i * 997 * 64, 8).with_deps(1, 0))
            .collect();
        let indep: Vec<MicroOp> =
            (0..64u64).map(|i| MicroOp::load(0x40_0000, 0x3000_0000 + i * 997 * 64, 8)).collect();

        let mut a = OooCore::new(CoreConfig::x5670());
        a.attach(Box::new(VecSource::new(chain)));
        let mut m1 = mem();
        let chain_cycles = run(&mut a, &mut m1, 1_000_000);

        let mut b = OooCore::new(CoreConfig::x5670());
        b.attach(Box::new(VecSource::new(indep)));
        let mut m2 = mem();
        let indep_cycles = run(&mut b, &mut m2, 1_000_000);

        assert!(
            indep_cycles * 4 < chain_cycles,
            "independent loads ({indep_cycles}) must overlap far better than a chain ({chain_cycles})"
        );
        assert!(b.stats().mlp() > 2.0, "independent-load MLP {}", b.stats().mlp());
        assert!(a.stats().mlp() < 1.5, "chained-load MLP {}", a.stats().mlp());
    }

    #[test]
    fn mshr_limit_caps_mlp() {
        let indep: Vec<MicroOp> =
            (0..512u64).map(|i| MicroOp::load(0x40_0000, 0x5000_0000 + i * 997 * 64, 8)).collect();
        let mut core = OooCore::new(CoreConfig { mshrs: 4, ..CoreConfig::x5670() });
        core.attach(Box::new(VecSource::new(indep)));
        let mut m = mem();
        run(&mut core, &mut m, 1_000_000);
        assert!(core.stats().mlp() <= 4.0 + 1e-9, "mlp {} exceeds MSHR cap", core.stats().mlp());
    }

    #[test]
    fn mispredicts_charge_fetch_penalty() {
        let clean: Vec<MicroOp> =
            (0..2000).map(|i| MicroOp::branch(0x40_0000 + 4 * (i % 64) as u64, false)).collect();
        let dirty: Vec<MicroOp> = (0..2000)
            .map(|i| MicroOp::branch(0x40_0000 + 4 * (i % 64) as u64, i % 4 == 0))
            .collect();
        let mut a = OooCore::new(CoreConfig::x5670());
        a.attach(Box::new(VecSource::new(clean)));
        let mut m1 = mem();
        let fast = run(&mut a, &mut m1, 1_000_000);
        let mut b = OooCore::new(CoreConfig::x5670());
        b.attach(Box::new(VecSource::new(dirty)));
        let mut m2 = mem();
        let slow = run(&mut b, &mut m2, 1_000_000);
        assert!(slow > fast * 2, "mispredicts must hurt: {fast} vs {slow}");
        assert_eq!(b.stats().mispredicts, 500);
        assert_eq!(b.stats().branches, 2000);
    }

    #[test]
    fn kernel_ops_are_attributed_to_os() {
        let ops: Vec<MicroOp> = (0..1000)
            .map(|i| {
                let op = MicroOp::alu(0x40_0000 + 4 * (i % 16) as u64);
                if i % 2 == 0 {
                    op.with_privilege(Privilege::Kernel)
                } else {
                    op
                }
            })
            .collect();
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(VecSource::new(ops)));
        let mut m = mem();
        run(&mut core, &mut m, 100_000);
        let s = core.stats();
        assert_eq!(s.committed[0], 500);
        assert_eq!(s.committed[1], 500);
    }

    #[test]
    fn smt_two_threads_share_the_core() {
        let mut core = OooCore::new(CoreConfig::x5670_smt());
        core.attach(Box::new(VecSource::new(alu_ops(1000))));
        core.attach(Box::new(VecSource::new(alu_ops(1000))));
        let mut m = mem();
        run(&mut core, &mut m, 100_000);
        let s = core.stats();
        assert_eq!(s.instructions(), 2000);
        assert_eq!(s.per_thread_committed, vec![1000, 1000]);
    }

    #[test]
    #[should_panic(expected = "contexts occupied")]
    fn cannot_overcommit_hardware_threads() {
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(VecSource::new(alu_ops(1))));
        core.attach(Box::new(VecSource::new(alu_ops(1))));
    }

    #[test]
    fn stall_and_commit_cycles_partition_time() {
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(VecSource::new(alu_ops(100))));
        let mut m = mem();
        run(&mut core, &mut m, 100_000);
        let s = core.stats();
        let classified: u64 =
            s.committing_cycles.iter().sum::<u64>() + s.stalled_cycles.iter().sum::<u64>();
        assert_eq!(classified, s.cycles);
    }

    #[test]
    fn gshare_mode_runs_and_measures_a_sane_rate() {
        use crate::branch::BranchModel;
        use cs_trace::source::LoopSource;
        // A loop body whose backward branch is almost always taken: the
        // predictor must learn it and the core must retire everything.
        let mut ops = Vec::new();
        for i in 0..63 {
            ops.push(MicroOp::alu(0x40_0000 + 4 * i));
        }
        ops.push(MicroOp::branch(0x40_0000 + 4 * 63, false));
        let mut core = OooCore::new(CoreConfig {
            branch_model: BranchModel::Gshare { bits: 12 },
            ..CoreConfig::x5670()
        });
        core.attach(Box::new(LoopSource::new(ops)));
        let mut m = mem();
        for now in 0..60_000 {
            core.step(0, &mut m, now);
        }
        let s = core.stats();
        assert!(s.instructions() > 30_000, "retired {}", s.instructions());
        let rate = core.gshare_mispredict_rate().expect("gshare enabled");
        assert!(rate < 0.05, "a steady loop must be predictable, rate {rate:.3}");
        // Mispredict accounting flows through the same counters.
        assert!(s.mispredict_rate() < 0.05);
    }

    #[test]
    fn icount_favors_the_unstalled_thread() {
        use crate::config::SmtFetchPolicy;
        use cs_trace::source::LoopSource;
        // Thread A: pure compute. Thread B: dependent far loads (stalls).
        let compute: Vec<MicroOp> =
            (0..64).map(|i| MicroOp::alu(0x40_0000 + 4 * i)).collect();
        let stalls: Vec<MicroOp> = (0..64u64)
            .map(|i| MicroOp::load(0x41_0000, 0x9000_0000 + i * 8191 * 64, 8).with_deps(1, 0))
            .collect();
        let run_policy = |policy: SmtFetchPolicy| {
            let mut core = OooCore::new(CoreConfig {
                smt_threads: 2,
                smt_fetch: policy,
                ..CoreConfig::x5670()
            });
            core.attach(Box::new(LoopSource::new(compute.clone())));
            core.attach(Box::new(LoopSource::new(stalls.clone())));
            let mut m = mem();
            for now in 0..60_000 {
                core.step(0, &mut m, now);
            }
            core.stats().instructions()
        };
        let rr = run_policy(SmtFetchPolicy::RoundRobin);
        let ic = run_policy(SmtFetchPolicy::Icount);
        assert!(
            ic as f64 > rr as f64 * 1.05,
            "ICOUNT should outperform round-robin on asymmetric threads: {ic} vs {rr}"
        );
    }

    #[test]
    fn trace_mode_has_no_gshare() {
        let core = OooCore::new(CoreConfig::x5670());
        assert!(core.gshare_mispredict_rate().is_none());
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        use cs_trace::snap::{Dec, Enc};
        // A mixed stream exercising loads, stores, branches and deps.
        let mk_ops = || -> Vec<MicroOp> {
            (0..4000u64)
                .map(|i| match i % 5 {
                    0 => MicroOp::load(0x40_0000 + 4 * (i % 64), 0x6000_0000 + i * 577 * 8, 8),
                    1 => MicroOp::store(0x40_0100 + 4 * (i % 64), 0x6100_0000 + i * 131 * 8, 8),
                    2 => MicroOp::branch(0x40_0200 + 4 * (i % 64), i % 35 == 0),
                    _ => MicroOp::alu(0x40_0300 + 4 * (i % 64)).with_deps(i % 3, 0),
                })
                .collect()
        };
        let mut live = OooCore::new(CoreConfig::x5670());
        live.attach(Box::new(VecSource::new(mk_ops())));
        let mut m_live = mem();
        for now in 0..5_000 {
            live.step(0, &mut m_live, now);
        }
        let mut snap = Enc::new();
        live.encode_snap(&mut snap);

        // Restore into a freshly-built core with a fresh source.
        let mut restored = OooCore::new(CoreConfig::x5670());
        restored.attach(Box::new(VecSource::new(mk_ops())));
        let mut d = Dec::new(&snap.buf);
        restored.restore_snap(&mut d).expect("restore");
        d.finish().expect("full consumption");

        // Re-encoding the restored core must reproduce the bytes exactly.
        let mut reenc = Enc::new();
        restored.encode_snap(&mut reenc);
        assert_eq!(reenc.buf, snap.buf, "save(restore(save(s))) == save(s)");

        // Continuing both cores must stay in lockstep. The memory system
        // is restored separately in the full chip path; here both sides
        // share identically-warmed memories by construction.
        let mut m_restored = MemorySystem::new(
            cs_memsys::MemSysConfig {
                prefetch: PrefetchConfig::none(),
                ..cs_memsys::MemSysConfig::default()
            },
            1,
        );
        let mut me = cs_trace::snap::Enc::new();
        m_live.encode_snap(&mut me);
        let mut md = cs_trace::snap::Dec::new(&me.buf);
        m_restored.restore_snap(&mut md).expect("mem restore");
        for now in 5_000..9_000 {
            live.step(0, &mut m_live, now);
            restored.step(0, &mut m_restored, now);
        }
        assert_eq!(restored.stats(), live.stats());
        let mut a = Enc::new();
        let mut b = Enc::new();
        live.encode_snap(&mut a);
        restored.encode_snap(&mut b);
        assert_eq!(a.buf, b.buf, "continued states must stay byte-identical");
    }

    #[test]
    fn functional_mode_retires_everything_and_partitions_cycles() {
        let mk_ops = || -> Vec<MicroOp> {
            (0..3000u64)
                .map(|i| match i % 5 {
                    0 => MicroOp::load(0x40_0000 + 4 * (i % 64), 0x6000_0000 + i * 577 * 8, 8),
                    1 => MicroOp::store(0x40_0100 + 4 * (i % 64), 0x6100_0000 + i * 131 * 8, 8),
                    2 => MicroOp::branch(0x40_0200 + 4 * (i % 64), i % 35 == 0),
                    _ => MicroOp::alu(0x40_0300 + 4 * (i % 64)).with_deps(i % 3, 0),
                })
                .collect()
        };
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(VecSource::new(mk_ops())));
        core.set_fidelity(Fidelity::Functional);
        let mut m = mem();
        let cycles = run(&mut core, &mut m, 100_000);
        let s = core.stats();
        assert_eq!(s.instructions(), 3000, "functional mode must retire the full trace");
        assert_eq!(s.branches, 600);
        // Retires exactly `width` per cycle while ops remain.
        assert!(cycles <= 3000 / 4 + 2, "took {cycles} cycles");
        let classified: u64 =
            s.committing_cycles.iter().sum::<u64>() + s.stalled_cycles.iter().sum::<u64>();
        assert_eq!(classified, s.cycles, "partition must hold in functional mode");
        // Warming really happened: the memory system saw the misses.
        assert!(m.stats().per_core[0].l1d.total_accesses() > 0);
    }

    #[test]
    fn fidelity_switch_drains_and_detailed_resumes() {
        let ops: Vec<MicroOp> = (0..2000u64)
            .map(|i| MicroOp::load(0x40_0000 + 4 * (i % 64), 0x8000_0000 + i * 709 * 8, 8))
            .collect();
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(VecSource::new(ops)));
        let mut m = mem();
        let mut now = 0u64;
        for _ in 0..200 {
            core.step(0, &mut m, now);
            now += 1;
        }
        let before = core.stats().instructions();
        core.set_fidelity(Fidelity::Functional);
        let drained = core.stats().instructions();
        assert!(drained >= before, "drain never loses committed instructions");
        for _ in 0..300 {
            core.step(0, &mut m, now);
            now += 1;
        }
        core.set_fidelity(Fidelity::Detailed);
        while !core.is_done() && now < 1_000_000 {
            core.step(0, &mut m, now);
            now += 1;
        }
        assert!(core.is_done(), "detailed mode must finish the trace after the round trip");
        assert_eq!(core.stats().instructions(), 2000);
    }

    #[test]
    fn snapshot_roundtrip_preserves_fidelity() {
        use cs_trace::snap::{Dec, Enc};
        let mk = || {
            let mut c = OooCore::new(CoreConfig::x5670());
            c.attach(Box::new(VecSource::new(alu_ops(500))));
            c
        };
        let mut live = mk();
        let mut m = mem();
        for now in 0..50 {
            live.step(0, &mut m, now);
        }
        live.set_fidelity(Fidelity::Functional);
        for now in 50..80 {
            live.step(0, &mut m, now);
        }
        let mut e = Enc::new();
        live.encode_snap(&mut e);
        let mut restored = mk();
        assert_eq!(restored.fidelity(), Fidelity::Detailed);
        let mut d = Dec::new(&e.buf);
        restored.restore_snap(&mut d).expect("restore");
        d.finish().expect("full consumption");
        assert_eq!(restored.fidelity(), Fidelity::Functional);
        let mut re = Enc::new();
        restored.encode_snap(&mut re);
        assert_eq!(re.buf, e.buf);
    }

    #[test]
    fn functional_gshare_trains_like_a_frontend() {
        use crate::branch::BranchModel;
        use cs_trace::source::LoopSource;
        // Same predictable loop as the detailed gshare test: the
        // functional path must hold/resolve branches identically, so the
        // predictor learns the loop just as well.
        let mut ops = Vec::new();
        for i in 0..63 {
            ops.push(MicroOp::alu(0x40_0000 + 4 * i));
        }
        ops.push(MicroOp::branch(0x40_0000 + 4 * 63, false));
        let mut core = OooCore::new(CoreConfig {
            branch_model: BranchModel::Gshare { bits: 12 },
            ..CoreConfig::x5670()
        });
        core.attach(Box::new(LoopSource::new(ops)));
        core.set_fidelity(Fidelity::Functional);
        let mut m = mem();
        for now in 0..30_000 {
            core.step(0, &mut m, now);
        }
        let s = core.stats();
        assert!(s.instructions() > 100_000, "retired {}", s.instructions());
        let rate = core.gshare_mispredict_rate().expect("gshare enabled");
        assert!(rate < 0.05, "functional training must learn the loop, rate {rate:.3}");
    }

    #[test]
    fn functional_warming_leaves_identical_warm_state() {
        use crate::branch::BranchModel;
        // Serialized trace (each op depends on its predecessor) confined
        // to one instruction line: even the OoO core issues its memory
        // references in program order, so detailed and functional
        // execution drive the identical sequence through the hierarchy
        // and must leave every warmable structure bit-identical. The
        // prefetchers stay enabled — their tables are part of the claim.
        let mk_ops = || -> Vec<MicroOp> {
            let mut x = 0x9E37_79B9u64;
            (0..4000u64)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let pc = 0x40_0000 + 4 * (i % 16);
                    let op = match x % 5 {
                        0 => MicroOp::load(pc, (x >> 16) % (1 << 22), 8),
                        1 => MicroOp::store(pc, (x >> 24) % (1 << 22), 8),
                        2 => MicroOp::branch(pc, x.is_multiple_of(31)),
                        _ => MicroOp::alu(pc),
                    };
                    op.with_deps(1, 0)
                })
                .collect()
        };
        let run_mode = |functional: bool| -> (u64, u64, u64, u64) {
            let mut core = OooCore::new(CoreConfig {
                branch_model: BranchModel::Gshare { bits: 12 },
                ..CoreConfig::x5670()
            });
            core.attach(Box::new(VecSource::new(mk_ops())));
            if functional {
                core.set_fidelity(Fidelity::Functional);
            }
            let mut m = MemorySystem::new(MemSysConfig::default(), 1);
            let mut now = 0;
            while !core.is_done() && now < 2_000_000 {
                core.step(0, &mut m, now);
                now += 1;
            }
            assert!(core.is_done(), "trace must finish");
            let s = core.stats();
            (m.warm_state_digest(), s.instructions(), s.branches, s.mispredicts)
        };
        let (d_digest, d_instr, d_br, d_miss) = run_mode(false);
        let (f_digest, f_instr, f_br, f_miss) = run_mode(true);
        assert_eq!(d_instr, f_instr);
        assert_eq!((d_br, d_miss), (f_br, f_miss), "gshare must train identically");
        assert_eq!(
            d_digest, f_digest,
            "functional warming must leave caches/TLBs/prefetchers bit-identical"
        );
    }

    #[test]
    fn offcore_cycles_track_misses() {
        let ops: Vec<MicroOp> =
            (0..100u64).map(|i| MicroOp::load(0x40_0000, 0x7000_0000 + i * 313 * 64, 8)).collect();
        let mut core = OooCore::new(CoreConfig::x5670());
        core.attach(Box::new(VecSource::new(ops)));
        let mut m = mem();
        run(&mut core, &mut m, 1_000_000);
        let s = core.stats();
        assert!(s.offcore_outstanding_cycles > 0);
        assert!(s.offcore_outstanding_cycles <= s.cycles);
    }
}
