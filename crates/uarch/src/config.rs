//! Core configuration, with Table 1 (Xeon X5670) defaults.

use crate::branch::BranchModel;
use serde::{Deserialize, Serialize};

/// How an SMT core divides fetch slots between its hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SmtFetchPolicy {
    /// Alternate threads every cycle.
    #[default]
    RoundRobin,
    /// ICOUNT (Tullsen et al.): fetch for the thread with the fewest
    /// instructions in flight, starving stalled threads of fetch slots.
    Icount,
}

/// Static parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue and retire width (Table 1: "4-wide issue and retire").
    pub width: u32,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Reorder buffer entries (Table 1: 128). Partitioned evenly across
    /// hardware threads when SMT is enabled, as on Nehalem/Westmere.
    pub rob_entries: usize,
    /// Load-queue entries (Table 1: 48).
    pub load_queue: usize,
    /// Store-queue entries (Table 1: 32).
    pub store_queue: usize,
    /// Reservation-station entries (Table 1: 36); bounds ops dispatched but
    /// not yet issued.
    pub reservation_stations: usize,
    /// Maximum simultaneously outstanding off-core requests (the paper's
    /// "up to 16 L2 cache misses in flight", §4.3).
    pub mshrs: u32,
    /// Hardware threads sharing the core (1, or 2 with SMT).
    pub smt_threads: usize,
    /// When set, instructions issue strictly in program order (the
    /// "excessively simple core" comparison point of §4.2).
    pub in_order: bool,
    /// Pipeline refill penalty of a mispredicted branch, in cycles.
    pub mispredict_penalty: u32,
    /// Per-thread fetch buffer capacity.
    pub fetch_buffer: usize,
    /// Memory operations issued per cycle (load/store ports).
    pub mem_ports: u32,
    /// Cycles of an off-core instruction-fetch stall hidden by the
    /// decoupled fetch/decode queues (frontend fetch-ahead).
    pub fetch_ahead_credit: u32,
    /// Branch prediction model (trace-annotated rates, or a real gshare).
    pub branch_model: BranchModel,
    /// SMT fetch policy.
    pub smt_fetch: SmtFetchPolicy,
    /// Per-thread basis of the fetch buffer and ROB partitioning.
    pub fp_ports: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            width: 4,
            fetch_width: 4,
            rob_entries: 128,
            load_queue: 48,
            store_queue: 32,
            reservation_stations: 36,
            mshrs: 16,
            smt_threads: 1,
            in_order: false,
            mispredict_penalty: 15,
            fetch_buffer: 16,
            mem_ports: 2,
            fetch_ahead_credit: 10,
            branch_model: BranchModel::Trace,
            smt_fetch: SmtFetchPolicy::RoundRobin,
            fp_ports: 1,
        }
    }
}

impl CoreConfig {
    /// The Table 1 baseline core.
    pub fn x5670() -> Self {
        Self::default()
    }

    /// The baseline core with SMT enabled (two hardware threads).
    pub fn x5670_smt() -> Self {
        Self { smt_threads: 2, ..Self::default() }
    }

    /// A modest 2-wide out-of-order core with a small window — the design
    /// point §4.2 argues scale-out workloads deserve ("two independent
    /// 2-way cores would consume fewer resources while achieving higher
    /// aggregate performance").
    pub fn narrow2() -> Self {
        Self {
            width: 2,
            fetch_width: 2,
            rob_entries: 48,
            load_queue: 24,
            store_queue: 16,
            reservation_stations: 18,
            mshrs: 10,
            ..Self::default()
        }
    }

    /// An in-order core (the niche-processor comparison point of §4.2).
    pub fn in_order2() -> Self {
        Self { width: 2, fetch_width: 2, in_order: true, ..Self::default() }
    }

    /// ROB capacity available to one hardware thread.
    pub fn rob_per_thread(&self) -> usize {
        self.rob_entries / self.smt_threads.max(1)
    }

    /// Validates structural parameters.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero width, no ROB, no
    /// threads, more than 2 threads).
    pub fn validate(&self) {
        assert!(self.width >= 1, "core width must be at least 1");
        assert!(self.fetch_width >= 1, "fetch width must be at least 1");
        assert!(self.rob_entries >= self.smt_threads, "ROB too small");
        assert!((1..=2).contains(&self.smt_threads), "1 or 2 hardware threads");
        assert!(self.load_queue >= 1 && self.store_queue >= 1, "LSQ too small");
        assert!(self.mshrs >= 1, "need at least one MSHR");
        assert!(self.mem_ports >= 1, "need at least one memory port");
        assert!(self.fetch_buffer >= self.fetch_width as usize, "fetch buffer too small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::x5670();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.load_queue, 48);
        assert_eq!(c.store_queue, 32);
        assert_eq!(c.reservation_stations, 36);
        c.validate();
    }

    #[test]
    fn smt_partitions_rob() {
        let c = CoreConfig::x5670_smt();
        assert_eq!(c.smt_threads, 2);
        assert_eq!(c.rob_per_thread(), 64);
        c.validate();
    }

    #[test]
    fn ablation_configs_validate() {
        CoreConfig::narrow2().validate();
        CoreConfig::in_order2().validate();
        assert!(CoreConfig::in_order2().in_order);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        CoreConfig { width: 0, ..CoreConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "threads")]
    fn rejects_three_threads() {
        CoreConfig { smt_threads: 3, ..CoreConfig::default() }.validate();
    }
}
