//! Core micro-architecture substrate for CloudSuite-RS.
//!
//! A cycle-level model of the aggressive out-of-order core the paper
//! studies (Table 1: 4-wide issue/retire, 128-entry reorder buffer, 48/32
//! load/store buffers, 36 reservation stations), including:
//!
//! - simultaneous multi-threading with two hardware contexts per core and
//!   statically partitioned reorder buffers (the Figure 3 SMT study);
//! - an in-order issue mode for the paper's "excessively simple cores"
//!   comparison point (§4.2) and the narrow-core ablation;
//! - commit/stall cycle attribution split by privilege level, the
//!   super-queue (off-core outstanding) occupancy that defines the paper's
//!   memory cycles, and the MLP measurement methodology of §3.1/§4.2;
//! - MSHR-limited memory-level parallelism (16 outstanding L2 misses per
//!   core) and mispredicted-branch fetch redirection.
//!
//! The [`chip::Chip`] type assembles cores around a shared
//! [`cs_memsys::MemorySystem`] and advances everything in lock-step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

pub mod area;
pub mod branch;
pub mod chip;
pub mod config;
pub mod core;
pub mod stats;

pub use branch::BranchModel;
pub use chip::{Chip, StallDiagnosis, WatchedWindow, WindowOutcome};
pub use config::{CoreConfig, SmtFetchPolicy};
pub use core::{Fidelity, OooCore};
pub use stats::CoreStats;
