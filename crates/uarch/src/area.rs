//! First-order area and power proxies for core and cache structures.
//!
//! The paper's argument is ultimately about *compute density*: "the die
//! area and the energy are wasted" on wide windows and oversized LLCs
//! (§4.2–4.3), and its conclusion calls for designs with "improved
//! computational density and power efficiency". To make that argument
//! quantitative inside the reproduction, this module provides first-order
//! area/power models at the paper's 32 nm node, calibrated against public
//! die-shot estimates of Westmere-EP (≈240 mm² for six cores plus a 12 MB
//! LLC: roughly 15 mm² per core with private caches and ≈5 mm²/MB of LLC
//! SRAM with its tags and interconnect).
//!
//! These are proxies, not layout estimates: superlinear terms capture the
//! well-known growth of scheduler/bypass/rename structures with issue
//! width and window size (the paper: "the core's complexity increases
//! dramatically depending on the width of the pipeline and the size of
//! the reorder window").

use crate::config::CoreConfig;
use serde::{Deserialize, Serialize};

/// Area/power estimate for one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Area in mm² (32 nm).
    pub area_mm2: f64,
    /// Peak dynamic power in watts.
    pub power_w: f64,
}

/// First-order model of one out-of-order core (including its private L1s
/// and L2) at 32 nm.
///
/// The width term grows superlinearly (bypass networks, register-file
/// ports, select logic); ROB/LSQ/RS contribute linearly with small
/// coefficients; in-order cores drop the scheduling structures entirely.
pub fn core_estimate(cfg: &CoreConfig) -> Estimate {
    let w = cfg.width as f64;
    let window = cfg.rob_entries as f64;
    let lsq = (cfg.load_queue + cfg.store_queue) as f64;
    let rs = cfg.reservation_stations as f64;

    // Frontend + execution resources: superlinear in width.
    let width_area = 0.68 * w.powf(1.7);
    // Scheduling structures: absent on an in-order core.
    let sched_area = if cfg.in_order {
        0.35 // scoreboard
    } else {
        0.012 * window + 0.02 * lsq + 0.03 * rs
    };
    // Private L1 I/D + L2 SRAM (32+32+256 KB) and fixed overheads.
    let cache_area = 2.6;
    let base = 2.0;
    // SMT adds a second architectural state and partition logic.
    let smt_area = if cfg.smt_threads > 1 { 0.55 } else { 0.0 };
    let area = base + width_area + sched_area + cache_area + smt_area;

    // Power tracks the same structures; aggressive scheduling burns a
    // disproportionate share (the paper's "power-hungry scheduler").
    let power = 0.9
        + 0.5 * w.powf(1.6)
        + if cfg.in_order { 0.1 } else { 0.008 * window + 0.02 * rs }
        + if cfg.smt_threads > 1 { 0.3 } else { 0.0 };
    Estimate { area_mm2: area, power_w: power }
}

/// First-order model of `bytes` of last-level cache (data + tags +
/// slice interconnect) at 32 nm.
pub fn llc_estimate(bytes: u64) -> Estimate {
    let mb = bytes as f64 / (1 << 20) as f64;
    Estimate { area_mm2: 5.0 * mb, power_w: 0.55 * mb }
}

/// Whole-chip estimate: `n_cores` copies of `core` plus the LLC.
pub fn chip_estimate(core: &CoreConfig, n_cores: usize, llc_bytes: u64) -> Estimate {
    let c = core_estimate(core);
    let l = llc_estimate(llc_bytes);
    Estimate {
        area_mm2: c.area_mm2 * n_cores as f64 + l.area_mm2,
        power_w: c.power_w * n_cores as f64 + l.power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_calibration_anchors() {
        // One X5670 core with private caches: ~15 mm².
        let wide = core_estimate(&CoreConfig::x5670());
        assert!(
            (12.0..18.0).contains(&wide.area_mm2),
            "4-wide core area {:.1} off the Westmere anchor",
            wide.area_mm2
        );
        // Whole six-core chip with 12 MB LLC: in the ballpark of the
        // 240 mm² die.
        let chip = chip_estimate(&CoreConfig::x5670(), 6, 12 << 20);
        assert!(
            (140.0..260.0).contains(&chip.area_mm2),
            "chip estimate {:.0} mm² implausible",
            chip.area_mm2
        );
    }

    #[test]
    fn narrow_cores_are_much_smaller() {
        let wide = core_estimate(&CoreConfig::x5670());
        let narrow = core_estimate(&CoreConfig::narrow2());
        assert!(
            narrow.area_mm2 < 0.62 * wide.area_mm2,
            "2-wide ({:.1}) should be far smaller than 4-wide ({:.1})",
            narrow.area_mm2,
            wide.area_mm2
        );
        assert!(narrow.power_w < wide.power_w);
    }

    #[test]
    fn in_order_drops_the_scheduler() {
        let ooo2 = core_estimate(&CoreConfig::narrow2());
        let ino2 = core_estimate(&CoreConfig::in_order2());
        assert!(ino2.area_mm2 < ooo2.area_mm2);
    }

    #[test]
    fn smt_costs_a_little_area() {
        let base = core_estimate(&CoreConfig::x5670());
        let smt = core_estimate(&CoreConfig::x5670_smt());
        let delta = smt.area_mm2 - base.area_mm2;
        assert!(delta > 0.0 && delta < 0.1 * base.area_mm2, "SMT delta {delta:.2}");
    }

    #[test]
    fn llc_scales_linearly() {
        let a = llc_estimate(4 << 20);
        let b = llc_estimate(12 << 20);
        assert!((b.area_mm2 / a.area_mm2 - 3.0).abs() < 1e-9);
    }
}
