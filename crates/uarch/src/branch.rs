//! Branch prediction models.
//!
//! The trace layer annotates each branch with a mispredict flag drawn from
//! the workload's calibrated rate ([`BranchModel::Trace`]); for studies of
//! the predictor itself the core can instead run a real gshare predictor
//! ([`BranchModel::Gshare`]) against the actual taken/not-taken outcomes
//! reconstructed from the fetch stream (a branch was taken iff the next
//! fetched instruction is not the fall-through).

use serde::{Deserialize, Serialize};

/// Which branch predictor the core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[derive(Default)]
pub enum BranchModel {
    /// Use the trace's per-branch mispredict annotations (default; the
    /// rates are calibrated per workload).
    #[default]
    Trace,
    /// Run a gshare predictor with `2^bits` two-bit counters against the
    /// reconstructed outcomes.
    Gshare {
        /// log2 of the pattern-history-table size.
        bits: u8,
    },
}


/// A gshare predictor: global history XOR PC indexes a table of two-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
    /// Predictions made.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl Gshare {
    /// Creates a predictor with `2^bits` counters, initialized to weakly
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 24.
    pub fn new(bits: u8) -> Self {
        assert!((1..=24).contains(&bits), "gshare size must be 1..=24 bits");
        let n = 1usize << bits;
        Self { table: vec![2; n], history: 0, mask: n as u64 - 1, predictions: 0, mispredicts: 0 }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the branch at `pc`, then updates with the actual outcome.
    /// Returns `true` if the prediction was wrong.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted_taken = self.table[idx] >= 2;
        let mispredict = predicted_taken != taken;
        // Two-bit saturating counter update.
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
        self.predictions += 1;
        if mispredict {
            self.mispredicts += 1;
        }
        mispredict
    }

    /// Observed misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }

    /// Serializes the full predictor state (table, history, counters) into
    /// `e` for checkpointing.
    pub fn encode_snap(&self, e: &mut cs_trace::snap::Enc) {
        e.len(self.table.len());
        e.buf.extend_from_slice(&self.table);
        e.u64(self.history);
        e.u64(self.predictions);
        e.u64(self.mispredicts);
    }

    /// Rebuilds a predictor from [`Gshare::encode_snap`] bytes.
    pub fn decode_snap(
        d: &mut cs_trace::snap::Dec<'_>,
    ) -> Result<Self, cs_trace::snap::SnapError> {
        use cs_trace::snap::SnapError;
        let n = d.len()?;
        if n == 0 || !n.is_power_of_two() {
            return Err(SnapError::Mismatch(format!("gshare table size {n} not a power of two")));
        }
        let table = d.take(n)?.to_vec();
        if table.iter().any(|&c| c > 3) {
            return Err(SnapError::Mismatch("gshare counter out of 0..=3".into()));
        }
        let history = d.u64()?;
        let predictions = d.u64()?;
        let mispredicts = d.u64()?;
        Ok(Self { table, history, mask: n as u64 - 1, predictions, mispredicts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut g = Gshare::new(10);
        let mut late_misses = 0;
        for i in 0..1000 {
            let miss = g.predict_and_update(0x40_0000, true);
            if i > 100 && miss {
                late_misses += 1;
            }
        }
        assert_eq!(late_misses, 0, "an always-taken branch must become perfectly predicted");
    }

    #[test]
    fn learns_alternating_patterns_through_history() {
        let mut g = Gshare::new(12);
        let mut late_misses = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let miss = g.predict_and_update(0x40_0040, taken);
            if i > 1000 && miss {
                late_misses += 1;
            }
        }
        assert!(
            late_misses < 100,
            "history must capture the alternation, {late_misses} late misses"
        );
    }

    #[test]
    fn random_branches_mispredict_about_half_the_time() {
        let mut g = Gshare::new(12);
        let mut x = 0x12345678u64;
        for _ in 0..20_000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            g.predict_and_update(0x40_0000 + (x & 0xFF) * 4, x & 1 == 0);
        }
        let rate = g.mispredict_rate();
        assert!((0.35..0.65).contains(&rate), "random stream rate {rate:.2}");
    }

    #[test]
    fn distinct_branches_do_not_destructively_alias_much() {
        let mut g = Gshare::new(14);
        let mut late = 0;
        for i in 0..8000u64 {
            let pc = 0x40_0000 + (i % 16) * 4;
            let miss = g.predict_and_update(pc, true);
            if i > 2000 && miss {
                late += 1;
            }
        }
        assert!(late < 200, "{late} late misses across 16 always-taken branches");
    }

    #[test]
    #[should_panic(expected = "gshare size")]
    fn rejects_oversized_tables() {
        let _ = Gshare::new(40);
    }
}
