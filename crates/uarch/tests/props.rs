//! Property-based tests of the core model invariants.

use cs_memsys::{MemSysConfig, MemorySystem, PrefetchConfig};
use cs_trace::snap::{Dec, Enc};
use cs_trace::source::VecSource;
use cs_trace::{MicroOp, OpKind};
use cs_uarch::{Chip, CoreConfig, OooCore};
use proptest::prelude::*;

fn arb_op(i: usize) -> impl Strategy<Value = MicroOp> {
    let pc = 0x40_0000 + 4 * (i as u64 % 512);
    prop_oneof![
        Just(MicroOp::alu(pc)),
        (0u8..8).prop_map(move |d| MicroOp::alu(pc).with_deps(d as u64, 0)),
        (0u64..(1 << 20)).prop_map(move |a| MicroOp::load(pc, a * 8, 8)),
        (0u64..(1 << 20)).prop_map(move |a| MicroOp::store(pc, a * 8, 8)),
        any::<bool>().prop_map(move |m| MicroOp::branch(pc, m)),
        Just(MicroOp::of_kind(pc, OpKind::IntMul)),
        Just(MicroOp::of_kind(pc, OpKind::Fp)),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<MicroOp>> {
    proptest::collection::vec(any::<u16>(), 20..400).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_op(i))
            .collect::<Vec<_>>()
    })
}

/// Fully serialized op at `i`: depends on its predecessor and stays within
/// one 64-byte instruction line, so issue order — and thus the memory
/// reference order the hierarchy observes — equals program order in both
/// fidelity levels.
fn arb_serial_op(i: usize) -> impl Strategy<Value = MicroOp> {
    let pc = 0x40_0000 + 4 * (i as u64 % 16);
    prop_oneof![
        Just(MicroOp::alu(pc)),
        (0u64..(1 << 19)).prop_map(move |a| MicroOp::load(pc, a * 8, 8)),
        (0u64..(1 << 19)).prop_map(move |a| MicroOp::store(pc, a * 8, 8)),
        any::<bool>().prop_map(move |m| MicroOp::branch(pc, m)),
    ]
    .prop_map(|op| op.with_deps(1, 0))
}

fn arb_serial_trace() -> impl Strategy<Value = Vec<MicroOp>> {
    proptest::collection::vec(any::<u16>(), 20..400).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_serial_op(i))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every instruction of every trace eventually retires, exactly once,
    /// and the cycle classification partitions time — for arbitrary
    /// op mixes, dependencies and both core flavours.
    #[test]
    fn all_ops_retire_and_cycles_partition(ops in arb_trace(), in_order in any::<bool>()) {
        let n = ops.len() as u64;
        let mut core = OooCore::new(CoreConfig { in_order, ..CoreConfig::x5670() });
        core.attach(Box::new(VecSource::new(ops)));
        let mem_cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        let mut mem = MemorySystem::new(mem_cfg, 1);
        let mut now = 0;
        while !core.is_done() && now < 2_000_000 {
            core.step(0, &mut mem, now);
            now += 1;
        }
        prop_assert!(core.is_done(), "pipeline deadlocked");
        let s = core.stats();
        prop_assert_eq!(s.instructions(), n);
        let classified: u64 =
            s.committing_cycles.iter().sum::<u64>() + s.stalled_cycles.iter().sum::<u64>();
        prop_assert_eq!(classified, s.cycles);
        prop_assert!(s.memory_cycles <= s.cycles);
        prop_assert!(s.ipc() <= 4.0 + 1e-9);
    }

    /// Event-driven cycle skipping is invisible: for arbitrary traces,
    /// window chunkings and both core flavours, the skipping chip and the
    /// naive chip end every window in bit-identical state.
    #[test]
    fn cycle_skip_is_byte_identical(
        ops in arb_trace(),
        in_order in any::<bool>(),
        chunk in 1u64..5000,
    ) {
        let mk = || {
            let core_cfg = CoreConfig { in_order, ..CoreConfig::x5670() };
            let mem_cfg =
                MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
            let mut chip = Chip::new(core_cfg, mem_cfg, 1);
            chip.attach(0, Box::new(VecSource::new(ops.clone())));
            chip
        };
        let mut fast = mk();
        fast.set_cycle_skip(true);
        let mut slow = mk();
        slow.set_cycle_skip(false);
        for chip in [&mut fast, &mut slow] {
            // Chunked windows: jumps must clamp at every boundary.
            while !chip.cores().iter().all(|c| c.is_done()) && chip.cycle() < 2_000_000 {
                chip.run_cycles(chunk);
            }
        }
        prop_assert!(fast.cores()[0].is_done(), "pipeline deadlocked");
        prop_assert_eq!(fast.cycle(), slow.cycle());
        prop_assert_eq!(fast.cores()[0].stats(), slow.cores()[0].stats());
        prop_assert_eq!(fast.mem().stats(), slow.mem().stats());
        prop_assert_eq!(fast.mem().dram_stats(), slow.mem().dram_stats());
        prop_assert_eq!(slow.skipped_cycles(), 0);
    }

    /// The counter invariants survive arbitrary skip spans: committing
    /// and stalled cycles still partition time, per-privilege committed
    /// counts still sum to the instruction total, and the skipped-cycle
    /// count never exceeds the cycles simulated.
    #[test]
    fn skip_spans_preserve_counter_invariants(ops in arb_trace(), chunk in 1u64..3000) {
        let n = ops.len() as u64;
        let mut chip = Chip::new(
            CoreConfig::x5670(),
            MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() },
            1,
        );
        chip.attach(0, Box::new(VecSource::new(ops)));
        while !chip.cores().iter().all(|c| c.is_done()) && chip.cycle() < 2_000_000 {
            chip.run_cycles(chunk);
        }
        // Run on past exhaustion so the drained tail is bulk-accounted too.
        chip.run_cycles(10_000);
        let s = chip.cores()[0].stats();
        prop_assert_eq!(s.committed[0] + s.committed[1], n);
        prop_assert_eq!(
            s.per_thread_committed.iter().sum::<u64>(),
            s.committed[0] + s.committed[1]
        );
        let classified: u64 =
            s.committing_cycles.iter().sum::<u64>() + s.stalled_cycles.iter().sum::<u64>();
        prop_assert_eq!(classified, s.cycles);
        prop_assert!(s.memory_cycles <= s.cycles);
        prop_assert!(s.offcore_outstanding_cycles <= s.memory_cycles);
        prop_assert!(chip.skipped_cycles() <= chip.cycle());
        prop_assert_eq!(s.cycles, chip.cycle());
    }

    /// Checkpoint/restore is invisible: snapshotting a chip mid-run at an
    /// arbitrary cut point, restoring it into a fresh chip, and re-encoding
    /// reproduces the snapshot bytes exactly — and both chips then evolve
    /// bit-identically for arbitrary traces.
    #[test]
    fn chip_snapshot_roundtrip_is_byte_identical(ops in arb_trace(), cut in 100u64..3000) {
        let mk = || {
            let mut chip = Chip::new(
                CoreConfig::x5670(),
                MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() },
                1,
            );
            chip.attach(0, Box::new(VecSource::new(ops.clone())));
            chip
        };
        let mut original = mk();
        original.run_cycles(cut);

        let mut e = Enc::new();
        original.encode_snap(&mut e);

        // Restore into a structurally-identical fresh chip (the harness
        // rebuilds config and trace sources; only dynamic state is saved).
        let mut restored = mk();
        let mut d = Dec::new(&e.buf);
        restored.restore_snap(&mut d).expect("snapshot must decode");
        d.finish().expect("snapshot must be fully consumed");

        // Re-encoding the restored chip must reproduce the bytes exactly.
        let mut e2 = Enc::new();
        restored.encode_snap(&mut e2);
        prop_assert_eq!(&e.buf, &e2.buf, "restore must reproduce the snapshot bytes");

        // And the two chips must stay in lockstep afterwards.
        for chip in [&mut original, &mut restored] {
            chip.run_cycles(5_000);
        }
        prop_assert_eq!(original.cycle(), restored.cycle());
        prop_assert_eq!(original.cores()[0].stats(), restored.cores()[0].stats());
        prop_assert_eq!(original.mem().stats(), restored.mem().stats());
        prop_assert_eq!(original.mem().dram_stats(), restored.mem().dram_stats());
    }

    /// A truncated snapshot never decodes silently: any strict prefix of a
    /// chip snapshot fails to restore (or fails the full-consumption check)
    /// rather than yielding a half-restored chip.
    #[test]
    fn truncated_chip_snapshots_never_decode(ops in arb_trace(), frac in 0.0f64..1.0) {
        let mk = || {
            let mut chip = Chip::new(
                CoreConfig::x5670(),
                MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() },
                1,
            );
            chip.attach(0, Box::new(VecSource::new(ops.clone())));
            chip
        };
        let mut chip = mk();
        chip.run_cycles(1_000);
        let mut e = Enc::new();
        chip.encode_snap(&mut e);
        let cut = ((e.buf.len() as f64) * frac) as usize;
        prop_assume!(cut < e.buf.len());
        let truncated = &e.buf[..cut];

        let mut victim = mk();
        let mut d = Dec::new(truncated);
        let outcome = victim.restore_snap(&mut d).and_then(|_| d.finish());
        prop_assert!(outcome.is_err(), "a strict prefix must be rejected");
    }

    /// Functional warming is sound: for serialized traces (every op
    /// depends on its predecessor, so even the OoO core issues memory
    /// references in program order) confined to one instruction line,
    /// detailed and functional execution drive the identical reference
    /// sequence through the hierarchy and leave every warmable structure
    /// — cache arrays, TLBs, prefetcher tables and cursors — bit-identical,
    /// and train the branch predictor identically. Prefetchers stay
    /// enabled: their tables are part of the claim.
    #[test]
    fn functional_warming_matches_detailed_warm_state(
        ops in arb_serial_trace(),
        in_order in any::<bool>(),
    ) {
        use cs_uarch::Fidelity;
        let run_mode = |functional: bool| -> (u64, u64, u64, u64) {
            let mut core = OooCore::new(CoreConfig { in_order, ..CoreConfig::x5670() });
            core.attach(Box::new(VecSource::new(ops.clone())));
            if functional {
                core.set_fidelity(Fidelity::Functional);
            }
            let mut mem = MemorySystem::new(MemSysConfig::default(), 1);
            let mut now = 0;
            while !core.is_done() && now < 2_000_000 {
                core.step(0, &mut mem, now);
                now += 1;
            }
            assert!(core.is_done(), "pipeline deadlocked");
            let s = core.stats();
            (mem.warm_state_digest(), s.instructions(), s.branches, s.mispredicts)
        };
        let (d_digest, d_instr, d_br, d_miss) = run_mode(false);
        let (f_digest, f_instr, f_br, f_miss) = run_mode(true);
        prop_assert_eq!(d_instr, f_instr, "both fidelities must retire the whole trace");
        prop_assert_eq!((d_br, d_miss), (f_br, f_miss), "branch accounting must match");
        prop_assert_eq!(
            d_digest, f_digest,
            "functional warming must leave the warmable state bit-identical"
        );
    }

    /// MLP never exceeds the MSHR capacity.
    #[test]
    fn mlp_respects_mshrs(ops in arb_trace(), mshrs in 1u32..16) {
        let mut core = OooCore::new(CoreConfig { mshrs, ..CoreConfig::x5670() });
        core.attach(Box::new(VecSource::new(ops)));
        let mem_cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        let mut mem = MemorySystem::new(mem_cfg, 1);
        let mut now = 0;
        while !core.is_done() && now < 2_000_000 {
            core.step(0, &mut mem, now);
            now += 1;
        }
        prop_assert!(core.stats().mlp() <= mshrs as f64 + 1e-9);
    }
}
