//! Property-based tests of the core model invariants.

use cs_memsys::{MemSysConfig, MemorySystem, PrefetchConfig};
use cs_trace::source::VecSource;
use cs_trace::{MicroOp, OpKind};
use cs_uarch::{CoreConfig, OooCore};
use proptest::prelude::*;

fn arb_op(i: usize) -> impl Strategy<Value = MicroOp> {
    let pc = 0x40_0000 + 4 * (i as u64 % 512);
    prop_oneof![
        Just(MicroOp::alu(pc)),
        (0u8..8).prop_map(move |d| MicroOp::alu(pc).with_deps(d as u64, 0)),
        (0u64..(1 << 20)).prop_map(move |a| MicroOp::load(pc, a * 8, 8)),
        (0u64..(1 << 20)).prop_map(move |a| MicroOp::store(pc, a * 8, 8)),
        any::<bool>().prop_map(move |m| MicroOp::branch(pc, m)),
        Just(MicroOp::of_kind(pc, OpKind::IntMul)),
        Just(MicroOp::of_kind(pc, OpKind::Fp)),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<MicroOp>> {
    proptest::collection::vec(any::<u16>(), 20..400).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_op(i))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every instruction of every trace eventually retires, exactly once,
    /// and the cycle classification partitions time — for arbitrary
    /// op mixes, dependencies and both core flavours.
    #[test]
    fn all_ops_retire_and_cycles_partition(ops in arb_trace(), in_order in any::<bool>()) {
        let n = ops.len() as u64;
        let mut core = OooCore::new(CoreConfig { in_order, ..CoreConfig::x5670() });
        core.attach(Box::new(VecSource::new(ops)));
        let mem_cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        let mut mem = MemorySystem::new(mem_cfg, 1);
        let mut now = 0;
        while !core.is_done() && now < 2_000_000 {
            core.step(0, &mut mem, now);
            now += 1;
        }
        prop_assert!(core.is_done(), "pipeline deadlocked");
        let s = core.stats();
        prop_assert_eq!(s.instructions(), n);
        let classified: u64 =
            s.committing_cycles.iter().sum::<u64>() + s.stalled_cycles.iter().sum::<u64>();
        prop_assert_eq!(classified, s.cycles);
        prop_assert!(s.memory_cycles <= s.cycles);
        prop_assert!(s.ipc() <= 4.0 + 1e-9);
    }

    /// MLP never exceeds the MSHR capacity.
    #[test]
    fn mlp_respects_mshrs(ops in arb_trace(), mshrs in 1u32..16) {
        let mut core = OooCore::new(CoreConfig { mshrs, ..CoreConfig::x5670() });
        core.attach(Box::new(VecSource::new(ops)));
        let mem_cfg = MemSysConfig { prefetch: PrefetchConfig::none(), ..MemSysConfig::default() };
        let mut mem = MemorySystem::new(mem_cfg, 1);
        let mut now = 0;
        while !core.is_done() && now < 2_000_000 {
            core.step(0, &mut mem, now);
            now += 1;
        }
        prop_assert!(core.stats().mlp() <= mshrs as f64 + 1e-9);
    }
}
