//! Media Streaming: a packetizer serving many concurrent clients.
//!
//! Models the paper's Darwin Streaming Server setup (§3.2): pre-encoded
//! media files served to a large simulated client population at low
//! bit-rates. Every client streams from its own offset, so even popular
//! files are effectively read once per client — the paper's worst-case
//! off-chip traffic (Figure 7) — and the server's global sent-packet
//! counters create the small application-level read-write sharing §4.4
//! calls out.

use crate::emit::{AppSource, Dep, EmitCtx, RequestApp};
use crate::heap::SimHeap;
use cs_trace::rng::{chance, splitmix64};
use cs_trace::synth::OsInterleaver;
use cs_trace::zipf::Zipf;
use cs_trace::{layout, MicroOp, TraceSource, WorkloadProfile};
use rand::Rng;
use std::collections::VecDeque;

/// Configuration of the streaming server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediaStreaming {
    /// Number of media files in the catalog.
    pub n_files: u64,
    /// Mean file size in bytes.
    pub mean_file_bytes: u64,
    /// Concurrent clients per serving thread.
    pub clients_per_thread: usize,
    /// RTP payload bytes per packet (low bit-rate stream).
    pub packet_bytes: u64,
    /// Zipf exponent of file popularity.
    pub file_zipf_s: f64,
}

impl MediaStreaming {
    /// The paper's setup, scaled: a multi-gigabyte catalog, low bit-rate
    /// streams, many concurrent clients.
    pub fn paper_setup() -> Self {
        Self {
            n_files: 3000,
            mean_file_bytes: 8 << 20,
            clients_per_thread: 96,
            packet_bytes: 1344,
            file_zipf_s: 0.8,
        }
    }

    /// Builds the trace source for one hardware thread.
    pub fn into_source(self, thread: usize, seed: u64) -> impl TraceSource {
        let twin = WorkloadProfile::media_streaming();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(16 * 1024, 0.34)
            .with_warm(96 * 1024, 0.14);
        let app = StreamingServer::new(self, thread, seed);
        let os = twin.os.expect("media streaming models OS time");
        OsInterleaver::new(AppSource::new(app, ctx), &os, twin.ilp, thread, seed)
    }

    /// Like `into_source`, additionally bumping `meter` once per request
    /// (used by the harness to measure service throughput).
    pub fn into_source_metered(
        self,
        thread: usize,
        seed: u64,
        meter: crate::emit::RequestMeter,
    ) -> impl TraceSource {
        let twin = WorkloadProfile::media_streaming();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(16 * 1024, 0.34)
            .with_warm(96 * 1024, 0.14);
        let app = StreamingServer::new(self, thread, seed);
        let os = twin.os.expect("media streaming models OS time");
        OsInterleaver::new(AppSource::new(app, ctx).with_meter(meter), &os, twin.ilp, thread, seed)
    }
}

#[derive(Debug, Clone, Copy)]
struct Client {
    file: u64,
    pos: u64,
}

/// One serving thread of the streaming server.
#[derive(Debug)]
pub struct StreamingServer {
    cfg: MediaStreaming,
    catalog_addr: u64,
    session_addr: u64,
    stats_addr: u64,
    clients: Vec<Client>,
    next_client: usize,
    /// Packets sent (exposed for tests/examples).
    pub packets: u64,
}

impl StreamingServer {
    /// Lays out the (shared) catalog and session table and admits the
    /// initial client population.
    pub fn new(cfg: MediaStreaming, thread: usize, seed: u64) -> Self {
        let mut heap = SimHeap::new();
        let catalog_addr = heap.alloc_lines(cfg.n_files * cfg.mean_file_bytes);
        // Session blocks are per-connection and each connection belongs to
        // one serving thread.
        let session_addr = heap.alloc_lines((1 << 20) * 16) + (thread as u64 % 16) * (1 << 20);
        let zipf = Zipf::new(cfg.n_files, cfg.file_zipf_s);
        let mut rng = cs_trace::rng::stream_rng(seed ^ 0x3ED1A, thread as u64);
        let clients = (0..cfg.clients_per_thread)
            .map(|_| {
                let file = zipf.sample(&mut rng) - 1;
                let pos = rng.gen_range(0..cfg.mean_file_bytes / 2);
                Client { file, pos }
            })
            .collect();
        Self {
            cfg,
            catalog_addr,
            session_addr,
            stats_addr: layout::APP_SHARED_BASE,
            clients,
            next_client: 0,
            packets: 0,
        }
    }

    fn file_len(&self, file: u64) -> u64 {
        let jitter = splitmix64(file) % self.cfg.mean_file_bytes;
        self.cfg.mean_file_bytes / 2 + jitter
    }
}

impl RequestApp for StreamingServer {
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        let cfg = self.cfg;
        let idx = self.next_client;
        self.next_client = (self.next_client + 1) % self.clients.len();

        // Session lookup for the scheduled client.
        ctx.load(self.session_addr + idx as u64 * 256, 8, Dep::Free, out);
        ctx.compute(90, out);

        // Read the next chunk of the client's file and packetize it.
        let client = self.clients[idx];
        let addr = self.catalog_addr + client.file * cfg.mean_file_bytes + client.pos;
        ctx.load_span(addr, cfg.packet_bytes, Dep::OnPrevLoad, 26, out);

        // RTP header construction and checksums (scratch traffic comes from
        // the compute mix).
        ctx.compute(220, out);

        // Advance the stream; loop the file when it ends (continuous
        // workload, as in the Faban driver's closed loop).
        let flen = self.file_len(client.file);
        let c = &mut self.clients[idx];
        c.pos += cfg.packet_bytes;
        if c.pos + cfg.packet_bytes >= flen {
            c.pos = 0;
        }

        // Global sent-packet counters: mutex-protected shared counters the
        // paper explicitly flags as the app-level sharing source (§4.4).
        if chance(ctx.rng(), 0.35) {
            let counter = splitmix64(self.packets) % 32;
            ctx.load(self.stats_addr + counter * 128, 8, Dep::Free, out);
            ctx.store(self.stats_addr + counter * 128, 8, out);
        }
        ctx.compute(70, out);

        // Session bookkeeping.
        ctx.store(self.session_addr + idx as u64 * 256 + 64, 8, out);
        self.packets += 1;
    }

    fn label(&self) -> &str {
        "Media Streaming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::profile::IlpModel;

    fn source(thread: usize) -> AppSource<StreamingServer> {
        let app = StreamingServer::new(MediaStreaming::paper_setup(), thread, 5);
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(128 * 1024, 0.8, 0.01),
            IlpModel::new(3.0, 0.3),
            0.0,
            thread,
            5,
        );
        AppSource::new(app, ctx)
    }

    #[test]
    fn chunks_stream_sequentially_per_client() {
        let mut src = source(0);
        let catalog = src.app().catalog_addr;
        let mut per_file: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for _ in 0..300_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if op.is_load() && m.addr >= catalog && m.addr < src.app().session_addr {
                    let file = (m.addr - catalog) / MediaStreaming::paper_setup().mean_file_bytes;
                    per_file.entry(file).or_default().push(m.addr);
                }
            }
        }
        // Within one file+client, addresses ascend.
        let longest = per_file.values().max_by_key(|v| v.len()).expect("files touched");
        let ascending = longest.windows(2).filter(|w| w[1] >= w[0]).count();
        assert!(
            ascending as f64 / longest.len() as f64 > 0.8,
            "stream not mostly ascending"
        );
    }

    #[test]
    fn shared_counters_are_written() {
        let mut src = source(0);
        let mut counter_writes = 0;
        for _ in 0..100_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if op.is_store() && m.addr >= layout::APP_SHARED_BASE {
                    counter_writes += 1;
                }
            }
        }
        assert!(counter_writes > 10, "global packet counters must be updated");
    }

    #[test]
    fn packets_flow() {
        let mut src = source(0);
        for _ in 0..100_000 {
            src.next_op();
        }
        assert!(src.app().packets > 50);
    }

    #[test]
    fn catalog_is_shared_but_cursors_differ() {
        let a = StreamingServer::new(MediaStreaming::paper_setup(), 0, 5);
        let b = StreamingServer::new(MediaStreaming::paper_setup(), 1, 5);
        assert_eq!(a.catalog_addr, b.catalog_addr);
        let pos_a: Vec<u64> = a.clients.iter().map(|c| c.pos).collect();
        let pos_b: Vec<u64> = b.clients.iter().map(|c| c.pos).collect();
        assert_ne!(pos_a, pos_b, "client populations are thread-local");
    }
}
