//! Data Serving: an in-memory key-value store under a YCSB-style client.
//!
//! Models the paper's Cassandra 0.7.3 + YCSB setup (§3.2): a 15 GB dataset
//! served from memory, requests following a Zipfian popularity distribution
//! with a 95:5 read:write ratio. The store is an open-addressing hash index
//! over the simulated heap; reads probe the index (dependent loads), then
//! stream the located value; writes are log-structured (value write plus a
//! sequential commit-log append), as in Cassandra's memtable/commit-log
//! design.

use crate::emit::{AppSource, Dep, EmitCtx, RequestApp};
use crate::heap::SimHeap;
use cs_trace::rng::{chance, splitmix64};
use cs_trace::synth::OsInterleaver;
use cs_trace::zipf::Zipf;
use cs_trace::{MicroOp, TraceSource, WorkloadProfile};
use std::collections::VecDeque;

/// Configuration of the key-value store and its client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataServing {
    /// Number of stored keys.
    pub n_keys: u64,
    /// Index slots (load factor below 1).
    pub index_slots: u64,
    /// Total (virtual) dataset size the values span.
    pub dataset_bytes: u64,
    /// Read fraction of the request mix (YCSB 95:5 → 0.95).
    pub read_ratio: f64,
    /// Zipf exponent of key popularity (YCSB default 0.99).
    pub zipf_s: f64,
    /// Compute ops modeling request parse/dispatch.
    pub parse_ops: u32,
    /// Compute ops modeling response serialization.
    pub respond_ops: u32,
}

impl DataServing {
    /// The paper's setup, scaled: 15 GB YCSB dataset, Zipfian client,
    /// 95:5 reads:writes.
    pub fn paper_setup() -> Self {
        Self {
            n_keys: 1 << 20,
            index_slots: 3 << 19, // load factor 2/3
            dataset_bytes: 15 << 30,
            read_ratio: 0.95,
            zipf_s: 0.99,
            parse_ops: 700,
            respond_ops: 1100,
        }
    }

    /// Builds the trace source for one hardware thread, including the
    /// workload's OS time.
    pub fn into_source(self, thread: usize, seed: u64) -> impl TraceSource {
        let twin = WorkloadProfile::data_serving();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(24 * 1024, 0.34)
            .with_warm(128 * 1024, 0.12);
        let app = DataServingApp::new(self, thread);
        let os = twin.os.expect("data serving models OS time");
        OsInterleaver::new(AppSource::new(app, ctx), &os, twin.ilp, thread, seed)
    }

    /// Like `into_source`, additionally bumping `meter` once per request
    /// (used by the harness to measure service throughput).
    pub fn into_source_metered(
        self,
        thread: usize,
        seed: u64,
        meter: crate::emit::RequestMeter,
    ) -> impl TraceSource {
        let twin = WorkloadProfile::data_serving();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(24 * 1024, 0.34)
            .with_warm(128 * 1024, 0.12);
        let app = DataServingApp::new(self, thread);
        let os = twin.os.expect("data serving models OS time");
        OsInterleaver::new(AppSource::new(app, ctx).with_meter(meter), &os, twin.ilp, thread, seed)
    }
}

/// The running store (per-thread handle onto the shared layout).
#[derive(Debug)]
pub struct DataServingApp {
    cfg: DataServing,
    zipf: Zipf,
    index_addr: u64,
    value_base: u64,
    value_stride: u64,
    log_addr: u64,
    log_bytes: u64,
    log_pos: u64,
    /// Requests served (exposed for tests/examples).
    pub requests: u64,
}

impl DataServingApp {
    /// Lays out the store. The dataset and index layout are a pure
    /// function of the configuration, so every thread sees the same shared
    /// data; the commit-log segment is per-thread (Cassandra serializes
    /// appends, so threads never write the same log bytes).
    pub fn new(cfg: DataServing, thread: usize) -> Self {
        let mut heap = SimHeap::new();
        let index_addr = heap.alloc_lines(cfg.index_slots * 16);
        let value_base = heap.alloc_lines(cfg.dataset_bytes);
        let log_addr = heap.alloc_lines((64 << 20) * 16) + (thread as u64 % 16) * (64 << 20);
        Self {
            cfg,
            zipf: Zipf::new(cfg.n_keys, cfg.zipf_s),
            index_addr,
            value_base,
            value_stride: (cfg.dataset_bytes / cfg.n_keys) & !63,
            log_addr,
            log_bytes: 64 << 20,
            log_pos: 0,
            requests: 0,
        }
    }

    fn value_len(&self, key: u64) -> u64 {
        128 + splitmix64(key ^ 0x5A1) % 896
    }

    fn probe_len(&self, key: u64) -> u64 {
        1 + splitmix64(key ^ 0x9E37) % 3
    }
}

impl RequestApp for DataServingApp {
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        let cfg = self.cfg;
        // Request arrives: parse, authenticate, route.
        ctx.compute(cfg.parse_ops, out);

        // Popularity-skewed key choice, scattered over the key space.
        let rank = self.zipf.sample(ctx.rng()) - 1;
        let key = splitmix64(rank) % cfg.n_keys;

        // Index probe: linear probing, each slot's key read depends on the
        // previous comparison (bucket -> entry -> next).
        let slot0 = splitmix64(key ^ 0x1DE) % cfg.index_slots;
        for p in 0..self.probe_len(key) {
            let slot = (slot0 + p) % cfg.index_slots;
            ctx.load(self.index_addr + slot * 16, 8, Dep::OnPrevLoad, out);
            ctx.compute(6, out);
        }

        let vaddr = self.value_base + key * self.value_stride;
        let vlen = self.value_len(key);
        if chance(ctx.rng(), cfg.read_ratio) {
            // Read: stream the value (address came from the index entry),
            // deserializing as we go.
            ctx.load_span(vaddr, vlen, Dep::OnPrevLoad, 24, out);
        } else {
            // Write: new value bytes, a commit-log append, and the index
            // entry update (memtable insert).
            ctx.store_span(vaddr, vlen, 10, out);
            if self.log_pos + vlen >= self.log_bytes {
                self.log_pos = 0;
            }
            ctx.store_span(self.log_addr + self.log_pos, vlen, 4, out);
            self.log_pos += (vlen + 63) & !63;
            ctx.store(self.index_addr + slot0 * 16, 8, out);
        }

        // Serialize and send the response.
        ctx.compute(cfg.respond_ops, out);
        self.requests += 1;
    }

    fn label(&self) -> &str {
        "Data Serving"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::profile::IlpModel;

    fn drive(n: usize) -> Vec<MicroOp> {
        let cfg = DataServing::paper_setup();
        let app = DataServingApp::new(cfg, 0);
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(256 * 1024, 0.8, 0.01),
            IlpModel::new(3.0, 0.3),
            0.0,
            0,
            11,
        );
        let mut src = AppSource::new(app, ctx);
        (0..n).map(|_| src.next_op().expect("endless")).collect()
    }

    #[test]
    fn serves_requests_endlessly() {
        let ops = drive(50_000);
        assert_eq!(ops.len(), 50_000);
        assert!(ops.iter().any(|o| o.is_load()));
        assert!(ops.iter().any(|o| o.is_store()));
    }

    #[test]
    fn dataset_spans_far_more_than_the_llc() {
        let ops = drive(200_000);
        let value_lines: std::collections::HashSet<u64> = ops
            .iter()
            .filter_map(|o| o.mem.map(|m| m.addr))
            .filter(|a| *a >= cs_trace::layout::APP_HEAP_BASE)
            .map(|a| a >> 6)
            .collect();
        let span = value_lines.iter().max().unwrap() - value_lines.iter().min().unwrap();
        assert!(span * 64 > (1 << 30), "dataset span {} bytes too small", span * 64);
    }

    #[test]
    fn read_write_mix_matches_ycsb() {
        let cfg = DataServing::paper_setup();
        let app = DataServingApp::new(cfg, 0);
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(64 * 1024, 0.8, 0.01),
            IlpModel::new(3.0, 0.3),
            0.0,
            0,
            3,
        );
        let mut src = AppSource::new(app, ctx);
        // Stores to the commit-log region only happen on writes.
        let mut log_stores = 0u64;
        let mut value_ops = 0u64;
        for _ in 0..400_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if op.is_store() && m.addr >= src.app().log_addr
                    && m.addr < src.app().log_addr + src.app().log_bytes
                {
                    log_stores += 1;
                }
                if m.addr >= src.app().value_base {
                    value_ops += 1;
                }
            }
        }
        assert!(log_stores > 0, "writes must reach the commit log");
        assert!(value_ops > log_stores, "reads dominate 95:5");
    }

    #[test]
    fn layout_is_shared_across_threads_except_the_log() {
        let a = DataServingApp::new(DataServing::paper_setup(), 0);
        let b = DataServingApp::new(DataServing::paper_setup(), 1);
        assert_eq!(a.index_addr, b.index_addr);
        assert_eq!(a.value_base, b.value_base);
        assert_ne!(a.log_addr, b.log_addr, "commit-log segments are per-thread");
    }

    #[test]
    fn full_source_includes_kernel_time() {
        let mut src = DataServing::paper_setup().into_source(0, 5);
        let kernel =
            (0..100_000).filter(|_| src.next_op().expect("endless").is_kernel()).count();
        let frac = kernel as f64 / 100_000.0;
        assert!((0.1..0.4).contains(&frac), "kernel fraction {frac}");
    }
}
