//! Web Search: an inverted-index serving node.
//!
//! Models the paper's Nutch/Lucene ISN (§3.2): a memory-resident index
//! shard answering latency-sensitive queries. Each query intersects the
//! posting lists of its terms — sequential scans of the short list with
//! galloping (binary-search) probes into the long one — and scores hits
//! into a top-k heap. Requests are handled independently, one per thread,
//! without inter-thread communication (§2.2).

use crate::emit::{AppSource, Dep, EmitCtx, RequestApp};
use crate::heap::SimHeap;
use cs_trace::rng::{chance, splitmix64};
use cs_trace::synth::OsInterleaver;
use cs_trace::zipf::Zipf;
use cs_trace::{MicroOp, TraceSource, WorkloadProfile};
use rand::Rng;
use std::collections::VecDeque;

/// Configuration of the index serving node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebSearch {
    /// Vocabulary size of the shard.
    pub n_terms: u64,
    /// Bytes per posting entry.
    pub posting_bytes: u64,
    /// Longest posting list, in entries.
    pub max_postings: u64,
    /// Zipf exponent of query-term popularity.
    pub term_zipf_s: f64,
    /// Cap on entries scanned from the short list per query (early
    /// termination, as ISNs do for latency).
    pub scan_cap: u64,
}

impl WebSearch {
    /// The paper's setup, scaled: a 2 GB in-memory index shard.
    pub fn paper_setup() -> Self {
        Self {
            n_terms: 150_000,
            posting_bytes: 8,
            max_postings: 6_000_000,
            term_zipf_s: 0.9,
            scan_cap: 128,
        }
    }

    /// Builds the trace source for one hardware thread.
    pub fn into_source(self, thread: usize, seed: u64) -> impl TraceSource {
        let twin = WorkloadProfile::web_search();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.02, thread, seed)
            .with_scratch(32 * 1024, 0.36)
            .with_warm(160 * 1024, 0.12);
        let app = IndexNode::new(self);
        let os = twin.os.expect("web search models OS time");
        OsInterleaver::new(AppSource::new(app, ctx), &os, twin.ilp, thread, seed)
    }

    /// Like `into_source`, additionally bumping `meter` once per request
    /// (used by the harness to measure service throughput).
    pub fn into_source_metered(
        self,
        thread: usize,
        seed: u64,
        meter: crate::emit::RequestMeter,
    ) -> impl TraceSource {
        let twin = WorkloadProfile::web_search();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.02, thread, seed)
            .with_scratch(32 * 1024, 0.36)
            .with_warm(160 * 1024, 0.12);
        let app = IndexNode::new(self);
        let os = twin.os.expect("web search models OS time");
        OsInterleaver::new(AppSource::new(app, ctx).with_meter(meter), &os, twin.ilp, thread, seed)
    }
}

/// One index serving node thread.
#[derive(Debug)]
pub struct IndexNode {
    cfg: WebSearch,
    term_zipf: Zipf,
    /// Per-term posting list start offsets (entries), by popularity rank.
    offsets: Vec<u64>,
    postings_addr: u64,
    /// Total shard size in bytes (exposed for tests/examples).
    pub shard_bytes: u64,
    /// Queries served.
    pub queries: u64,
}

impl IndexNode {
    /// Lays out the shard: posting lists sorted by term rank, long lists
    /// first (popular terms have more documents).
    pub fn new(cfg: WebSearch) -> Self {
        let mut offsets = Vec::with_capacity(cfg.n_terms as usize);
        let mut total = 0u64;
        for rank in 1..=cfg.n_terms {
            offsets.push(total);
            total += Self::list_len_static(&cfg, rank);
        }
        let mut heap = SimHeap::new();
        let shard_bytes = total * cfg.posting_bytes;
        let postings_addr = heap.alloc_lines(shard_bytes);
        Self {
            cfg,
            term_zipf: Zipf::new(cfg.n_terms, cfg.term_zipf_s),
            offsets,
            postings_addr,
            shard_bytes,
            queries: 0,
        }
    }

    fn list_len_static(cfg: &WebSearch, rank: u64) -> u64 {
        // Popular terms appear in many documents: a power-law list length.
        (cfg.max_postings as f64 / (rank as f64).powf(0.85)).max(8.0) as u64
    }

    fn list_len(&self, rank: u64) -> u64 {
        Self::list_len_static(&self.cfg, rank)
    }

    fn entry_addr(&self, rank: u64, i: u64) -> u64 {
        self.postings_addr + (self.offsets[(rank - 1) as usize] + i) * self.cfg.posting_bytes
    }
}

impl RequestApp for IndexNode {
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        let cfg = self.cfg;
        // Parse the query and look the terms up in the dictionary.
        ctx.compute(180, out);
        let k = 2 + ctx.rng().gen_range(0..2);
        let mut terms: Vec<u64> = (0..k).map(|_| self.term_zipf.sample(ctx.rng())).collect();
        terms.sort_by_key(|&r| self.list_len(r));
        terms.dedup();

        // Intersect: scan the shortest list from its head (popular lists'
        // head blocks stay cache-resident across queries, as in a real
        // ISN), galloping into the longer ones at skip-block boundaries.
        let short = terms[0];
        let scan = self.list_len(short).min(cfg.scan_cap);
        for i in 0..scan {
            ctx.load(self.entry_addr(short, i), 8, Dep::Free, out);
            // Posting decode (delta/vint decompression) and document check.
            ctx.compute(14, out);
            if i % 16 == 0 {
                // Skip-list block boundary: gallop into the longer lists
                // with dependent probes. (Lucene advances through skip
                // blocks, not per-document.)
                for &long in &terms[1..] {
                    let len = self.list_len(long);
                    let mut pos = splitmix64(i ^ long ^ (self.queries % 64)) % len;
                    for _ in 0..2 {
                        ctx.load(self.entry_addr(long, pos), 8, Dep::OnPrevLoad, out);
                        ctx.compute(10, out);
                        pos = (pos + len / 2) % len;
                    }
                }
            }
            // Scoring on a hit: BM25-ish arithmetic + accumulator update
            // (accumulators are scratch).
            if chance(ctx.rng(), 0.22) {
                ctx.compute(40, out);
            }
        }

        // Rank the accumulated candidates and format the reply.
        ctx.compute(700, out);
        self.queries += 1;
    }

    fn label(&self) -> &str {
        "Web Search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::profile::IlpModel;

    fn source() -> AppSource<IndexNode> {
        let app = IndexNode::new(WebSearch::paper_setup());
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(256 * 1024, 0.85, 0.01),
            IlpModel::new(3.8, 0.2),
            0.02,
            0,
            29,
        );
        AppSource::new(app, ctx)
    }

    #[test]
    fn shard_is_gigabytes_scale() {
        let node = IndexNode::new(WebSearch::paper_setup());
        assert!(node.shard_bytes > (1 << 30), "shard only {} bytes", node.shard_bytes);
    }

    #[test]
    fn posting_lists_are_disjoint_and_ordered() {
        let node = IndexNode::new(WebSearch::paper_setup());
        for rank in 1..1000u64 {
            let end = node.offsets[(rank - 1) as usize] + node.list_len(rank);
            assert!(end <= node.offsets[rank as usize], "lists overlap at rank {rank}");
        }
    }

    #[test]
    fn popular_terms_have_longer_lists() {
        let node = IndexNode::new(WebSearch::paper_setup());
        assert!(node.list_len(1) > node.list_len(100));
        assert!(node.list_len(100) > node.list_len(100_000));
    }

    #[test]
    fn queries_scan_and_probe() {
        let mut src = source();
        let base = src.app().postings_addr;
        let end = base + src.app().shard_bytes;
        let mut scans = 0;
        let mut probes = 0;
        for _ in 0..100_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if op.is_load() && m.addr >= base && m.addr < end {
                    if op.dep1 > 0 && op.dep1 < 16 {
                        probes += 1;
                    } else {
                        scans += 1;
                    }
                }
            }
        }
        assert!(scans > 100, "short-list scans expected");
        assert!(probes > 100, "galloping probes expected");
    }

    #[test]
    fn queries_complete() {
        let mut src = source();
        for _ in 0..200_000 {
            src.next_op();
        }
        assert!(src.app().queries > 10);
    }
}
