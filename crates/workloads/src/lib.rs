//! Mini scale-out applications for CloudSuite-RS.
//!
//! The paper's six scale-out workloads (§3.2) run real server software
//! (Cassandra, Hadoop, Darwin Streaming Server, Klee, Nginx+PHP,
//! Nutch/Lucene). This crate implements a miniature of each application
//! class in Rust, executing the same algorithm shapes over data structures
//! laid out in the *simulated* address space:
//!
//! - [`data_serving`] — an in-memory key-value store with an
//!   open-addressing index, Zipfian YCSB-style clients and a 95:5
//!   read:write mix;
//! - [`mapreduce`] — a naive-Bayes classification map task scanning input
//!   splits and updating feature tables;
//! - [`media_streaming`] — a packetizer serving many concurrent clients,
//!   each at its own offset of a large pre-encoded media catalog;
//! - [`sat_solver`] — a real DPLL solver with watched literals on random
//!   3-SAT instances;
//! - [`web_frontend`] — a bytecode-interpreter web server with an opcode
//!   cache, session store and backend query stub;
//! - [`web_search`] — an inverted-index serving node intersecting posting
//!   lists and scoring hits.
//!
//! The data-access streams are genuine — every load and store address is
//! produced by the application's own data structures (hash probes, watch
//! lists, posting merges). The instruction stream is synthesized from a
//! calibrated instruction-footprint model ([`emit::EmitCtx`]), and
//! operating-system time is interleaved by
//! [`cs_trace::synth::OsInterleaver`] — both substitutions documented in
//! DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::perf)]

pub mod data_serving;
pub mod emit;
pub mod heap;
pub mod mapreduce;
pub mod media_streaming;
pub mod sat_solver;
pub mod web_frontend;
pub mod web_search;
