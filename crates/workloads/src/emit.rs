//! Micro-op emission for the mini applications.
//!
//! [`EmitCtx`] turns an application's algorithmic steps into the micro-op
//! stream the core model consumes. Data addresses come from the
//! application (genuine); program counters come from a calibrated
//! instruction-footprint walker ([`cs_trace::ifoot`]), with one branch per
//! basic block; dependencies are wired explicitly for pointer-dependent
//! loads and statistically (per the workload's ILP model) for everything
//! else.
//!
//! [`AppSource`] adapts a request-generating application to the pull-based
//! [`TraceSource`] interface, and applications are usually further wrapped
//! in an [`cs_trace::synth::OsInterleaver`] for their kernel-mode time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cs_trace::ifoot::{CodeProfile, CodeWalker};
use cs_trace::profile::IlpModel;
use cs_trace::rng::{chance, stream_rng, GeometricTable};
use cs_trace::{layout, MicroOp, OpKind, TraceSource};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// How a load's address was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dep {
    /// Address is available early (array indexing, streaming): the load
    /// gets only the statistical register dependencies.
    Free,
    /// Address was computed from the value of the most recent load
    /// (pointer chase, hash-bucket walk): an explicit dependency is wired,
    /// serializing the two.
    OnPrevLoad,
}

/// Emission context for one hardware thread of one application.
#[derive(Debug)]
pub struct EmitCtx {
    rng: SmallRng,
    walker: CodeWalker,
    ilp: IlpModel,
    dep_table: GeometricTable,
    seq: u64,
    last_load_seq: Option<u64>,
    /// Fraction of compute ops that are floating point.
    fp_frac: f64,
    /// Per-thread scratch (stack/locals) region.
    scratch_base: u64,
    scratch_bytes: u64,
    /// Probability that a compute slot is a scratch access.
    scratch_frac: f64,
    /// Per-thread warm region (per-request state, tables): larger than the
    /// L1, mostly L2-resident.
    warm_base: u64,
    warm_bytes: u64,
    /// Probability that a compute slot is a warm-region access.
    warm_frac: f64,
}

impl EmitCtx {
    /// Creates a context with the given code-footprint model and ILP
    /// structure, deterministically seeded per `(seed, thread)`.
    pub fn new(code: CodeProfile, ilp: IlpModel, fp_frac: f64, thread: usize, seed: u64) -> Self {
        let mut rng = stream_rng(seed, thread as u64);
        let dep_table = GeometricTable::new(&mut rng, ilp.mean_dep_distance);
        Self {
            walker: CodeWalker::new(layout::APP_CODE_BASE, code),
            rng,
            ilp,
            dep_table,
            seq: 0,
            last_load_seq: None,
            fp_frac,
            scratch_base: layout::stack_base(thread),
            scratch_bytes: 24 * 1024,
            scratch_frac: 0.34,
            warm_base: layout::stack_base(thread) + (1 << 20),
            warm_bytes: 160 * 1024,
            warm_frac: 0.12,
        }
    }

    /// Overrides the per-thread scratch region size and access fraction.
    pub fn with_scratch(mut self, bytes: u64, frac: f64) -> Self {
        self.scratch_bytes = bytes.max(64);
        self.scratch_frac = frac;
        self
    }

    /// Overrides the per-thread warm region size and access fraction.
    pub fn with_warm(mut self, bytes: u64, frac: f64) -> Self {
        self.warm_bytes = bytes.max(64);
        self.warm_frac = frac;
        self
    }

    /// The context RNG, for application-level decisions (request sampling).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn generic_deps(&mut self) -> (u64, u64) {
        let d1 = if chance(&mut self.rng, self.ilp.dep_prob) {
            self.dep_table.sample(&mut self.rng)
        } else {
            0
        };
        let d2 = if d1 != 0 && chance(&mut self.rng, self.ilp.second_dep_prob) {
            self.dep_table.sample(&mut self.rng)
        } else {
            0
        };
        (d1, d2)
    }

    /// Steps the code walker; emits branch ops for branch slots until a
    /// plain slot is reached, whose PC is returned.
    fn next_pc(&mut self, out: &mut VecDeque<MicroOp>) -> u64 {
        loop {
            let step = self.walker.step(&mut self.rng);
            if step.is_branch {
                let (d1, _) = self.generic_deps();
                let op = MicroOp::branch(step.pc, step.mispredict).with_deps(d1, 0);
                self.seq += 1;
                out.push_back(op);
            } else {
                return step.pc;
            }
        }
    }

    /// Emits `n` compute micro-ops: an ALU/FP mix plus structural branches,
    /// with the workload's share of accesses to per-thread scratch (stack)
    /// and warm (per-request state) memory — the bulk of a server
    /// application's cache-friendly memory traffic.
    pub fn compute(&mut self, n: u32, out: &mut VecDeque<MicroOp>) {
        for _ in 0..n {
            let r: f64 = self.rng.gen();
            if r < self.scratch_frac {
                let slot = self.rng.gen_range(0..self.scratch_bytes / 8) * 8;
                let addr = self.scratch_base + slot;
                if chance(&mut self.rng, 0.28) {
                    self.store(addr, 8, out);
                } else {
                    self.load_inner(addr, 8, Dep::Free, false, out);
                }
            } else if r < self.scratch_frac + self.warm_frac {
                let slot = self.rng.gen_range(0..self.warm_bytes / 8) * 8;
                let addr = self.warm_base + slot;
                if chance(&mut self.rng, 0.22) {
                    self.store(addr, 8, out);
                } else {
                    self.load_inner(addr, 8, Dep::Free, false, out);
                }
            } else {
                let pc = self.next_pc(out);
                let kind =
                    if chance(&mut self.rng, self.fp_frac) { OpKind::Fp } else { OpKind::IntAlu };
                let (d1, d2) = self.generic_deps();
                let op = MicroOp::of_kind(pc, kind).with_deps(d1, d2);
                self.seq += 1;
                out.push_back(op);
            }
        }
    }

    /// Emits a load of `size` bytes at `addr`.
    ///
    /// `Dep::OnPrevLoad` chains to the most recent *application* load (the
    /// scratch/warm accesses inside [`EmitCtx::compute`] do not count —
    /// pointer chains go through the data structure, not the stack).
    pub fn load(&mut self, addr: u64, size: u8, dep: Dep, out: &mut VecDeque<MicroOp>) {
        self.load_inner(addr, size, dep, true, out);
    }

    fn load_inner(
        &mut self,
        addr: u64,
        size: u8,
        dep: Dep,
        app_level: bool,
        out: &mut VecDeque<MicroOp>,
    ) {
        let pc = self.next_pc(out);
        let mut op = MicroOp::load(pc, addr, size);
        match (dep, self.last_load_seq) {
            (Dep::OnPrevLoad, Some(last)) => {
                op = op.with_deps(self.seq - last, 0);
            }
            _ => {
                let (d1, d2) = self.generic_deps();
                op = op.with_deps(d1, d2);
            }
        }
        if app_level {
            self.last_load_seq = Some(self.seq);
        }
        self.seq += 1;
        out.push_back(op);
    }

    /// Emits sequential loads covering `bytes` starting at `addr` (one per
    /// cache line), the first one optionally dependent on the previous
    /// load; interleaves `pad` compute ops per line.
    pub fn load_span(&mut self, addr: u64, bytes: u64, dep: Dep, pad: u32, out: &mut VecDeque<MicroOp>) {
        let first_line = addr >> 6;
        let last_line = (addr + bytes.max(1) - 1) >> 6;
        for (i, line) in (first_line..=last_line).enumerate() {
            let d = if i == 0 { dep } else { Dep::Free };
            self.load(line << 6, 8, d, out);
            if pad > 0 {
                self.compute(pad, out);
            }
        }
    }

    /// Emits a store of `size` bytes at `addr`.
    pub fn store(&mut self, addr: u64, size: u8, out: &mut VecDeque<MicroOp>) {
        let pc = self.next_pc(out);
        let (d1, d2) = self.generic_deps();
        let op = MicroOp::store(pc, addr, size).with_deps(d1, d2);
        self.seq += 1;
        out.push_back(op);
    }

    /// Emits sequential stores covering `bytes` starting at `addr`,
    /// interleaving `pad` compute ops per line.
    pub fn store_span(&mut self, addr: u64, bytes: u64, pad: u32, out: &mut VecDeque<MicroOp>) {
        let first_line = addr >> 6;
        let last_line = (addr + bytes.max(1) - 1) >> 6;
        for line in first_line..=last_line {
            self.store(line << 6, 8, out);
            if pad > 0 {
                self.compute(pad, out);
            }
        }
    }

    /// Ops emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }
}

/// A request-generating application.
pub trait RequestApp {
    /// Generates one request (or one algorithmic episode) worth of
    /// micro-ops into `out`. Must emit at least one op.
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>);

    /// Workload name.
    fn label(&self) -> &str;
}

/// A shared request counter, bumped once per generated request. The
/// harness snapshots it around the measurement window to compute service
/// throughput (requests per cycle) — the metric the paper's footnote 3
/// relates to user-IPC.
pub type RequestMeter = Arc<AtomicU64>;

/// Adapts a [`RequestApp`] to the [`TraceSource`] interface.
#[derive(Debug)]
pub struct AppSource<A> {
    app: A,
    ctx: EmitCtx,
    buf: VecDeque<MicroOp>,
    meter: Option<RequestMeter>,
}

impl<A: RequestApp> AppSource<A> {
    /// Creates a source for `app` with the given emission context.
    pub fn new(app: A, ctx: EmitCtx) -> Self {
        Self { app, ctx, buf: VecDeque::with_capacity(512), meter: None }
    }

    /// Attaches a request meter, bumped once per generated request.
    pub fn with_meter(mut self, meter: RequestMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }
}

impl<A: RequestApp> TraceSource for AppSource<A> {
    fn next_op(&mut self) -> Option<MicroOp> {
        while self.buf.is_empty() {
            self.app.generate(&mut self.ctx, &mut self.buf);
            if let Some(m) = &self.meter {
                m.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.buf.pop_front()
    }

    fn label(&self) -> &str {
        self.app.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EmitCtx {
        EmitCtx::new(CodeProfile::new(64 * 1024, 0.8, 0.01), IlpModel::new(3.0, 0.3), 0.0, 0, 7)
    }

    #[test]
    fn compute_emits_requested_plus_branches() {
        let mut c = ctx();
        let mut out = VecDeque::new();
        c.compute(200, &mut out);
        let branches = out.iter().filter(|o| o.kind.is_branch()).count();
        let mem = out.iter().filter(|o| o.is_mem()).count();
        let plain = out.len() - branches;
        assert_eq!(plain, 200);
        assert!(branches > 10, "structural branches expected, got {branches}");
        // Scratch + warm accesses make up roughly 46% of compute slots.
        assert!(mem > 60 && mem < 130, "scratch/warm accesses expected, got {mem}");
    }

    #[test]
    fn dependent_load_is_wired_to_previous_load() {
        let mut c = ctx();
        let mut out = VecDeque::new();
        c.load(0x1000, 8, Dep::Free, &mut out);
        c.compute(5, &mut out);
        c.load(0x2000, 8, Dep::OnPrevLoad, &mut out);
        // Application loads only (compute may emit scratch loads, which a
        // pointer chain must skip over).
        let app_loads: Vec<&MicroOp> = out
            .iter()
            .filter(|o| o.is_load() && o.mem.is_some_and(|m| m.addr < 0x10_0000))
            .collect();
        assert_eq!(app_loads.len(), 2);
        let dist_ops_between =
            out.iter().position(|o| o.mem.map(|m| m.addr) == Some(0x2000)).unwrap()
                - out.iter().position(|o| o.mem.map(|m| m.addr) == Some(0x1000)).unwrap();
        assert_eq!(app_loads[1].dep1 as usize, dist_ops_between);
    }

    #[test]
    fn load_span_touches_every_line() {
        let mut c = ctx();
        let mut out = VecDeque::new();
        c.load_span(0x10_0020, 200, Dep::Free, 0, &mut out);
        let lines: Vec<u64> =
            out.iter().filter_map(|o| o.mem.map(|m| m.addr >> 6)).collect();
        // 200 bytes starting at offset 0x20 cross 4 lines.
        assert_eq!(lines.len(), 4);
        assert!(lines.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn store_span_emits_stores() {
        let mut c = ctx();
        let mut out = VecDeque::new();
        c.store_span(0x20_0000, 128, 2, &mut out);
        assert!(out.iter().filter(|o| o.is_store()).count() >= 2);
        assert!(out.len() >= 6, "padding compute ops expected");
    }

    #[test]
    fn pcs_stay_in_app_code_region() {
        let mut c = ctx();
        let mut out = VecDeque::new();
        c.compute(50, &mut out);
        c.load(0x1234, 8, Dep::Free, &mut out);
        for op in &out {
            assert!(op.pc >= cs_trace::layout::APP_CODE_BASE);
            assert!(!cs_trace::layout::is_kernel_addr(op.pc));
        }
        // Scratch/warm accesses land in the thread's stack slot.
        for op in out.iter().filter(|o| o.is_mem()) {
            let a = op.mem.expect("mem op").addr;
            assert!(
                a == 0x1234 || a >= cs_trace::layout::stack_base(0),
                "unexpected address {a:#x}"
            );
        }
    }

    struct CountApp(u32);
    impl RequestApp for CountApp {
        fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
            self.0 += 1;
            ctx.compute(3, out);
        }
        fn label(&self) -> &str {
            "count"
        }
    }

    #[test]
    fn app_source_refills_on_demand() {
        let mut src = AppSource::new(CountApp(0), ctx());
        for _ in 0..100 {
            assert!(src.next_op().is_some());
        }
        assert!(src.app().0 >= 20, "app generated {} batches", src.app().0);
        assert_eq!(src.label(), "count");
    }

    #[test]
    fn meter_counts_requests() {
        let meter: RequestMeter = Default::default();
        let mut src = AppSource::new(CountApp(0), ctx()).with_meter(meter.clone());
        for _ in 0..100 {
            src.next_op();
        }
        let n = meter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(n, src.app().0 as u64, "meter must track generate() calls");
        assert!(n > 0);
    }
}
