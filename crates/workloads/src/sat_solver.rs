//! SAT Solver: a real DPLL solver with unit propagation.
//!
//! Models the paper's Klee/Cloud9 setup (§3.2): one solver instance per
//! core, CPU-bound, with pointer-heavy traversal of a clause database. The
//! solver is a genuine DPLL implementation over random 3-SAT instances —
//! decisions, unit propagation through occurrence lists, conflict
//! backtracking — with the clause database and occurrence nodes laid out
//! in the simulated address space. Each finished instance is replaced by a
//! fresh one (the paper reuses input traces for run-to-run comparability;
//! we reuse the generator seed).

use crate::emit::{AppSource, Dep, EmitCtx, RequestApp};
use crate::heap::SimHeap;
use cs_trace::rng::splitmix64;
use cs_trace::synth::OsInterleaver;
use cs_trace::{MicroOp, TraceSource, WorkloadProfile};
use rand::Rng;
use std::collections::VecDeque;

/// Configuration of the solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatSolver {
    /// Variables per instance.
    pub n_vars: usize,
    /// Clause-to-variable ratio (4.26 is the hard region for 3-SAT).
    pub clause_ratio: f64,
    /// Simulated bytes the active clause shard spans.
    pub shard_bytes: u64,
    /// Simulated bytes of the learned-clause / trace database.
    pub learned_bytes: u64,
}

impl SatSolver {
    /// The paper's setup, scaled: Klee-style symbolic-execution queries as
    /// a stream of hard random 3-SAT instances.
    pub fn paper_setup() -> Self {
        Self { n_vars: 320, clause_ratio: 3.9, shard_bytes: 1 << 20, learned_bytes: 512 << 20 }
    }

    /// Builds the trace source for one hardware thread (one solver
    /// process; SAT Solver runs one independent instance per core).
    pub fn into_source(self, thread: usize, seed: u64) -> impl TraceSource {
        let twin = WorkloadProfile::sat_solver();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(32 * 1024, 0.36)
            .with_warm(160 * 1024, 0.12);
        let app = Dpll::new(self, thread, seed);
        let os = twin.os.expect("sat solver models (minimal) OS time");
        OsInterleaver::new(AppSource::new(app, ctx), &os, twin.ilp, thread, seed)
    }

    /// Like `into_source`, additionally bumping `meter` once per request
    /// (used by the harness to measure service throughput).
    pub fn into_source_metered(
        self,
        thread: usize,
        seed: u64,
        meter: crate::emit::RequestMeter,
    ) -> impl TraceSource {
        let twin = WorkloadProfile::sat_solver();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(32 * 1024, 0.36)
            .with_warm(160 * 1024, 0.12);
        let app = Dpll::new(self, thread, seed);
        let os = twin.os.expect("sat solver models (minimal) OS time");
        OsInterleaver::new(AppSource::new(app, ctx).with_meter(meter), &os, twin.ilp, thread, seed)
    }
}

type Lit = i32; // +v / -v, 1-based

/// A running DPLL solver.
#[derive(Debug)]
pub struct Dpll {
    cfg: SatSolver,
    rng: rand::rngs::SmallRng,
    clauses: Vec<[Lit; 3]>,
    /// Occurrence lists indexed by literal code (2v / 2v+1).
    occurs: Vec<Vec<u32>>,
    /// 0 unassigned, +1 true, -1 false.
    assignment: Vec<i8>,
    trail: Vec<Lit>,
    /// Trail length at each decision level.
    levels: Vec<usize>,
    instance_salt: u64,
    clause_region: u64,
    occur_region: u64,
    assign_addr: u64,
    learned_addr: u64,
    learned_pos: u64,
    /// Conflicts encountered (exposed for tests/examples).
    pub conflicts: u64,
    /// Instances completed (SAT or UNSAT).
    pub instances: u64,
}

impl Dpll {
    /// Creates the solver and its first instance.
    pub fn new(cfg: SatSolver, thread: usize, seed: u64) -> Self {
        let mut heap = SimHeap::new();
        let clause_region = heap.alloc_lines(cfg.shard_bytes * 16);
        let occur_region = heap.alloc_lines(cfg.shard_bytes * 16);
        let assign_addr = heap.alloc_lines(4096 * 16) + (thread as u64 % 16) * 4096;
        // Independent solver processes: every region is per-thread.
        let learned_addr =
            heap.alloc_lines(cfg.learned_bytes * 16) + (thread as u64 % 16) * cfg.learned_bytes;
        let mut solver = Self {
            cfg,
            rng: cs_trace::rng::stream_rng(seed ^ 0x5A7, thread as u64),
            clauses: Vec::new(),
            occurs: Vec::new(),
            assignment: Vec::new(),
            trail: Vec::new(),
            levels: Vec::new(),
            instance_salt: 0,
            clause_region: clause_region + thread as u64 % 16 * cfg.shard_bytes,
            occur_region: occur_region + thread as u64 % 16 * cfg.shard_bytes,
            assign_addr,
            learned_addr,
            learned_pos: 0,
            conflicts: 0,
            instances: 0,
        };
        solver.new_instance();
        solver
    }

    fn new_instance(&mut self) {
        let n = self.cfg.n_vars;
        let m = (n as f64 * self.cfg.clause_ratio) as usize;
        self.instance_salt = self.rng.gen();
        self.clauses.clear();
        self.occurs = vec![Vec::new(); 2 * (n + 1)];
        for c in 0..m {
            let mut lits = [0i32; 3];
            for slot in &mut lits {
                let v = self.rng.gen_range(1..=n as i32);
                *slot = if self.rng.gen::<bool>() { v } else { -v };
            }
            self.clauses.push(lits);
            for &l in &lits {
                self.occurs[lit_code(l)].push(c as u32);
            }
        }
        self.assignment = vec![0; n + 1];
        self.trail.clear();
        self.levels.clear();
    }

    fn clause_addr(&self, c: u32) -> u64 {
        let slots = self.cfg.shard_bytes / 16;
        self.clause_region + (splitmix64(c as u64 ^ self.instance_salt) % slots) * 16
    }

    /// Occurrence lists are contiguous vectors (as in real solvers): each
    /// literal's list starts at a scattered base, and its entries are
    /// sequential 8-byte words.
    fn occur_node_addr(&self, lit: usize, i: usize) -> u64 {
        let slots = self.cfg.shard_bytes / 8;
        let base = splitmix64(lit as u64 ^ self.instance_salt) % slots;
        self.occur_region + ((base + i as u64) % slots) * 8
    }

    fn value(&self, l: Lit) -> i8 {
        let v = self.assignment[l.unsigned_abs() as usize];
        if l > 0 {
            v
        } else {
            -v
        }
    }

    fn assign(&mut self, l: Lit, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        self.assignment[l.unsigned_abs() as usize] = if l > 0 { 1 } else { -1 };
        self.trail.push(l);
        ctx.store(self.assign_addr + l.unsigned_abs() as u64, 1, out);
    }

    /// Propagates to fixpoint from `start` on the trail; returns `false`
    /// on conflict. Emits the traversal's memory behaviour.
    fn propagate(&mut self, mut start: usize, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) -> bool {
        while start < self.trail.len() {
            let l = self.trail[start];
            start += 1;
            // Clauses watching the falsified literal ¬l.
            let falsified = lit_code(-l);
            let list: Vec<u32> = self.occurs[falsified].clone();
            for (i, &c) in list.iter().enumerate() {
                // Read the next occurrence-vector entry (sequential after
                // the first), then the clause it points at (dependent).
                let dep = if i == 0 { Dep::OnPrevLoad } else { Dep::Free };
                ctx.load(self.occur_node_addr(falsified, i), 8, dep, out);
                ctx.load(self.clause_addr(c), 16, Dep::OnPrevLoad, out);
                // Check the other literals against the assignment array.
                let lits = self.clauses[c as usize];
                let mut unassigned = None;
                let mut satisfied = false;
                for &other in &lits {
                    ctx.load(self.assign_addr + other.unsigned_abs() as u64, 1, Dep::Free, out);
                    match self.value(other) {
                        1 => satisfied = true,
                        0 => unassigned = Some(other),
                        _ => {}
                    }
                }
                // Literal decoding, clause inspection, activity bumping:
                // solvers spend tens of instructions per visited clause.
                ctx.compute(26, out);
                if satisfied {
                    continue;
                }
                match unassigned {
                    None => {
                        // Conflict: record a learned clause and fail.
                        self.conflicts += 1;
                        ctx.compute(120, out);
                        if self.learned_pos + 64 >= self.cfg.learned_bytes {
                            self.learned_pos = 0;
                        }
                        ctx.store_span(self.learned_addr + self.learned_pos, 48, 2, out);
                        self.learned_pos += 64;
                        return false;
                    }
                    Some(u) if self.value(u) == 0 => {
                        // Unit clause: imply.
                        self.assign(u, ctx, out);
                        ctx.compute(12, out);
                    }
                    _ => {}
                }
            }
        }
        true
    }

    fn backtrack(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) -> Option<Lit> {
        // Undo to the last decision and flip it.
        let mark = self.levels.pop()?;
        let mut flipped = None;
        while self.trail.len() > mark {
            let l = self.trail.pop().expect("trail long enough");
            self.assignment[l.unsigned_abs() as usize] = 0;
            ctx.store(self.assign_addr + l.unsigned_abs() as u64, 1, out);
            flipped = Some(l);
        }
        ctx.compute(60, out);
        flipped.map(|l| -l)
    }
}

fn lit_code(l: Lit) -> usize {
    let v = l.unsigned_abs() as usize;
    2 * v + usize::from(l < 0)
}

impl RequestApp for Dpll {
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        // One decision episode: decide, propagate, resolve conflicts.
        let undecided = (1..=self.cfg.n_vars as i32).find(|v| self.assignment[*v as usize] == 0);
        let Some(var) = undecided else {
            // Satisfying assignment found: next instance.
            self.instances += 1;
            ctx.compute(500, out);
            self.new_instance();
            return;
        };

        // Decision heuristic (activity scan over the hot assignment array).
        ctx.compute(70, out);
        let decision = if ctx.rng().gen::<bool>() { var } else { -var };
        self.levels.push(self.trail.len());
        let start = self.trail.len();
        self.assign(decision, ctx, out);

        if !self.propagate(start, ctx, out) {
            // Conflict: backtrack until a flip propagates or the instance
            // is exhausted.
            loop {
                match self.backtrack(ctx, out) {
                    None => {
                        // UNSAT at root: next instance.
                        self.instances += 1;
                        ctx.compute(500, out);
                        self.new_instance();
                        return;
                    }
                    Some(flip) => {
                        if self.value(flip) != 0 {
                            continue;
                        }
                        let start = self.trail.len();
                        self.assign(flip, ctx, out);
                        if self.propagate(start, ctx, out) {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn label(&self) -> &str {
        "SAT Solver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::profile::IlpModel;

    fn source() -> AppSource<Dpll> {
        let app = Dpll::new(SatSolver::paper_setup(), 0, 17);
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(128 * 1024, 0.85, 0.01),
            IlpModel::new(3.2, 0.2),
            0.0,
            0,
            17,
        );
        AppSource::new(app, ctx)
    }

    #[test]
    fn solver_makes_progress_and_finds_conflicts() {
        let mut src = source();
        for _ in 0..400_000 {
            src.next_op();
        }
        assert!(src.app().conflicts > 0, "hard 3-SAT must conflict");
    }

    #[test]
    fn assignment_is_consistent_after_propagation() {
        let mut app = Dpll::new(SatSolver::paper_setup(), 0, 3);
        let mut ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(64 * 1024, 0.85, 0.01),
            IlpModel::new(3.0, 0.2),
            0.0,
            0,
            3,
        );
        let mut out = VecDeque::new();
        for _ in 0..200 {
            app.generate(&mut ctx, &mut out);
            out.clear();
            // Invariant: no clause is fully falsified while the solver is
            // in a consistent state (conflicts are repaired in-episode).
            for (c, lits) in app.clauses.iter().enumerate() {
                let all_false = lits.iter().all(|&l| app.value(l) == -1);
                assert!(!all_false, "clause {c} fully falsified between episodes");
            }
        }
    }

    #[test]
    fn traversal_is_pointer_dependent() {
        let mut src = source();
        let mut dependent_loads = 0;
        let mut loads = 0;
        for _ in 0..50_000 {
            let op = src.next_op().expect("endless");
            if op.is_load() {
                loads += 1;
                if op.dep1 > 0 && op.dep1 < 16 {
                    dependent_loads += 1;
                }
            }
        }
        assert!(
            dependent_loads as f64 / loads as f64 > 0.2,
            "watch-list walks must chain loads: {dependent_loads}/{loads}"
        );
    }

    #[test]
    fn instances_eventually_complete() {
        let mut src = source();
        for _ in 0..3_000_000 {
            src.next_op();
            if src.app().instances > 0 {
                return;
            }
        }
        // Hard instances may legitimately take longer; progress suffices.
        assert!(src.app().conflicts > 100, "no instance finished and few conflicts");
    }
}
