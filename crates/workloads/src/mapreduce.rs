//! MapReduce: a naive-Bayes classification map task.
//!
//! Models the paper's Hadoop 0.20.2 + Mahout setup (§3.2): one map task per
//! core classifying Wikipedia-like documents. Each document is scanned
//! sequentially from the task's input split; every token is hashed into a
//! shared feature table whose per-class counts feed the classifier; scored
//! documents are appended to a spill buffer. Input scanning is the one
//! scale-out access stream simple prefetchers help (Figure 5).

use crate::emit::{AppSource, Dep, EmitCtx, RequestApp};
use crate::heap::SimHeap;
use cs_trace::rng::{geometric, splitmix64};
use cs_trace::synth::OsInterleaver;
use cs_trace::zipf::Zipf;
use cs_trace::{MicroOp, TraceSource, WorkloadProfile};
use std::collections::VecDeque;

/// Configuration of the map task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapReduce {
    /// Vocabulary size of the feature table.
    pub n_terms: u64,
    /// Number of classes (country tags in the Mahout benchmark).
    pub n_classes: u64,
    /// Input split bytes per task (private to each map task).
    pub split_bytes: u64,
    /// Mean document length in tokens.
    pub mean_doc_tokens: f64,
    /// Zipf exponent of term popularity (natural language).
    pub term_zipf_s: f64,
}

impl MapReduce {
    /// The paper's setup, scaled: Bayesian classification over a 4.5 GB
    /// Wikipedia corpus, one map task per core with its own split.
    pub fn paper_setup() -> Self {
        Self {
            n_terms: 100_000,
            n_classes: 64,
            split_bytes: 1 << 30,
            mean_doc_tokens: 260.0,
            term_zipf_s: 1.0,
        }
    }

    /// Builds the trace source for one hardware thread (one map task).
    pub fn into_source(self, thread: usize, seed: u64) -> impl TraceSource {
        let twin = WorkloadProfile::mapreduce();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.04, thread, seed)
            .with_scratch(24 * 1024, 0.32)
            .with_warm(192 * 1024, 0.12);
        let app = MapTask::new(self, thread);
        let os = twin.os.expect("mapreduce models OS time");
        OsInterleaver::new(AppSource::new(app, ctx), &os, twin.ilp, thread, seed)
    }

    /// Like `into_source`, additionally bumping `meter` once per request
    /// (used by the harness to measure service throughput).
    pub fn into_source_metered(
        self,
        thread: usize,
        seed: u64,
        meter: crate::emit::RequestMeter,
    ) -> impl TraceSource {
        let twin = WorkloadProfile::mapreduce();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.04, thread, seed)
            .with_scratch(24 * 1024, 0.32)
            .with_warm(192 * 1024, 0.12);
        let app = MapTask::new(self, thread);
        let os = twin.os.expect("mapreduce models OS time");
        OsInterleaver::new(AppSource::new(app, ctx).with_meter(meter), &os, twin.ilp, thread, seed)
    }
}

/// One running map task.
#[derive(Debug)]
pub struct MapTask {
    cfg: MapReduce,
    term_zipf: Zipf,
    /// Feature table: per-term, per-class counts (shared across tasks,
    /// read-mostly during classification).
    table_addr: u64,
    /// This task's input split (private).
    split_addr: u64,
    /// Spill buffer for map output (private).
    spill_addr: u64,
    spill_bytes: u64,
    cursor: u64,
    spill_pos: u64,
    /// Documents processed.
    pub documents: u64,
}

impl MapTask {
    /// Lays out the shared feature table and this task's private split.
    pub fn new(cfg: MapReduce, thread: usize) -> Self {
        let mut heap = SimHeap::new();
        let table_addr = heap.alloc_lines(cfg.n_terms * 16);
        // Private regions: one slot per possible task.
        let splits = heap.alloc_lines(cfg.split_bytes * 16);
        let spills = heap.alloc_lines((128 << 20) * 16);
        Self {
            cfg,
            term_zipf: Zipf::new(cfg.n_terms, cfg.term_zipf_s),
            table_addr,
            split_addr: splits + thread as u64 % 16 * cfg.split_bytes,
            spill_addr: spills + thread as u64 % 16 * (128 << 20),
            spill_bytes: 128 << 20,
            cursor: 0,
            spill_pos: 0,
            documents: 0,
        }
    }
}

impl RequestApp for MapTask {
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        let cfg = self.cfg;
        // Record reader: fetch the next document header.
        ctx.compute(80, out);
        let tokens = geometric(ctx.rng(), cfg.mean_doc_tokens).min(4000);

        for _ in 0..tokens {
            // Sequential scan: ~6 bytes of text per token.
            let addr = self.split_addr + self.cursor;
            self.cursor = (self.cursor + 6) % cfg.split_bytes;
            ctx.load(addr, 6, Dep::Free, out);
            // Tokenize/normalize (case folding, stemming, hashing).
            ctx.compute(14, out);
            // Feature lookup: term id -> table row (per-class counts).
            let rank = self.term_zipf.sample(ctx.rng()) - 1;
            let term = splitmix64(rank) % cfg.n_terms;
            ctx.load(self.table_addr + term * 16, 8, Dep::OnPrevLoad, out);
            // Accumulate log-likelihoods per class (scratch accumulators).
            ctx.compute(9, out);
        }

        // Pick the arg-max class and emit the (doc, class) pair.
        ctx.compute(140, out);
        if self.spill_pos + 256 >= self.spill_bytes {
            self.spill_pos = 0;
        }
        ctx.store_span(self.spill_addr + self.spill_pos, 192, 3, out);
        self.spill_pos += 256;
        self.documents += 1;
    }

    fn label(&self) -> &str {
        "MapReduce"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::profile::IlpModel;

    fn source() -> AppSource<MapTask> {
        let app = MapTask::new(MapReduce::paper_setup(), 0);
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(128 * 1024, 0.8, 0.01),
            IlpModel::new(3.0, 0.3),
            0.0,
            0,
            9,
        );
        AppSource::new(app, ctx)
    }

    #[test]
    fn input_scan_is_sequential() {
        let mut src = source();
        let split = src.app().split_addr;
        let mut scan_addrs = Vec::new();
        for _ in 0..60_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if op.is_load() && m.addr >= split && m.addr < split + (1 << 30) {
                    scan_addrs.push(m.addr);
                }
            }
        }
        assert!(scan_addrs.len() > 500);
        let ascending =
            scan_addrs.windows(2).filter(|w| w[1] > w[0] && w[1] - w[0] < 64).count();
        assert!(
            ascending as f64 / scan_addrs.len() as f64 > 0.9,
            "scan not sequential: {ascending}/{}",
            scan_addrs.len()
        );
    }

    #[test]
    fn feature_table_is_skewed() {
        let mut src = source();
        let table = src.app().table_addr;
        let cap = table + MapReduce::paper_setup().n_terms * 16;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..200_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if m.addr >= table && m.addr < cap {
                    *counts.entry(m.addr).or_insert(0u64) += 1;
                }
            }
        }
        let total: u64 = counts.values().sum();
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(total > 1000);
        assert!(max as f64 > total as f64 / 5000.0, "no hot terms: max {max} of {total}");
    }

    #[test]
    fn documents_complete() {
        let mut src = source();
        for _ in 0..200_000 {
            src.next_op();
        }
        assert!(src.app().documents > 10);
    }

    #[test]
    fn splits_are_private_per_thread() {
        let a = MapTask::new(MapReduce::paper_setup(), 0);
        let b = MapTask::new(MapReduce::paper_setup(), 1);
        assert_eq!(a.table_addr, b.table_addr, "feature table is shared");
        assert_ne!(a.split_addr, b.split_addr, "splits are private");
    }
}
