//! The simulated heap: address-space layout for application data
//! structures.
//!
//! Applications in this crate never allocate host memory for their
//! datasets; they allocate *simulated address ranges* from a [`SimHeap`]
//! and emit loads and stores against them. Host-side Rust structures hold
//! only the metadata needed to reproduce the application's control flow
//! (index tables, watch lists, client cursors). This is what lets a
//! workload touch a 15 GB dataset on a laptop: the dataset exists as
//! addresses, and the cache hierarchy only ever sees addresses.

use cs_trace::layout;

/// A simulated virtual address.
pub type SimAddr = u64;

/// Bump allocator over the application heap region of the simulated
/// address space.
///
/// Threads of one workload instance construct their heaps deterministically
/// from the same workload seed, so every thread sees the same layout —
/// the shared-dataset structure of server software — without sharing any
/// host memory.
#[derive(Debug, Clone)]
pub struct SimHeap {
    next: SimAddr,
    end: SimAddr,
}

impl Default for SimHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl SimHeap {
    /// A heap spanning the whole application heap region.
    pub fn new() -> Self {
        Self { next: layout::APP_HEAP_BASE, end: layout::APP_HEAP_BASE + (1 << 44) }
    }

    /// Allocates `bytes` with the given power-of-two `align`ment.
    ///
    /// # Panics
    ///
    /// Panics if the alignment is not a power of two or the region is
    /// exhausted (does not happen for the stock workloads).
    pub fn alloc(&mut self, bytes: u64, align: u64) -> SimAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        assert!(base + bytes <= self.end, "simulated heap exhausted");
        self.next = base + bytes;
        base
    }

    /// Allocates a cache-line aligned region.
    pub fn alloc_lines(&mut self, bytes: u64) -> SimAddr {
        self.alloc(bytes, 64)
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next - layout::APP_HEAP_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut h = SimHeap::new();
        let a = h.alloc(100, 64);
        let b = h.alloc(10, 64);
        let c = h.alloc_lines(1 << 30);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(a + 100 <= b);
        assert!(b + 10 <= c);
        assert!(h.used() >= (1 << 30) + 110);
    }

    #[test]
    fn identical_construction_gives_identical_layout() {
        let mk = || {
            let mut h = SimHeap::new();
            (h.alloc(123, 8), h.alloc(1 << 20, 64))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn heap_lives_in_app_region() {
        let mut h = SimHeap::new();
        let a = h.alloc(8, 8);
        assert!(a >= layout::APP_HEAP_BASE);
        assert!(!layout::is_kernel_addr(a));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_alignment() {
        let _ = SimHeap::new().alloc(8, 3);
    }
}
