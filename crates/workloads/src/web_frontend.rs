//! Web Frontend: a bytecode-interpreter web server.
//!
//! Models the paper's Nginx + PHP (APC opcode cache) setup serving Olio
//! (§3.2): every request routes to a script whose cached opcode stream is
//! interpreted — the dominant instruction footprint of the suite — touching
//! a session store and occasionally issuing backend queries. The
//! interpreter's locals stay hot (the highest scale-out IPC in Figure 3)
//! and requests perform a single dependent descent each (the lowest MLP).

use crate::emit::{AppSource, Dep, EmitCtx, RequestApp};
use crate::heap::SimHeap;
use cs_trace::rng::{chance, splitmix64};
use cs_trace::synth::OsInterleaver;
use cs_trace::zipf::Zipf;
use cs_trace::{MicroOp, TraceSource, WorkloadProfile};
use std::collections::VecDeque;

/// Configuration of the frontend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebFrontend {
    /// Distinct scripts in the opcode cache.
    pub n_scripts: u64,
    /// Mean opcodes interpreted per request.
    pub mean_opcodes: u64,
    /// Bytes per opcode in the cache.
    pub opcode_bytes: u64,
    /// Sessions in the session store.
    pub n_sessions: u64,
    /// Bytes per session record.
    pub session_bytes: u64,
    /// Zipf exponent of script popularity.
    pub script_zipf_s: f64,
}

impl WebFrontend {
    /// The paper's setup, scaled: Olio's PHP pages under APC, a 12 GB
    /// on-disk dataset served from memory.
    pub fn paper_setup() -> Self {
        Self {
            n_scripts: 256,
            mean_opcodes: 360,
            opcode_bytes: 16,
            n_sessions: 1 << 20,
            session_bytes: 1024,
            script_zipf_s: 0.9,
        }
    }

    /// Builds the trace source for one hardware thread.
    pub fn into_source(self, thread: usize, seed: u64) -> impl TraceSource {
        let twin = WorkloadProfile::web_frontend();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(48 * 1024, 0.38)
            .with_warm(224 * 1024, 0.12);
        let app = Frontend::new(self, thread);
        let os = twin.os.expect("web frontend models OS time");
        OsInterleaver::new(AppSource::new(app, ctx), &os, twin.ilp, thread, seed)
    }

    /// Like `into_source`, additionally bumping `meter` once per request
    /// (used by the harness to measure service throughput).
    pub fn into_source_metered(
        self,
        thread: usize,
        seed: u64,
        meter: crate::emit::RequestMeter,
    ) -> impl TraceSource {
        let twin = WorkloadProfile::web_frontend();
        let ctx = EmitCtx::new(twin.code.clone(), twin.ilp, 0.0, thread, seed)
            .with_scratch(48 * 1024, 0.38)
            .with_warm(224 * 1024, 0.12);
        let app = Frontend::new(self, thread);
        let os = twin.os.expect("web frontend models OS time");
        OsInterleaver::new(AppSource::new(app, ctx).with_meter(meter), &os, twin.ilp, thread, seed)
    }
}

/// One serving thread of the frontend.
#[derive(Debug)]
pub struct Frontend {
    cfg: WebFrontend,
    script_zipf: Zipf,
    session_zipf: Zipf,
    blob_addr: u64,
    session_addr: u64,
    db_addr: u64,
    db_bytes: u64,
    thread_salt: u64,
    /// Requests served.
    pub requests: u64,
}

impl Frontend {
    /// Lays out the opcode cache, the session store and the backend stub.
    /// `thread` salts session selection: concurrent requests from one user
    /// land on one worker, so threads touch disjoint hot sessions.
    pub fn new(cfg: WebFrontend, thread: usize) -> Self {
        let mut heap = SimHeap::new();
        let max_script_bytes = 4 * cfg.mean_opcodes * cfg.opcode_bytes;
        let blob_addr = heap.alloc_lines(cfg.n_scripts * max_script_bytes);
        let session_addr = heap.alloc_lines(cfg.n_sessions * cfg.session_bytes);
        let db_bytes = 256 << 20;
        let db_addr = heap.alloc_lines(db_bytes);
        Self {
            cfg,
            script_zipf: Zipf::new(cfg.n_scripts, cfg.script_zipf_s),
            session_zipf: Zipf::new(cfg.n_sessions, 0.9),
            blob_addr,
            session_addr,
            db_addr,
            db_bytes,
            thread_salt: thread as u64,
            requests: 0,
        }
    }

    fn script_len(&self, script: u64) -> u64 {
        let base = self.cfg.mean_opcodes / 2;
        base + splitmix64(script ^ 0x0C0DE) % (3 * self.cfg.mean_opcodes)
    }
}

impl RequestApp for Frontend {
    fn generate(&mut self, ctx: &mut EmitCtx, out: &mut VecDeque<MicroOp>) {
        let cfg = self.cfg;
        // Accept + route + opcode-cache lookup.
        ctx.compute(160, out);
        let script = self.script_zipf.sample(ctx.rng()) - 1;

        // Session load: cookie -> session record (dependent descent).
        let srank = self.session_zipf.sample(ctx.rng()) - 1;
        let session = splitmix64(srank ^ (self.thread_salt << 40)) % cfg.n_sessions;
        ctx.load_span(
            self.session_addr + session * cfg.session_bytes,
            192,
            Dep::OnPrevLoad,
            10,
            out,
        );

        // Interpret the script: sequential opcode fetches from the cache
        // blob, a handful of compute per opcode (locals live in scratch),
        // occasional backend queries.
        let max_script_bytes = 4 * cfg.mean_opcodes * cfg.opcode_bytes;
        let blob = self.blob_addr + script * max_script_bytes;
        let opcodes = self.script_len(script);
        for pc in 0..opcodes {
            if pc % 4 == 0 {
                // One 64-byte line holds four 16-byte opcodes.
                ctx.load(blob + pc * cfg.opcode_bytes, 8, Dep::Free, out);
            }
            ctx.compute(4, out);
            if chance(ctx.rng(), 0.004) {
                // Backend query stub: single dependent pointer descent.
                let row = splitmix64(self.requests ^ pc) % (self.db_bytes / 64);
                ctx.load(self.db_addr + row * 64, 8, Dep::OnPrevLoad, out);
                ctx.load(self.db_addr + splitmix64(row) % (self.db_bytes / 64) * 64, 8, Dep::OnPrevLoad, out);
                ctx.compute(60, out);
            }
        }

        // Render the page into the (warm) output buffer and update the
        // session.
        ctx.compute(220, out);
        ctx.store_span(self.session_addr + session * cfg.session_bytes, 96, 4, out);
        self.requests += 1;
    }

    fn label(&self) -> &str {
        "Web Frontend"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_trace::profile::IlpModel;

    fn source() -> AppSource<Frontend> {
        let app = Frontend::new(WebFrontend::paper_setup(), 0);
        let ctx = EmitCtx::new(
            cs_trace::ifoot::CodeProfile::new(256 * 1024, 0.85, 0.01),
            IlpModel::new(3.5, 0.4),
            0.0,
            0,
            23,
        );
        AppSource::new(app, ctx)
    }

    #[test]
    fn opcode_fetches_are_sequential_within_a_script() {
        let mut src = source();
        let blob = src.app().blob_addr;
        let session = src.app().session_addr;
        let mut fetches = Vec::new();
        for _ in 0..60_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if op.is_load() && m.addr >= blob && m.addr < session {
                    fetches.push(m.addr);
                }
            }
        }
        assert!(fetches.len() > 100);
        let ascending = fetches.windows(2).filter(|w| w[1] == w[0] + 64).count();
        assert!(
            ascending as f64 / fetches.len() as f64 > 0.6,
            "opcode stream not sequential: {ascending}/{}",
            fetches.len()
        );
    }

    #[test]
    fn sessions_are_read_and_written() {
        let mut src = source();
        let session = src.app().session_addr;
        let db = src.app().db_addr;
        let (mut reads, mut writes) = (0, 0);
        for _ in 0..200_000 {
            let op = src.next_op().expect("endless");
            if let Some(m) = op.mem {
                if m.addr >= session && m.addr < db {
                    if op.is_load() {
                        reads += 1;
                    } else {
                        writes += 1;
                    }
                }
            }
        }
        assert!(reads > 0 && writes > 0, "sessions: {reads} reads, {writes} writes");
    }

    #[test]
    fn requests_complete() {
        let mut src = source();
        for _ in 0..200_000 {
            src.next_op();
        }
        assert!(src.app().requests > 20);
    }

    #[test]
    fn popular_scripts_dominate() {
        let mut app = Frontend::new(WebFrontend::paper_setup(), 0);
        let mut rng = cs_trace::rng::stream_rng(1, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(app.script_zipf.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 100, "script popularity must be skewed: max {max}");
        let _ = &mut app;
    }
}
