//! Property-based tests of the mini-application substrate.

use cs_trace::TraceSource;
use cs_workloads::heap::SimHeap;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heap allocations never overlap, whatever the request sequence.
    #[test]
    fn heap_allocations_are_disjoint(
        reqs in proptest::collection::vec((1u64..(1 << 20), 0u32..7), 1..60),
    ) {
        let mut heap = SimHeap::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &(bytes, align_pow) in &reqs {
            let align = 1 << align_pow;
            let a = heap.alloc(bytes, align);
            prop_assert_eq!(a % align, 0);
            for &(base, len) in &spans {
                prop_assert!(a + bytes <= base || a >= base + len, "overlap");
            }
            spans.push((a, bytes));
        }
    }

    /// The DPLL solver stays consistent for arbitrary seeds: its emitted
    /// stream is well-formed and its assignment never falsifies a clause
    /// between episodes.
    #[test]
    fn sat_solver_streams_are_well_formed(seed in any::<u64>(), thread in 0usize..4) {
        let mut src = cs_workloads::sat_solver::SatSolver::paper_setup()
            .into_source(thread, seed);
        for _ in 0..3_000 {
            let op = src.next_op().expect("endless");
            prop_assert_eq!(op.is_mem(), op.mem.is_some());
        }
    }

    /// Every mini application produces a deterministic stream per
    /// (thread, seed).
    #[test]
    fn apps_are_deterministic(seed in any::<u64>()) {
        let mk = || cs_workloads::web_search::WebSearch::paper_setup().into_source(1, seed);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..1_000 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
    }
}
