//! The benchmark registry.
//!
//! One [`Benchmark`] per workload of the paper's evaluation: the six
//! CloudSuite scale-out workloads of §3.2 (backed by the mini application
//! implementations in `cs-workloads`) and the traditional comparison
//! points of §3.3 (backed by the statistical profiles in
//! `cs-trace::profile`).

use cs_trace::{TraceSource, WorkloadProfile};
use cs_workloads::emit::RequestMeter;
use std::sync::Arc;

/// A registry-level failure: a capability was requested that the workload
/// does not provide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Request metering was required but the workload has no metered
    /// factory (statistical profiles have no request notion).
    MeterUnsupported {
        /// Name of the workload that cannot meter requests.
        workload: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::MeterUnsupported { workload } => {
                write!(f, "workload {workload:?} does not support request metering")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Workload class, as the paper groups its figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// The CloudSuite scale-out workloads (§3.2).
    ScaleOut,
    /// Desktop, parallel, enterprise-web and database benchmarks (§3.3).
    Traditional,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::ScaleOut => f.write_str("scale-out"),
            Category::Traditional => f.write_str("traditional"),
        }
    }
}

type SourceFactory = Arc<dyn Fn(usize, u64) -> Box<dyn TraceSource> + Send + Sync>;
type MeteredFactory =
    Arc<dyn Fn(usize, u64, RequestMeter) -> Box<dyn TraceSource> + Send + Sync>;

/// A runnable workload: a name, a class, and a per-thread trace-source
/// factory.
#[derive(Clone)]
pub struct Benchmark {
    name: String,
    category: Category,
    factory: SourceFactory,
    metered: Option<MeteredFactory>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

impl Benchmark {
    /// Wraps a statistical workload profile.
    pub fn from_profile(category: Category, profile: WorkloadProfile) -> Self {
        let name = profile.name.clone();
        let factory: SourceFactory =
            Arc::new(move |thread, seed| Box::new(profile.build_source(thread, seed)));
        Self { name, category, factory, metered: None }
    }

    /// Wraps an arbitrary source factory (used by the mini applications in
    /// `cs-workloads` and by tests).
    pub fn from_factory(
        name: impl Into<String>,
        category: Category,
        factory: impl Fn(usize, u64) -> Box<dyn TraceSource> + Send + Sync + 'static,
    ) -> Self {
        Self { name: name.into(), category, factory: Arc::new(factory), metered: None }
    }

    /// Attaches a request-metered factory (used by the mini applications;
    /// statistical profiles have no request notion).
    pub fn with_metered_factory(
        mut self,
        factory: impl Fn(usize, u64, RequestMeter) -> Box<dyn TraceSource> + Send + Sync + 'static,
    ) -> Self {
        self.metered = Some(Arc::new(factory));
        self
    }

    /// Builds a source and, when the workload supports it, a request meter
    /// counting completed requests (the service-throughput side of the
    /// paper's footnote 3).
    pub fn build_source_metered(
        &self,
        thread: usize,
        seed: u64,
    ) -> (Box<dyn TraceSource>, Option<RequestMeter>) {
        match &self.metered {
            Some(f) => {
                let meter = RequestMeter::default();
                (f(thread, seed, meter.clone()), Some(meter))
            }
            None => ((self.factory)(thread, seed), None),
        }
    }

    /// Like [`Benchmark::build_source_metered`], but for callers that
    /// *require* a meter: returns a typed [`RegistryError`] instead of an
    /// `Option` when the workload cannot count requests.
    pub fn build_source_metered_strict(
        &self,
        thread: usize,
        seed: u64,
    ) -> Result<(Box<dyn TraceSource>, RequestMeter), RegistryError> {
        let (source, meter) = self.build_source_metered(thread, seed);
        match meter {
            Some(meter) => Ok((source, meter)),
            None => Err(RegistryError::MeterUnsupported { workload: self.name.clone() }),
        }
    }

    /// Workload name as it appears in the paper's figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload class.
    pub fn category(&self) -> Category {
        self.category
    }

    /// Builds the trace source for hardware thread `thread`.
    pub fn build_source(&self, thread: usize, seed: u64) -> Box<dyn TraceSource> {
        (self.factory)(thread, seed)
    }

    // -----------------------------------------------------------------
    // The suite.
    // -----------------------------------------------------------------

    /// Data Serving: Cassandra + YCSB (§3.2).
    pub fn data_serving() -> Self {
        Self::from_factory("Data Serving", Category::ScaleOut, |t, s| {
            Box::new(cs_workloads::data_serving::DataServing::paper_setup().into_source(t, s))
        })
        .with_metered_factory(|t, s, m| {
            Box::new(cs_workloads::data_serving::DataServing::paper_setup().into_source_metered(t, s, m))
        })
    }

    /// MapReduce: Hadoop + Mahout Bayesian classification (§3.2).
    pub fn mapreduce() -> Self {
        Self::from_factory("MapReduce", Category::ScaleOut, |t, s| {
            Box::new(cs_workloads::mapreduce::MapReduce::paper_setup().into_source(t, s))
        })
        .with_metered_factory(|t, s, m| {
            Box::new(cs_workloads::mapreduce::MapReduce::paper_setup().into_source_metered(t, s, m))
        })
    }

    /// Media Streaming: Darwin Streaming Server (§3.2).
    pub fn media_streaming() -> Self {
        Self::from_factory("Media Streaming", Category::ScaleOut, |t, s| {
            Box::new(cs_workloads::media_streaming::MediaStreaming::paper_setup().into_source(t, s))
        })
        .with_metered_factory(|t, s, m| {
            Box::new(cs_workloads::media_streaming::MediaStreaming::paper_setup().into_source_metered(t, s, m))
        })
    }

    /// SAT Solver: Klee / Cloud9 (§3.2).
    pub fn sat_solver() -> Self {
        Self::from_factory("SAT Solver", Category::ScaleOut, |t, s| {
            Box::new(cs_workloads::sat_solver::SatSolver::paper_setup().into_source(t, s))
        })
        .with_metered_factory(|t, s, m| {
            Box::new(cs_workloads::sat_solver::SatSolver::paper_setup().into_source_metered(t, s, m))
        })
    }

    /// Web Frontend: Nginx + PHP serving Olio (§3.2).
    pub fn web_frontend() -> Self {
        Self::from_factory("Web Frontend", Category::ScaleOut, |t, s| {
            Box::new(cs_workloads::web_frontend::WebFrontend::paper_setup().into_source(t, s))
        })
        .with_metered_factory(|t, s, m| {
            Box::new(cs_workloads::web_frontend::WebFrontend::paper_setup().into_source_metered(t, s, m))
        })
    }

    /// Web Search: Nutch/Lucene index serving node (§3.2).
    pub fn web_search() -> Self {
        Self::from_factory("Web Search", Category::ScaleOut, |t, s| {
            Box::new(cs_workloads::web_search::WebSearch::paper_setup().into_source(t, s))
        })
        .with_metered_factory(|t, s, m| {
            Box::new(cs_workloads::web_search::WebSearch::paper_setup().into_source_metered(t, s, m))
        })
    }

    /// The six CloudSuite scale-out workloads, in figure order.
    pub fn scale_out_suite() -> Vec<Self> {
        vec![
            Self::data_serving(),
            Self::mapreduce(),
            Self::media_streaming(),
            Self::sat_solver(),
            Self::web_frontend(),
            Self::web_search(),
        ]
    }

    /// The traditional comparison benchmarks of §3.3, in figure order.
    pub fn traditional_suite() -> Vec<Self> {
        WorkloadProfile::traditional_suite()
            .into_iter()
            .map(|p| Self::from_profile(Category::Traditional, p))
            .collect()
    }

    /// The `mcf` outlier used by Figure 4.
    pub fn mcf() -> Self {
        Self::from_profile(Category::Traditional, WorkloadProfile::mcf())
    }

    /// Every workload of the evaluation, scale-out first.
    pub fn all() -> Vec<Self> {
        let mut v = Self::scale_out_suite();
        v.extend(Self::traditional_suite());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_cardinalities_match_the_paper() {
        assert_eq!(Benchmark::scale_out_suite().len(), 6);
        assert_eq!(Benchmark::traditional_suite().len(), 8);
        assert_eq!(Benchmark::all().len(), 14);
    }

    #[test]
    fn categories_are_assigned() {
        for b in Benchmark::scale_out_suite() {
            assert_eq!(b.category(), Category::ScaleOut, "{}", b.name());
        }
        for b in Benchmark::traditional_suite() {
            assert_eq!(b.category(), Category::Traditional, "{}", b.name());
        }
    }

    #[test]
    fn sources_produce_ops() {
        for b in Benchmark::all() {
            let mut src = b.build_source(0, 7);
            assert!(src.next_op().is_some(), "{} produced no ops", b.name());
        }
    }

    #[test]
    fn distinct_threads_have_distinct_streams() {
        let b = Benchmark::mcf();
        let mut a = b.build_source(0, 7);
        let mut c = b.build_source(1, 7);
        let xs: Vec<_> = (0..64).filter_map(|_| a.next_op()).collect();
        let ys: Vec<_> = (0..64).filter_map(|_| c.next_op()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn scale_out_benchmarks_support_request_metering() {
        for b in Benchmark::scale_out_suite() {
            let (mut src, meter) = match b.build_source_metered_strict(0, 3) {
                Ok(pair) => pair,
                Err(e) => panic!("{e}"),
            };
            for _ in 0..20_000 {
                src.next_op();
            }
            assert!(
                meter.load(std::sync::atomic::Ordering::Relaxed) > 0,
                "{} served no requests",
                b.name()
            );
        }
    }

    #[test]
    fn profile_benchmarks_have_no_meter() {
        let (_, meter) = Benchmark::mcf().build_source_metered(0, 3);
        assert!(meter.is_none());
        let err = Benchmark::mcf()
            .build_source_metered_strict(0, 3)
            .map(|_| ())
            .expect_err("profiles cannot meter requests");
        assert_eq!(err, RegistryError::MeterUnsupported { workload: "SPECint (mcf)".into() });
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::ScaleOut.to_string(), "scale-out");
        assert_eq!(Category::Traditional.to_string(), "traditional");
    }
}
