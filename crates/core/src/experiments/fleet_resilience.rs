//! `fleet_resilience`: gray failures, correlated fault domains, and
//! retry-storm protection.
//!
//! `fleet_slo` injects the failures health checks are built for: crashes
//! and stragglers, crisp signals the balancer ejects on. This experiment
//! injects the failures that actually erode cloud SLOs — and measures how
//! much of the damage the client-side mitigation stack claws back:
//!
//! - **Gray fleet**: machines enter seeded degradation episodes during
//!   which they stay `up` and keep passing probes, yet serve several times
//!   slower (latency factor stacked with the harness-measured co-location
//!   memory-pressure inflation) and silently drop a fraction of accepted
//!   requests. The health ejector never fires once.
//! - **Rack outage**: machines are grouped into fault domains (racks /
//!   power feeds); domain-level draws take a whole domain down — or gray —
//!   at the same instant, the correlated shape i.i.d. crash draws cannot
//!   produce.
//! - **Metastable**: a one-shot arrival burst at high utilization with a
//!   tight timeout and an aggressive retry schedule. Retries feed back
//!   into offered load, so the overload can outlive its trigger; the
//!   post-trigger (`late_*`) books measure whether the fleet ever
//!   recovers.
//!
//! Against each scenario the sweep crosses four mitigation stacks — none,
//! a token-bucket retry budget, per-machine circuit breakers, and the full
//! stack (budget + breaker + AIMD concurrency limit) — over every
//! scale-out workload's harness-measured service profile. Everything
//! downstream of the harness runs is a pure function of (config, seed):
//! byte-identical across `--jobs` values and reruns, and under
//! `CS_PARANOID` every point must pass the fleet conservation audit,
//! including the retry-budget token books and the breaker transition
//! ledger.

use crate::errors::HarnessError;
use crate::harness::RunConfig;
use crate::registry::Benchmark;
use cs_fleet::{
    simulate, AimdPolicy, BreakerPolicy, Burst, FleetConfig, FleetFaultPlan, HedgePolicy,
    RetryBudget, RetryPolicy, ServiceProfile,
};
use cs_perf::{Report, Table};
use cs_trace::rng::splitmix64;
use serde::{Deserialize, Serialize};

use super::fleet_slo::service_profiles;

/// Fleet size (fixed: the sweep spends its points on scenarios, not sizes).
pub const MACHINES: usize = 8;

/// Serving contexts per machine.
pub const CONTEXTS_PER_MACHINE: usize = 4;

/// Bounded per-machine wait queue.
pub const QUEUE_CAPACITY: usize = 4;

/// Open-loop requests per sweep point.
pub const REQUESTS_PER_POINT: u64 = 4_000;

/// Fault domains in the rack-outage scenario (8 machines, 2 per rack).
pub const FAULT_DOMAINS: usize = 4;

/// Offered load as a fraction of fleet capacity in the steady scenarios.
const BASE_UTILIZATION: f64 = 0.65;

/// Offered load in the metastable scenario: high enough that retry
/// amplification can keep the fleet saturated after the trigger ends.
const OVERLOAD_UTILIZATION: f64 = 0.85;

/// Client timeout in the steady scenarios, multiples of the effective mean.
const TIMEOUT_FACTOR: u64 = 8;

/// Tight client timeout in the metastable scenario — generous against an
/// uncongested fleet, hopeless once a backlog sits in front of every
/// request; the impatience that turns congestion into retries.
const TIGHT_TIMEOUT_FACTOR: u64 = 4;

/// Deep per-machine queues in the metastable scenario. The bounded queues
/// of the steady scenarios shed overload at admission, which *breaks* the
/// retry feedback loop; a buffer-bloated fleet instead converts overload
/// into queueing delay, timeouts, and retries — the metastable substrate.
const METASTABLE_QUEUE_CAPACITY: usize = 16;

/// The SLO bound, as a multiple of the effective mean service time.
const SLO_FACTOR: u64 = 20;

const PROBE_FACTOR: u64 = 4;
const HEDGE_DELAY_FACTOR: u64 = 6;

/// Salt separating the fault-plan seed from the arrival/service seed.
const FAULT_SEED_SALT: u64 = 0x6EA7_FA17;

/// One failure scenario of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Healthy fleet at steady utilization: the control row.
    Baseline,
    /// Gray degradation episodes the health ejector cannot see.
    GrayFleet,
    /// Correlated domain outages plus domain-wide gray episodes.
    RackOutage,
    /// One-shot overload trigger with retry feedback at high utilization.
    Metastable,
}

impl Scenario {
    /// All scenarios, in sweep order.
    pub fn all() -> [Scenario; 4] {
        [Scenario::Baseline, Scenario::GrayFleet, Scenario::RackOutage, Scenario::Metastable]
    }

    /// Short label used in reports, result files, and `CS_FLEET_SCENARIOS`.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::GrayFleet => "gray_fleet",
            Scenario::RackOutage => "rack_outage",
            Scenario::Metastable => "metastable",
        }
    }

    /// Parses a `CS_FLEET_SCENARIOS` key.
    pub fn from_key(key: &str) -> Option<Scenario> {
        Self::all().into_iter().find(|s| s.label() == key)
    }
}

/// One mitigation stack of the sweep, each independently togglable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mitigation {
    /// No client-side protection beyond the baseline retry/hedge policy.
    Unmitigated,
    /// Token-bucket retry budget only.
    Budget,
    /// Per-machine circuit breakers only.
    Breaker,
    /// Budget + breakers + AIMD adaptive concurrency limit.
    Full,
}

impl Mitigation {
    /// All mitigation stacks, in sweep order.
    pub fn all() -> [Mitigation; 4] {
        [Mitigation::Unmitigated, Mitigation::Budget, Mitigation::Breaker, Mitigation::Full]
    }

    /// Short label used in reports and result files.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::Unmitigated => "none",
            Mitigation::Budget => "budget",
            Mitigation::Breaker => "breaker",
            Mitigation::Full => "full",
        }
    }
}

/// The effective mean service time of a densely packed machine (both
/// measured sharing penalties applied).
fn effective_mean_ns(profile: &ServiceProfile) -> u64 {
    let inflation = profile.smt_inflation * profile.colocation_inflation;
    ((profile.mean_service_ns as f64 * inflation) as u64).max(1)
}

/// Builds the fleet configuration of one sweep point. Pure function of its
/// arguments; the same point always simulates the same bytes.
pub fn point_config(
    profile: &ServiceProfile,
    scenario: Scenario,
    mitigation: Mitigation,
    seed: u64,
) -> FleetConfig {
    let eff = effective_mean_ns(profile);
    let capacity = (MACHINES * CONTEXTS_PER_MACHINE) as f64;
    let utilization = match scenario {
        Scenario::Metastable => OVERLOAD_UTILIZATION,
        _ => BASE_UTILIZATION,
    };
    let gap = ((eff as f64 / (capacity * utilization)) as u64).max(1);
    let span = REQUESTS_PER_POINT.saturating_mul(gap);
    let fault_seed = splitmix64(seed ^ FAULT_SEED_SALT);
    // The measured co-location inflation doubles as the gray memory-
    // pressure factor: a gray machine behaves like one that lost its LLC
    // share to a noisy neighbor.
    let memory_pressure = profile.colocation_inflation.max(1.0);

    let mut cfg = FleetConfig {
        machines: MACHINES,
        contexts_per_machine: CONTEXTS_PER_MACHINE,
        queue_capacity: QUEUE_CAPACITY,
        requests: REQUESTS_PER_POINT,
        mean_interarrival_ns: gap,
        burst: Some(Burst {
            period_ns: gap.saturating_mul(256),
            on_fraction: 0.25,
            amplitude: 2.0,
        }),
        service_inflation: profile.smt_inflation * profile.colocation_inflation,
        timeout_ns: eff.saturating_mul(TIMEOUT_FACTOR),
        connect_timeout_ns: eff,
        probe_interval_ns: eff.saturating_mul(PROBE_FACTOR),
        retry: RetryPolicy {
            max_retries: 3,
            base: eff.saturating_mul(2),
            factor: 2,
            cap: eff.saturating_mul(16),
        },
        hedge: Some(HedgePolicy {
            delay_ns: eff.saturating_mul(HEDGE_DELAY_FACTOR),
            max_hedges: 1,
        }),
        faults: None,
        fault_domains: 0,
        trigger_end_ns: None,
        retry_budget: None,
        breaker: None,
        aimd: None,
        seed,
    };

    match scenario {
        Scenario::Baseline => {}
        Scenario::GrayFleet => {
            // Severe episodes: a gray machine serves ~6x slow (on top of
            // the measured memory-pressure inflation) and swallows a
            // third of what it accepts — yet keeps answering probes.
            cfg.faults = Some(FleetFaultPlan {
                gray_mtbf_ns: (span / 2).max(1),
                gray_duration_ns: (span / 5).max(1),
                gray_latency_factor: 6.0,
                gray_drop_rate: 0.35,
                ..FleetFaultPlan::quiet(fault_seed)
            }
            .with_gray_memory_inflation(memory_pressure));
        }
        Scenario::RackOutage => {
            cfg.fault_domains = FAULT_DOMAINS;
            cfg.faults = Some(FleetFaultPlan {
                domain_outage_mtbf_ns: span,
                repair_ns: (span / 8).max(1),
                domain_gray_mtbf_ns: span,
                gray_duration_ns: (span / 8).max(1),
                gray_latency_factor: 2.0,
                gray_drop_rate: 0.05,
                ..FleetFaultPlan::quiet(fault_seed)
            }
            .with_gray_memory_inflation(memory_pressure));
        }
        Scenario::Metastable => {
            // One-shot trigger: the burst period is far longer than the
            // run, so only the initial on-window ever fires — a short 3x
            // overload whose damage must not outlive it.
            let trigger_ns = (span / 6).max(1);
            cfg.burst = Some(Burst {
                period_ns: trigger_ns.saturating_mul(50),
                on_fraction: 0.02,
                amplitude: 3.0,
            });
            cfg.trigger_end_ns = Some(trigger_ns);
            cfg.queue_capacity = METASTABLE_QUEUE_CAPACITY;
            cfg.timeout_ns = eff.saturating_mul(TIGHT_TIMEOUT_FACTOR);
            cfg.retry = RetryPolicy {
                max_retries: 4,
                base: (eff / 4).max(1),
                factor: 2,
                cap: eff,
            };
            // Hedging is itself retry-shaped extra load; the metastable
            // scenario isolates the retry feedback loop.
            cfg.hedge = None;
        }
    }

    match mitigation {
        Mitigation::Unmitigated => {}
        Mitigation::Budget => {
            cfg.retry_budget = Some(RetryBudget::percent(10, 2));
        }
        Mitigation::Breaker => {
            cfg.breaker =
                Some(BreakerPolicy { failure_threshold: 3, open_ns: eff.saturating_mul(8) });
        }
        Mitigation::Full => {
            cfg.retry_budget = Some(RetryBudget::percent(10, 2));
            cfg.breaker =
                Some(BreakerPolicy { failure_threshold: 3, open_ns: eff.saturating_mul(8) });
            cfg.aimd = Some(AimdPolicy {
                min_inflight: MACHINES as u64,
                max_inflight: (MACHINES * (CONTEXTS_PER_MACHINE + QUEUE_CAPACITY)) as u64,
                increase_milli: 500,
                decrease_pct: 30,
            });
        }
    }
    cfg
}

/// One sweep point's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResilienceRow {
    /// Workload name.
    pub workload: String,
    /// Failure scenario.
    pub scenario: Scenario,
    /// Mitigation stack.
    pub mitigation: Mitigation,
    /// Median completion latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile completion latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile completion latency, ns.
    pub p999_ns: u64,
    /// Completed requests per second of simulated time.
    pub goodput_rps: f64,
    /// Fraction of arrived requests completing within the SLO bound.
    pub slo_attainment: f64,
    /// SLO attainment over post-trigger arrivals only (metastable
    /// recovery; 0 when the scenario has no trigger era).
    pub late_slo_attainment: f64,
    /// Requests shed at admission (including AIMD throttling).
    pub shed: u64,
    /// Requests that exhausted the retry schedule or budget.
    pub failed: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Hedge attempts dispatched.
    pub hedges: u64,
    /// Attempts abandoned by the client timeout.
    pub timeouts: u64,
    /// Gray episodes started (machine-level).
    pub gray_episodes: u64,
    /// Attempts silently dropped by gray machines.
    pub gray_dropped: u64,
    /// Correlated domain outages injected.
    pub domain_outages: u64,
    /// Machine crashes injected (all via domain outages here).
    pub machine_failures: u64,
    /// Machines ejected from rotation by the health ejector.
    pub ejections: u64,
    /// Retry/hedge dispatches denied by the budget.
    pub budget_denied: u64,
    /// Breaker trips (closed/half-open -> open).
    pub breaker_opens: u64,
    /// Dispatches denied by the AIMD concurrency limit.
    pub aimd_throttled: u64,
    /// Server completions of abandoned attempts (wasted work).
    pub wasted_completions: u64,
}

/// Simulates one sweep point. Under `CS_PARANOID` the full fleet audit —
/// including the retry-budget token books and breaker transition ledger —
/// runs on the result and any imbalance fails the point loudly.
pub fn run_point(
    profile: &ServiceProfile,
    scenario: Scenario,
    mitigation: Mitigation,
    seed: u64,
) -> Result<FleetResilienceRow, HarnessError> {
    let cfg = point_config(profile, scenario, mitigation, seed);
    let stats = simulate(&cfg, profile)?;
    if crate::harness::paranoid_enabled() {
        stats.audit(&cfg.audit_policies())?;
    }
    let slo_ns = effective_mean_ns(profile).saturating_mul(SLO_FACTOR);
    Ok(FleetResilienceRow {
        workload: profile.workload.clone(),
        scenario,
        mitigation,
        p50_ns: stats.p50_ns(),
        p99_ns: stats.p99_ns(),
        p999_ns: stats.p999_ns(),
        goodput_rps: stats.goodput_rps(),
        slo_attainment: stats.slo_attainment(slo_ns),
        late_slo_attainment: stats.late_slo_attainment(slo_ns),
        shed: stats.shed,
        failed: stats.failed,
        retries: stats.retries,
        hedges: stats.hedges,
        timeouts: stats.timeouts,
        gray_episodes: stats.gray_episodes,
        gray_dropped: stats.gray_dropped,
        domain_outages: stats.domain_outages,
        machine_failures: stats.machine_failures,
        ejections: stats.ejections,
        budget_denied: stats.budget_denied,
        breaker_opens: stats.breaker_opens,
        aimd_throttled: stats.aimd_throttled,
        wasted_completions: stats.wasted_completions,
    })
}

/// The measured service-time table plus the full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResilienceData {
    /// Harness-measured service profiles, in suite order.
    pub profiles: Vec<ServiceProfile>,
    /// One row per (workload, scenario, mitigation) point.
    pub rows: Vec<FleetResilienceRow>,
}

/// Deterministic per-point seed: position in the sweep, scrambled. Salted
/// differently from `fleet_slo` so shared positions never share streams.
fn point_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed ^ splitmix64(0x4E51 + index as u64))
}

/// The scenarios a run sweeps: every one, or the `CS_FLEET_SCENARIOS`
/// subset (already validated by [`RunConfig::validate`]).
fn scenarios_for(cfg: &RunConfig) -> Vec<Scenario> {
    match &cfg.fleet_scenarios {
        None => Scenario::all().to_vec(),
        Some(keys) => keys.iter().filter_map(|k| Scenario::from_key(k)).collect(),
    }
}

/// Runs the full sweep over every scale-out workload.
pub fn collect(cfg: &RunConfig) -> Result<FleetResilienceData, HarnessError> {
    collect_subset(cfg, &Benchmark::scale_out_suite())
}

/// Runs the sweep over a chosen subset of workloads.
///
/// The harness measures one service profile per workload (fanned over
/// [`RunConfig::jobs`]); every (workload, scenario, mitigation) point is
/// then an independent pure simulation fanned the same way, with
/// positional seeds — neither the job count nor scheduling order can
/// change a single byte of the output.
pub fn collect_subset(
    cfg: &RunConfig,
    benches: &[Benchmark],
) -> Result<FleetResilienceData, HarnessError> {
    let profiles = service_profiles(cfg, benches)?;
    let scenarios = scenarios_for(cfg);
    let points: Vec<(usize, Scenario, Mitigation)> = (0..profiles.len())
        .flat_map(|p| {
            scenarios.iter().flat_map(move |&s| {
                Mitigation::all().into_iter().map(move |m| (p, s, m))
            })
        })
        .collect();
    let rows = crate::par::par_map(cfg.jobs, &points, |i, &(p, scenario, mitigation)| {
        run_point(&profiles[p], scenario, mitigation, point_seed(cfg.seed, i))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(FleetResilienceData { profiles, rows })
}

/// Mean SLO attainment, recovery-era attainment, goodput, and wasted work
/// for one (scenario, mitigation) cell, aggregated across workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cell {
    scenario: Scenario,
    mitigation: Mitigation,
    mean_slo: f64,
    mean_late_slo: f64,
    goodput_rps: f64,
    wasted: u64,
}

fn rank(data: &FleetResilienceData) -> Vec<Cell> {
    let mut cells = Vec::new();
    for scenario in Scenario::all() {
        let mut per_scenario: Vec<Cell> = Mitigation::all()
            .into_iter()
            .filter_map(|mitigation| {
                let rows: Vec<&FleetResilienceRow> = data
                    .rows
                    .iter()
                    .filter(|r| r.scenario == scenario && r.mitigation == mitigation)
                    .collect();
                if rows.is_empty() {
                    return None;
                }
                let n = rows.len() as f64;
                Some(Cell {
                    scenario,
                    mitigation,
                    mean_slo: rows.iter().map(|r| r.slo_attainment).sum::<f64>() / n,
                    mean_late_slo: rows.iter().map(|r| r.late_slo_attainment).sum::<f64>() / n,
                    goodput_rps: rows.iter().map(|r| r.goodput_rps).sum::<f64>(),
                    wasted: rows.iter().map(|r| r.wasted_completions).sum::<u64>(),
                })
            })
            .collect();
        // Best mitigation first within each scenario; ties (notably the
        // fault-free baseline) break by sweep order, which is stable.
        per_scenario.sort_by(|a, b| {
            b.mean_slo.partial_cmp(&a.mean_slo).unwrap_or(std::cmp::Ordering::Equal)
        });
        cells.extend(per_scenario);
    }
    cells
}

/// Renders the service table, the per-point sweep, and the scenario x
/// mitigation ranking.
pub fn report(data: &FleetResilienceData) -> Report {
    let mut services = Table::new(
        "Harness-measured service times",
        &["workload", "mean service (us)", "SMT inflation", "co-location inflation"],
    );
    for p in &data.profiles {
        services.row([
            p.workload.clone().into(),
            (p.mean_service_ns as f64 / 1e3).into(),
            p.smt_inflation.into(),
            p.colocation_inflation.into(),
        ]);
    }

    let mut points = Table::new(
        "Resilience per (scenario, mitigation)",
        &[
            "workload",
            "scenario",
            "mitigation",
            "p99 (ms)",
            "p999 (ms)",
            "goodput (req/s)",
            "SLO %",
            "late SLO %",
            "shed",
            "failed",
            "retries",
            "timeouts",
            "gray drops",
            "denied",
            "breaker opens",
            "throttled",
            "wasted",
        ],
    );
    for r in &data.rows {
        points.row([
            r.workload.clone().into(),
            r.scenario.label().into(),
            r.mitigation.label().into(),
            (r.p99_ns as f64 / 1e6).into(),
            (r.p999_ns as f64 / 1e6).into(),
            r.goodput_rps.into(),
            (100.0 * r.slo_attainment).into(),
            (100.0 * r.late_slo_attainment).into(),
            r.shed.into(),
            r.failed.into(),
            r.retries.into(),
            r.timeouts.into(),
            r.gray_dropped.into(),
            r.budget_denied.into(),
            r.breaker_opens.into(),
            r.aimd_throttled.into(),
            r.wasted_completions.into(),
        ]);
    }

    let mut ranking = Table::new(
        "Mitigation ranking per scenario (mean over workloads, best first)",
        &[
            "scenario",
            "mitigation",
            "mean SLO %",
            "mean late SLO %",
            "goodput (req/s)",
            "wasted",
        ],
    );
    for c in rank(data) {
        ranking.row([
            c.scenario.label().into(),
            c.mitigation.label().into(),
            (100.0 * c.mean_slo).into(),
            (100.0 * c.mean_late_slo).into(),
            c.goodput_rps.into(),
            c.wasted.into(),
        ]);
    }

    let mut rep = Report::new("Fleet resilience: gray failures, fault domains, retry storms");
    rep.note(
        "Gray machines stay up and pass every health probe while serving slowly and \
         dropping requests; fault domains crash whole racks at once; the metastable \
         scenario feeds retries back into offered load after a one-shot trigger burst. \
         Mitigations (retry budget, circuit breakers, AIMD concurrency limit) are \
         client-side and independently togglable; 'late SLO %' scores only requests \
         arriving after the trigger ended, i.e. whether the fleet ever recovered.",
    );
    rep.push(services);
    rep.push(points);
    rep.push(ranking);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_profile() -> ServiceProfile {
        ServiceProfile {
            workload: "synthetic".into(),
            mean_service_ns: 50_000,
            smt_inflation: 1.4,
            colocation_inflation: 1.15,
        }
    }

    #[test]
    fn scenario_and_mitigation_keys_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::from_key(s.label()), Some(s));
        }
        assert_eq!(Scenario::from_key("grey_fleet"), None);
        let labels: Vec<&str> = Mitigation::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels, ["none", "budget", "breaker", "full"]);
    }

    #[test]
    fn point_configs_validate_and_replay() {
        let p = synthetic_profile();
        for scenario in Scenario::all() {
            for mitigation in Mitigation::all() {
                let a = point_config(&p, scenario, mitigation, 7);
                let b = point_config(&p, scenario, mitigation, 7);
                assert_eq!(a, b, "point config must be a pure function");
                a.validate(&p).expect("generated configs must be valid");
            }
        }
        let meta = point_config(&p, Scenario::Metastable, Mitigation::Unmitigated, 7);
        assert!(meta.trigger_end_ns.is_some());
        assert!(meta.hedge.is_none());
        let rack = point_config(&p, Scenario::RackOutage, Mitigation::Full, 7);
        assert_eq!(rack.fault_domains, FAULT_DOMAINS);
        assert!(rack.retry_budget.is_some() && rack.breaker.is_some() && rack.aimd.is_some());
    }

    #[test]
    fn gray_fleet_degrades_without_tripping_the_ejector() {
        let p = synthetic_profile();
        let row = run_point(&p, Scenario::GrayFleet, Mitigation::Unmitigated, 11)
            .expect("point must simulate");
        assert!(row.gray_episodes > 0, "gray plan must start episodes");
        assert!(row.gray_dropped > 0, "gray machines must swallow attempts");
        assert_eq!(row.ejections, 0, "gray failures must evade the health ejector");
        assert_eq!(row.machine_failures, 0);
        let broken = run_point(&p, Scenario::GrayFleet, Mitigation::Breaker, 11)
            .expect("point must simulate");
        assert!(broken.breaker_opens > 0, "the breaker must catch what the ejector cannot");
    }

    #[test]
    fn rack_outages_correlate_machine_failures() {
        let p = synthetic_profile();
        let row = run_point(&p, Scenario::RackOutage, Mitigation::Unmitigated, 5)
            .expect("point must simulate");
        assert!(row.domain_outages > 0, "domain plan must draw outages");
        assert!(
            row.machine_failures >= row.domain_outages,
            "each outage kills at least the up members of its domain"
        );
    }

    #[test]
    fn metastable_overload_recovers_only_with_mitigation() {
        let p = synthetic_profile();
        let none = run_point(&p, Scenario::Metastable, Mitigation::Unmitigated, 21)
            .expect("point must simulate");
        let full = run_point(&p, Scenario::Metastable, Mitigation::Full, 21)
            .expect("point must simulate");
        assert!(
            none.retries > full.retries,
            "the budget must cut the retry storm: {} vs {}",
            none.retries,
            full.retries
        );
        assert!(
            full.late_slo_attainment > none.late_slo_attainment,
            "the mitigation stack must improve recovery-era SLO: {} vs {}",
            full.late_slo_attainment,
            none.late_slo_attainment
        );
    }

    #[test]
    fn rows_replay_byte_identically() {
        let p = synthetic_profile();
        let a = run_point(&p, Scenario::Metastable, Mitigation::Full, 1234).expect("run");
        let b = run_point(&p, Scenario::Metastable, Mitigation::Full, 1234).expect("run");
        assert_eq!(a, b);
        let c = run_point(&p, Scenario::Metastable, Mitigation::Full, 1235).expect("run");
        assert_ne!(a, c, "a different seed must change the point");
    }

    #[test]
    fn scenario_subset_restricts_the_sweep() {
        let cfg = RunConfig {
            fleet_scenarios: Some(vec!["metastable".into()]),
            ..RunConfig::default()
        };
        assert_eq!(scenarios_for(&cfg), vec![Scenario::Metastable]);
        assert_eq!(scenarios_for(&RunConfig::default()).len(), 4);
    }

    #[test]
    fn ranking_aggregates_and_sorts_within_scenarios() {
        let p = synthetic_profile();
        let rows = vec![
            run_point(&p, Scenario::Metastable, Mitigation::Unmitigated, 3).expect("run"),
            run_point(&p, Scenario::Metastable, Mitigation::Full, 4).expect("run"),
        ];
        let data = FleetResilienceData { profiles: vec![p], rows };
        let cells = rank(&data);
        assert_eq!(cells.len(), 2);
        assert!(cells[0].mean_slo >= cells[1].mean_slo, "best mitigation ranks first");
        let text = report(&data).to_string();
        assert!(text.contains("metastable"));
        assert!(text.contains("late SLO %"));
    }
}
