//! The "continuing the trends" study.
//!
//! §1: "while today's predominant micro-architecture is inefficient when
//! executing scale-out workloads, we find that continuing the current
//! trends will further exacerbate the inefficiency in the future." This
//! experiment extrapolates the industry trajectory the paper describes
//! (§2.1: cores grew from 2-wide to 4-wide, windows from 20 to 128
//! entries, LLCs to tens of megabytes) one more generation forward — a
//! 6-wide, 256-entry-window core with a 24 MB LLC — and compares
//! performance, area and efficiency against the Table 1 baseline and
//! against the scale-out-friendly direction (more, narrower cores).

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::Benchmark;
use cs_perf::{Report, Table};
use cs_uarch::{area, CoreConfig};
use serde::{Deserialize, Serialize};

/// A projected design generation evaluated on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendRow {
    /// Generation label.
    pub generation: String,
    /// Per-core application IPC.
    pub ipc: f64,
    /// Aggregate application throughput (all worker cores).
    pub throughput: f64,
    /// Whole-chip area estimate, mm².
    pub area_mm2: f64,
    /// Throughput per mm², ×1000.
    pub density: f64,
}

/// The trajectory: yesterday's, the paper's, tomorrow's conventional chip,
/// and the scale-out direction.
pub fn generations() -> Vec<(String, CoreConfig, usize, u64)> {
    let narrow = CoreConfig::narrow2();
    let base = CoreConfig::x5670();
    let future = CoreConfig {
        width: 6,
        fetch_width: 6,
        rob_entries: 256,
        load_queue: 72,
        store_queue: 48,
        reservation_stations: 60,
        mshrs: 20,
        ..base
    };
    vec![
        ("2-wide, 48-entry window, 4MB LLC (past)".into(), narrow, 4, 4 << 20),
        ("4-wide, 128-entry window, 12MB LLC (Table 1)".into(), base, 4, 12 << 20),
        ("6-wide, 256-entry window, 24MB LLC (trend)".into(), future, 4, 24 << 20),
        ("8x 2-wide, 4MB LLC (scale-out direction)".into(), narrow, 8, 4 << 20),
    ]
}

/// Evaluates the trajectory on `bench`.
pub fn collect(bench: &Benchmark, cfg: &RunConfig) -> Result<Vec<TrendRow>, HarnessError> {
    let mut rows = Vec::new();
    for (generation, core, workers, llc) in generations() {
        let run_cfg = RunConfig {
            workers,
            core: Some(core),
            llc_bytes: Some(llc),
            ..cfg.clone()
        };
        let r = run_strict(bench, &run_cfg)?;
        let chip = area::chip_estimate(&core, workers, llc);
        let throughput = r.app_ipc() * r.cores.len() as f64;
        rows.push(TrendRow {
            generation,
            ipc: r.app_ipc(),
            throughput,
            area_mm2: chip.area_mm2,
            density: 1000.0 * throughput / chip.area_mm2,
        });
    }
    Ok(rows)
}

/// Renders the trajectory comparison.
pub fn report(workload: &str, rows: &[TrendRow]) -> Report {
    let mut t = Table::new(
        format!("Processor generations on {workload}"),
        &["generation", "per-core IPC", "aggregate throughput", "area mm²", "density (kIPC/mm²)"],
    );
    for r in rows {
        t.row([
            r.generation.clone().into(),
            r.ipc.into(),
            r.throughput.into(),
            r.area_mm2.into(),
            r.density.into(),
        ]);
    }
    let mut rep = Report::new("Trend study: continuing the trajectory vs reversing it");
    rep.note("§1: \"continuing the current trends will further exacerbate the inefficiency\".");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_generations() {
        let g = generations();
        assert_eq!(g.len(), 4);
        assert!(g[2].1.width > g[1].1.width);
        assert!(g[2].3 > g[1].3);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn the_trend_generation_wastes_area_on_scale_out() {
        let cfg = RunConfig {
            warmup_instr: 400_000,
            measure_instr: 800_000,
            ..RunConfig::default()
        };
        let rows = collect(&Benchmark::data_serving(), &cfg).expect("run");
        let (baseline, trend, scale_out_dir) = (&rows[1], &rows[2], &rows[3]);
        // Going 6-wide/256/24MB buys little per-core performance...
        assert!(
            trend.ipc < baseline.ipc * 1.25,
            "the trend generation must not transform scale-out IPC: {:.2} vs {:.2}",
            trend.ipc,
            baseline.ipc
        );
        // ...and therefore loses compute density relative to the baseline.
        assert!(
            trend.density < baseline.density,
            "density must fall along the trend: {:.2} vs {:.2}",
            trend.density,
            baseline.density
        );
        // Whereas the scale-out direction improves it.
        assert!(
            scale_out_dir.density > baseline.density,
            "the scale-out direction must raise density: {:.2} vs {:.2}",
            scale_out_dir.density,
            baseline.density
        );
    }
}
