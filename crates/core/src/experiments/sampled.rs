//! SMARTS-style sampled measurement: per-workload IPC and execution-time
//! breakdown estimated from short detailed windows separated by
//! functionally-warmed fast-forward spans, with CLT-based 95% confidence
//! intervals over the per-window samples.
//!
//! The point estimate is the merged-counter ratio over the union of the
//! measurement windows (exactly what a sampling-disabled run reports over
//! one long window); the interval comes from treating the per-window IPCs
//! as i.i.d. draws and applying the normal approximation, which is sound
//! once the windows are spaced far enough apart to decorrelate (see
//! DESIGN.md).

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig, RunResult};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, RunningStat, Table};
use serde::{Deserialize, Serialize};

/// Returns `cfg` with a deterministic default sampling schedule filled in
/// when sampling is disabled, so this experiment always samples: 8 windows,
/// a fast-forward period of half the measurement budget between them, and
/// a detailed warm-up span of 1/32 of the budget before each.
pub fn sampled_config(cfg: &RunConfig) -> RunConfig {
    if cfg.sample_windows > 0 {
        return cfg.clone();
    }
    RunConfig {
        sample_windows: 8,
        sample_period: (cfg.measure_instr / 2).max(1),
        sample_warmup_instr: cfg.measure_instr / 32,
        ..cfg.clone()
    }
}

/// One workload's sampled estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledRow {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// Measurement windows the estimate aggregates.
    pub windows: usize,
    /// Point estimate: per-core IPC over the merged window counters.
    pub ipc_point: f64,
    /// Mean of the per-window IPCs (the CI is centered here).
    pub ipc_mean: f64,
    /// CLT 95% confidence interval for the IPC, lower bound.
    pub ipc_ci_lo: f64,
    /// CLT 95% confidence interval for the IPC, upper bound.
    pub ipc_ci_hi: f64,
    /// Per-window mean fraction of cycles with memory stalls outstanding
    /// (the overlapped Figure-1 bar; not a partition bucket).
    pub memory_frac_mean: f64,
    /// Half-width of the memory-fraction CI.
    pub memory_frac_ci: f64,
    /// Per-window mean fraction of cycles stalled on non-memory hazards.
    pub stalled_frac_mean: f64,
    /// Half-width of the stalled-fraction CI.
    pub stalled_frac_ci: f64,
    /// Per-window mean fraction of cycles spent committing.
    pub committing_frac_mean: f64,
    /// Half-width of the committing-fraction CI.
    pub committing_frac_ci: f64,
}

fn stat_over<F: Fn(&crate::harness::WindowSample) -> f64>(r: &RunResult, f: F) -> RunningStat {
    r.samples.iter().map(f).collect()
}

fn row_from(r: &RunResult, scale_out: bool) -> SampledRow {
    let n = r.cores.len();
    let ipc = stat_over(r, |s| s.ipc(n));
    let frac = |num: u64, s: &crate::harness::WindowSample| {
        cs_perf::ratio(num, s.cycles * n as u64)
    };
    let mem = stat_over(r, |s| frac(s.memory_cycles, s));
    let stall = stat_over(r, |s| frac(s.stalled[0] + s.stalled[1], s));
    let commit = stat_over(r, |s| frac(s.committing[0] + s.committing[1], s));
    let (lo, hi) = ipc.ci95();
    SampledRow {
        workload: r.name.clone(),
        scale_out,
        windows: r.samples.len(),
        ipc_point: r.ipc(),
        ipc_mean: ipc.mean(),
        ipc_ci_lo: lo,
        ipc_ci_hi: hi,
        memory_frac_mean: mem.mean(),
        memory_frac_ci: mem.ci95_half_width(),
        stalled_frac_mean: stall.mean(),
        stalled_frac_ci: stall.ci95_half_width(),
        committing_frac_mean: commit.mean(),
        committing_frac_ci: commit.ci95_half_width(),
    }
}

/// Runs every workload under the sampled schedule ([`sampled_config`]).
///
/// Each workload is one independent unit fanned over [`RunConfig::jobs`]
/// threads, like the figure sweeps.
pub fn collect(cfg: &RunConfig) -> Result<Vec<SampledRow>, HarnessError> {
    let scfg = sampled_config(cfg);
    let benches = Benchmark::all();
    crate::par::par_map(scfg.jobs, &benches, |_, b| {
        let r = run_strict(b, &scfg)?;
        Ok(row_from(&r, b.category() == Category::ScaleOut))
    })
    .into_iter()
    .collect()
}

/// Renders the sampled rows: IPC point estimate with its interval, then
/// the per-window breakdown means.
pub fn report(rows: &[SampledRow]) -> Report {
    let mut t = Table::new(
        "Sampled application IPC (95% CI over measurement windows)",
        &["workload", "class", "windows", "IPC point", "IPC mean", "CI lo", "CI hi"],
    );
    for r in rows {
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            (r.windows as f64).into(),
            r.ipc_point.into(),
            r.ipc_mean.into(),
            r.ipc_ci_lo.into(),
            r.ipc_ci_hi.into(),
        ]);
    }
    let mut b = Table::new(
        "Sampled cycle-breakdown fractions (per-window mean ± 95% half-width)",
        &["workload", "memory", "memory ±", "stalled", "stalled ±", "committing", "committing ±"],
    );
    for r in rows {
        b.row([
            r.workload.clone().into(),
            r.memory_frac_mean.into(),
            r.memory_frac_ci.into(),
            r.stalled_frac_mean.into(),
            r.stalled_frac_ci.into(),
            r.committing_frac_mean.into(),
            r.committing_frac_ci.into(),
        ]);
    }
    let mut rep = Report::new("Sampled simulation: IPC and breakdown with confidence intervals");
    rep.note(
        "Point estimates merge the counters of every detailed window; intervals are \
         CLT-normal over per-window values (n = windows, Bessel-corrected).",
    );
    rep.push(t);
    rep.push(b);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_config_respects_an_explicit_schedule() {
        let explicit = RunConfig {
            sample_windows: 3,
            sample_period: 999,
            sample_warmup_instr: 7,
            ..RunConfig::default()
        };
        assert_eq!(sampled_config(&explicit), explicit);
        let defaulted = sampled_config(&RunConfig::default());
        assert_eq!(defaulted.sample_windows, 8);
        assert!(defaulted.sample_period > 0);
        defaulted.validate().expect("default schedule must validate");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn intervals_are_finite_and_centered_on_the_window_mean() {
        let cfg = RunConfig {
            warmup_instr: 40_000,
            measure_instr: 80_000,
            ..RunConfig::default()
        };
        let rows = collect(&cfg).expect("collect");
        assert_eq!(rows.len(), Benchmark::all().len());
        for r in &rows {
            assert_eq!(r.windows, 8, "{}: default schedule is 8 windows", r.workload);
            for v in [r.ipc_point, r.ipc_mean, r.ipc_ci_lo, r.ipc_ci_hi] {
                assert!(v.is_finite(), "{}: non-finite estimate", r.workload);
            }
            assert!(r.ipc_ci_hi > r.ipc_ci_lo, "{}: degenerate interval", r.workload);
            assert!(
                r.ipc_ci_lo <= r.ipc_mean && r.ipc_mean <= r.ipc_ci_hi,
                "{}: interval must contain its center",
                r.workload
            );
            // Committing + stalled partition every cycle; memory is the
            // overlapped bar and can only re-cover stalled-or-committing
            // cycles.
            let frac_sum = r.stalled_frac_mean + r.committing_frac_mean;
            assert!(
                (frac_sum - 1.0).abs() < 1e-9,
                "{}: per-window breakdown fractions must partition: {frac_sum}",
                r.workload
            );
            assert!(
                (0.0..=1.0).contains(&r.memory_frac_mean),
                "{}: overlapped memory fraction out of range: {}",
                r.workload,
                r.memory_frac_mean
            );
        }
    }
}
