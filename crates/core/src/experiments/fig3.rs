//! Figure 3: application IPC and MLP, with and without SMT.
//!
//! §4.2: scale-out workloads reach only a fraction of the 4-wide core's
//! peak and expose little memory-level parallelism; SMT recovers much of
//! both because requests are independent.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, RunningStat, Table};
use serde::{Deserialize, Serialize};

/// One workload's Figure 3 data points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// Application IPC, baseline core.
    pub ipc_base: f64,
    /// Application IPC with SMT (two threads per core).
    pub ipc_smt: f64,
    /// MLP, baseline core.
    pub mlp_base: f64,
    /// MLP with SMT.
    pub mlp_smt: f64,
}

impl Fig3Row {
    /// SMT speedup over the baseline (the paper reports 39–69% for
    /// scale-out workloads).
    pub fn smt_uplift(&self) -> f64 {
        if self.ipc_base == 0.0 {
            0.0
        } else {
            self.ipc_smt / self.ipc_base - 1.0
        }
    }
}

/// Runs every workload in baseline and SMT modes.
///
/// Each workload's baseline/SMT pair is one independent unit, fanned over
/// [`RunConfig::jobs`] threads ([`crate::par::par_map`]); rows come back
/// in suite order regardless of scheduling, and on an error the
/// lowest-indexed failing unit wins — exactly as the serial loop behaved.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig3Row>, HarnessError> {
    let benches = Benchmark::all();
    crate::par::par_map(cfg.jobs, &benches, |_, b| {
        let base = run_strict(b, cfg)?;
        let smt = run_strict(b, &RunConfig { smt: true, ..cfg.clone() })?;
        Ok(Fig3Row {
            workload: base.name.clone(),
            scale_out: b.category() == Category::ScaleOut,
            ipc_base: base.app_ipc(),
            ipc_smt: smt.app_ipc(),
            mlp_base: base.mlp(),
            mlp_smt: smt.mlp(),
        })
    })
    .into_iter()
    .collect()
}

/// Renders the rows plus the per-class min/max range bars of the figure.
pub fn report(rows: &[Fig3Row]) -> Report {
    let mut t = Table::new(
        "Application IPC (of max 4) and MLP",
        &["workload", "class", "IPC base", "IPC SMT", "SMT uplift %", "MLP base", "MLP SMT"],
    );
    for r in rows {
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            r.ipc_base.into(),
            r.ipc_smt.into(),
            (100.0 * r.smt_uplift()).into(),
            r.mlp_base.into(),
            r.mlp_smt.into(),
        ]);
    }
    let mut ranges = Table::new(
        "Range bars (min/mean/max per class)",
        &["class", "metric", "min", "mean", "max"],
    );
    for (label, pick) in [("scale-out", true), ("traditional", false)] {
        for (metric, get) in [
            ("IPC base", Box::new(|r: &Fig3Row| r.ipc_base) as Box<dyn Fn(&Fig3Row) -> f64>),
            ("MLP base", Box::new(|r: &Fig3Row| r.mlp_base)),
        ] {
            let s: RunningStat =
                rows.iter().filter(|r| r.scale_out == pick).map(get).collect();
            ranges.row([
                label.into(),
                metric.into(),
                s.min().into(),
                s.mean().into(),
                s.max().into(),
            ]);
        }
    }
    let mut rep = Report::new("Figure 3: IPC and MLP, baseline vs SMT");
    rep.note("MLP = average outstanding off-core reads over cycles with at least one (§3.1).");
    rep.push(t);
    rep.push(ranges);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn smt_lifts_scale_out_ipc_and_mlp() {
        let cfg = RunConfig {
            warmup_instr: 200_000,
            measure_instr: 400_000,
            ..RunConfig::default()
        };
        let b = Benchmark::data_serving();
        let base = run_strict(&b, &cfg).expect("run");
        let smt = run_strict(&b, &RunConfig { smt: true, ..cfg }).expect("run");
        assert!(
            smt.app_ipc() > base.app_ipc() * 1.2,
            "SMT must raise IPC: {} -> {}",
            base.app_ipc(),
            smt.app_ipc()
        );
        assert!(
            smt.mlp() > base.mlp() * 1.2,
            "SMT must raise MLP: {} -> {}",
            base.mlp(),
            smt.mlp()
        );
    }

    #[test]
    fn uplift_math() {
        let row = Fig3Row {
            workload: "x".into(),
            scale_out: true,
            ipc_base: 0.5,
            ipc_smt: 0.75,
            mlp_base: 1.5,
            mlp_smt: 3.0,
        };
        assert!((row.smt_uplift() - 0.5).abs() < 1e-12);
    }
}
