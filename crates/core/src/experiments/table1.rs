//! Table 1: architectural parameters of the modeled machine.

use crate::machine::MachineConfig;
use cs_perf::{Report, Table};

/// Renders Table 1 for the given machine (defaults to the paper's).
pub fn report(machine: &MachineConfig) -> Report {
    let mut table = Table::new("Table 1. Architectural parameters", &["Parameter", "Value"]);
    for (k, v) in machine.table1_rows() {
        table.row([k.into(), v.into()]);
    }
    let mut report = Report::new("Table 1: Architectural parameters");
    report.note("Modeled after the paper's PowerEdge M1000e blade (2x Xeon X5670).");
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_table1_rows() {
        let r = report(&MachineConfig::default());
        let text = r.to_string();
        for needle in
            ["CMP width", "Core width", "Reorder buffer", "L1 cache", "L2 cache", "LLC", "Memory"]
        {
            assert!(text.contains(needle), "missing row {needle}");
        }
    }
}
