//! Compute-density study: the paper's bottom line, quantified.
//!
//! The conclusion of the paper calls for processors that trade core
//! aggressiveness and LLC capacity for more (threaded) cores, "leading to
//! improved computational density and power efficiency". This experiment
//! evaluates whole-chip design points under a fixed area budget using the
//! first-order area model of [`cs_uarch::area`], and reports aggregate
//! scale-out throughput per mm² and per watt.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::Benchmark;
use cs_perf::{Report, Table};
use cs_uarch::{area, CoreConfig};
use serde::{Deserialize, Serialize};

/// One chip design point evaluated on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityRow {
    /// Design-point label.
    pub design: String,
    /// Worker cores simulated.
    pub cores: usize,
    /// Aggregate user instructions per cycle over all worker cores.
    pub throughput: f64,
    /// Whole-chip area estimate (workers + LLC), mm².
    pub area_mm2: f64,
    /// Whole-chip peak power estimate, W.
    pub power_w: f64,
}

impl DensityRow {
    /// Aggregate throughput per mm² (the paper's compute density), ×1000.
    pub fn density(&self) -> f64 {
        1000.0 * self.throughput / self.area_mm2
    }

    /// Aggregate throughput per watt, ×1000.
    pub fn efficiency(&self) -> f64 {
        1000.0 * self.throughput / self.power_w
    }
}

/// The §4.2/§6 design points: the baseline aggressive chip, the same chip
/// with SMT, a many-narrow-core chip, and a narrow-core chip with the
/// modest LLC §4.3 calls for.
pub fn design_points() -> Vec<(String, RunConfig, CoreConfig, u64)> {
    let base = RunConfig::default();
    vec![
        (
            "4x 4-wide OoO, 12MB LLC".into(),
            RunConfig { workers: 4, ..base.clone() },
            CoreConfig::x5670(),
            12 << 20,
        ),
        (
            "4x 4-wide SMT, 12MB LLC".into(),
            RunConfig { workers: 4, smt: true, ..base.clone() },
            CoreConfig::x5670_smt(),
            12 << 20,
        ),
        (
            "8x 2-wide OoO, 12MB LLC".into(),
            RunConfig { workers: 8, core: Some(CoreConfig::narrow2()), ..base.clone() },
            CoreConfig::narrow2(),
            12 << 20,
        ),
        (
            "8x 2-wide OoO, 4MB LLC".into(),
            RunConfig {
                workers: 8,
                core: Some(CoreConfig::narrow2()),
                llc_bytes: Some(4 << 20),
                ..base.clone()
            },
            CoreConfig::narrow2(),
            4 << 20,
        ),
    ]
}

/// Evaluates every design point on `bench`.
pub fn collect(bench: &Benchmark, cfg: &RunConfig) -> Result<Vec<DensityRow>, HarnessError> {
    let mut rows = Vec::new();
    for (design, mut run_cfg, core_cfg, llc) in design_points() {
        run_cfg.warmup_instr = cfg.warmup_instr;
        run_cfg.measure_instr = cfg.measure_instr;
        run_cfg.seed = cfg.seed;
        let r = run_strict(bench, &run_cfg)?;
        let chip = area::chip_estimate(&core_cfg, r.cores.len(), llc);
        rows.push(DensityRow {
            design,
            cores: r.cores.len(),
            throughput: r.app_ipc() * r.cores.len() as f64,
            area_mm2: chip.area_mm2,
            power_w: chip.power_w,
        });
    }
    Ok(rows)
}

/// Renders the design-point comparison.
pub fn report(workload: &str, rows: &[DensityRow]) -> Report {
    let mut t = Table::new(
        format!("Chip design points on {workload}"),
        &["design", "cores", "throughput (user IPC)", "area mm²", "power W", "density (kIPC/mm²)", "efficiency (kIPC/W)"],
    );
    for r in rows {
        t.row([
            r.design.clone().into(),
            (r.cores as u64).into(),
            r.throughput.into(),
            r.area_mm2.into(),
            r.power_w.into(),
            r.density().into(),
            r.efficiency().into(),
        ]);
    }
    let mut rep = Report::new("Density study: the paper's conclusion, quantified");
    rep.note("§6: \"reducing core aggressiveness and LLC capacity to free area and power in favor of more cores\".");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_design_points_exist() {
        assert_eq!(design_points().len(), 4);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn narrow_chips_win_density_on_scale_out() {
        let cfg = RunConfig {
            warmup_instr: 300_000,
            measure_instr: 600_000,
            ..RunConfig::default()
        };
        let rows = collect(&Benchmark::web_search(), &cfg).expect("run");
        let wide = &rows[0];
        let narrow_small_llc = &rows[3];
        assert!(
            narrow_small_llc.density() > 1.3 * wide.density(),
            "narrow cores + modest LLC must deliver much better density: {:.2} vs {:.2}",
            narrow_small_llc.density(),
            wide.density()
        );
        assert!(
            narrow_small_llc.efficiency() > wide.efficiency(),
            "and better performance per watt"
        );
    }
}
