//! Footnote 3 of the paper (§4.3): "User-IPC has been shown to be
//! proportional to application throughput. We verified this relationship
//! for the scale-out workloads."
//!
//! The harness meters completed requests per measurement window for every
//! mini application, so the verification is reproducible here: across
//! machine configurations of very different performance (LLC sizes,
//! polluted caches, SMT), requests-per-kilocycle divided by user-IPC must
//! stay constant for a given workload.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::Benchmark;
use cs_perf::{Report, RunningStat, Table};
use serde::{Deserialize, Serialize};

/// One (configuration, workload) observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Footnote3Row {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// User (application) IPC per core.
    pub user_ipc: f64,
    /// Requests per kilo-cycle across the worker cores.
    pub requests_per_kcycle: f64,
}

impl Footnote3Row {
    /// The proportionality ratio: throughput per unit of user-IPC.
    pub fn ratio(&self) -> f64 {
        if self.user_ipc == 0.0 {
            0.0
        } else {
            self.requests_per_kcycle / self.user_ipc
        }
    }
}

/// The performance-diverse configurations the relationship is checked
/// over.
fn configurations(cfg: &RunConfig) -> Vec<(String, RunConfig)> {
    vec![
        ("baseline".into(), cfg.clone()),
        ("LLC 4MB".into(), RunConfig { llc_bytes: Some(4 << 20), ..cfg.clone() }),
        ("polluted 6MB".into(), RunConfig { polluter_bytes: Some(6 << 20), ..cfg.clone() }),
        ("SMT".into(), RunConfig { smt: true, ..cfg.clone() }),
    ]
}

/// Measures the relationship for `bench` across the configurations.
pub fn collect(bench: &Benchmark, cfg: &RunConfig) -> Result<Vec<Footnote3Row>, HarnessError> {
    let mut rows = Vec::new();
    for (label, run_cfg) in configurations(cfg) {
        let r = run_strict(bench, &run_cfg)?;
        rows.push(Footnote3Row {
            workload: r.name.clone(),
            config: label,
            user_ipc: r.app_ipc(),
            requests_per_kcycle: r
                .requests_per_kcycle()
                .expect("scale-out workloads meter requests"),
        });
    }
    Ok(rows)
}

/// Coefficient of variation of the proportionality ratio over the rows
/// (0 = perfectly proportional).
pub fn ratio_cv(rows: &[Footnote3Row]) -> f64 {
    let s: RunningStat = rows.iter().map(|r| r.ratio()).collect();
    if s.mean() == 0.0 {
        0.0
    } else {
        s.stddev() / s.mean()
    }
}

/// Renders the verification table.
pub fn report(rows: &[Footnote3Row]) -> Report {
    let mut t = Table::new(
        "User-IPC vs service throughput",
        &["workload", "config", "user IPC", "req/kcycle", "ratio"],
    )
    .with_precision(3);
    for r in rows {
        t.row([
            r.workload.clone().into(),
            r.config.clone().into(),
            r.user_ipc.into(),
            r.requests_per_kcycle.into(),
            r.ratio().into(),
        ]);
    }
    let mut rep = Report::new("Footnote 3: user-IPC is proportional to application throughput");
    rep.note(format!("Coefficient of variation of the ratio: {:.3}", ratio_cv(rows)));
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn user_ipc_is_proportional_to_throughput() {
        let cfg = RunConfig {
            warmup_instr: 500_000,
            measure_instr: 1_000_000,
            ..RunConfig::default()
        };
        for bench in [Benchmark::web_search(), Benchmark::data_serving()] {
            let rows = collect(&bench, &cfg).expect("run");
            assert_eq!(rows.len(), 4);
            let cv = ratio_cv(&rows);
            assert!(
                cv < 0.12,
                "{}: requests/user-instruction must be stable across configs, CV {cv:.3} ({:?})",
                bench.name(),
                rows.iter().map(|r| r.ratio()).collect::<Vec<_>>()
            );
        }
    }
}
