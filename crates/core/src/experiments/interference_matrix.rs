//! N×N co-location interference matrix with QoS mitigations.
//!
//! Every unordered pairing of the six scale-out workloads — plus the
//! Figure-4 LLC polluter and a compute-bound PARSEC-style profile — shares
//! one chip's LLC and DRAM channels. For each pairing the experiment
//! reports, per tenant, the IPC loss against a solo run on the same core
//! count, the share of LLC lines the tenant holds at the end of
//! measurement, and its share of DRAM traffic. Each pairing then re-runs
//! under the two mitigations the paper's cache discussion motivates:
//!
//! * **way-partition** — the LLC's 16 ways are split 8/8 between the
//!   tenants (CAT-style allocation masks; hits stay unpartitioned), and
//! * **throttle** — each tenant's DRAM traffic is capped at half the
//!   aggregate peak bandwidth per accounting window (a token-bucket
//!   regulator whose deferrals fold into miss latency).
//!
//! All runs are independent units fanned over [`RunConfig::jobs`], and
//! every QoS knob composes with cycle skipping, sampling, and
//! checkpointing without breaking byte-identity (see DESIGN.md).

use crate::errors::{ConfigError, HarnessError};
use crate::harness::{run_colocated_strict, run_strict, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, Table};
use cs_trace::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// LLC capacity the polluter tenant walks: 8 MB of the 12 MB LLC, the
/// Figure-4 "polluted" operating point.
const POLLUTER_BYTES: u64 = 8 << 20;

/// QoS mitigation applied to a co-located pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mitigation {
    /// Unmanaged sharing: the contention baseline.
    None,
    /// Half the LLC ways to each tenant (allocation-side partitioning).
    WayPartition,
    /// Half the aggregate peak DRAM bandwidth to each tenant per window.
    Throttle,
}

impl Mitigation {
    /// Every mitigation, in report order.
    pub const ALL: [Mitigation; 3] = [Mitigation::None, Mitigation::WayPartition, Mitigation::Throttle];

    /// Stable label used in rows, file names, and the CI assertion script.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::None => "none",
            Mitigation::WayPartition => "way_partition",
            Mitigation::Throttle => "throttle",
        }
    }

    /// Returns `cfg` with exactly this mitigation's QoS knobs set (and the
    /// other mitigation's knobs cleared, so legs never stack).
    pub fn apply(self, cfg: &RunConfig) -> RunConfig {
        let base = RunConfig { llc_way_masks: None, dram_budgets: None, ..cfg.clone() };
        match self {
            Mitigation::None => base,
            Mitigation::WayPartition => {
                let assoc = cs_memsys::CacheConfig::llc().assoc;
                let low = (1u64 << (assoc / 2)) - 1;
                let high = ((1u64 << assoc) - 1) ^ low;
                RunConfig { llc_way_masks: Some(vec![low, high]), ..base }
            }
            Mitigation::Throttle => {
                let peak = cs_memsys::DramConfig::default().peak_bytes_per_cycle();
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let share = ((peak * base.dram_budget_window as f64) / 2.0) as u64;
                RunConfig { dram_budgets: Some(vec![share.max(64); 2]), ..base }
            }
        }
    }
}

/// One tenant of one pairing under one mitigation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceRow {
    /// Pairing label: both roster keys joined with `+` (first tenant
    /// first).
    pub pair: String,
    /// [`Mitigation::label`] of the leg.
    pub mitigation: String,
    /// This tenant's roster key.
    pub tenant: String,
    /// Per-core IPC of this tenant while co-located.
    pub ipc: f64,
    /// Per-core IPC of the same workload running alone on the same core
    /// count, no QoS.
    pub solo_ipc: f64,
    /// IPC loss against solo, percent (negative = co-location sped it up).
    pub ipc_loss_pct: f64,
    /// Share of valid LLC lines this tenant holds at end of measurement.
    pub llc_share_pct: f64,
    /// Share of total DRAM traffic (both tenants) this tenant generated.
    pub dram_share_pct: f64,
    /// This tenant's absolute DRAM traffic during measurement, bytes.
    pub dram_bytes: u64,
}

/// The roster: the six scale-out workloads plus the two interference
/// probes, each under a stable machine-readable key.
/// The roster keys in matrix order — what `matrix_workloads` entries are
/// validated against (also by [`RunConfig::validate`], so a typo fails
/// the campaign up front instead of mid-run).
pub const ROSTER_KEYS: [&str; 8] = [
    "data_serving",
    "mapreduce",
    "media_streaming",
    "sat_solver",
    "web_frontend",
    "web_search",
    "polluter",
    "cpu_bound",
];

/// The full matrix roster: stable key → benchmark, in matrix order.
pub fn roster() -> Vec<(&'static str, Benchmark)> {
    vec![
        ("data_serving", Benchmark::data_serving()),
        ("mapreduce", Benchmark::mapreduce()),
        ("media_streaming", Benchmark::media_streaming()),
        ("sat_solver", Benchmark::sat_solver()),
        ("web_frontend", Benchmark::web_frontend()),
        ("web_search", Benchmark::web_search()),
        (
            "polluter",
            Benchmark::from_profile(Category::Traditional, WorkloadProfile::polluter(POLLUTER_BYTES)),
        ),
        ("cpu_bound", Benchmark::from_profile(Category::Traditional, WorkloadProfile::parsec_cpu())),
    ]
}

/// Resolves [`RunConfig::matrix_workloads`] against the roster, keeping
/// roster order. An unknown key is a loud configuration error, not a
/// silently smaller matrix.
pub fn select(cfg: &RunConfig) -> Result<Vec<(&'static str, Benchmark)>, HarnessError> {
    let all = roster();
    let Some(wanted) = &cfg.matrix_workloads else {
        return Ok(all);
    };
    for name in wanted {
        if !all.iter().any(|(key, _)| key == name) {
            return Err(ConfigError::UnknownMatrixWorkload { name: name.clone() }.into());
        }
    }
    Ok(all.into_iter().filter(|(key, _)| wanted.iter().any(|w| w == key)).collect())
}

/// An independent simulation unit of the matrix.
enum Unit {
    /// Solo baseline of roster entry `i`.
    Solo(usize),
    /// Roster entries `i` and `j` co-located under the mitigation.
    Pair(usize, usize, Mitigation),
}

/// What one unit contributes to the assembled rows.
enum UnitOut {
    Solo { idx: usize, ipc: f64 },
    Pair { i: usize, j: usize, mitigation: Mitigation, tenants: Vec<TenantOut> },
}

struct TenantOut {
    ipc: f64,
    llc_share_pct: f64,
    dram_share_pct: f64,
    dram_bytes: u64,
}

fn run_unit(
    entries: &[(&'static str, Benchmark)],
    per_tenant: usize,
    cfg: &RunConfig,
    unit: &Unit,
) -> Result<UnitOut, HarnessError> {
    match *unit {
        Unit::Solo(idx) => {
            let solo_cfg = RunConfig { workers: per_tenant, ..Mitigation::None.apply(cfg) };
            let r = run_strict(&entries[idx].1, &solo_cfg)?;
            Ok(UnitOut::Solo { idx, ipc: r.ipc() })
        }
        Unit::Pair(i, j, mitigation) => {
            let pair_cfg = RunConfig { workers: per_tenant, ..mitigation.apply(cfg) };
            let benches = [entries[i].1.clone(), entries[j].1.clone()];
            let r = run_colocated_strict(&benches, &pair_cfg)?;
            let tenants = (0..benches.len())
                .map(|t| TenantOut {
                    ipc: r.tenant_ipc(t),
                    llc_share_pct: r.tenant_llc_share_pct(t),
                    dram_share_pct: r.tenant_dram_share_pct(t),
                    dram_bytes: r.tenants[t].dram_bytes,
                })
                .collect();
            Ok(UnitOut::Pair { i, j, mitigation, tenants })
        }
    }
}

/// Runs the matrix: one solo baseline per selected workload, then every
/// unordered pairing (self-pairings included) under every mitigation.
///
/// Units are independent and fan over [`RunConfig::jobs`]; rows come back
/// in deterministic roster × mitigation order regardless of scheduling.
pub fn collect(cfg: &RunConfig) -> Result<Vec<InterferenceRow>, HarnessError> {
    let entries = select(cfg)?;
    let n = entries.len();
    if n == 0 {
        return Err(ConfigError::NoWorkers.into());
    }
    let per_tenant = (cfg.workers / 2).max(1);

    let mut units = Vec::new();
    for i in 0..n {
        units.push(Unit::Solo(i));
    }
    for i in 0..n {
        for j in i..n {
            for mitigation in Mitigation::ALL {
                units.push(Unit::Pair(i, j, mitigation));
            }
        }
    }

    let outs = crate::par::par_map(cfg.jobs, &units, |_, u| run_unit(&entries, per_tenant, cfg, u))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;

    let mut solo_ipc = vec![0.0f64; n];
    for out in &outs {
        if let UnitOut::Solo { idx, ipc } = out {
            solo_ipc[*idx] = *ipc;
        }
    }

    let mut rows = Vec::new();
    for out in outs {
        let UnitOut::Pair { i, j, mitigation, tenants } = out else { continue };
        let pair = format!("{}+{}", entries[i].0, entries[j].0);
        for (t, tenant) in tenants.into_iter().enumerate() {
            let owner = if t == 0 { i } else { j };
            let solo = solo_ipc[owner];
            rows.push(InterferenceRow {
                pair: pair.clone(),
                mitigation: mitigation.label().to_owned(),
                tenant: entries[owner].0.to_owned(),
                ipc: tenant.ipc,
                solo_ipc: solo,
                ipc_loss_pct: if solo > 0.0 { (1.0 - tenant.ipc / solo) * 100.0 } else { 0.0 },
                llc_share_pct: tenant.llc_share_pct,
                dram_share_pct: tenant.dram_share_pct,
                dram_bytes: tenant.dram_bytes,
            });
        }
    }
    Ok(rows)
}

/// Renders the matrix rows, one table per mitigation, mirroring how the
/// study compares an unmanaged baseline against each QoS knob.
pub fn report(rows: &[InterferenceRow]) -> Report {
    let mut rep = Report::new("Co-location interference matrix: per-tenant IPC loss and shares");
    rep.note(
        "Each pairing shares one chip's LLC and DRAM. Solo baselines use the same \
         per-tenant core count with QoS off. way_partition splits the LLC's ways 8/8 \
         (allocation only; hits are unpartitioned); throttle caps each tenant at half \
         the aggregate peak DRAM bandwidth per accounting window.",
    );
    for mitigation in Mitigation::ALL {
        let mut t = Table::new(
            match mitigation {
                Mitigation::None => "Unmanaged sharing (baseline)",
                Mitigation::WayPartition => "LLC way-partitioned 8/8",
                Mitigation::Throttle => "DRAM throttled to half peak per tenant",
            },
            &[
                "pair",
                "tenant",
                "IPC",
                "solo IPC",
                "IPC loss %",
                "LLC share %",
                "DRAM share %",
            ],
        );
        for r in rows.iter().filter(|r| r.mitigation == mitigation.label()) {
            t.row([
                r.pair.clone().into(),
                r.tenant.clone().into(),
                r.ipc.into(),
                r.solo_ipc.into(),
                r.ipc_loss_pct.into(),
                r.llc_share_pct.into(),
                r.dram_share_pct.into(),
            ]);
        }
        rep.push(t);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigations_set_exactly_their_own_knobs() {
        let dirty = RunConfig {
            llc_way_masks: Some(vec![0x1]),
            dram_budgets: Some(vec![64]),
            ..RunConfig::default()
        };
        let none = Mitigation::None.apply(&dirty);
        assert_eq!(none.llc_way_masks, None);
        assert_eq!(none.dram_budgets, None);

        let part = Mitigation::WayPartition.apply(&dirty);
        part.validate().expect("partition config validates");
        let masks = part.llc_way_masks.expect("partition sets masks");
        assert_eq!(masks.len(), 2);
        assert_eq!(masks[0] & masks[1], 0, "tenant partitions must be disjoint");
        let assoc = cs_memsys::CacheConfig::llc().assoc;
        assert_eq!(masks[0] | masks[1], (1u64 << assoc) - 1, "partitions must cover the LLC");
        assert_eq!(part.dram_budgets, None);

        let thr = Mitigation::Throttle.apply(&dirty);
        thr.validate().expect("throttle config validates");
        assert_eq!(thr.llc_way_masks, None);
        let budgets = thr.dram_budgets.expect("throttle sets budgets");
        assert_eq!(budgets.len(), 2);
        assert_eq!(budgets[0], budgets[1], "fair-share throttle is symmetric");
        assert!(budgets[0] >= 64);
    }

    #[test]
    fn selection_honors_the_knob_and_rejects_unknown_keys() {
        assert_eq!(
            roster().iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            ROSTER_KEYS,
            "the validation const must mirror the roster"
        );
        let full = select(&RunConfig::default()).expect("full roster");
        assert_eq!(full.len(), 8);

        let sub_cfg = RunConfig {
            matrix_workloads: Some(vec!["polluter".into(), "web_search".into()]),
            ..RunConfig::default()
        };
        let sub = select(&sub_cfg).expect("subset");
        // Roster order wins over request order.
        assert_eq!(sub.iter().map(|(k, _)| *k).collect::<Vec<_>>(), ["web_search", "polluter"]);

        let bad = RunConfig {
            matrix_workloads: Some(vec!["web_search".into(), "memcached".into()]),
            ..RunConfig::default()
        };
        let err = select(&bad).expect_err("unknown key must be loud");
        assert!(err.to_string().contains("memcached"), "{err}");
        // And the same typo fails RunConfig::validate(), so a campaign
        // rejects it before running anything.
        let err = bad.validate().expect_err("validate must catch roster typos");
        assert!(err.to_string().contains("memcached"), "{err}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn reduced_matrix_rows_are_complete_and_finite() {
        let cfg = RunConfig {
            warmup_instr: 40_000,
            measure_instr: 80_000,
            workers: 2,
            // Shrink the LLC so the 8 MB polluter creates real eviction
            // pressure inside the short test windows — without it the
            // 12 MB LLC never fills and the way masks have nothing to do.
            llc_bytes: Some(1 << 20),
            matrix_workloads: Some(vec!["web_search".into(), "polluter".into()]),
            ..RunConfig::default()
        };
        let rows = collect(&cfg).expect("collect");
        // 3 unordered pairings (incl. self-pairs) x 3 mitigations x 2 tenants.
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!(r.ipc.is_finite() && r.ipc > 0.0, "{}/{}: bad IPC", r.pair, r.tenant);
            assert!(r.solo_ipc > 0.0, "{}/{}: missing solo baseline", r.pair, r.tenant);
            assert!(
                (0.0..=100.0).contains(&r.llc_share_pct),
                "{}/{}: LLC share out of range",
                r.pair,
                r.tenant
            );
            assert!(
                (0.0..=100.0).contains(&r.dram_share_pct),
                "{}/{}: DRAM share out of range",
                r.pair,
                r.tenant
            );
        }
        // Shares within one pairing row-pair must account for (almost) the
        // whole resource.
        for chunk in rows.chunks(2) {
            let llc = chunk[0].llc_share_pct + chunk[1].llc_share_pct;
            assert!(llc <= 100.0 + 1e-9, "LLC shares exceed 100%: {llc}");
            let dram = chunk[0].dram_share_pct + chunk[1].dram_share_pct;
            assert!((dram - 100.0).abs() < 1e-6 || dram == 0.0, "DRAM shares must partition: {dram}");
        }
        // The polluter must hurt web_search when unmanaged: it exists to
        // steal LLC capacity.
        let victim = rows
            .iter()
            .find(|r| r.pair == "web_search+polluter" && r.mitigation == "none" && r.tenant == "web_search")
            .expect("victim row");
        assert!(victim.ipc_loss_pct > 0.0, "polluter caused no IPC loss: {victim:?}");
        // And the full way partition must give some of that loss back.
        let partitioned = rows
            .iter()
            .find(|r| {
                r.pair == "web_search+polluter"
                    && r.mitigation == "way_partition"
                    && r.tenant == "web_search"
            })
            .expect("partitioned row");
        assert!(
            partitioned.ipc_loss_pct < victim.ipc_loss_pct,
            "way partition did not reduce IPC loss: {} vs {}",
            partitioned.ipc_loss_pct,
            victim.ipc_loss_pct
        );
    }

}
