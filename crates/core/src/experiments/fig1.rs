//! Figure 1: execution-time breakdown and memory cycles.
//!
//! For every workload: the fraction of cycles committing vs. stalled,
//! attributed to application or OS, plus the overlapped memory-cycles bar
//! (§3.1 methodology).

use crate::errors::HarnessError;
use crate::harness::{run_strict, Breakdown, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, Table};
use serde::{Deserialize, Serialize};

/// One bar of Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// The breakdown fractions.
    pub breakdown: Breakdown,
}

/// Runs every workload of the suite and collects its breakdown.
///
/// Fails fast on the first run that is invalid, stalls, or cannot finish
/// its window ([`HarnessError`]); the campaign layer decides whether to
/// retry with a widened cycle budget.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig1Row>, HarnessError> {
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let r = run_strict(&b, cfg)?;
        rows.push(Fig1Row {
            workload: r.name.clone(),
            scale_out: b.category() == Category::ScaleOut,
            breakdown: r.breakdown(),
        });
    }
    Ok(rows)
}

/// Renders the rows as the Figure 1 table.
pub fn report(rows: &[Fig1Row]) -> Report {
    let mut t = Table::new(
        "Execution-time breakdown (fraction of cycles)",
        &["workload", "class", "commit(app)", "commit(OS)", "stall(app)", "stall(OS)", "memory"],
    );
    for r in rows {
        let b = r.breakdown;
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            b.committing_app.into(),
            b.committing_os.into(),
            b.stalled_app.into(),
            b.stalled_os.into(),
            b.memory.into(),
        ]);
    }
    let mut rep = Report::new("Figure 1: Execution-time breakdown and memory cycles");
    rep.note("Committing/Stalled partition total cycles; Memory overlaps them (plotted side-by-side in the paper).");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn scale_out_workloads_stall_most_of_the_time() {
        let cfg = RunConfig {
            warmup_instr: 150_000,
            measure_instr: 300_000,
            ..RunConfig::default()
        };
        let r = run_strict(&Benchmark::data_serving(), &cfg).expect("run");
        let b = r.breakdown();
        assert!(
            b.stalled_app + b.stalled_os > 0.5,
            "scale-out must be stall-dominated, got {:?}",
            b
        );
        assert!(b.memory > 0.4, "stalls must be memory-driven, got {:?}", b);
    }

    #[test]
    fn report_renders_one_row_per_workload() {
        let rows = vec![Fig1Row {
            workload: "X".into(),
            scale_out: true,
            breakdown: Breakdown {
                committing_app: 0.2,
                committing_os: 0.1,
                stalled_app: 0.5,
                stalled_os: 0.2,
                memory: 0.6,
            },
        }];
        let text = report(&rows).to_string();
        assert!(text.contains("X"));
        assert!(text.contains("0.60"));
    }
}
