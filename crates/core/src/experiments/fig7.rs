//! Figure 7: off-chip memory bandwidth utilization.
//!
//! §4.4: scale-out workloads use a small fraction of the provisioned
//! off-chip bandwidth even when configured to stress the processor; Media
//! Streaming is the heaviest consumer.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, Table};
use serde::{Deserialize, Serialize};

/// One workload's Figure 7 bar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// Application traffic, % of available per-core bandwidth.
    pub app_pct: f64,
    /// OS traffic, % of available per-core bandwidth.
    pub os_pct: f64,
}

impl Fig7Row {
    /// Total utilization percentage.
    pub fn total(&self) -> f64 {
        self.app_pct + self.os_pct
    }
}

/// Runs every workload and collects bandwidth utilization.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig7Row>, HarnessError> {
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let r = run_strict(&b, cfg)?;
        let (app_pct, os_pct) = r.bandwidth_pct();
        rows.push(Fig7Row {
            workload: r.name.clone(),
            scale_out: b.category() == Category::ScaleOut,
            app_pct,
            os_pct,
        });
    }
    Ok(rows)
}

/// Renders the rows as the Figure 7 table.
pub fn report(rows: &[Fig7Row]) -> Report {
    let mut t = Table::new(
        "Off-chip bandwidth utilization (% of available per-core)",
        &["workload", "class", "application", "OS", "total"],
    );
    for r in rows {
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            r.app_pct.into(),
            r.os_pct.into(),
            r.total().into(),
        ]);
    }
    let mut rep = Report::new("Figure 7: Off-chip memory bandwidth utilization");
    rep.note("Demand fills, prefetches and writebacks all count against the requesting core.");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn utilization_stays_well_under_provisioned_bandwidth() {
        let cfg = RunConfig {
            warmup_instr: 500_000,
            measure_instr: 1_000_000,
            ..RunConfig::default()
        };
        let r = run_strict(&Benchmark::web_frontend(), &cfg).expect("run");
        let (app, os) = r.bandwidth_pct();
        assert!(
            app + os < 30.0,
            "scale-out bandwidth must be a small fraction, got {:.1}%",
            app + os
        );
        assert!(app + os > 0.5, "some off-chip traffic expected");
    }
}
