//! Figure 4: performance sensitivity to LLC capacity.
//!
//! Reproduced with the paper's own methodology (§3.1): two dedicated cores
//! run cache-polluter threads whose arrays steal a chosen amount of LLC
//! capacity, and the workload's user-IPC at each effective capacity is
//! normalized to the unpolluted 12 MB baseline. Scale-out and traditional
//! server workloads flatten above 4–6 MB; an `mcf`-like working set keeps
//! paying for every megabyte.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::Benchmark;
use cs_perf::{Report, Table};
use serde::{Deserialize, Serialize};

/// Normalized user-IPC of the three series at one effective capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Effective LLC capacity available to the workload, in MB.
    pub cache_mb: u64,
    /// Scale-out workload average, normalized to the 12 MB baseline.
    pub scale_out: f64,
    /// Traditional server (TPC-C/TPC-E/Web Backend) average, normalized.
    pub server: f64,
    /// SPECint mcf, normalized.
    pub mcf: f64,
}

/// The workload groups plotted in the figure.
pub fn groups() -> (Vec<Benchmark>, Vec<Benchmark>, Benchmark) {
    let scale_out = Benchmark::scale_out_suite();
    let server: Vec<Benchmark> = Benchmark::traditional_suite()
        .into_iter()
        .filter(|b| ["TPC-C", "TPC-E", "Web Backend"].contains(&b.name()))
        .collect();
    (scale_out, server, Benchmark::mcf())
}

fn group_ipc(benches: &[Benchmark], cfg: &RunConfig) -> Result<f64, HarnessError> {
    let mut sum = 0.0;
    for b in benches {
        sum += run_strict(b, cfg)?.app_ipc();
    }
    Ok(sum / benches.len() as f64)
}

/// Raw (unnormalized) group IPCs measured at one LLC configuration.
struct CapacityPoint {
    scale_out: f64,
    server: f64,
    mcf: f64,
}

/// Sweeps effective LLC capacities `4..=11` MB (plus the 12 MB baseline)
/// and returns normalized user-IPC per group.
///
/// Each capacity point — the unpolluted baseline included — is one
/// independent unit, fanned over [`RunConfig::jobs`] threads
/// ([`crate::par::par_map`]). Raw group IPCs are measured per point and
/// normalized to the baseline afterwards, so the division order (and
/// every result byte) matches the serial sweep.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig4Row>, HarnessError> {
    let (scale_out, server, mcf) = groups();
    // The polluters walk their arrays at LLC speed; every run — including
    // the unpolluted baseline, for comparability — gets the same extended
    // warmup so the polluters claim their capacity before measurement.
    let warmup = cfg.warmup_instr.max(3_000_000);
    // Unit 0 is the 12 MB baseline; units 1.. are the polluted capacities.
    let configs: Vec<(u64, RunConfig)> = std::iter::once((12u64, None))
        .chain((4..=11u64).map(|mb| (mb, Some((12 - mb) << 20))))
        .map(|(mb, polluter_bytes)| {
            (mb, RunConfig { polluter_bytes, warmup_instr: warmup, ..cfg.clone() })
        })
        .collect();
    let points: Vec<CapacityPoint> =
        crate::par::par_map(cfg.jobs, &configs, |_, (_, point_cfg)| {
            Ok(CapacityPoint {
                scale_out: group_ipc(&scale_out, point_cfg)?,
                server: group_ipc(&server, point_cfg)?,
                mcf: run_strict(&mcf, point_cfg)?.app_ipc(),
            })
        })
        .into_iter()
        .collect::<Result<_, HarnessError>>()?;

    let base = &points[0];
    Ok(points[1..]
        .iter()
        .zip(configs[1..].iter())
        .map(|(p, (mb, _))| Fig4Row {
            cache_mb: *mb,
            scale_out: p.scale_out / base.scale_out,
            server: p.server / base.server,
            mcf: p.mcf / base.mcf,
        })
        .collect())
}

/// Renders the sweep as the Figure 4 table.
pub fn report(rows: &[Fig4Row]) -> Report {
    let mut t = Table::new(
        "User-IPC normalized to the 12 MB baseline",
        &["cache (MB)", "Scale-out", "Server", "SPECint (mcf)"],
    );
    for r in rows {
        t.row([r.cache_mb.into(), r.scale_out.into(), r.server.into(), r.mcf.into()]);
    }
    let mut rep = Report::new("Figure 4: Performance sensitivity to LLC capacity");
    rep.note("Capacity reduced with cache-polluter threads on two dedicated cores (§3.1).");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_expected_members() {
        let (so, srv, mcf) = groups();
        assert_eq!(so.len(), 6);
        assert_eq!(srv.len(), 3);
        assert_eq!(mcf.name(), "SPECint (mcf)");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn polluters_cost_mcf_more_than_scale_out() {
        let cfg = RunConfig {
            warmup_instr: 800_000,
            measure_instr: 1_200_000,
            ..RunConfig::default()
        };
        let polluted = RunConfig {
            polluter_bytes: Some(8 << 20),
            warmup_instr: 3_000_000,
            ..cfg.clone()
        };
        let so = Benchmark::web_search();
        let so_drop = run_strict(&so, &polluted).expect("run").app_ipc()
            / run_strict(&so, &cfg).expect("run").app_ipc();
        let mcf = Benchmark::mcf();
        let mcf_drop = run_strict(&mcf, &polluted).expect("run").app_ipc()
            / run_strict(&mcf, &cfg).expect("run").app_ipc();
        assert!(
            mcf_drop < so_drop,
            "mcf must lose more at 4MB: mcf {mcf_drop:.2} vs scale-out {so_drop:.2}"
        );
        assert!(so_drop > 0.7, "scale-out should be mostly insensitive, got {so_drop:.2}");
    }
}
