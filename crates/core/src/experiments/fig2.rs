//! Figure 2: L1-I and L2 instruction misses per kilo-instruction.
//!
//! The paper's frontend finding (§4.1): scale-out instruction working sets
//! far exceed the L1-I — and even the L2 — while desktop/parallel
//! benchmarks are L1-resident. The OS components are reported separately.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, Table};
use serde::{Deserialize, Serialize};

/// One bar group of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// L1-I misses per kilo-instruction, application code.
    pub l1i_app: f64,
    /// L1-I misses per kilo-instruction, OS code.
    pub l1i_os: f64,
    /// L2 instruction misses per kilo-instruction, application code.
    pub l2i_app: f64,
    /// L2 instruction misses per kilo-instruction, OS code.
    pub l2i_os: f64,
}

/// Runs every workload and collects instruction miss rates.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig2Row>, HarnessError> {
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let r = run_strict(&b, cfg)?;
        let (l1i_app, l1i_os) = r.l1i_mpki();
        let (l2i_app, l2i_os) = r.l2i_mpki();
        rows.push(Fig2Row {
            workload: r.name.clone(),
            scale_out: b.category() == Category::ScaleOut,
            l1i_app,
            l1i_os,
            l2i_app,
            l2i_os,
        });
    }
    Ok(rows)
}

/// Renders the rows as the Figure 2 table.
pub fn report(rows: &[Fig2Row]) -> Report {
    let mut t = Table::new(
        "Instruction misses per k-instruction",
        &["workload", "class", "L1-I (app)", "L1-I (OS)", "L2 (app)", "L2 (OS)"],
    )
    .with_precision(1);
    for r in rows {
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            r.l1i_app.into(),
            r.l1i_os.into(),
            r.l2i_app.into(),
            r.l2i_os.into(),
        ]);
    }
    let mut rep = Report::new("Figure 2: L1-I and L2 instruction miss rates");
    rep.note("OS components shown for workloads with significant kernel time.");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn scale_out_instruction_misses_dwarf_desktop() {
        let cfg = RunConfig {
            warmup_instr: 150_000,
            measure_instr: 300_000,
            ..RunConfig::default()
        };
        let web = run_strict(&Benchmark::web_search(), &cfg).expect("run");
        let spec = run_strict(
            &Benchmark::from_profile(
                Category::Traditional,
                cs_trace::WorkloadProfile::specint_cpu(),
            ),
            &cfg,
        )
        .expect("run");
        let (web_l1i, _) = web.l1i_mpki();
        let (spec_l1i, _) = spec.l1i_mpki();
        assert!(
            web_l1i > 10.0 * (spec_l1i + 0.1),
            "scale-out L1-I MPKI ({web_l1i:.1}) must dwarf SPEC-cpu ({spec_l1i:.1})"
        );
    }
}
