//! `fleet_slo`: cluster-level tail-latency SLOs under machine failures.
//!
//! The paper studies one machine; its workloads run as fleets. This
//! experiment closes the loop: the §3.1 harness measures each scale-out
//! workload's per-request service time (and how it inflates under SMT
//! sharing and LLC co-location, the fig. 3/fig. 4 methodologies), and the
//! `cs-fleet` discrete-event simulator serves an open-loop Poisson-plus-
//! burst request stream with those service times across a cluster —
//! injecting seeded machine crashes and stragglers, retrying with capped
//! exponential backoff, hedging slow initial attempts, ejecting unhealthy
//! machines, and shedding load at admission when a machine's bounded
//! queue is full.
//!
//! The sweep crosses every scale-out workload with fleet sizes
//! [`MACHINE_COUNTS`] and fault intensities [`FaultLevel`], reporting
//! p50/p99/p999 completion latency, goodput, SLO attainment, and the
//! retry/hedge/shed/failure counters per point. Everything downstream of
//! the harness runs is a pure function of (config, seed): results are
//! byte-identical across `--jobs` values and across reruns.

use crate::errors::{ConfigError, HarnessError};
use crate::harness::{run_strict, RunConfig, RunResult};
use crate::machine::MachineConfig;
use crate::registry::Benchmark;
use cs_fleet::{
    simulate, Burst, FleetConfig, FleetFaultPlan, HedgePolicy, RetryPolicy, ServiceProfile,
};
use cs_perf::{Report, Table};
use cs_trace::rng::splitmix64;
use serde::{Deserialize, Serialize};

/// Fleet sizes swept per workload.
pub const MACHINE_COUNTS: [usize; 3] = [4, 8, 16];

/// Serving contexts per machine (requests concurrently in service).
pub const CONTEXTS_PER_MACHINE: usize = 4;

/// Bounded per-machine wait queue; admission beyond contexts + queue is shed.
pub const QUEUE_CAPACITY: usize = 4;

/// Open-loop requests per sweep point.
pub const REQUESTS_PER_POINT: u64 = 4_000;

/// Mean offered load as a fraction of fleet capacity (off-burst).
const TARGET_UTILIZATION: f64 = 0.65;

/// Burst modulation: the first quarter of each period runs at 3x the base
/// arrival rate, pushing instantaneous utilization near 2x capacity so the
/// bounded queues actually shed.
const BURST_AMPLITUDE: f64 = 3.0;
const BURST_ON_FRACTION: f64 = 0.25;
const BURST_PERIOD_GAPS: u64 = 256;

/// Client policy knobs, as multiples of the effective mean service time.
const TIMEOUT_FACTOR: u64 = 8;
const RETRY_BASE_FACTOR: u64 = 2;
const RETRY_CAP_FACTOR: u64 = 16;
const MAX_RETRIES: u32 = 3;
const HEDGE_DELAY_FACTOR: u64 = 6;
const PROBE_FACTOR: u64 = 4;

/// The SLO bound, as a multiple of the effective mean service time.
const SLO_FACTOR: u64 = 20;

/// Salt separating the fault-plan seed from the arrival/service seed.
const FAULT_SEED_SALT: u64 = 0xF1EE_7FA0;

/// Fault intensity of one sweep point. Plans are scaled to the expected
/// simulated span so every intensity above `None` reliably fires within
/// the window regardless of the workload's absolute service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultLevel {
    /// No injected faults: the healthy-fleet baseline.
    None,
    /// Roughly one crash and one straggler episode per machine per run.
    Moderate,
    /// Crashes every third of the run per machine, long repairs, frequent
    /// and severe straggler episodes.
    Heavy,
}

impl FaultLevel {
    /// All levels, in sweep order.
    pub fn all() -> [FaultLevel; 3] {
        [FaultLevel::None, FaultLevel::Moderate, FaultLevel::Heavy]
    }

    /// Short label used in reports and result files.
    pub fn label(self) -> &'static str {
        match self {
            FaultLevel::None => "none",
            FaultLevel::Moderate => "moderate",
            FaultLevel::Heavy => "heavy",
        }
    }

    /// The seeded fault plan for a run expected to span `span_ns`.
    pub fn plan(self, span_ns: u64, seed: u64) -> Option<FleetFaultPlan> {
        let span = span_ns.max(1);
        match self {
            FaultLevel::None => None,
            FaultLevel::Moderate => Some(FleetFaultPlan {
                crash_mtbf_ns: span,
                repair_ns: (span / 8).max(1),
                straggler_mtbf_ns: span,
                straggler_duration_ns: (span / 12).max(1),
                straggler_factor: 4.0,
                ..FleetFaultPlan::quiet(seed)
            }),
            FaultLevel::Heavy => Some(FleetFaultPlan {
                crash_mtbf_ns: (span / 3).max(1),
                repair_ns: (span / 6).max(1),
                straggler_mtbf_ns: (span / 2).max(1),
                straggler_duration_ns: (span / 8).max(1),
                straggler_factor: 6.0,
                ..FleetFaultPlan::quiet(seed)
            }),
        }
    }
}

/// One harness measurement reduced to what service-time extraction needs.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Cycles the measurement window spanned.
    pub cycles: u64,
    /// Hardware contexts that served requests during the window.
    pub contexts: usize,
    /// Requests completed in the window (0 when the workload is unmetered).
    pub requests: u64,
}

impl Measured {
    fn from_run(r: &RunResult, threads_per_core: usize) -> Self {
        Self {
            cycles: r.cycles,
            contexts: r.n_workers * threads_per_core,
            requests: r.requests.unwrap_or(0),
        }
    }

    /// Mean time one context spends on one request, in ns.
    fn per_context_service_ns(&self, freq_ghz: f64) -> Option<f64> {
        if self.cycles == 0 || self.contexts == 0 || self.requests == 0 {
            return None;
        }
        let cycles_per_request = self.cycles as f64 * self.contexts as f64 / self.requests as f64;
        Some(cycles_per_request / freq_ghz)
    }
}

/// Derives a workload's [`ServiceProfile`] from three measurements: a
/// dedicated-context baseline, an SMT run (sibling thread busy), and a
/// co-located run (cache-polluter tenants). The inflation factors are
/// per-context service-time ratios against the baseline.
///
/// Fails with [`ConfigError::EmptyServiceTable`] when any measurement
/// completed zero requests or zero cycles — a fleet simulation fed from a
/// degenerate table would be silently meaningless.
pub fn derive_profile(
    workload: &str,
    freq_ghz: f64,
    base: Measured,
    smt: Measured,
    colocated: Measured,
) -> Result<ServiceProfile, ConfigError> {
    let empty = || ConfigError::EmptyServiceTable { workload: workload.to_owned() };
    let base_ns = base.per_context_service_ns(freq_ghz).ok_or_else(empty)?;
    let smt_ns = smt.per_context_service_ns(freq_ghz).ok_or_else(empty)?;
    let colocated_ns = colocated.per_context_service_ns(freq_ghz).ok_or_else(empty)?;
    Ok(ServiceProfile {
        workload: workload.to_owned(),
        mean_service_ns: (base_ns as u64).max(1),
        smt_inflation: smt_ns / base_ns,
        colocation_inflation: colocated_ns / base_ns,
    })
}

/// Measures service profiles for `benches` with the §3.1 harness: per
/// workload a baseline, an SMT run, and a polluted run.
///
/// All three runs share fig. 4's extended warmup — the polluters need it to
/// claim their LLC share before measurement, and the baseline and SMT runs
/// must match it so the inflation ratios compare equally-warm caches rather
/// than warmup-length artifacts.
///
/// Each workload's three runs are one independent unit, fanned over
/// [`RunConfig::jobs`] threads ([`crate::par::par_map`]).
pub fn service_profiles(
    cfg: &RunConfig,
    benches: &[Benchmark],
) -> Result<Vec<ServiceProfile>, HarnessError> {
    let freq_ghz = MachineConfig::default().freq_ghz;
    let warmup = cfg.warmup_instr.max(3_000_000);
    crate::par::par_map(cfg.jobs, benches, |_, b| {
        let base = run_strict(b, &RunConfig { warmup_instr: warmup, ..cfg.clone() })?;
        let smt =
            run_strict(b, &RunConfig { smt: true, warmup_instr: warmup, ..cfg.clone() })?;
        let polluted = run_strict(
            b,
            &RunConfig {
                polluter_bytes: Some(8 << 20),
                warmup_instr: warmup,
                ..cfg.clone()
            },
        )?;
        Ok(derive_profile(
            &base.name,
            freq_ghz,
            Measured::from_run(&base, 1),
            Measured::from_run(&smt, 2),
            Measured::from_run(&polluted, 1),
        )?)
    })
    .into_iter()
    .collect()
}

/// The effective mean service time of a densely packed machine: the
/// baseline mean inflated by both measured sharing penalties (contexts run
/// two-per-core with co-located tenants).
fn effective_mean_ns(profile: &ServiceProfile) -> u64 {
    let inflation = profile.smt_inflation * profile.colocation_inflation;
    ((profile.mean_service_ns as f64 * inflation) as u64).max(1)
}

/// Builds the fleet configuration of one sweep point. Pure function of its
/// arguments; the same point always simulates the same bytes.
pub fn point_config(
    profile: &ServiceProfile,
    machines: usize,
    level: FaultLevel,
    seed: u64,
) -> FleetConfig {
    let eff = effective_mean_ns(profile);
    let capacity = (machines * CONTEXTS_PER_MACHINE) as f64;
    let gap = ((eff as f64 / (capacity * TARGET_UTILIZATION)) as u64).max(1);
    let span = REQUESTS_PER_POINT.saturating_mul(gap);
    FleetConfig {
        machines,
        contexts_per_machine: CONTEXTS_PER_MACHINE,
        queue_capacity: QUEUE_CAPACITY,
        requests: REQUESTS_PER_POINT,
        mean_interarrival_ns: gap,
        burst: Some(Burst {
            period_ns: gap.saturating_mul(BURST_PERIOD_GAPS),
            on_fraction: BURST_ON_FRACTION,
            amplitude: BURST_AMPLITUDE,
        }),
        service_inflation: profile.smt_inflation * profile.colocation_inflation,
        timeout_ns: eff.saturating_mul(TIMEOUT_FACTOR),
        connect_timeout_ns: eff,
        probe_interval_ns: eff.saturating_mul(PROBE_FACTOR),
        retry: RetryPolicy {
            max_retries: MAX_RETRIES,
            base: eff.saturating_mul(RETRY_BASE_FACTOR),
            factor: 2,
            cap: eff.saturating_mul(RETRY_CAP_FACTOR),
        },
        hedge: Some(HedgePolicy {
            delay_ns: eff.saturating_mul(HEDGE_DELAY_FACTOR),
            max_hedges: 1,
        }),
        faults: level.plan(span, splitmix64(seed ^ FAULT_SEED_SALT)),
        fault_domains: 0,
        trigger_end_ns: None,
        retry_budget: None,
        breaker: None,
        aimd: None,
        seed,
    }
}

/// One sweep point's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSloRow {
    /// Workload name.
    pub workload: String,
    /// Fleet size.
    pub machines: usize,
    /// Fault intensity.
    pub faults: FaultLevel,
    /// Median completion latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile completion latency, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile completion latency, ns.
    pub p999_ns: u64,
    /// Completed requests per second of simulated time.
    pub goodput_rps: f64,
    /// Fraction of arrived requests completing within the SLO bound
    /// (shed and failed requests count against it).
    pub slo_attainment: f64,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests that exhausted the retry budget.
    pub failed: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Hedge attempts dispatched.
    pub hedges: u64,
    /// Attempts abandoned by the client timeout.
    pub timeouts: u64,
    /// Machine crashes injected.
    pub machine_failures: u64,
    /// Machines repaired.
    pub recoveries: u64,
    /// Straggler episodes injected.
    pub straggler_episodes: u64,
    /// Machines ejected from rotation.
    pub ejections: u64,
    /// Machines readmitted by health probes.
    pub readmissions: u64,
    /// Server completions of already-abandoned attempts (wasted work).
    pub wasted_completions: u64,
}

/// Simulates one sweep point. Under `CS_PARANOID` the fleet conservation
/// auditor runs on the result and any imbalance fails the point loudly
/// ([`crate::errors::AuditError::Fleet`]).
pub fn run_point(
    profile: &ServiceProfile,
    machines: usize,
    level: FaultLevel,
    seed: u64,
) -> Result<FleetSloRow, HarnessError> {
    let cfg = point_config(profile, machines, level, seed);
    let stats = simulate(&cfg, profile)?;
    if crate::harness::paranoid_enabled() {
        stats.audit(&cfg.audit_policies())?;
    }
    let slo_ns = effective_mean_ns(profile).saturating_mul(SLO_FACTOR);
    Ok(FleetSloRow {
        workload: profile.workload.clone(),
        machines,
        faults: level,
        p50_ns: stats.p50_ns(),
        p99_ns: stats.p99_ns(),
        p999_ns: stats.p999_ns(),
        goodput_rps: stats.goodput_rps(),
        slo_attainment: stats.slo_attainment(slo_ns),
        arrived: stats.arrived,
        completed: stats.completed,
        shed: stats.shed,
        failed: stats.failed,
        retries: stats.retries,
        hedges: stats.hedges,
        timeouts: stats.timeouts,
        machine_failures: stats.machine_failures,
        recoveries: stats.recoveries,
        straggler_episodes: stats.straggler_episodes,
        ejections: stats.ejections,
        readmissions: stats.readmissions,
        wasted_completions: stats.wasted_completions,
    })
}

/// The measured service-time table plus the full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSloData {
    /// Harness-measured service profiles, in suite order.
    pub profiles: Vec<ServiceProfile>,
    /// One row per (workload, machines, fault level) point.
    pub rows: Vec<FleetSloRow>,
}

/// Deterministic per-point seed: position in the sweep, scrambled.
fn point_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed ^ splitmix64(0x5105 + index as u64))
}

/// Runs the full sweep over every scale-out workload.
pub fn collect(cfg: &RunConfig) -> Result<FleetSloData, HarnessError> {
    collect_subset(cfg, &Benchmark::scale_out_suite())
}

/// Runs the sweep over a chosen subset of workloads (tests use a single
/// workload to keep the harness portion cheap).
///
/// Sweep points are independent units fanned over [`RunConfig::jobs`]
/// threads; per-point seeds are positional, so neither the job count nor
/// scheduling order can change a single byte of the output.
pub fn collect_subset(
    cfg: &RunConfig,
    benches: &[Benchmark],
) -> Result<FleetSloData, HarnessError> {
    let profiles = service_profiles(cfg, benches)?;
    let points: Vec<(usize, usize, FaultLevel)> = (0..profiles.len())
        .flat_map(|p| {
            MACHINE_COUNTS
                .into_iter()
                .flat_map(move |m| FaultLevel::all().into_iter().map(move |l| (p, m, l)))
        })
        .collect();
    let rows = crate::par::par_map(cfg.jobs, &points, |i, &(p, machines, level)| {
        run_point(&profiles[p], machines, level, point_seed(cfg.seed, i))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(FleetSloData { profiles, rows })
}

/// Renders the service table, the per-point sweep, and the fleet totals.
pub fn report(data: &FleetSloData) -> Report {
    let mut services = Table::new(
        "Harness-measured service times",
        &["workload", "mean service (us)", "SMT inflation", "co-location inflation"],
    );
    for p in &data.profiles {
        services.row([
            p.workload.clone().into(),
            (p.mean_service_ns as f64 / 1e3).into(),
            p.smt_inflation.into(),
            p.colocation_inflation.into(),
        ]);
    }

    let mut points = Table::new(
        "Tail latency and goodput per (fleet size, fault intensity)",
        &[
            "workload",
            "machines",
            "faults",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "goodput (req/s)",
            "SLO %",
            "shed",
            "failed",
            "retries",
            "hedges",
            "crashes",
            "ejections",
            "wasted",
        ],
    );
    for r in &data.rows {
        points.row([
            r.workload.clone().into(),
            (r.machines as u64).into(),
            r.faults.label().into(),
            (r.p50_ns as f64 / 1e6).into(),
            (r.p99_ns as f64 / 1e6).into(),
            (r.p999_ns as f64 / 1e6).into(),
            r.goodput_rps.into(),
            (100.0 * r.slo_attainment).into(),
            r.shed.into(),
            r.failed.into(),
            r.retries.into(),
            r.hedges.into(),
            r.machine_failures.into(),
            r.ejections.into(),
            r.wasted_completions.into(),
        ]);
    }

    let sum = |get: fn(&FleetSloRow) -> u64| data.rows.iter().map(get).sum::<u64>();
    let mut totals = Table::new(
        "Fleet totals (sweep-wide)",
        &[
            "arrived",
            "completed",
            "shed",
            "failed",
            "retries",
            "hedges",
            "timeouts",
            "machine failures",
            "recoveries",
            "ejections",
            "readmissions",
            "wasted",
        ],
    );
    totals.row([
        sum(|r| r.arrived).into(),
        sum(|r| r.completed).into(),
        sum(|r| r.shed).into(),
        sum(|r| r.failed).into(),
        sum(|r| r.retries).into(),
        sum(|r| r.hedges).into(),
        sum(|r| r.timeouts).into(),
        sum(|r| r.machine_failures).into(),
        sum(|r| r.recoveries).into(),
        sum(|r| r.ejections).into(),
        sum(|r| r.readmissions).into(),
        sum(|r| r.wasted_completions).into(),
    ]);

    let mut rep = Report::new("Fleet SLO: tail latency under machine failures");
    rep.note(
        "Service times measured by the harness (fig. 3/4 methodology); the fleet is a \
         seeded discrete-event simulation with crashes, stragglers, capped-backoff \
         retries, hedging, health ejection, and admission-time load shedding.",
    );
    rep.push(services);
    rep.push(points);
    rep.push(totals);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_profile() -> ServiceProfile {
        ServiceProfile {
            workload: "synthetic".into(),
            mean_service_ns: 50_000,
            smt_inflation: 1.4,
            colocation_inflation: 1.15,
        }
    }

    #[test]
    fn point_configs_validate_and_replay() {
        let p = synthetic_profile();
        for machines in MACHINE_COUNTS {
            for level in FaultLevel::all() {
                let a = point_config(&p, machines, level, 7);
                let b = point_config(&p, machines, level, 7);
                assert_eq!(a, b, "point config must be a pure function");
                a.validate(&p).expect("generated configs must be valid");
                assert_eq!(level == FaultLevel::None, a.faults.is_none());
            }
        }
    }

    #[test]
    fn fault_levels_scale_pressure() {
        let moderate = FaultLevel::Moderate.plan(1 << 30, 9).expect("plan");
        let heavy = FaultLevel::Heavy.plan(1 << 30, 9).expect("plan");
        assert!(heavy.crash_mtbf_ns < moderate.crash_mtbf_ns);
        assert!(heavy.straggler_mtbf_ns < moderate.straggler_mtbf_ns);
        assert!(heavy.straggler_factor > moderate.straggler_factor);
        assert!(FaultLevel::None.plan(1 << 30, 9).is_none());
    }

    #[test]
    fn degenerate_measurements_are_an_empty_table() {
        let good = Measured { cycles: 1_000_000, contexts: 4, requests: 500 };
        let no_requests = Measured { requests: 0, ..good };
        let err = derive_profile("cassandra", 2.93, good, no_requests, good)
            .expect_err("zero requests must be rejected");
        assert!(matches!(err, ConfigError::EmptyServiceTable { ref workload } if workload == "cassandra"));
        let no_cycles = Measured { cycles: 0, ..good };
        assert!(derive_profile("x", 2.93, no_cycles, good, good).is_err());
        let p = derive_profile("x", 2.93, good, good, good).expect("good table");
        assert!(p.mean_service_ns > 0);
        assert!((p.smt_inflation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smt_inflation_is_per_context() {
        // SMT doubles contexts and (say) raises throughput 1.5x: each
        // context now takes 2/1.5 = 1.33x longer per request.
        let base = Measured { cycles: 1_000_000, contexts: 4, requests: 1_000 };
        let smt = Measured { cycles: 1_000_000, contexts: 8, requests: 1_500 };
        let p = derive_profile("x", 2.93, base, smt, base).expect("profile");
        assert!((p.smt_inflation - 8.0 / 6.0).abs() < 1e-9, "got {}", p.smt_inflation);
    }

    #[test]
    fn sweep_points_conserve_and_fault_levels_bite() {
        let p = synthetic_profile();
        let mut shed_total = 0;
        let mut heavy_crashes = 0;
        let mut heavy_retries = 0;
        for (i, machines) in MACHINE_COUNTS.into_iter().enumerate() {
            for (j, level) in FaultLevel::all().into_iter().enumerate() {
                let row = run_point(&p, machines, level, point_seed(42, i * 3 + j))
                    .expect("point must simulate");
                assert_eq!(
                    row.arrived,
                    row.completed + row.shed + row.failed,
                    "request conservation at {machines} machines, {}",
                    level.label()
                );
                assert_eq!(row.arrived, REQUESTS_PER_POINT);
                shed_total += row.shed;
                if level == FaultLevel::Heavy {
                    heavy_crashes += row.machine_failures;
                    heavy_retries += row.retries;
                } else if level == FaultLevel::None {
                    assert_eq!(row.machine_failures, 0);
                    assert_eq!(row.straggler_episodes, 0);
                }
            }
        }
        assert!(shed_total > 0, "bursty overload must shed somewhere in the sweep");
        assert!(heavy_crashes > 0, "heavy fault level must crash machines");
        assert!(heavy_retries > 0, "crashes and timeouts must provoke retries");
    }

    #[test]
    fn rows_replay_byte_identically() {
        let p = synthetic_profile();
        let a = run_point(&p, 8, FaultLevel::Heavy, 1234).expect("run");
        let b = run_point(&p, 8, FaultLevel::Heavy, 1234).expect("run");
        assert_eq!(a, b);
        let c = run_point(&p, 8, FaultLevel::Heavy, 1235).expect("run");
        assert_ne!(a, c, "a different seed must change the point");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn harness_profiles_are_usable() {
        let cfg = RunConfig {
            warmup_instr: 200_000,
            measure_instr: 400_000,
            ..RunConfig::default()
        };
        let profiles =
            service_profiles(&cfg, &[Benchmark::data_serving()]).expect("profiles");
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert!(p.mean_service_ns > 0);
        assert!(
            p.smt_inflation > 1.0,
            "per-context service time must inflate under SMT, got {}",
            p.smt_inflation
        );
        assert!(p.colocation_inflation > 1.0, "got {}", p.colocation_inflation);
    }
}
