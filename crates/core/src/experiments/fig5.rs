//! Figure 5: L2 hit ratios with prefetchers enabled and disabled.
//!
//! §4.3: disabling the adjacent-line and HW (stride) prefetchers barely
//! moves scale-out L2 hit ratios (MapReduce being the exception, and some
//! workloads even improving), while desktop/parallel benchmarks lose
//! noticeably.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_memsys::PrefetchConfig;
use cs_perf::{Report, Table};
use serde::{Deserialize, Serialize};

/// One workload's Figure 5 bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// L2 hit ratio with all prefetchers enabled.
    pub baseline: f64,
    /// L2 hit ratio with the adjacent-line prefetcher disabled.
    pub no_adjacent: f64,
    /// L2 hit ratio with the HW (stride) prefetcher disabled.
    pub no_stride: f64,
}

/// Runs every workload in the three prefetcher configurations.
///
/// Each workload's three ablation legs form one independent unit, fanned
/// over [`RunConfig::jobs`] threads ([`crate::par::par_map`]); rows come
/// back in suite order regardless of scheduling.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig5Row>, HarnessError> {
    let no_adj = PrefetchConfig { adjacent_line: false, ..PrefetchConfig::default() };
    let no_str = PrefetchConfig { hw_stride: false, ..PrefetchConfig::default() };
    let benches = Benchmark::all();
    crate::par::par_map(cfg.jobs, &benches, |_, b| {
        let base = run_strict(b, cfg)?;
        let a = run_strict(b, &RunConfig { prefetch: Some(no_adj), ..cfg.clone() })?;
        let s = run_strict(b, &RunConfig { prefetch: Some(no_str), ..cfg.clone() })?;
        Ok(Fig5Row {
            workload: base.name.clone(),
            scale_out: b.category() == Category::ScaleOut,
            baseline: base.l2_hit_ratio(),
            no_adjacent: a.l2_hit_ratio(),
            no_stride: s.l2_hit_ratio(),
        })
    })
    .into_iter()
    .collect()
}

/// Renders the rows as the Figure 5 table.
pub fn report(rows: &[Fig5Row]) -> Report {
    let mut t = Table::new(
        "L2 hit ratio",
        &["workload", "class", "baseline (all enabled)", "adjacent-line disabled", "HW prefetcher disabled"],
    );
    for r in rows {
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            r.baseline.into(),
            r.no_adjacent.into(),
            r.no_stride.into(),
        ]);
    }
    let mut rep = Report::new("Figure 5: L2 hit ratios vs prefetcher configuration");
    rep.note("The DCU streamer's (lack of) effect is covered by ablation A3.");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn prefetchers_matter_more_for_parallel_benchmarks() {
        let cfg = RunConfig {
            warmup_instr: 700_000,
            measure_instr: 1_200_000,
            ..RunConfig::default()
        };
        let none = RunConfig { prefetch: Some(PrefetchConfig::none()), ..cfg.clone() };
        // PARSEC (mem) streams benefit from stride prefetching.
        let parsec = Benchmark::from_profile(
            Category::Traditional,
            cs_trace::WorkloadProfile::parsec_mem(),
        );
        let with_pf = run_strict(&parsec, &cfg).expect("run").l2_hit_ratio();
        let without = run_strict(&parsec, &none).expect("run").l2_hit_ratio();
        assert!(
            with_pf - without > 0.05,
            "parsec-mem must lose L2 hits without prefetchers: {with_pf:.2} -> {without:.2}"
        );
        // Web Frontend barely notices.
        let fe = Benchmark::web_frontend();
        let fe_with = run_strict(&fe, &cfg).expect("run").l2_hit_ratio();
        let fe_without = run_strict(&fe, &none).expect("run").l2_hit_ratio();
        assert!(
            (fe_with - fe_without).abs() < 0.1,
            "web frontend should be insensitive: {fe_with:.2} vs {fe_without:.2}"
        );
    }
}
