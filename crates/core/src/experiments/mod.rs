//! One module per table/figure of the paper's evaluation, plus the
//! ablations its "Implications" paragraphs suggest.
//!
//! Each module exposes a `collect` function returning typed rows (for
//! tests and programmatic use) and a `report` function rendering the rows
//! as a [`cs_perf::Report`] whose tables mirror the figure's series. The
//! regeneration binaries in `cs-bench` are thin wrappers around these.

pub mod ablations;
pub mod density;
pub mod fig1;
pub mod footnote3;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fleet_slo;
pub mod sampled;
pub mod table1;
pub mod trends;
