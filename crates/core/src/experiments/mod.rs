//! One module per table/figure of the paper's evaluation, plus the
//! ablations its "Implications" paragraphs suggest.
//!
//! Each module exposes a `collect` function returning typed rows (for
//! tests and programmatic use) and a `report` function rendering the rows
//! as a [`cs_perf::Report`] whose tables mirror the figure's series. The
//! regeneration binaries in `cs-bench` are thin wrappers around these.
//!
//! Experiments that are not figure regenerations — the methodology and
//! systems studies layered on top — additionally implement the
//! [`Experiment`] trait and appear in [`registry`], so the campaign layer
//! picks them up uniformly instead of special-casing each one.

pub mod ablations;
pub mod density;
pub mod fig1;
pub mod footnote3;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fleet_resilience;
pub mod fleet_slo;
pub mod interference_matrix;
pub mod sampled;
pub mod table1;
pub mod trends;

use crate::errors::HarnessError;
use crate::harness::RunConfig;
use cs_perf::Report;

/// A named, self-describing experiment the campaign layer can run without
/// knowing its internals: it resolves its own effective configuration and
/// produces a rendered report.
pub trait Experiment {
    /// Stable name: the campaign's result file stem and checkpoint scope.
    fn name(&self) -> &'static str;

    /// The effective configuration this experiment runs under, with any
    /// experiment-specific defaults filled in. The default is the caller's
    /// configuration unchanged.
    fn config(&self, cfg: &RunConfig) -> RunConfig {
        cfg.clone()
    }

    /// Runs the experiment end to end and renders its report.
    fn run(&self, cfg: &RunConfig) -> Result<Report, HarnessError>;
}

/// SMARTS-style sampled IPC estimates with confidence intervals.
pub struct SampledIpc;

impl Experiment for SampledIpc {
    fn name(&self) -> &'static str {
        "sampled_ipc"
    }

    fn config(&self, cfg: &RunConfig) -> RunConfig {
        sampled::sampled_config(cfg)
    }

    fn run(&self, cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(sampled::report(&sampled::collect(cfg)?))
    }
}

/// Cluster-level serving study: fault injection and SLO accounting.
pub struct FleetSlo;

impl Experiment for FleetSlo {
    fn name(&self) -> &'static str {
        "fleet_slo"
    }

    fn run(&self, cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(fleet_slo::report(&fleet_slo::collect(cfg)?))
    }
}

/// N×N co-location interference matrix with QoS mitigations.
pub struct InterferenceMatrix;

impl Experiment for InterferenceMatrix {
    fn name(&self) -> &'static str {
        "interference_matrix"
    }

    fn run(&self, cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(interference_matrix::report(&interference_matrix::collect(cfg)?))
    }
}

/// Gray failures, correlated fault domains, and retry-storm protection.
pub struct FleetResilience;

impl Experiment for FleetResilience {
    fn name(&self) -> &'static str {
        "fleet_resilience"
    }

    fn run(&self, cfg: &RunConfig) -> Result<Report, HarnessError> {
        Ok(fleet_resilience::report(&fleet_resilience::collect(cfg)?))
    }
}

/// Every non-figure experiment, in campaign order.
pub fn registry() -> Vec<Box<dyn Experiment + Send + Sync>> {
    vec![
        Box::new(FleetSlo),
        Box::new(SampledIpc),
        Box::new(InterferenceMatrix),
        Box::new(FleetResilience),
    ]
}
