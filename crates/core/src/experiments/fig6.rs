//! Figure 6: read-write sharing.
//!
//! §4.4: the percentage of LLC data references that access cache blocks
//! most recently written by another core, measured — as in the paper —
//! with the workload's threads split across the two sockets so that
//! actively-shared blocks travel between processors.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::{Benchmark, Category};
use cs_perf::{Report, Table};
use serde::{Deserialize, Serialize};

/// One workload's Figure 6 bar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// Scale-out or traditional.
    pub scale_out: bool,
    /// Application-level shared references, % of LLC data references.
    pub app_pct: f64,
    /// OS-level shared references, % of LLC data references.
    pub os_pct: f64,
}

impl Fig6Row {
    /// Total read-write sharing percentage.
    pub fn total(&self) -> f64 {
        self.app_pct + self.os_pct
    }
}

/// Runs every workload with threads split across sockets.
pub fn collect(cfg: &RunConfig) -> Result<Vec<Fig6Row>, HarnessError> {
    let cfg = RunConfig { split_sockets: true, ..cfg.clone() };
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let r = run_strict(&b, &cfg)?;
        let (app_pct, os_pct) = r.rw_shared_pct();
        rows.push(Fig6Row {
            workload: r.name.clone(),
            scale_out: b.category() == Category::ScaleOut,
            app_pct,
            os_pct,
        });
    }
    Ok(rows)
}

/// Renders the rows as the Figure 6 table.
pub fn report(rows: &[Fig6Row]) -> Report {
    let mut t = Table::new(
        "Read-write shared LLC hits (% of LLC data references)",
        &["workload", "class", "application", "OS", "total"],
    );
    for r in rows {
        t.row([
            r.workload.clone().into(),
            if r.scale_out { "scale-out" } else { "traditional" }.into(),
            r.app_pct.into(),
            r.os_pct.into(),
            r.total().into(),
        ]);
    }
    let mut rep = Report::new("Figure 6: Read-write sharing");
    rep.note("Threads split across the two sockets, as in the paper's methodology (§3.1).");
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn oltp_shares_far_more_than_scale_out() {
        let cfg = RunConfig {
            split_sockets: true,
            warmup_instr: 500_000,
            measure_instr: 1_000_000,
            ..RunConfig::default()
        };
        let tpcc = Benchmark::from_profile(
            Category::Traditional,
            cs_trace::WorkloadProfile::tpcc(),
        );
        let sat = Benchmark::sat_solver();
        let (t_app, t_os) = run_strict(&tpcc, &cfg).expect("run").rw_shared_pct();
        let (s_app, s_os) = run_strict(&sat, &cfg).expect("run").rw_shared_pct();
        assert!(
            t_app + t_os > 3.0 * (s_app + s_os + 0.05),
            "TPC-C sharing ({:.2}%) must dwarf SAT ({:.2}%)",
            t_app + t_os,
            s_app + s_os
        );
    }
}
