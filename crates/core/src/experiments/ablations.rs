//! Ablations suggested by the paper's "Implications" paragraphs.
//!
//! - **A1 — mediocre cores (§4.2):** aggregate throughput of one 4-wide
//!   SMT core vs. two modest 2-wide cores at equal issue slots, plus the
//!   in-order comparison point;
//! - **A2 — cache-hierarchy rebalance (§4.3):** shrinking the LLC to a
//!   modest capacity costs scale-out workloads little;
//! - **A3 — DCU streamer (§4.3):** the L1-D streamer provides no benefit
//!   to scale-out workloads;
//! - **A4 — bandwidth scale-back (§4.4):** removing two of the three DDR3
//!   channels leaves scale-out performance essentially unchanged;
//! - **A5 — frontend opportunity (§4.1):** what a 4x larger L1-I would buy
//!   (the capacity the paper says latency constraints forbid — motivating
//!   its partitioned-instruction-cache proposal);
//! - **A6 — next-line instruction prefetch (§4.1):** the prefetcher covers
//!   sequential fetch runs, yet scale-out miss rates remain an order of
//!   magnitude beyond the desktop benchmarks even with it enabled — the
//!   paper's "inadequate for scale-out workloads" finding.

use crate::errors::HarnessError;
use crate::harness::{run_strict, RunConfig};
use crate::registry::Benchmark;
use cs_memsys::PrefetchConfig;
use cs_perf::{Report, Table};
use cs_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// A1: core-organization comparison for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A1Row {
    /// Workload name.
    pub workload: String,
    /// Aggregate user instructions/cycle: four 4-wide cores.
    pub wide: f64,
    /// Aggregate: four 4-wide cores with SMT (8 threads).
    pub wide_smt: f64,
    /// Aggregate: eight 2-wide cores (8 threads, equal issue slots).
    pub narrow_x2: f64,
    /// Aggregate: four 2-wide in-order cores.
    pub in_order: f64,
}

/// Runs A1 for the given workloads.
pub fn a1_mediocre_cores(
    benches: &[Benchmark],
    cfg: &RunConfig,
) -> Result<Vec<A1Row>, HarnessError> {
    let mut rows = Vec::new();
    for b in benches {
        let agg = |r: &crate::harness::RunResult| r.app_ipc() * r.cores.len() as f64;
        let wide = run_strict(b, cfg)?;
        let wide_smt = run_strict(b, &RunConfig { smt: true, ..cfg.clone() })?;
        let narrow = run_strict(
            b,
            &RunConfig { workers: 8, core: Some(CoreConfig::narrow2()), ..cfg.clone() },
        )?;
        let inorder =
            run_strict(b, &RunConfig { core: Some(CoreConfig::in_order2()), ..cfg.clone() })?;
        rows.push(A1Row {
            workload: wide.name.clone(),
            wide: agg(&wide),
            wide_smt: agg(&wide_smt),
            narrow_x2: agg(&narrow),
            in_order: agg(&inorder),
        });
    }
    Ok(rows)
}

/// A2/A3/A4: one workload's IPC under a machine variant, relative to
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantRow {
    /// Workload name.
    pub workload: String,
    /// Baseline application IPC.
    pub baseline_ipc: f64,
    /// Variant application IPC.
    pub variant_ipc: f64,
}

impl VariantRow {
    /// Relative performance of the variant.
    pub fn relative(&self) -> f64 {
        if self.baseline_ipc == 0.0 {
            0.0
        } else {
            self.variant_ipc / self.baseline_ipc
        }
    }
}

/// A2: a modest 4 MB LLC (with the baseline's 12 MB as reference).
pub fn a2_small_llc(
    benches: &[Benchmark],
    cfg: &RunConfig,
) -> Result<Vec<VariantRow>, HarnessError> {
    variant(benches, cfg, &RunConfig { llc_bytes: Some(4 << 20), ..cfg.clone() })
}

/// A3: DCU streamer disabled.
pub fn a3_no_dcu(benches: &[Benchmark], cfg: &RunConfig) -> Result<Vec<VariantRow>, HarnessError> {
    let pf = PrefetchConfig { dcu_streamer: false, ..PrefetchConfig::default() };
    variant(benches, cfg, &RunConfig { prefetch: Some(pf), ..cfg.clone() })
}

/// A4: one DDR3 channel instead of three.
pub fn a4_one_channel(
    benches: &[Benchmark],
    cfg: &RunConfig,
) -> Result<Vec<VariantRow>, HarnessError> {
    variant(benches, cfg, &RunConfig { dram_channels: Some(1), ..cfg.clone() })
}

/// A5: a 128 KB L1-I. Even 4x the capacity relieves the multi-megabyte,
/// heavy-tailed instruction working set only modestly — the reason §4.1
/// argues for partitioned LLC-level instruction caching instead of larger
/// L1s.
pub fn a5_big_l1i(benches: &[Benchmark], cfg: &RunConfig) -> Result<Vec<VariantRow>, HarnessError> {
    variant(benches, cfg, &RunConfig { l1i_bytes: Some(128 * 1024), ..cfg.clone() })
}

/// A6: L1-I next-line prefetcher disabled.
pub fn a6_no_instr_prefetch(
    benches: &[Benchmark],
    cfg: &RunConfig,
) -> Result<Vec<VariantRow>, HarnessError> {
    let pf = PrefetchConfig { instr_next_line: false, ..PrefetchConfig::default() };
    variant(benches, cfg, &RunConfig { prefetch: Some(pf), ..cfg.clone() })
}

/// A8: a narrower, slower on-chip interconnect — LLC hits cost 6 extra
/// cycles and cross-socket snoops 40 more — standing in for the §4.4
/// proposal to scale back the "wide and low-latency interconnects
/// (that) are over-provisioned for scale-out workloads".
pub fn a8_narrow_interconnect(
    benches: &[Benchmark],
    cfg: &RunConfig,
) -> Result<Vec<VariantRow>, HarnessError> {
    variant(
        benches,
        cfg,
        &RunConfig { interconnect_latency: Some((45, 110)), ..cfg.clone() },
    )
}

/// A7: a real gshare predictor instead of the trace's calibrated
/// mispredict annotations — a cross-check that the calibrated rates are
/// not doing hidden work.
pub fn a7_gshare(benches: &[Benchmark], cfg: &RunConfig) -> Result<Vec<VariantRow>, HarnessError> {
    let core = CoreConfig {
        branch_model: cs_uarch::BranchModel::Gshare { bits: 14 },
        ..CoreConfig::x5670()
    };
    variant(benches, cfg, &RunConfig { core: Some(core), ..cfg.clone() })
}

fn variant(
    benches: &[Benchmark],
    base: &RunConfig,
    alt: &RunConfig,
) -> Result<Vec<VariantRow>, HarnessError> {
    let mut rows = Vec::new();
    for b in benches {
        let r0 = run_strict(b, base)?;
        let r1 = run_strict(b, alt)?;
        rows.push(VariantRow {
            workload: r0.name.clone(),
            baseline_ipc: r0.app_ipc(),
            variant_ipc: r1.app_ipc(),
        });
    }
    Ok(rows)
}

/// Renders an A1 table.
pub fn report_a1(rows: &[A1Row]) -> Report {
    let mut t = Table::new(
        "Aggregate user instructions/cycle",
        &["workload", "4x 4-wide", "4x 4-wide SMT", "8x 2-wide", "4x 2-wide in-order"],
    );
    for r in rows {
        t.row([
            r.workload.clone().into(),
            r.wide.into(),
            r.wide_smt.into(),
            r.narrow_x2.into(),
            r.in_order.into(),
        ]);
    }
    let mut rep = Report::new("Ablation A1: mediocre cores (§4.2 implication)");
    rep.note("Equal issue slots: 8 narrow cores vs 4 wide SMT cores.");
    rep.push(t);
    rep
}

/// Renders a variant table with the given title.
pub fn report_variant(title: &str, note: &str, rows: &[VariantRow]) -> Report {
    let mut t =
        Table::new("Application IPC", &["workload", "baseline", "variant", "relative"]);
    for r in rows {
        t.row([
            r.workload.clone().into(),
            r.baseline_ipc.into(),
            r.variant_ipc.into(),
            r.relative().into(),
        ]);
    }
    let mut rep = Report::new(title);
    rep.note(note);
    rep.push(t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            warmup_instr: 200_000,
            measure_instr: 400_000,
            ..RunConfig::default()
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn narrow_cores_win_aggregate_throughput_on_scale_out() {
        let rows = a1_mediocre_cores(&[Benchmark::web_search()], &tiny()).expect("run");
        let r = &rows[0];
        assert!(
            r.narrow_x2 > r.wide,
            "8 narrow cores ({:.2}) must beat 4 wide cores ({:.2}) in aggregate",
            r.narrow_x2,
            r.wide
        );
        assert!(r.wide_smt > r.wide, "SMT must help");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn small_llc_barely_hurts_scale_out() {
        let rows = a2_small_llc(&[Benchmark::web_frontend()], &tiny()).expect("run");
        assert!(
            rows[0].relative() > 0.8,
            "4MB LLC should cost scale-out little, got {:.2}",
            rows[0].relative()
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn bigger_instruction_caches_relieve_the_frontend() {
        // §4.1: "Stringent access-latency requirements of the L1-I caches
        // preclude increasing the size of the caches to capture the
        // instruction working set ... which is an order of magnitude
        // larger." Even a hypothetical 4x L1-I only modestly relieves the
        // miss rate — the heavy tail of the multi-megabyte footprint is
        // untouched, which is the paper's argument for partitioned
        // LLC-level instruction caching rather than bigger L1s.
        let cfg = RunConfig {
            warmup_instr: 900_000,
            measure_instr: 1_500_000,
            ..RunConfig::default()
        };
        let bench = Benchmark::web_search();
        let base = run_strict(&bench, &cfg).expect("run");
        let big = run_strict(
            &bench,
            &RunConfig { l1i_bytes: Some(128 * 1024), ..cfg.clone() },
        )
        .expect("run");
        let (b_app, b_os) = base.l1i_mpki();
        let (g_app, g_os) = big.l1i_mpki();
        let relief = 1.0 - (g_app + g_os) / (b_app + b_os);
        assert!(
            (0.05..0.6).contains(&relief),
            "4x the L1-I should relieve misses only modestly (heavy-tailed \
             footprint): {:.1} -> {:.1}",
            b_app + b_os,
            g_app + g_os
        );
        assert!(big.app_ipc() >= base.app_ipc() * 0.99, "and must never hurt");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn next_line_prefetch_cannot_fix_the_frontend() {
        // The paper's §4.1 finding is not that the next-line prefetcher
        // does nothing — it covers sequential fetch runs (so disabling it
        // hurts) — but that even WITH it, scale-out instruction miss
        // rates remain an order of magnitude beyond desktop code.
        let cfg = RunConfig {
            warmup_instr: 500_000,
            measure_instr: 1_000_000,
            ..RunConfig::default()
        };
        let r = run_strict(&Benchmark::data_serving(), &cfg).expect("run");
        let (l1i_app, l1i_os) = r.l1i_mpki();
        assert!(
            l1i_app + l1i_os > 10.0,
            "with the prefetcher enabled, misses must remain high: {:.1}",
            l1i_app + l1i_os
        );
        // And the prefetcher is load-bearing for what little it covers.
        let rows = a6_no_instr_prefetch(&[Benchmark::data_serving()], &cfg).expect("run");
        assert!(rows[0].relative() < 1.0, "disabling it must not help");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn a_narrower_interconnect_costs_scale_out_little() {
        let rows = a8_narrow_interconnect(&[Benchmark::data_serving()], &tiny()).expect("run");
        assert!(
            rows[0].relative() > 0.85,
            "slower LLC/snoop paths should cost little, got {:.2}",
            rows[0].relative()
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn gshare_and_calibrated_rates_roughly_agree() {
        let rows = a7_gshare(&[Benchmark::mapreduce()], &tiny()).expect("run");
        let rel = rows[0].relative();
        assert!(
            (0.7..1.3).contains(&rel),
            "a real predictor should land near the calibrated rates, got {rel:.2}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run under --release")]
    fn one_memory_channel_suffices_for_scale_out() {
        let rows = a4_one_channel(&[Benchmark::web_frontend()], &tiny()).expect("run");
        assert!(
            rows[0].relative() > 0.78,
            "one channel should mostly suffice, got {:.2}",
            rows[0].relative()
        );
    }
}
