//! Crash-safe mid-run checkpointing.
//!
//! A long figure campaign is hours of simulation; a kill signal, OOM or
//! power loss used to throw away every half-finished unit. This module
//! provides the two pieces that make interruption cheap instead:
//!
//! - **A versioned, checksummed snapshot envelope** ([`save_envelope`] /
//!   [`load_envelope`]) written atomically (unique temp file + `fsync` +
//!   `rename`), so a crash mid-write can never leave a torn file that
//!   parses. The payload is the harness phase machine plus the full
//!   [`cs_uarch::Chip`] snapshot — everything the simulator needs to
//!   continue a run *byte-identically*.
//! - **A thread-local checkpoint control** ([`CheckpointCtl`], installed
//!   with [`with_checkpointing`]) that the harness polls at deterministic
//!   cycle boundaries: it carries the snapshot directory, the cadence, the
//!   cooperative stop flag the signal handler sets, and (for tests and CI)
//!   a deterministic interrupt-after-cycle trigger.
//!
//! # Soundness of byte-identical resume
//!
//! The simulator is a pure function of its configuration and seeds: trace
//! sources have no feedback from simulation, and every component exposes
//! `encode_snap`/`restore_snap` covering its complete mutable state. A
//! checkpoint is only ever taken *between* [`cs_uarch::Chip::run_cycles`]
//! strides whose lengths are independent of the checkpoint cadence
//! ([`cs_uarch::Chip::step_watched`]), so the sequence of simulated work is
//! literally the same whether a run is interrupted zero or many times.
//! Anything that would break this property (a time-dependent decision, an
//! unserialized piece of state) is a bug, and the round-trip and
//! kill/resume tests exist to catch it.
//!
//! # Degraded reads
//!
//! [`load_envelope`] never fails the run: a missing, truncated, corrupt,
//! version-skewed or config-mismatched checkpoint logs one line to stderr
//! and returns `None`, and the harness starts the unit from scratch — a
//! fresh run produces the same bytes an uninterrupted run would, so
//! dropping a bad checkpoint is always safe.
//!
//! Structurally bad files — bad magic, version skew, truncation, checksum
//! mismatch, or a payload that no longer decodes — are additionally
//! **quarantined**: atomically renamed to `<name>.corrupt` next to the
//! original ([`quarantine`]), so the evidence survives for a post-mortem
//! instead of being silently overwritten by the fresh run's next snapshot.
//! A config-hash mismatch is *not* quarantined: the envelope is intact,
//! it just belongs to a different unit of work.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cs_trace::snap::fnv1a64;

/// File magic of a checkpoint envelope (the trailing `01` is the major
/// format generation; the explicit version field below tracks revisions).
pub const MAGIC: &[u8; 8] = b"CSCKPT01";
/// Current envelope version. Bump on any layout change of the payload;
/// readers reject other versions (and the harness then starts fresh).
/// Version 2: per-core fidelity byte in the core snapshot and the
/// SMARTS sampling phase (window bookkeeping + statistics accumulator).
/// Version 3: tenant byte per LLC line and the optional DRAM bandwidth
/// regulator cursors (multi-tenant co-location QoS).
/// Version 4: the window-parallel sampling phase (forward cursor, pending
/// in-flight windows as raw snapshots, and the accumulator's excursion
/// cycle extras appended after the window samples).
pub const VERSION: u32 = 4;

/// Default checkpoint cadence in simulated cycles.
pub const DEFAULT_CADENCE_CYCLES: u64 = 2_000_000;

/// Monotonic suffix for temp files, so concurrent writers in one process
/// never collide.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Shared control block for checkpointing, installed per unit of work via
/// [`with_checkpointing`] and polled by the harness at deterministic cycle
/// boundaries.
#[derive(Debug, Clone)]
pub struct CheckpointCtl {
    /// Directory snapshot files live in (created on first save).
    pub dir: PathBuf,
    /// Take a snapshot roughly every this many simulated cycles (`0`
    /// disables cadence snapshots; stop/interrupt snapshots still happen).
    pub cadence_cycles: u64,
    /// Cooperative stop flag (set by the SIGINT/SIGTERM handler). When
    /// observed, the harness saves a snapshot and returns
    /// [`crate::errors::HarnessError::Interrupted`].
    pub stop: Arc<AtomicBool>,
    /// Deterministic interruption for tests and CI: behave exactly like a
    /// kill signal once the chip reaches this cycle.
    pub interrupt_after: Option<u64>,
    /// Namespace for unit keys (the experiment name), so identical
    /// configurations in different experiments never share a checkpoint.
    pub scope: String,
    /// File names of every checkpoint this control read or wrote, for the
    /// campaign layer to record in the manifest and clean up after the
    /// experiment's results are durably emitted.
    pub used: Arc<Mutex<Vec<String>>>,
}

impl CheckpointCtl {
    /// A control block with the given directory and scope, default cadence,
    /// a fresh stop flag and no deterministic interrupt.
    pub fn new(dir: PathBuf, scope: impl Into<String>) -> Self {
        Self {
            dir,
            cadence_cycles: DEFAULT_CADENCE_CYCLES,
            stop: Arc::new(AtomicBool::new(false)),
            interrupt_after: None,
            scope: scope.into(),
            used: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Records that `file` (a bare file name inside [`CheckpointCtl::dir`])
    /// belongs to the current unit of work.
    pub fn note_used(&self, file: &str) {
        if let Ok(mut v) = self.used.lock() {
            if !v.iter().any(|f| f == file) {
                v.push(file.to_owned());
            }
        }
    }

    /// Sorted snapshot of the file names recorded via
    /// [`CheckpointCtl::note_used`].
    pub fn used_files(&self) -> Vec<String> {
        let mut v = self.used.lock().map(|v| v.clone()).unwrap_or_default();
        v.sort();
        v
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CheckpointCtl>> = const { RefCell::new(None) };
}

/// Runs `f` with `ctl` installed as the thread's checkpoint control; the
/// previous control (usually none) is restored afterwards, even on unwind.
pub fn with_checkpointing<R>(ctl: CheckpointCtl, f: impl FnOnce() -> R) -> R {
    struct Guard(Option<CheckpointCtl>);
    impl Drop for Guard {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctl));
    let _guard = Guard(prev);
    f()
}

/// The checkpoint control installed on this thread, if any.
pub fn current() -> Option<CheckpointCtl> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Stable fingerprint of one unit of work: the scope (experiment name),
/// the benchmark, and every [`crate::harness::RunConfig`] field that
/// affects simulated bytes. Deliberately **excluded**: `jobs`,
/// `cycle_skip` and `sample_inflight`, which never change results (so a
/// checkpoint taken at `--jobs 4` resumes under `--jobs 1`, with skip
/// toggled, and with a different in-flight window budget).
/// Deliberately **included**: `window_par` — the overlapped schedule
/// stores a different phase shape (and different warming-strand cycle
/// counts) than the sequential sampled path, so the two must never share
/// a checkpoint.
/// Deliberately **included**: `max_cycles` and `watchdog_grace` — the
/// campaign's widened-budget retry must not resume the failed attempt's
/// checkpoint, whose window cursor has the old budget baked in.
pub fn unit_key(scope: &str, bench: &str, cfg: &crate::harness::RunConfig) -> u64 {
    let canon = format!(
        "{scope}|{bench}|{:?}|{:?}|{:?}|{:?}",
        (
            cfg.workers,
            cfg.smt,
            cfg.split_sockets,
            cfg.polluter_bytes,
            cfg.llc_bytes,
            cfg.prefetch,
            cfg.core,
            cfg.l1i_bytes,
            cfg.l2_bytes,
        ),
        (
            cfg.dram_channels,
            cfg.interconnect_latency,
            cfg.warmup_instr,
            cfg.measure_instr,
            cfg.max_cycles,
            cfg.seed,
            cfg.watchdog_grace,
            cfg.fault,
        ),
        (cfg.sample_windows, cfg.sample_period, cfg.sample_warmup_instr, cfg.window_par),
        (&cfg.llc_way_masks, &cfg.dram_budgets, cfg.dram_budget_window)
    );
    fnv1a64(canon.as_bytes())
}

/// File name of the checkpoint for `key` (inside [`CheckpointCtl::dir`]).
pub fn unit_file(key: u64) -> String {
    format!("{key:016x}.ckpt")
}

/// Writes `payload` to `path` atomically: a uniquely-named temp file in the
/// same directory is written, checksummed, `fsync`ed and renamed over the
/// destination. A crash at any point leaves either the old file or the new
/// one — never a torn hybrid (a torn temp file is ignored by readers and
/// harmless).
pub fn save_envelope(path: &Path, config_hash: u64, payload: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut buf = Vec::with_capacity(payload.len() + 36);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&config_hash.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Atomically renames a structurally corrupt snapshot to `<name>.corrupt`
/// so the fresh-run fallback cannot overwrite the evidence. Best-effort:
/// a failed rename (e.g. a read-only directory) is logged and the file is
/// left in place — the caller has already decided to ignore it either way.
pub fn quarantine(path: &Path, why: &str) {
    let mut name = path.as_os_str().to_owned();
    name.push(".corrupt");
    let dest = PathBuf::from(name);
    match std::fs::rename(path, &dest) {
        Ok(()) => eprintln!(
            "checkpoint: quarantined corrupt {} -> {} ({why})",
            path.display(),
            dest.display()
        ),
        Err(e) => eprintln!(
            "checkpoint: ignoring corrupt {} ({why}); quarantine rename failed: {e}",
            path.display()
        ),
    }
}

/// Reads and validates the envelope at `path`, returning the payload.
///
/// Returns `None` — and the caller starts the unit from scratch — when the
/// file is missing, unreadable, truncated, has the wrong magic, an unknown
/// version, a checksum mismatch, or was written for a different
/// configuration (`config_hash`). Every reason except "missing" is logged
/// to stderr, because it usually means a crashed writer or a stale format
/// worth knowing about. Structural defects (anything except a config-hash
/// mismatch) also [`quarantine`] the file as `<name>.corrupt`.
pub fn load_envelope(path: &Path, config_hash: u64) -> Option<Vec<u8>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("checkpoint: ignoring unreadable {}: {e}", path.display());
            return None;
        }
    };
    // An intact envelope for a different unit: ignored but not corrupt.
    let reject = |why: &str| {
        eprintln!("checkpoint: ignoring {}: {why}", path.display());
        None
    };
    // A structurally bad file: ignored and moved aside for post-mortem.
    let corrupt = |why: &str| {
        quarantine(path, why);
        None
    };
    if bytes.len() < 36 {
        return corrupt("truncated header");
    }
    if &bytes[0..8] != MAGIC {
        return corrupt("bad magic");
    }
    let rd_u32 = |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
    let rd_u64 = |o: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[o..o + 8]);
        u64::from_le_bytes(b)
    };
    if rd_u32(8) != VERSION {
        return corrupt("unsupported version");
    }
    if rd_u64(12) != config_hash {
        return reject("written for a different configuration");
    }
    let len = rd_u64(20);
    let checksum = rd_u64(28);
    let payload = &bytes[36..];
    if payload.len() as u64 != len {
        return corrupt("payload length mismatch");
    }
    if fnv1a64(payload) != checksum {
        return corrupt("checksum mismatch");
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cs-ckpt-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn envelope_roundtrips() {
        let d = tdir("roundtrip");
        let p = d.join("a.ckpt");
        save_envelope(&p, 7, b"hello snapshot").expect("save");
        assert_eq!(load_envelope(&p, 7).as_deref(), Some(&b"hello snapshot"[..]));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn envelope_rejects_corruption_and_skew() {
        let d = tdir("reject");
        let p = d.join("a.ckpt");
        let q = d.join("a.ckpt.corrupt");
        save_envelope(&p, 7, b"payload bytes").expect("save");
        // Wrong config hash: rejected but intact — NOT quarantined (the
        // envelope belongs to a different unit, it is not corrupt).
        assert_eq!(load_envelope(&p, 8), None);
        assert!(p.exists(), "config mismatch must leave the file in place");
        assert!(!q.exists());
        // Flip a payload byte: checksum mismatch, quarantined.
        let mut bytes = std::fs::read(&p).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).expect("write");
        assert_eq!(load_envelope(&p, 7), None);
        assert!(!p.exists(), "corrupt snapshot must be moved aside");
        assert!(q.exists(), "corrupt snapshot must survive as .corrupt");
        // Truncation: quarantined too (renamed over the earlier quarantine;
        // the latest evidence wins).
        std::fs::write(&p, &bytes[..10]).expect("write");
        assert_eq!(load_envelope(&p, 7), None);
        assert!(!p.exists());
        assert!(q.exists());
        // Missing file: silent None, nothing quarantined.
        assert_eq!(load_envelope(&d.join("absent.ckpt"), 7), None);
        assert!(!d.join("absent.ckpt.corrupt").exists());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn envelope_rejects_other_versions() {
        let d = tdir("version");
        let p = d.join("a.ckpt");
        save_envelope(&p, 1, b"x").expect("save");
        let mut bytes = std::fs::read(&p).expect("read");
        bytes[8] = bytes[8].wrapping_add(1);
        std::fs::write(&p, &bytes).expect("write");
        assert_eq!(load_envelope(&p, 1), None);
        assert!(
            d.join("a.ckpt.corrupt").exists(),
            "version skew is structural: the file must be quarantined"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp_files() {
        let d = tdir("atomic");
        let p = d.join("a.ckpt");
        save_envelope(&p, 1, b"first").expect("save");
        save_envelope(&p, 1, b"second, longer payload").expect("save");
        assert_eq!(load_envelope(&p, 1).as_deref(), Some(&b"second, longer payload"[..]));
        let leftovers: Vec<_> = std::fs::read_dir(&d)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn unit_key_ignores_jobs_and_skip_but_not_budgets() {
        let base = crate::harness::RunConfig::quick();
        let bench = "web_search";
        let k = unit_key("fig1", bench, &base);
        let mut jobs = base.clone();
        jobs.jobs = 8;
        jobs.cycle_skip = false;
        assert_eq!(unit_key("fig1", bench, &jobs), k, "jobs/skip must not change the key");
        let mut widened = base.clone();
        widened.max_cycles *= 4;
        assert_ne!(unit_key("fig1", bench, &widened), k, "budget changes must change the key");
        let mut sampled = base.clone();
        sampled.sample_windows = 8;
        sampled.sample_period = 100_000;
        assert_ne!(unit_key("fig1", bench, &sampled), k, "sampling must change the key");
        let mut wp = base.clone();
        wp.window_par = true;
        assert_ne!(unit_key("fig1", bench, &wp), k, "window_par must change the key");
        let mut inflight = base.clone();
        inflight.sample_inflight = 16;
        assert_eq!(
            unit_key("fig1", bench, &inflight),
            k,
            "sample_inflight is scheduling-only and must not change the key"
        );
        let mut qos = base.clone();
        qos.llc_way_masks = Some(vec![0x00FF, 0xFF00]);
        assert_ne!(unit_key("fig1", bench, &qos), k, "way masks must change the key");
        let mut qos = base.clone();
        qos.dram_budgets = Some(vec![4096, 4096]);
        assert_ne!(unit_key("fig1", bench, &qos), k, "budgets must change the key");
        assert_ne!(unit_key("fig2", bench, &base), k, "scope must namespace the key");
        assert_ne!(unit_key("fig1", "mcf", &base), k, "bench must namespace the key");
    }

    #[test]
    fn thread_local_ctl_is_scoped_and_restored() {
        assert!(current().is_none());
        let ctl = CheckpointCtl::new(PathBuf::from("/nonexistent"), "scope");
        with_checkpointing(ctl, || {
            let c = current().expect("installed");
            assert_eq!(c.scope, "scope");
            c.note_used("b.ckpt");
            c.note_used("a.ckpt");
            c.note_used("b.ckpt");
            assert_eq!(c.used_files(), vec!["a.ckpt".to_owned(), "b.ckpt".to_owned()]);
        });
        assert!(current().is_none(), "control must be uninstalled on exit");
    }
}
