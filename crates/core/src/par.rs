//! A minimal deterministic worker pool for independent experiment units.
//!
//! Every run in a figure campaign is seeded and shares no mutable state
//! with its siblings, so a sweep is an embarrassingly parallel map. This
//! module provides exactly that and nothing more: [`par_map`] fans a slice
//! of work items over `jobs` scoped threads ([`std::thread::scope`], no
//! detached lifetimes, no extra dependencies) and collects the results
//! **by item index**, so the output order — and therefore every derived
//! report and manifest byte — is independent of thread scheduling.
//!
//! Panic discipline: a panicking unit never takes its siblings down. Each
//! unit runs under [`std::panic::catch_unwind`]; after all units finish,
//! the first panic in *item order* (not completion order) is re-raised in
//! the caller via [`std::panic::resume_unwind`]. Callers that must survive
//! unit panics (the campaign layer) wrap their unit body in their own
//! `catch_unwind` and convert the payload into a failure outcome instead.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Maps `f` over `items` on up to `jobs` threads (the calling thread
/// counts as one), returning the results in item order.
///
/// `f` receives the item's index and a reference to the item. With
/// `jobs <= 1` — or a single item — this degenerates to a plain serial
/// loop on the calling thread, with no threads spawned and no unwinding
/// interposed; results are identical either way.
///
/// # Panics
///
/// If one or more units panic, the panic payload of the lowest-indexed
/// panicking unit is re-raised after every unit has finished.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // The checkpoint control is thread-local; spawned workers would
    // otherwise silently run without it and never snapshot. Capture the
    // caller's control once and re-install it inside every worker (the
    // control is all shared handles, so workers cooperate on the same stop
    // flag and used-file ledger).
    let ckpt = crate::checkpoint::current();

    // One result slot per item; workers claim indices from a shared
    // counter, so the assignment of items to threads is dynamic but the
    // collection below is strictly by index.
    let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let worker = || {
        let body = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(i, item)));
            // Storing a value cannot panic, so the lock is held only for the
            // move; a poisoned slot can only mean another worker crashed hard,
            // in which case its payload is what gets re-raised anyway.
            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        };
        match ckpt.clone() {
            Some(ctl) => crate::checkpoint::with_checkpointing(ctl, body),
            None => body(),
        }
    };

    std::thread::scope(|s| {
        for _ in 0..jobs - 1 {
            s.spawn(worker);
        }
        worker(); // The calling thread is the last worker.
    });

    let mut out = Vec::with_capacity(items.len());
    let mut first_panic = None;
    for slot in slots {
        let result = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("scope joined every worker, so every slot is filled");
        match result {
            Ok(r) => out.push(r),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        panic::resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15) >> 7;
        let serial = par_map(1, &items, f);
        for jobs in [2, 3, 4, 16] {
            assert_eq!(par_map(jobs, &items, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn first_panic_by_index_is_propagated_after_all_units_finish() {
        use std::sync::atomic::AtomicU32;
        let completed = AtomicU32::new(0);
        let items: Vec<usize> = (0..16).collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(4, &items, |i, _| {
                if i == 3 {
                    panic!("unit three");
                }
                if i == 9 {
                    panic!("unit nine");
                }
                completed.fetch_add(1, Ordering::SeqCst);
            })
        }))
        .expect_err("a panicking unit must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "unit three", "lowest index wins");
        // Every non-panicking unit still ran to completion.
        assert_eq!(completed.load(Ordering::SeqCst), 14);
    }

    #[test]
    fn checkpoint_ctl_reaches_every_worker_thread() {
        use crate::checkpoint::{current, with_checkpointing, CheckpointCtl};
        let ctl = CheckpointCtl::new(std::path::PathBuf::from("/nonexistent"), "par-test");
        let items: Vec<u32> = (0..32).collect();
        let seen = with_checkpointing(ctl, || {
            let seen = par_map(4, &items, |_, _| current().map(|c| c.scope.clone()));
            assert!(current().is_some(), "caller's own control is untouched");
            seen
        });
        assert!(
            seen.iter().all(|s| s.as_deref() == Some("par-test")),
            "every unit must observe the caller's checkpoint control"
        );
        assert!(current().is_none(), "control is uninstalled after the scope ends");
    }

    #[test]
    fn results_flow_even_when_r_is_a_result_type() {
        let items: Vec<u32> = (0..10).collect();
        let out: Vec<Result<u32, String>> = par_map(3, &items, |_, &x| {
            if x % 2 == 0 {
                Ok(x)
            } else {
                Err(format!("odd {x}"))
            }
        });
        let collected: Result<Vec<u32>, String> = out.into_iter().collect();
        assert_eq!(collected, Err("odd 1".to_owned()), "first error by index");
    }
}
